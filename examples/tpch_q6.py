#!/usr/bin/env python3
"""TPC-H Q6: the paper's "general case" experiment (Section 5.4).

Loads a dbgen-like lineitem table — whose rows, unlike meter data, carry
no physical time order — and answers Q6 three ways:

* full scan,
* Compact Index on (l_discount, l_quantity): chooses every split because
  the values are evenly scattered, so it is pure overhead,
* DGFIndex on (l_discount, l_quantity, l_shipdate) with
  ``sum(l_extendedprice * l_discount)`` pre-computed: most of the answer
  comes straight from GFU headers.

Run:  python examples/tpch_q6.py
"""

import repro
from repro import QueryOptions
from repro.data.tpch import (LINEITEM_SCHEMA, LineitemGenerator,
                             TPCHConfig, q6_parameters, q6_sql)

SCAN = QueryOptions(use_index=False)


def load_lineitem(conn, rows, stored_as):
    columns = ", ".join(f"{c.name} {c.dtype.value}"
                        for c in LINEITEM_SCHEMA.columns)
    conn.execute(f"CREATE TABLE lineitem ({columns}) "
                 f"STORED AS {stored_as}")
    third = len(rows) // 3 + 1
    for i in range(0, len(rows), third):
        conn.load_rows("lineitem", rows[i:i + third])


def report(label, result):
    print(f"  {label:<22} answer={result.rows[0][0]:<14.2f} "
          f"records read={result.stats.records_read:>7}  "
          f"simulated={result.stats.simulated_seconds:7.1f}s  "
          f"plan={result.stats.index_used or 'full scan'}")


def main():
    config = TPCHConfig(num_orders=8000)
    rows = list(LineitemGenerator(config).iter_rows())
    data_scale = config.paper_records / len(rows)
    params = q6_parameters()
    sql = q6_sql(params)
    print(f"lineitem rows: {len(rows)} (standing in for the paper's "
          f"4.1B)\nQ6: {sql}\n")

    print("== ScanTable baseline (TextFile)")
    scan_conn = repro.connect(data_scale=data_scale)
    scan_conn.session.fs.block_size = 512 * 1024
    load_lineitem(scan_conn, rows, "TEXTFILE")
    scan = scan_conn.execute(sql, options=SCAN)
    report("ScanTable", scan)

    print("\n== Compact Index (RCFile base, 2-D)")
    compact_conn = repro.connect(data_scale=data_scale)
    compact_conn.session.fs.block_size = 512 * 1024
    load_lineitem(compact_conn, rows, "RCFILE")
    compact_conn.execute(
        "CREATE INDEX cmp2 ON TABLE lineitem"
        "(l_discount, l_quantity) AS 'compact'")
    compact = compact_conn.execute(sql, options=QueryOptions(index_name="cmp2"))
    report("Compact-2D", compact)
    print("  -> still read every record: evenly scattered values defeat "
          "split-level filtering (paper Table 6)")

    print("\n== DGFIndex (the paper's splitting policy)")
    dgf_conn = repro.connect(data_scale=data_scale)
    dgf_conn.session.fs.block_size = 512 * 1024
    load_lineitem(dgf_conn, rows, "TEXTFILE")
    dgf_conn.execute(
        "CREATE INDEX dgf_q6 ON TABLE lineitem"
        "(l_discount, l_quantity, l_shipdate) AS 'dgf' "
        "IDXPROPERTIES ('l_discount'='0_0.01', 'l_quantity'='0_1.0', "
        "'l_shipdate'='1992-01-01_100d', "
        "'precompute'='sum(l_extendedprice * l_discount)')")
    dgf = dgf_conn.execute(sql, options=QueryOptions(index_name="dgf_q6"))
    report("DGFIndex", dgf)

    assert abs(dgf.rows[0][0] - scan.rows[0][0]) < 1e-6
    assert abs(compact.rows[0][0] - scan.rows[0][0]) < 1e-6
    print(f"\nDGF vs Compact speedup (simulated): "
          f"{compact.stats.simulated_seconds / dgf.stats.simulated_seconds:.0f}x "
          f"(paper: ~25x)")


if __name__ == "__main__":
    main()
