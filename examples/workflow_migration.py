#!/usr/bin/env python3
"""Stored-procedure migration: legacy RDBMS jobs as Oozie-style workflows.

Section 3 of the paper describes migrating the Electricity Consumption
Information Collection System: each legacy stored procedure (tens of SQL
statements, run at fixed frequencies) becomes a DAG of HiveQL statements
organized as a work flow, with archive synchronization and statistic-data
ETL, all fired by a coordinator.  This example reproduces that shape:

* a "power calculation" workflow: ingest the day's meter data through the
  DGF append path, compute per-region totals, join with the archive, and
  "export" statistics (INSERT OVERWRITE DIRECTORY = the RDBMS-facing ETL);
* an "archive sync" workflow at a slower cadence;
* a coordinator advancing simulated days.

Run:  python examples/workflow_migration.py
"""

import repro
from repro import append_with_dgf
from repro.data.meter import (METER_SCHEMA, USER_INFO_SCHEMA,
                              MeterDataConfig, MeterDataGenerator)
from repro.workflow import Coordinator, Workflow

DAY = 86400.0


def ddl(name, schema):
    columns = ", ".join(f"{c.name} {c.dtype.value}"
                        for c in schema.columns)
    return f"CREATE TABLE {name} ({columns})"


def main():
    config = MeterDataConfig(num_users=600, num_days=7,
                             readings_per_day=2)
    generator = MeterDataGenerator(config)
    conn = repro.connect(data_scale=config.data_scale)
    session = conn.session  # the workflow engine drives the session
    session.fs.block_size = 128 * 1024

    # Bootstrap: day 0 data + the DGFIndex (later days append, no rebuild).
    conn.execute(ddl("meterdata", METER_SCHEMA))
    conn.execute(ddl("userinfo", USER_INFO_SCHEMA))
    conn.load_rows("meterdata", generator.rows_for_days(0, 1))
    conn.load_rows("userinfo", generator.user_info_rows())
    conn.execute(
        "CREATE INDEX dgf_idx ON TABLE meterdata(userid, regionid, ts) "
        "AS 'dgf' IDXPROPERTIES ('userid'='0_30', 'regionid'='0_1', "
        f"'ts'='{config.start_date}_1d', "
        "'precompute'='sum(powerconsumed),count(*)')")

    state = {"next_day": 1}

    def ingest(ctx):
        day = state["next_day"]
        if day >= config.num_days:
            return 0
        state["next_day"] += 1
        rows = generator.rows_for_days(day, 1)
        report = append_with_dgf(session, "meterdata", "dgf_idx", rows)
        return report.details["appended_rows"]

    power_calculation = (
        Workflow("power-calculation")
        .add("ingest", ingest)
        .add_hiveql(
            "region_totals",
            "SELECT regionid, sum(powerconsumed), count(*) "
            "FROM meterdata GROUP BY regionid",
            after=["ingest"])
        .add_hiveql(
            "acquisition_rate",
            "SELECT count(*), count(DISTINCT userid) FROM meterdata",
            after=["ingest"])
        .add_hiveql(
            "top_consumers_export",
            "INSERT OVERWRITE DIRECTORY '/exports/top_consumers' "
            "SELECT t2.username, t1.powerconsumed FROM meterdata t1 "
            "JOIN userinfo t2 ON t1.userid = t2.userid "
            "WHERE t1.powerconsumed > 30.0",
            after=["region_totals", "acquisition_rate"]))

    def sync_archive(ctx):
        # archive data is mutable in the RDBMS; re-publish a copy to HDFS
        session.execute("DROP TABLE IF EXISTS userinfo_staging")
        session.execute(ddl("userinfo_staging", USER_INFO_SCHEMA))
        return session.load_rows("userinfo_staging",
                                 generator.user_info_rows())

    archive_sync = Workflow("archive-sync").add("sync", sync_archive)

    coordinator = Coordinator(session=session)
    coordinator.schedule(power_calculation, period=DAY)
    coordinator.schedule(archive_sync, period=3 * DAY)

    print("== advancing the coordinator clock, day by day")
    for day in range(config.num_days):
        fired = coordinator.advance_to(day * DAY)
        for record in fired:
            run = record.run
            status = "ok" if run.succeeded else "FAILED"
            extra = ""
            if run.workflow == "power-calculation":
                ingested = run.result_of("ingest")
                count = run.result_of("acquisition_rate").rows[0][0]
                extra = f"ingested={ingested} total_records={count}"
            print(f"  t={record.time / DAY:4.0f}d {run.workflow:<18} "
                  f"{status:<7} {extra}")

    print("\n== final per-region statistics (from the last run)")
    final = coordinator.runs_of("power-calculation")[-1].run
    for region, total, count in final.result_of("region_totals").rows:
        print(f"  region {region:>2}: {total:>10.1f} kWh over "
              f"{count} readings")
    exported = session.fs.file_length("/exports/top_consumers/000000_0")
    print(f"\n  exported statistics file: {exported} bytes "
          "(statistic data ETL to the RDBMS)")
    assert all(record.run.succeeded
               for record in coordinator.history)


if __name__ == "__main__":
    main()
