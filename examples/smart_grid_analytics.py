#!/usr/bin/env python3
"""Smart-grid analytics: the Zhejiang Grid workload end to end.

Models the paper's Section 3 data flow at laptop scale:

* daily meter data lands on HDFS through the DGF append path (no index
  rebuild — the paper's write-throughput argument),
* archive data (user info) is kept alongside for joins,
* the stored-procedure-style workload runs as HiveQL: power totals per
  region, consumption profiles per day, and a join against the archive —
  all MDRQs served by the DGFIndex,
* results are compared against full scans and against the Compact Index.

Run:  python examples/smart_grid_analytics.py
"""

import repro
from repro import QueryOptions, append_with_dgf
from repro.data.meter import (METER_SCHEMA, USER_INFO_SCHEMA,
                              MeterDataConfig, MeterDataGenerator)

SCAN = QueryOptions(use_index=False)


def ddl(name, schema, stored_as="TEXTFILE"):
    columns = ", ".join(f"{c.name} {c.dtype.value}"
                        for c in schema.columns)
    return f"CREATE TABLE {name} ({columns}) STORED AS {stored_as}"


def check(label, indexed, scan):
    matches = all(
        (a == b) or (isinstance(a, float) and abs(a - b) < 1e-6)
        for ra, rb in zip(sorted(map(tuple, indexed.rows)),
                          sorted(map(tuple, scan.rows)))
        for a, b in zip(ra, rb))
    speedup = (scan.stats.simulated_seconds
               / max(indexed.stats.simulated_seconds, 1e-9))
    print(f"  {label:<38} {'OK' if matches else 'MISMATCH!':<10} "
          f"read {indexed.stats.records_read:>6} vs "
          f"{scan.stats.records_read:>6} records   "
          f"{speedup:5.1f}x faster (simulated)")
    assert matches


def main():
    config = MeterDataConfig(num_users=800, num_days=8,
                             readings_per_day=2)
    generator = MeterDataGenerator(config)
    conn = repro.connect(data_scale=config.data_scale)
    conn.session.fs.block_size = 128 * 1024

    print("== ingest: first 6 collection days, then build the index")
    conn.execute(ddl("meterdata", METER_SCHEMA))
    conn.execute(ddl("userinfo", USER_INFO_SCHEMA))
    conn.load_rows("meterdata", generator.rows_for_days(0, 6))
    conn.load_rows("userinfo", generator.user_info_rows())

    conn.execute(
        "CREATE INDEX dgf_idx ON TABLE meterdata(userid, regionid, ts) "
        "AS 'dgf' IDXPROPERTIES ('userid'='0_40', 'regionid'='0_1', "
        f"'ts'='{config.start_date}_1d', "
        "'precompute'='sum(powerconsumed),count(*)')")
    print(f"  indexed {conn.session.table_row_count('meterdata')} records\n")

    print("== append days 7-8 through the no-rebuild path")
    for day in (6, 7):
        report = append_with_dgf(conn.session, "meterdata", "dgf_idx",
                                 generator.rows_for_days(day, 1))
        print(f"  day {day + 1}: +{report.details['appended_rows']} "
              f"records, {report.details['new_slices']} new slices, "
              "existing slices untouched")
    print(f"  total: {conn.session.table_row_count('meterdata')} records\n")

    print("== workload (each query checked against a full scan)")
    user_range = "userid >= 120 AND userid < 240"

    region_power = (
        "SELECT sum(powerconsumed) FROM meterdata "
        f"WHERE {user_range} AND regionid >= 3 AND regionid <= 6 "
        "AND ts >= '2012-12-02' AND ts < '2012-12-07'")
    check("regional power total (MDRQ agg)",
          conn.execute(region_power),
          conn.execute(region_power, options=SCAN))

    daily_profile = (
        "SELECT ts, sum(powerconsumed) FROM meterdata "
        f"WHERE {user_range} AND ts >= '2012-12-02' "
        "AND ts < '2012-12-07' GROUP BY ts")
    check("daily consumption profile (GROUP BY)",
          conn.execute(daily_profile),
          conn.execute(daily_profile, options=SCAN))

    join_query = (
        "SELECT t2.username, t1.powerconsumed FROM meterdata t1 "
        "JOIN userinfo t2 ON t1.userid = t2.userid "
        f"WHERE t1.userid >= 120 AND t1.userid < 135 "
        "AND t1.ts = '2012-12-05'")
    check("bill detail (JOIN with archive)",
          conn.execute(join_query),
          conn.execute(join_query, options=SCAN))

    acquisition_rate = (
        "SELECT count(*), count(DISTINCT userid) FROM meterdata "
        "WHERE ts = '2012-12-08'")
    check("data acquisition check (appended day)",
          conn.execute(acquisition_rate),
          conn.execute(acquisition_rate, options=SCAN))

    partial = ("SELECT sum(powerconsumed) FROM meterdata "
               "WHERE regionid = 5 AND ts = '2012-12-03'")
    result = conn.execute(partial)
    check("line-loss input (partial-specified)",
          result, conn.execute(partial, options=SCAN))
    print(f"\n  partial query plan: {result.stats.index_used}")
    print("  (the missing userId dimension was completed from the "
          "min/max values stored with the index)")

    print("\n== dashboard fan-out: concurrent repeats via the query service")
    physical_before = conn.session.kvstore.stats.gets
    repeats = conn.service.run_all([region_power] * 4)
    assert all(r.rows == repeats[0].rows for r in repeats)
    physical = conn.session.kvstore.stats.gets - physical_before
    print(f"  4 concurrent MDRQs, {physical} physical KV gets "
          "(the GFU-metadata cache is warm) — results identical")
    conn.close()


if __name__ == "__main__":
    main()
