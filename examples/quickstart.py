#!/usr/bin/env python3
"""Quickstart: build a DGFIndex and run a multidimensional range query.

Walks through the paper's core loop on a small synthetic meter table,
through the stable public API (``repro.connect()``, see docs/api.md):

1. connect and load time-ordered meter data,
2. run an MDRQ with a plain table scan,
3. build a 3-dimensional DGFIndex with pre-computed aggregates,
4. rerun the query — same answer, a fraction of the data read —
   and inspect how the index decomposed the query region,
5. rerun it warm: the GFU-metadata cache answers the planner's
   KV reads, so no physical store traffic remains.

Run:  python examples/quickstart.py
"""

import datetime
import random

import repro


def generate_rows(num_users=500, num_days=14, seed=7):
    """Small meter-like records, arriving sorted by collection date."""
    rng = random.Random(seed)
    region_of = [rng.randrange(11) for _ in range(num_users)]
    start = datetime.date(2013, 1, 1)
    for day in range(num_days):
        date_text = (start + datetime.timedelta(days=day)).isoformat()
        for user in range(num_users):
            yield (user, region_of[user], date_text,
                   round(rng.uniform(0.5, 45.0), 2))


def main():
    # data_scale maps our 7k generated records to a paper-scale table so
    # simulated times are in familiar cluster territory.
    conn = repro.connect(data_scale=100_000)
    conn.session.fs.block_size = 64 * 1024  # small blocks -> several splits

    print("== 1. connect, create and load the table")
    conn.execute(
        "CREATE TABLE meterdata (userid bigint, regionid int, "
        "ts date, powerconsumed double)")
    conn.load_rows("meterdata", generate_rows())
    print(f"loaded {conn.session.table_row_count('meterdata')} records\n")

    # qmark parameters bind client-side (repro.paramstyle == 'qmark')
    query = ("SELECT sum(powerconsumed), count(*) FROM meterdata "
             "WHERE userid >= ? AND userid < ? "
             "AND regionid >= ? AND regionid <= ? "
             "AND ts >= ? AND ts < ?")
    params = (100, 300, 2, 8, "2013-01-03", "2013-01-10")

    print("== 2. full table scan")
    scan = conn.execute(query, params,
                        options=repro.QueryOptions(use_index=False))
    print(f"answer: sum={scan.rows[0][0]:.2f} count={scan.rows[0][1]}")
    print(f"records read: {scan.stats.records_read}")
    print(f"simulated cluster time: "
          f"{scan.stats.simulated_seconds:.1f}s\n")

    print("== 3. build the DGFIndex (Listing 3 syntax)")
    built = conn.execute(
        "CREATE INDEX dgf_idx ON TABLE meterdata(userid, regionid, ts) "
        "AS 'org.apache.hadoop.hive.ql.index.dgf.DgfIndexHandler' "
        "IDXPROPERTIES ('userid'='0_50', 'regionid'='0_1', "
        "'ts'='2013-01-01_1d', "
        "'precompute'='sum(powerconsumed),count(*)')")
    print(f"index built: {built.rows[0]}")
    report = conn.session.build_report("meterdata", "dgf_idx")
    print(f"grid-file units: {report.details['gfus']}, "
          f"index size: {report.index_size_bytes} bytes\n")

    print("== 4. the same query through the index (transparent)")
    cur = conn.cursor().execute(query, params)
    indexed = cur.result
    print(f"answer: sum={indexed.rows[0][0]:.2f} "
          f"count={indexed.rows[0][1]}")
    print(f"plan: {cur.plan.index_handler} mode={cur.plan.index_mode}")
    print(f"records read: {indexed.stats.records_read} "
          f"(vs {scan.stats.records_read} for the scan)")
    print(f"key-value gets: {indexed.stats.index_kv_gets}")
    print(f"simulated cluster time: "
          f"{indexed.stats.simulated_seconds:.1f}s "
          f"({scan.stats.simulated_seconds / indexed.stats.simulated_seconds:.0f}x faster)\n")

    assert abs(indexed.rows[0][0] - scan.rows[0][0]) < 1e-6
    assert indexed.rows[0][1] == scan.rows[0][1]

    print("== 5. EXPLAIN shows the chosen access path")
    for line in conn.explain(repro.api.bind_parameters(
            query, params)).render().splitlines():
        print("   ", line)
    print()

    print("== 6. warm repeat: the GFU-metadata cache at work")
    physical_before = conn.session.kvstore.stats.gets
    warm = conn.execute(query, params)
    print(f"physical KV gets this run: "
          f"{conn.session.kvstore.stats.gets - physical_before} "
          f"(logical: {warm.stats.index_kv_gets})")
    print(f"cache hit rate so far: "
          f"{conn.cache.stats.hit_rate:.0%}")
    assert warm.rows == indexed.rows
    conn.close()


if __name__ == "__main__":
    main()
