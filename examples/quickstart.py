#!/usr/bin/env python3
"""Quickstart: build a DGFIndex and run a multidimensional range query.

Walks through the paper's core loop on a small synthetic meter table:

1. create a Hive table and load time-ordered meter data,
2. run an MDRQ with a plain table scan,
3. build a 3-dimensional DGFIndex with pre-computed aggregates,
4. rerun the query — same answer, a fraction of the data read —
   and inspect how the index decomposed the query region.

Run:  python examples/quickstart.py
"""

import datetime
import random

from repro import HiveSession, QueryOptions


def generate_rows(num_users=500, num_days=14, seed=7):
    """Small meter-like records, arriving sorted by collection date."""
    rng = random.Random(seed)
    region_of = [rng.randrange(11) for _ in range(num_users)]
    start = datetime.date(2013, 1, 1)
    for day in range(num_days):
        date_text = (start + datetime.timedelta(days=day)).isoformat()
        for user in range(num_users):
            yield (user, region_of[user], date_text,
                   round(rng.uniform(0.5, 45.0), 2))


def main():
    # data_scale maps our 7k generated records to a paper-scale table so
    # simulated times are in familiar cluster territory.
    session = HiveSession(data_scale=100_000)
    session.fs.block_size = 64 * 1024  # small blocks -> several splits

    print("== 1. create and load the table")
    session.execute(
        "CREATE TABLE meterdata (userid bigint, regionid int, "
        "ts date, powerconsumed double)")
    session.load_rows("meterdata", generate_rows())
    print(f"loaded {session.table_row_count('meterdata')} records\n")

    query = ("SELECT sum(powerconsumed), count(*) FROM meterdata "
             "WHERE userid >= 100 AND userid < 300 "
             "AND regionid >= 2 AND regionid <= 8 "
             "AND ts >= '2013-01-03' AND ts < '2013-01-10'")

    print("== 2. full table scan")
    scan = session.execute(query, QueryOptions(use_index=False))
    print(f"answer: sum={scan.rows[0][0]:.2f} count={scan.rows[0][1]}")
    print(f"records read: {scan.stats.records_read}")
    print(f"simulated cluster time: "
          f"{scan.stats.simulated_seconds:.1f}s\n")

    print("== 3. build the DGFIndex (Listing 3 syntax)")
    built = session.execute(
        "CREATE INDEX dgf_idx ON TABLE meterdata(userid, regionid, ts) "
        "AS 'org.apache.hadoop.hive.ql.index.dgf.DgfIndexHandler' "
        "IDXPROPERTIES ('userid'='0_50', 'regionid'='0_1', "
        "'ts'='2013-01-01_1d', "
        "'precompute'='sum(powerconsumed),count(*)')")
    print(f"index built: {built.rows[0]}")
    report = session.build_report("meterdata", "dgf_idx")
    print(f"grid-file units: {report.details['gfus']}, "
          f"index size: {report.index_size_bytes} bytes\n")

    print("== 4. the same query through the index (transparent)")
    indexed = session.execute(query)
    print(f"answer: sum={indexed.rows[0][0]:.2f} "
          f"count={indexed.rows[0][1]}")
    print(f"plan: {indexed.stats.index_used}")
    print(f"records read: {indexed.stats.records_read} "
          f"(vs {scan.stats.records_read} for the scan)")
    print(f"key-value gets: {indexed.stats.index_kv_gets}")
    print(f"simulated cluster time: "
          f"{indexed.stats.simulated_seconds:.1f}s "
          f"({scan.stats.simulated_seconds / indexed.stats.simulated_seconds:.0f}x faster)\n")

    assert abs(indexed.rows[0][0] - scan.rows[0][0]) < 1e-6
    assert indexed.rows[0][1] == scan.rows[0][1]

    print("== 5. EXPLAIN shows the chosen access path")
    plan = session.execute("EXPLAIN " + query)
    for (line,) in plan.rows:
        print("   ", line)


if __name__ == "__main__":
    main()
