#!/usr/bin/env python3
"""Splitting-policy tuning: the interval-size trade-off and the advisor.

The paper's experiments sweep three hand-picked interval sizes (large /
medium / small) and its future work asks for an algorithm that picks the
policy from the data distribution and query history.  This example shows
both: the measured trade-off across a sweep of interval sizes, and the
:class:`~repro.core.dgf.advisor.PolicyAdvisor` choosing a policy
automatically.

Run:  python examples/policy_tuning.py
"""

import repro
from repro import PolicyAdvisor, QueryOptions
from repro.data.meter import METER_SCHEMA, MeterDataConfig, MeterDataGenerator
from repro.hiveql.parser import parse_expression
from repro.hiveql.predicates import extract_ranges


def new_connection(rows, config):
    conn = repro.connect(data_scale=config.data_scale)
    conn.session.fs.block_size = 128 * 1024
    columns = ", ".join(f"{c.name} {c.dtype.value}"
                        for c in METER_SCHEMA.columns)
    conn.execute(f"CREATE TABLE meterdata ({columns})")
    conn.load_rows("meterdata", rows)
    return conn


def build_dgf(conn, config, user_interval, name="dgf_idx"):
    conn.execute(
        f"CREATE INDEX {name} ON TABLE meterdata(userid, regionid, ts) "
        f"AS 'dgf' IDXPROPERTIES ('userid'='0_{user_interval}', "
        f"'regionid'='0_1', 'ts'='{config.start_date}_1d', "
        "'precompute'='sum(powerconsumed),count(*)')")
    return conn.session.build_report("meterdata", name)


def main():
    config = MeterDataConfig(num_users=1000, num_days=8,
                             readings_per_day=2)
    rows = list(MeterDataGenerator(config).iter_rows())
    query = ("SELECT sum(powerconsumed) FROM meterdata "
             "WHERE userid >= 130 AND userid < 420 "
             "AND regionid >= 2 AND regionid <= 8 "
             "AND ts >= '2012-12-02' AND ts < '2012-12-06'")

    print("== interval-size sweep (the paper's L/M/S, extended)")
    print(f"{'interval':>9} {'GFUs':>7} {'index bytes':>12} "
          f"{'records read':>13} {'simulated s':>12}")
    for interval in (250, 100, 40, 10, 4):
        conn = new_connection(rows, config)
        report = build_dgf(conn, config, interval)
        result = conn.execute(
            query, options=QueryOptions(index_name="dgf_idx"))
        print(f"{interval:>9} {report.details['gfus']:>7} "
              f"{report.index_size_bytes:>12} "
              f"{result.stats.records_read:>13} "
              f"{result.stats.simulated_seconds:>12.1f}")
    print("  -> smaller cells: bigger index + more KV gets, but tighter "
          "reads;\n     larger cells: tiny index but wide boundary "
          "over-read.\n")

    print("== the advisor picks a policy from data + query history")
    history_sql = [query.split("WHERE", 1)[1],
                   ("userid >= 700 AND userid < 910 AND "
                    "ts >= '2012-12-03' AND ts < '2012-12-08'")]
    history = [extract_ranges(parse_expression(text)).intervals
               for text in history_sql]
    advisor = PolicyAdvisor(
        METER_SCHEMA, ["userid", "regionid", "ts"],
        records_per_unit_volume=len(rows) * config.data_scale)
    policy = advisor.recommend(rows[::16], history)
    properties = PolicyAdvisor.properties_for(policy)
    print(f"  advisor chose: {properties}")

    conn = new_connection(rows, config)
    props_sql = ", ".join(f"'{k}'='{v}'" for k, v in properties.items())
    conn.execute(
        "CREATE INDEX dgf_adv ON TABLE meterdata(userid, regionid, ts) "
        f"AS 'dgf' IDXPROPERTIES ({props_sql}, "
        "'precompute'='sum(powerconsumed),count(*)')")
    advised = conn.execute(query, options=QueryOptions(index_name="dgf_adv"))
    baseline = conn.execute(query, options=QueryOptions(use_index=False))
    assert abs(advised.rows[0][0] - baseline.rows[0][0]) < 1e-6
    print(f"  advised policy: read {advised.stats.records_read} records, "
          f"{advised.stats.simulated_seconds:.1f}s simulated "
          f"(scan: {baseline.stats.simulated_seconds:.1f}s)")


if __name__ == "__main__":
    main()
