"""Metrics registry: counters, gauges, histograms, labels, session wiring."""

import json
import threading

import pytest

from repro.obs.metrics import (DEFAULT_BUCKETS, Counter, Gauge, Histogram,
                               MetricsRegistry)
from tests.conftest import METER_DDL, make_session, meter_rows


class TestCounter:
    def test_inc_and_value(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops", "operations")
        counter.inc()
        counter.inc(4)
        assert counter.value() == 5

    def test_labels_are_separate_series(self):
        counter = MetricsRegistry().counter("queries")
        counter.inc(shape="agg")
        counter.inc(2, shape="projection")
        assert counter.value(shape="agg") == 1
        assert counter.value(shape="projection") == 2
        assert counter.value(shape="other") == 0

    def test_label_order_does_not_matter(self):
        counter = MetricsRegistry().counter("c")
        counter.inc(a=1, b=2)
        assert counter.value(b=2, a=1) == 1

    def test_counter_cannot_decrease(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)


class TestGauge:
    def test_set_inc_value(self):
        gauge = MetricsRegistry().gauge("g")
        assert gauge.value() is None
        gauge.set(7)
        gauge.inc(-2)
        assert gauge.value() == 5


class TestHistogram:
    def test_observations_land_in_buckets(self):
        histogram = MetricsRegistry().histogram(
            "h", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 5.0, 50.0, 5000.0):
            histogram.observe(value)
        assert histogram.count() == 5
        assert histogram.sum() == pytest.approx(5060.5)
        assert histogram.bucket_counts() == [1, 2, 1, 1]

    def test_empty_histogram(self):
        histogram = MetricsRegistry().histogram("h")
        assert histogram.count() == 0
        assert histogram.sum() == 0.0
        assert histogram.bucket_counts() == [0] * (len(DEFAULT_BUCKETS) + 1)

    def test_needs_at_least_one_bucket(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", buckets=())


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("name")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("name")

    def test_snapshot_is_json_able(self):
        registry = MetricsRegistry()
        registry.counter("c", "help text").inc(shape="agg")
        registry.gauge("g").set(3)
        registry.histogram("h").observe(0.5)
        snapshot = registry.snapshot()
        json.dumps(snapshot)  # must not raise
        assert snapshot["c"]["kind"] == "counter"
        assert snapshot["c"]["series"] == {"shape=agg": 1}
        assert snapshot["h"]["series"][""]["count"] == 1

    def test_render_text_exposition(self):
        registry = MetricsRegistry()
        registry.counter("c", "a counter").inc(2, shape="agg")
        text = registry.render()
        assert "# c (counter): a counter" in text
        assert "c{shape=agg} 2" in text

    def test_concurrent_updates_are_lossless(self):
        counter = MetricsRegistry().counter("c")

        def work():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value() == 4000


class TestSessionMetrics:
    def test_select_updates_session_metrics(self):
        session = make_session()
        session.execute(METER_DDL)
        session.load_rows("meterdata", meter_rows(num_users=40, num_days=2))
        session.execute("SELECT sum(powerconsumed) FROM meterdata")
        session.execute("SELECT userid FROM meterdata WHERE userid < 5")
        metrics = session.metrics
        assert metrics.counter("queries_total").value(
            shape="group/aggregate", index="none") == 1
        assert metrics.counter("queries_total").value(
            shape="projection", index="none") == 1
        assert metrics.counter("mr_jobs_total").value() == 2
        assert metrics.counter("records_read_total").value() > 0
        assert metrics.histogram("query_sim_seconds").count(
            shape="projection") == 1
