"""Tests for Z-order slice placement (the paper's future-work problem)."""

import pytest

from repro.core.dgf.placement import (cells_of_key, morton_code,
                                      resolve_placement, zorder_partitioner)
from repro.core.dgf.policy import DimensionPolicy, SplittingPolicy
from repro.errors import DGFError
from repro.hive.session import QueryOptions
from repro.storage.schema import DataType
from tests.conftest import SCAN, make_session, meter_rows


class TestMortonCode:
    def test_interleaving(self):
        # x=0b11, y=0b00 -> bits x0,y0,x1,y1 = 1,0,1,0 -> 0b0101 = 5?
        # bit layout: bit*ndims + d with d=0 for x: positions 0 and 2
        assert morton_code([0b11, 0b00]) == 0b0101
        assert morton_code([0b00, 0b11]) == 0b1010

    def test_single_dimension_is_identity(self):
        for value in (0, 1, 5, 100):
            assert morton_code([value]) == value

    def test_negative_clamped(self):
        assert morton_code([-3, 2]) == morton_code([0, 2])

    def test_locality(self):
        """Adjacent cells have closer codes than distant cells, on
        average — the property placement exploits."""
        near = abs(morton_code([10, 10]) - morton_code([10, 11]))
        far = abs(morton_code([10, 10]) - morton_code([200, 200]))
        assert near < far


class TestHelpers:
    @pytest.fixture
    def policy(self):
        return SplittingPolicy([
            DimensionPolicy(name="a", dtype=DataType.BIGINT, origin=0,
                            interval=5),
            DimensionPolicy(name="ts", dtype=DataType.DATE,
                            origin="2012-12-01", interval=1),
        ])

    def test_cells_of_key_roundtrip(self, policy):
        key = policy.key_of_cells([3, 2])
        assert cells_of_key(policy, key) == (3, 2)

    def test_cells_of_key_arity(self, policy):
        with pytest.raises(DGFError):
            cells_of_key(policy, "1_2_3")

    def test_partitioner_stable_and_in_range(self, policy):
        partition = zorder_partitioner(policy, 4)
        key = policy.key_of_cells([2, 1])
        assert partition(key) == partition(key)
        for a in range(6):
            for t in range(4):
                assert 0 <= partition(policy.key_of_cells([a, t])) < 4

    def test_resolve_placement(self):
        assert resolve_placement({}) == "hash"
        assert resolve_placement({"placement": "ZORDER"}) == "zorder"
        with pytest.raises(DGFError):
            resolve_placement({"placement": "hilbert"})


def build_session(placement):
    session = make_session(block_size=4096)
    session.execute("CREATE TABLE meterdata (userid bigint, regionid int, "
                    "ts date, powerconsumed double)")
    session.load_rows("meterdata", meter_rows(num_users=150, num_days=6))
    session.execute(
        "CREATE INDEX d ON TABLE meterdata(userid, regionid, ts) "
        f"AS 'dgf' IDXPROPERTIES ('userid'='0_10', 'regionid'='0_1', "
        f"'ts'='2012-12-01_1d', 'placement'='{placement}', "
        "'precompute'='sum(powerconsumed)')")
    return session


QUERY = ("SELECT ts, sum(powerconsumed) FROM meterdata "
         "WHERE userid >= 38 AND userid < 71 "
         "AND ts >= '2012-12-02' AND ts < '2012-12-05' GROUP BY ts")


class TestEndToEnd:
    def test_zorder_build_is_equivalent(self):
        hash_session = build_session("hash")
        zorder_session = build_session("zorder")
        scan = hash_session.execute(QUERY, SCAN)
        for session in (hash_session, zorder_session):
            indexed = session.execute(QUERY)
            assert [k for k, _ in indexed.rows] \
                == [k for k, _ in scan.rows]
            for (_, left), (_, right) in zip(indexed.rows, scan.rows):
                assert left == pytest.approx(right)
            assert session.table_row_count("meterdata") == 900

    def test_zorder_touches_no_more_splits(self):
        """Clustering grid-adjacent slices can only reduce (never grow)
        the number of splits a range query touches at identical data and
        grid; usually it strictly reduces it."""
        hash_splits = build_session("hash").execute(
            QUERY).stats.splits_processed
        zorder_splits = build_session("zorder").execute(
            QUERY).stats.splits_processed
        assert zorder_splits <= hash_splits

    def test_appends_respect_placement(self):
        from repro.core.dgf.builder import append_with_dgf
        session = build_session("zorder")
        append_with_dgf(session, "meterdata", "d",
                        [(10, 1, "2012-12-08", 3.0)])
        result = session.execute(
            "SELECT sum(powerconsumed) FROM meterdata "
            "WHERE ts = '2012-12-08'")
        assert result.scalar() == pytest.approx(3.0)
