"""Tests for the meter-data and TPC-H generators."""

import datetime

import pytest

from repro.data.meter import (METER_SCHEMA, USER_INFO_SCHEMA,
                              MeterDataConfig, MeterDataGenerator)
from repro.data.tpch import (LINEITEM_SCHEMA, LineitemGenerator, TPCHConfig,
                             q6_parameters, q6_sql)


@pytest.fixture(scope="module")
def generator():
    return MeterDataGenerator(MeterDataConfig(num_users=100, num_days=5,
                                              readings_per_day=2))


@pytest.fixture(scope="module")
def meter_data(generator):
    return list(generator.iter_rows())


class TestMeterData:
    def test_record_count(self, generator, meter_data):
        assert len(meter_data) == generator.config.total_records == 1000

    def test_rows_validate_against_schema(self, meter_data):
        for row in meter_data[:50]:
            METER_SCHEMA.validate_row(row)
        assert len(meter_data[0]) == 17  # the paper's 17 fields

    def test_time_sorted(self, meter_data):
        """Records with the same time stamp are stored together, in
        chronological order (the paper's meter-data property)."""
        ts_position = METER_SCHEMA.index_of("ts")
        timestamps = [row[ts_position] for row in meter_data]
        assert timestamps == sorted(timestamps)

    def test_distinct_counts(self, generator, meter_data):
        users = {row[0] for row in meter_data}
        regions = {row[1] for row in meter_data}
        days = {row[2] for row in meter_data}
        assert len(users) == 100
        assert len(regions) <= generator.config.num_regions
        assert len(days) == 5

    def test_users_have_fixed_region(self, meter_data):
        regions_per_user = {}
        for row in meter_data:
            regions_per_user.setdefault(row[0], set()).add(row[1])
        assert all(len(regions) == 1
                   for regions in regions_per_user.values())

    def test_deterministic(self, generator):
        again = MeterDataGenerator(generator.config)
        assert list(again.iter_rows())[:100] \
            == list(generator.iter_rows())[:100]

    def test_rows_for_days_matches_stream(self, generator, meter_data):
        day_rows = generator.rows_for_days(2, 1)
        per_day = 200
        assert day_rows == meter_data[2 * per_day:3 * per_day]

    def test_user_info(self, generator, meter_data):
        archive = generator.user_info_rows()
        assert len(archive) == 100
        for row in archive[:20]:
            USER_INFO_SCHEMA.validate_row(row)
        # archive regions match the fact table's user regions
        fact_region = {row[0]: row[1] for row in meter_data}
        assert all(fact_region[user] == region
                   for user, _n, region, _a, _t, _d in archive)

    def test_selectivity_helper(self, generator):
        low, high = generator.user_range_for_selectivity(0.05)
        assert high - low == 5
        assert 0 <= low < high <= 100

    def test_data_scale(self, generator):
        assert generator.config.data_scale \
            == generator.config.paper_records / 1000


@pytest.fixture(scope="module")
def lineitems():
    return list(LineitemGenerator(TPCHConfig(num_orders=500)).iter_rows())


class TestTPCH:
    def test_schema_conformance(self, lineitems):
        for row in lineitems[:50]:
            LINEITEM_SCHEMA.validate_row(row)

    def test_dbgen_domains(self, lineitems):
        for row in lineitems:
            assert 1 <= row[4] <= 50              # quantity
            assert 0.0 <= row[6] <= 0.10          # discount
            assert 0.0 <= row[7] <= 0.08          # tax
            assert row[8] in ("R", "A", "N")
            assert row[9] in ("F", "O")

    def test_lineitems_per_order(self, lineitems):
        per_order = {}
        for row in lineitems:
            per_order[row[0]] = max(per_order.get(row[0], 0), row[3])
        assert set(per_order) == set(range(1, 501))
        assert all(1 <= n <= 7 for n in per_order.values())

    def test_shipdate_not_sorted(self, lineitems):
        """The paper's key observation: lineitem has no physical time
        order, unlike meter data."""
        dates = [row[10] for row in lineitems]
        assert dates != sorted(dates)

    def test_shipdate_domain(self, lineitems):
        dates = [row[10] for row in lineitems]
        assert min(dates) >= "1992-01-02"
        assert max(dates) <= "1998-12-02"

    def test_deterministic(self):
        a = list(LineitemGenerator(TPCHConfig(num_orders=50)).iter_rows())
        b = list(LineitemGenerator(TPCHConfig(num_orders=50)).iter_rows())
        assert a == b

    def test_q6_selectivity_near_two_percent(self, lineitems):
        params = q6_parameters()
        matches = [
            row for row in lineitems
            if params["date_lo"] <= row[10] < params["date_hi"]
            and params["discount_lo"] <= row[6] <= params["discount_hi"]
            and row[4] < params["quantity"]
        ]
        fraction = len(matches) / len(lineitems)
        assert 0.005 < fraction < 0.05

    def test_q6_sql_parses(self):
        from repro.hiveql import parse
        stmt = parse(q6_sql(q6_parameters()))
        assert stmt.is_plain_aggregation
