"""Tests for the three file formats, including split-boundary semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageFormatError
from repro.hdfs.filesystem import HDFS
from repro.storage.rcfile import RCFileReader, RCFileWriter
from repro.storage.schema import DataType, Schema
from repro.storage.sequencefile import SequenceFileReader, SequenceFileWriter
from repro.storage.textfile import (TextFileReader, TextFileWriter,
                                    parse_line, serialize_row)


def write_text(fs, path, schema, rows):
    offsets = []
    with fs.create(path) as stream:
        writer = TextFileWriter(stream, schema)
        for row in rows:
            offsets.append(writer.write_row(row))
    return offsets


def rows_of(n):
    return [(i, i * 0.5, f"s{i}") for i in range(n)]


class TestTextFile:
    def test_roundtrip(self, fs, simple_schema):
        rows = rows_of(50)
        write_text(fs, "/f", simple_schema, rows)
        with fs.open("/f") as stream:
            got = [r for _, r in
                   TextFileReader(stream, simple_schema).iter_rows()]
        assert got == rows

    def test_offsets_point_at_rows(self, fs, simple_schema):
        rows = rows_of(20)
        offsets = write_text(fs, "/f", simple_schema, rows)
        with fs.open("/f") as stream:
            reader = TextFileReader(stream, simple_schema)
            assert reader.read_row_at(offsets[7]) == rows[7]
            assert reader.read_row_at(offsets[0]) == rows[0]

    def test_delimiter_in_field_rejected(self, simple_schema):
        with pytest.raises(StorageFormatError):
            serialize_row((1, 2.0, "bad|field"), simple_schema)

    def test_parse_line_arity_check(self, simple_schema):
        with pytest.raises(StorageFormatError):
            parse_line("1|2.0", simple_schema)

    def test_range_yields_lines_starting_in_range(self, fs, simple_schema):
        rows = rows_of(30)
        offsets = write_text(fs, "/f", simple_schema, rows)
        start, end = offsets[10], offsets[20]
        with fs.open("/f") as stream:
            got = [r for _, r in TextFileReader(
                stream, simple_schema).iter_rows(start, end)]
        assert got == rows[10:20]

    def test_mid_line_start_skips_partial(self, fs, simple_schema):
        rows = rows_of(10)
        offsets = write_text(fs, "/f", simple_schema, rows)
        with fs.open("/f") as stream:
            got = [r for _, r in TextFileReader(
                stream, simple_schema).iter_rows(offsets[3] + 1, None)]
        assert got == rows[4:]

    @settings(max_examples=30, deadline=None)
    @given(cuts=st.lists(st.integers(min_value=1, max_value=2000),
                         min_size=1, max_size=6))
    def test_split_tiling_never_loses_or_duplicates(self, cuts):
        """Any partition of the byte range into splits covers every row
        exactly once — the invariant MapReduce split processing needs."""
        schema = Schema.of(("a", DataType.INT), ("b", DataType.STRING))
        fs = HDFS(num_datanodes=2, block_size=512)
        rows = [(i, f"value-{i}") for i in range(120)]
        with fs.create("/f") as stream:
            writer = TextFileWriter(stream, schema)
            writer.write_rows(rows)
        length = fs.file_length("/f")
        bounds = sorted({0, length, *[c % (length + 1) for c in cuts]})
        collected = []
        with fs.open("/f") as stream:
            reader = TextFileReader(stream, schema)
            for start, end in zip(bounds, bounds[1:]):
                collected.extend(
                    r for _, r in reader.iter_rows(start, end))
        assert sorted(collected) == rows


class TestRCFile:
    def test_roundtrip_multiple_groups(self, fs, simple_schema):
        rows = rows_of(100)
        with fs.create("/rc") as stream:
            writer = RCFileWriter(stream, simple_schema, row_group_size=16)
            writer.write_rows(rows)
            writer.close()
        with fs.open("/rc") as stream:
            reader = RCFileReader(stream, simple_schema)
            got = [r for _, r in reader.iter_rows()]
        assert got == rows

    def test_group_enumeration(self, fs, simple_schema):
        with fs.create("/rc") as stream:
            writer = RCFileWriter(stream, simple_schema, row_group_size=10)
            writer.write_rows(rows_of(35))
            writer.close()
        with fs.open("/rc") as stream:
            groups = list(RCFileReader(stream,
                                       simple_schema).iter_groups())
        assert [n for _, n in groups] == [10, 10, 10, 5]
        assert groups[0][0] == 0

    def test_column_pruning_reads_fewer_bytes(self, fs, simple_schema):
        with fs.create("/rc") as stream:
            writer = RCFileWriter(stream, simple_schema, row_group_size=32)
            writer.write_rows(rows_of(200))
            writer.close()
        before = fs.io.snapshot()
        with fs.open("/rc") as stream:
            full = [r for _, r in
                    RCFileReader(stream, simple_schema).iter_rows()]
        full_bytes = fs.io.delta(before).bytes_read
        before = fs.io.snapshot()
        with fs.open("/rc") as stream:
            pruned = [r for _, r in RCFileReader(
                stream, simple_schema).iter_rows(columns=["a"])]
        pruned_bytes = fs.io.delta(before).bytes_read
        assert pruned_bytes < full_bytes
        assert [r[0] for r in pruned] == [r[0] for r in full]
        assert all(r[1] is None and r[2] is None for r in pruned)

    def test_row_filter(self, fs, simple_schema):
        with fs.create("/rc") as stream:
            writer = RCFileWriter(stream, simple_schema, row_group_size=8)
            writer.write_rows(rows_of(16))
            writer.close()
        with fs.open("/rc") as stream:
            reader = RCFileReader(stream, simple_schema)
            got = [r for _, r in reader.iter_rows(
                row_filter=lambda _off, i: i % 2 == 0)]
        assert [r[0] for r in got] == [0, 2, 4, 6, 8, 10, 12, 14]

    def test_flush_forces_group_boundary(self, fs, simple_schema):
        with fs.create("/rc") as stream:
            writer = RCFileWriter(stream, simple_schema,
                                  row_group_size=1000)
            writer.write_rows(rows_of(5))
            writer.flush()
            boundary = writer.pos
            writer.write_rows(rows_of(3))
            writer.close()
        with fs.open("/rc") as stream:
            groups = list(RCFileReader(stream,
                                       simple_schema).iter_groups())
        assert [n for _, n in groups] == [5, 3]
        assert groups[1][0] == boundary

    def test_corrupt_offset_detected(self, fs, simple_schema):
        with fs.create("/rc") as stream:
            writer = RCFileWriter(stream, simple_schema)
            writer.write_rows(rows_of(4))
            writer.close()
        with fs.open("/rc") as stream:
            reader = RCFileReader(stream, simple_schema)
            with pytest.raises(StorageFormatError):
                list(reader.iter_rows(start=3))

    def test_bad_row_group_size(self, fs, simple_schema):
        with pytest.raises(StorageFormatError):
            RCFileWriter(fs.create("/rc"), simple_schema, row_group_size=0)


class TestSequenceFile:
    def test_roundtrip(self, fs):
        with fs.create("/sq") as stream:
            writer = SequenceFileWriter(stream)
            offsets = [writer.append(f"k{i}".encode(), f"v{i}".encode())
                       for i in range(20)]
        with fs.open("/sq") as stream:
            records = list(SequenceFileReader(stream).iter_records())
        assert [(k, v) for _, k, v in records] \
            == [(f"k{i}".encode(), f"v{i}".encode()) for i in range(20)]
        assert [o for o, _, _ in records] == offsets

    def test_range_read(self, fs):
        with fs.create("/sq") as stream:
            writer = SequenceFileWriter(stream)
            offsets = [writer.append(b"", f"v{i}".encode())
                       for i in range(10)]
        with fs.open("/sq") as stream:
            got = [v for _, _, v in SequenceFileReader(stream)
                   .iter_records(offsets[3], offsets[7])]
        assert got == [f"v{i}".encode() for i in range(3, 7)]

    def test_bad_magic(self, fs):
        fs.write_bytes("/junk", b"not a sequence file")
        with fs.open("/junk") as stream:
            with pytest.raises(StorageFormatError):
                SequenceFileReader(stream)

    def test_empty_key_and_value(self, fs):
        with fs.create("/sq") as stream:
            SequenceFileWriter(stream).append(b"", b"")
        with fs.open("/sq") as stream:
            records = list(SequenceFileReader(stream).iter_records())
        assert records[0][1:] == (b"", b"")
