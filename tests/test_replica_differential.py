"""ISSUE 8 acceptance: the multi-layout replica fleet, byte-identical.

Every test here runs a workload whose DGF index carries a replica fleet
(different GFU granularities, storage formats, placements, datanode
pins — :mod:`repro.core.dgf.fleet`) and proves, via
:mod:`tests.harness.replicas`, that

* each layout choice (cost-routed, forced primary, each fleet member) is
  byte-identical — rows, ``QueryStats``, structured plans, normalized
  traces, global I/O and KV accounting — across ``max_workers`` {1,4,8}
  and across the row and vectorized engines;
* all layout choices agree byte-for-byte on everything a query can
  observe (:func:`~tests.harness.replicas.logical_view`), with float
  aggregates honestly exact thanks to dyadic test data;
* ``EXPLAIN`` and the structured plan record the chosen layout;
* a pinned datanode dying mid-query downgrades the plan onto the
  surviving layouts, equal to having planned around the outage from the
  start, with the ``fault:layout_downgrade`` span recording the event.
"""

from __future__ import annotations

import pytest

from repro.errors import DGFError
from repro.faults import FaultInjector, FaultPlan
from repro.faults.plan import DATANODE_DEAD, FaultSpec
from repro.hive.session import HiveSession, QueryOptions

from tests.harness.chaos import assert_chaos_equivalent
from tests.harness.differential import LayoutSpec, Workload, run_workload
from tests.harness.replicas import (assert_layout_chaos_equivalent,
                                    assert_replica_equivalent, chosen_layout,
                                    dyadic_rows, forced, logical_view)

METER_DDL = ("CREATE TABLE meterdata (userid bigint, regionid int, "
             "ts date, powerconsumed double)")
INDEX_SQL = ("CREATE INDEX dgf_idx ON TABLE meterdata"
             "(userid, regionid, ts) AS 'dgf' IDXPROPERTIES ("
             "'userid'='0_25', 'regionid'='0_1', 'ts'='2012-12-01_2d', "
             "'precompute'='sum(powerconsumed),count(*)')")

#: the standard fleet: a fine RCFile layout pinned to one datanode, and
#: an unpinned coarse layout on a different time granularity.
FLEET = (
    LayoutSpec(name="fine", grid=(("userid", "0_5"), ("ts", "2012-12-01_1d")),
               stored_as="RCFILE", datanodes=(3,)),
    LayoutSpec(name="coarse",
               grid=(("userid", "0_60"), ("ts", "2012-12-01_3d"))),
)

AGG = ("SELECT sum(powerconsumed), count(*) FROM meterdata "
       "WHERE userid >= 10 AND userid <= 74 "
       "AND ts >= '2012-12-01' AND ts <= '2012-12-04'")
GROUPBY = ("SELECT regionid, sum(powerconsumed) FROM meterdata "
           "WHERE userid >= 10 AND userid <= 74 GROUP BY regionid")
ORDERED_SCAN = ("SELECT userid, ts, powerconsumed FROM meterdata "
                "WHERE userid >= 30 AND userid <= 42 "
                "AND regionid >= 1 AND regionid <= 3 ORDER BY userid, ts")
POINT = ("SELECT userid, powerconsumed FROM meterdata "
         "WHERE userid = 33 AND ts = '2012-12-03' ORDER BY powerconsumed")


def fleet_workload(queries=None, **overrides) -> Workload:
    defaults = dict(
        table="meterdata", ddl=METER_DDL, rows=dyadic_rows(),
        queries=tuple((sql, None) for sql in
                      (queries or (AGG, GROUPBY, ORDERED_SCAN, POINT))),
        index_sql=INDEX_SQL, index_name="dgf_idx", layouts=FLEET)
    defaults.update(overrides)
    return Workload(**defaults)


def fleet_session(rows=None, layouts=FLEET, faults=None) -> HiveSession:
    """A directly-driven session mirroring :func:`fleet_workload`."""
    session = HiveSession(num_datanodes=4, faults=faults)
    session.fs.block_size = 2048
    session.execute(METER_DDL)
    rows = list(rows if rows is not None else dyadic_rows())
    half = len(rows) // 2
    session.load_rows("meterdata", rows[:half])
    session.load_rows("meterdata", rows[half:])
    session.execute(INDEX_SQL)
    for spec in layouts:
        session.add_layout("meterdata", "dgf_idx", spec.name,
                           grid=dict(spec.grid), stored_as=spec.stored_as,
                           placement=spec.placement,
                           datanodes=spec.datanodes)
    return session


# ------------------------------------------------------------------ the sweep
def test_full_replica_sweep():
    """The headline acceptance: every layout choice byte-identical across
    workers {1,4,8} and vectorized on/off; logical views byte-identical
    across all choices."""
    baselines = assert_replica_equivalent(fleet_workload())
    # The sweep covered the routed choice and all three named choices.
    assert set(baselines) == {None, "primary", "fine", "coarse"}
    # Cost-based routing engaged on every indexed query and recorded its
    # choice in the structured plan.
    for position in range(4):
        assert chosen_layout(baselines[None], position) in (
            "primary", "fine", "coarse")


def test_append_keeps_every_layout_current():
    """Appended rows land in every fleet member in the same session call;
    all layout choices stay logically byte-identical afterwards."""
    extra = tuple((user + 200, user % 5, "2012-12-07", k / 64)
                  for user, k in ((u, 640 + 7 * u) for u in range(40)))
    appended = fleet_workload(
        queries=(AGG, GROUPBY,
                 "SELECT userid, powerconsumed FROM meterdata "
                 "WHERE userid >= 198 AND userid <= 230 "
                 "ORDER BY userid, powerconsumed"),
        append_rows=extra)
    baselines = assert_replica_equivalent(appended, worker_counts=(1, 4),
                                          vectorized=False)
    # The appended region is actually visible through every layout.
    for choice, fingerprint in baselines.items():
        rows = fingerprint["query:2"]["rows"]
        assert any(row[0] >= 200 for row in rows), (
            f"layout={choice} lost the appended rows")


def test_explain_shows_chosen_layout():
    session = fleet_session()
    text = "\n".join(row[0] for row in session.execute("EXPLAIN " + AGG).rows)
    assert "layout=" in text and "layout: " in text
    forced_text = "\n".join(
        row[0] for row in
        session.execute("EXPLAIN " + AGG,
                        QueryOptions(dgf_layout="coarse")).rows)
    assert "layout: coarse" in forced_text


def test_route_span_costs_every_live_candidate():
    session = fleet_session()
    result = session.execute(GROUPBY)
    route = result.trace.root.find("dgf.route")
    assert route is not None
    assert route.attrs["candidates"] == "coarse,fine,primary"
    for name in ("primary", "fine", "coarse"):
        assert f"score.{name}" in route.attrs
    assert route.attrs["chosen"] == result.plan.access.layout


def test_routed_choice_matches_cheapest_score():
    session = fleet_session()
    for sql in (AGG, GROUPBY, ORDERED_SCAN, POINT):
        route = session.execute(sql).trace.root.find("dgf.route")
        scores = {key[len("score."):]: value
                  for key, value in route.attrs.items()
                  if key.startswith("score.")}
        cheapest = min(scores,
                       key=lambda n: (scores[n], n != "primary", n))
        assert route.attrs["chosen"] == cheapest


def test_layout_report_tracks_liveness():
    session = fleet_session()
    report = {entry["name"]: entry for entry in session.layout_report()}
    assert report["fine"]["alive"] and report["fine"]["datanodes"] == [3]
    session.fs.kill_datanode(3)
    report = {entry["name"]: entry for entry in session.layout_report()}
    assert not report["fine"]["alive"]
    assert report["coarse"]["alive"]  # unpinned: replicated normally


# -------------------------------------------------------------------- forcing
def test_force_unknown_layout_raises():
    session = fleet_session()
    with pytest.raises(DGFError, match="not a live layout"):
        session.execute(AGG, QueryOptions(dgf_layout="nope"))


def test_force_dead_layout_raises():
    session = fleet_session()
    session.fs.kill_datanode(3)
    with pytest.raises(DGFError, match="not a live layout"):
        session.execute(AGG, QueryOptions(dgf_layout="fine"))


def test_dead_layout_skipped_by_router():
    session = fleet_session()
    assert session.execute(POINT).plan.access.layout == "fine"
    session.fs.kill_datanode(3)
    result = session.execute(POINT)
    assert result.plan.access.layout in ("primary", "coarse")
    route = result.trace.root.find("dgf.route")
    assert route.attrs["dead"] == "fine"
    assert "score.fine" not in route.attrs


# ---------------------------------------------------------------------- chaos
def _downgrade_plan() -> FaultPlan:
    """Kill the pinned datanode when the first select job starts."""
    return FaultPlan(seed=0, scheduled=(
        FaultSpec(kind=DATANODE_DEAD, job="select-meterdata", datanode=3),))


def test_midquery_layout_downgrade_differential():
    """ISSUE 8 satellite: the cheapest layout's datanode dies mid-query
    (the first query routes to the pinned layout, so its own scan job's
    start kills the node under it); the replanned run equals planning
    around the outage, at every worker count, and the registry proves the
    downgrade fired."""
    workload = fleet_workload(queries=(POINT, GROUPBY, AGG))
    baseline, registry = assert_layout_chaos_equivalent(
        workload, _downgrade_plan(), dead_datanodes=(3,))
    assert registry.injected_counts().get("datanode_dead") == 1
    assert registry.injected_counts().get("layout_outage") == 1
    assert registry.recovery_counts().get("layout_downgrade") == 1
    # the surviving run never reads the dead layout
    for position in range(3):
        assert chosen_layout(baseline, position) != "fine"


def test_downgrade_span_records_the_fault():
    """The ``fault:layout_downgrade`` span wraps the aborted attempt and
    names the dead layouts; rows match the dead-from-start baseline."""
    chaos = fleet_session(faults=FaultInjector(_downgrade_plan()))
    result = chaos.execute(POINT)
    wrapper = result.trace.root.child("fault:layout_downgrade")
    assert wrapper is not None
    assert wrapper.attrs["dead_layouts"] == "fine"
    assert wrapper.attrs["attempt"] == 1
    assert wrapper.children, "the aborted attempt's spans went missing"
    assert result.plan.access.layout != "fine"

    baseline = fleet_session()
    baseline.fs.kill_datanode(3)
    expected = baseline.execute(POINT)
    assert result.rows == expected.rows
    assert result.plan.access.layout == expected.plan.access.layout


def test_rate_based_chaos_composes_with_fleet():
    """PR 4's probabilistic faults (crashes, stragglers, KV timeouts)
    under a routed fleet stay byte-identical modulo fault data."""
    plan = FaultPlan(seed=5, task_crash_rate=0.2, task_straggler_rate=0.2,
                     kv_timeout_rate=0.05)
    _baseline, registry = assert_chaos_equivalent(
        fleet_workload(queries=(GROUPBY, ORDERED_SCAN)), plan,
        worker_counts=(1, 4))
    assert sum(registry.injected_counts().values()) > 0


def test_vectorized_layout_downgrade():
    """The mid-query downgrade composes with the vectorized engine."""
    pytest.importorskip("numpy")
    import os
    if os.environ.get("REPRO_VECTOR_DISABLE"):
        pytest.skip("REPRO_VECTOR_DISABLE is set for this run")
    from repro.mapreduce.cluster import ExecutionConfig
    from tests.harness.replicas import replica_chaos_view
    from tests.harness.vector import vector_view

    workload = fleet_workload(queries=(POINT, AGG))
    baseline = vector_view(replica_chaos_view(run_workload(
        workload, faults=FaultInjector(
            FaultPlan(seed=0, dead_datanodes=(3,))))))
    candidate = vector_view(replica_chaos_view(run_workload(
        workload, ExecutionConfig(max_workers=4, vectorized=True),
        faults=FaultInjector(_downgrade_plan()))))
    row_candidate = vector_view(replica_chaos_view(run_workload(
        workload, faults=FaultInjector(_downgrade_plan()))))
    assert logical_view(candidate) == logical_view(baseline)
    assert candidate == row_candidate


# ----------------------------------------------------------- fleet lifecycle
def test_add_layout_validates_names_and_handler():
    session = fleet_session(layouts=())
    with pytest.raises(DGFError, match="invalid layout name"):
        session.add_layout("meterdata", "dgf_idx", "primary")
    with pytest.raises(DGFError, match="invalid layout name"):
        session.add_layout("meterdata", "dgf_idx", "a@b")


def test_drop_layout_removes_files_keys_and_registration():
    session = fleet_session()
    root = "/warehouse/meterdata__dgf@fine"
    assert session.fs.exists(root)
    session.drop_layout("meterdata", "dgf_idx", "fine")
    assert not session.fs.exists(root)
    assert [d.name for d in session.fs.layouts()] == ["coarse"]
    result = session.execute(GROUPBY)
    route = result.trace.root.find("dgf.route")
    assert route.attrs["candidates"] == "coarse,primary"


def test_rebuild_drops_stale_fleet():
    """An index rebuild reorganizes from scratch; stale layouts are
    dropped rather than served."""
    session = fleet_session()
    session.rebuild_index("meterdata", "dgf_idx")
    assert session.fs.layouts() == []
    result = session.execute(GROUPBY)
    assert result.plan.access.layout is None


def test_fleet_logically_identical_through_query_service():
    """Routed fleet queries through the concurrent QueryService at
    several concurrency levels match the direct session."""
    from tests.harness.differential import (run_service_workload,
                                            _query_view, _assert_same)
    workload = fleet_workload(queries=(AGG, GROUPBY, ORDERED_SCAN))
    baseline = _query_view(run_workload(workload, cache=False))
    for concurrency in (1, 4):
        candidate = _query_view(
            run_service_workload(workload, concurrency, cache=True))
        _assert_same(baseline, candidate,
                     f"fleet service concurrency={concurrency}")
