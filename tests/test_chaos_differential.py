"""Chaos differential suite (ISSUE 5 acceptance).

Generated workloads — full MDRQ sessions and raw MapReduce jobs — are
replayed under a seeded :class:`~repro.faults.FaultPlan` that crashes task
attempts, slows map tasks into speculation, kills a datanode and times out
KV operations.  Every chaos run must be byte-identical to the fault-free
baseline (rows, row order, folded float aggregates, simulated times,
traces modulo fault spans) at ``max_workers`` 1, 4 and 8, and the fault
registries of all worker counts must agree on exactly what was injected.

The plan seed comes from ``REPRO_FAULT_SEED`` (default 0; the CI chaos job
pins it) plus a per-example salt drawn by hypothesis, so one run covers
many fault patterns while staying reproducible.  Module-level accumulators
prove at the end that every fault kind and every recovery kind
demonstrably fired at least once across the suite.
"""

import os
from collections import Counter

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import (KVStoreTimeout, MapReduceError, TaskAttemptFailed,
                          TransientError)
from repro.faults import (DATANODE_DEAD, FAULT_KINDS, KV_RETRY, KV_TIMEOUT,
                          RECOVERY_KINDS, REPLICA_FAILOVER, SPECULATIVE_WIN,
                          TASK_CRASH, TASK_RETRY, TASK_STRAGGLER,
                          FaultInjector, FaultPlan, FaultSpec, RetryPolicy)
from repro.hive.session import HiveSession
from repro.mapreduce.cluster import ExecutionConfig
from repro.mapreduce.engine import MapReduceEngine

from tests.conftest import SCAN
from tests.harness.chaos import (CHAOS_WORKERS, assert_chaos_equivalent,
                                 assert_job_chaos_equivalent)
from tests.harness.differential import Workload, run_workload
from tests.test_engine_equivalence import (METER_DDL, index_sql, make_kv_job,
                                           mdrq_sql, mdrq_workloads,
                                           raw_job_strategy)

#: the chaos seed the whole suite derives plans from (CI pins it to 0).
FAULT_SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))


def _chaos_workers():
    raw = os.environ.get("REPRO_CHAOS_WORKERS", "").strip()
    if not raw:
        return CHAOS_WORKERS
    return tuple(int(tok) for tok in raw.replace(",", " ").split())


WORKERS = _chaos_workers()

# Aggregated over every generated example; the final test asserts each
# fault and recovery kind fired somewhere in the suite.
TOTALS_INJECTED: Counter = Counter()
TOTALS_RECOVERED: Counter = Counter()
_EXAMPLES_RAN = {"sessions": 0, "jobs": 0}

#: guarantees every example injects at least one fault even at low rates:
#: map task 0 of every job crashes its first attempt (and recovers).
ALWAYS_CRASH_MAP0 = FaultSpec(kind=TASK_CRASH, task_kind="map", task_id=0,
                              attempt=0)


def session_plan(salt: int) -> FaultPlan:
    """The standard session chaos plan: all four fault kinds at once.

    Sessions run on 4 datanodes with replication 2; killing exactly one
    node leaves every block at least one live replica, so recovery (not
    permanent failure) is guaranteed.
    """
    return FaultPlan(seed=FAULT_SEED + salt,
                     task_crash_rate=0.25,
                     task_straggler_rate=0.2,
                     kv_timeout_rate=0.15,
                     dead_datanodes=(2,),
                     scheduled=(ALWAYS_CRASH_MAP0,))


def job_plan(salt: int) -> FaultPlan:
    """Raw-job chaos plan (3 datanodes; no KV layer in raw jobs)."""
    return FaultPlan(seed=FAULT_SEED + salt,
                     task_crash_rate=0.3,
                     task_straggler_rate=0.25,
                     dead_datanodes=(1,),
                     scheduled=(ALWAYS_CRASH_MAP0,))


def _accumulate(registry, bucket: str) -> None:
    TOTALS_INJECTED.update(registry.injected_counts())
    TOTALS_RECOVERED.update(registry.recovery_counts())
    _EXAMPLES_RAN[bucket] += 1


# --------------------------------------------------------- generated chaos
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(workload=mdrq_workloads(), salt=st.integers(0, 7))
def test_chaos_mdrq_sessions_equivalent(workload, salt):
    """Full MDRQ sessions under chaos fingerprint identically to the
    fault-free run at every worker count, and the faults provably fired."""
    baseline, registry = assert_chaos_equivalent(
        workload, session_plan(salt), WORKERS)
    # the scheduled spec makes at least one crash+retry certain
    assert registry.injected_counts()[TASK_CRASH] >= 1
    assert registry.recovery_counts()[TASK_RETRY] >= 1
    assert registry.injected_counts()[DATANODE_DEAD] == 1
    assert baseline["query:0"]["index_used"]
    _accumulate(registry, "sessions")


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(spec=raw_job_strategy, salt=st.integers(0, 7))
def test_chaos_raw_jobs_equivalent(spec, salt):
    """Generated MapReduce jobs (map-only, reduce, combiner) produce
    identical output, counters and stats with faults on vs. off."""
    plan = job_plan(salt)
    if not spec["rows"]:
        # no input -> no map tasks; drop the scheduled crash so the plan
        # does not promise a fault that can never fire.
        plan = FaultPlan(seed=plan.seed, task_crash_rate=plan.task_crash_rate,
                         task_straggler_rate=plan.task_straggler_rate,
                         dead_datanodes=plan.dead_datanodes)
    _, registry = assert_job_chaos_equivalent(
        lambda: make_kv_job(spec), plan, WORKERS)
    if spec["rows"]:
        assert registry.injected_counts()[TASK_CRASH] >= 1
        assert registry.recovery_counts()[TASK_RETRY] >= 1
    _accumulate(registry, "jobs")


# ------------------------------------------------------ deterministic chaos
def _fixed_rows():
    return tuple((u, u % 5, f"2012-12-0{1 + u % 5}", round(u * 0.75, 2))
                 for u in range(48))


def _fixed_workload(queries=None):
    predicate = {"u_lo": 5, "u_width": 30, "r_lo": 0, "r_width": 3,
                 "d_lo": 0, "d_width": 6}
    agg = mdrq_sql("sum(powerconsumed), count(*)", predicate)
    return Workload(table="meterdata", ddl=METER_DDL, rows=_fixed_rows(),
                    queries=queries or ((agg, None), (agg, SCAN)),
                    index_sql=index_sql(10), index_name="d")


class TestScheduledFaults:
    """Targeted plans that force each recovery path deterministically."""

    def test_repeated_crashes_recover_within_budget(self):
        plan = FaultPlan(scheduled=(
            FaultSpec(kind=TASK_CRASH, job="diff", task_kind="map",
                      task_id=0, attempt=0, times=2, crash_after_records=3),))
        spec = {"rows": [(k % 7, k) for k in range(60)], "num_files": 2,
                "num_reducers": 2, "use_combiner": True, "block_size": 600}
        _, registry = assert_job_chaos_equivalent(
            lambda: make_kv_job(spec), plan, WORKERS)
        assert registry.injected_counts() == {TASK_CRASH: 2}
        assert registry.recovery_counts() == {TASK_RETRY: 1}
        # backoff before retries 1 and 2: 1s + 2s of simulated waiting
        assert registry.backoff_seconds == pytest.approx(3.0)

    def test_retry_exhaustion_fails_the_job_permanently(self):
        plan = FaultPlan(scheduled=(
            FaultSpec(kind=TASK_CRASH, job="diff", task_kind="map",
                      task_id=0, times=10),),
            policy=RetryPolicy(max_task_attempts=2))
        spec = {"rows": [(1, 1), (2, 2)], "num_files": 1, "num_reducers": 1,
                "use_combiner": False, "block_size": 4096}
        fs, job = make_kv_job(spec)
        injector = FaultInjector(plan)
        engine = MapReduceEngine(fs, faults=injector)
        with pytest.raises(MapReduceError, match="failed permanently"):
            engine.run(job)
        assert injector.registry.injected_counts()[TASK_CRASH] == 2
        assert TASK_RETRY not in injector.registry.recovery_counts()

    def test_job_max_task_attempts_overrides_policy(self):
        plan = FaultPlan(scheduled=(
            FaultSpec(kind=TASK_CRASH, job="diff", task_kind="map",
                      task_id=0, times=10),))  # default policy allows 4
        spec = {"rows": [(1, 1)], "num_files": 1, "num_reducers": 0,
                "use_combiner": False, "block_size": 4096}
        fs, job = make_kv_job(spec)
        job.max_task_attempts = 1
        engine = MapReduceEngine(fs, faults=FaultInjector(plan))
        with pytest.raises(MapReduceError, match="after 1 attempts"):
            engine.run(job)

    def test_reduce_crashes_never_rerun_side_effects(self):
        """A crashed reduce attempt dies before ``reduce_setup``; if the
        retry re-entered setup the second ``fs.create`` of the same output
        file would raise FileAlreadyExists."""
        from repro.hdfs.filesystem import HDFS
        from repro.mapreduce.splits import TextRowInputFormat
        from repro.mapreduce.job import Job
        from tests.test_engine_equivalence import (KV_SCHEMA, write_kv_table)

        plan = FaultPlan(scheduled=(
            FaultSpec(kind=TASK_CRASH, job="writes", task_kind="reduce",
                      attempt=0),))  # every reduce task's first attempt

        def make():
            fs = HDFS(num_datanodes=3, block_size=600)
            write_kv_table(fs, [(k % 5, k) for k in range(40)], 2)

            def mapper(key, row, ctx):
                ctx.emit(row[0], row[1])

            def reduce_setup(ctx):
                ctx.state["stream"] = ctx.fs.create(f"/out/part-{ctx.task_id}")

            def reducer(key, values, ctx):
                ctx.state["stream"].write(
                    f"{key},{sum(values)}\n".encode("utf-8"))
                ctx.emit(key, sum(values))

            def reduce_cleanup(ctx):
                ctx.state["stream"].close()

            job = Job(name="writes",
                      input_format=TextRowInputFormat(KV_SCHEMA),
                      mapper=mapper, reducer=reducer,
                      reduce_setup=reduce_setup,
                      reduce_cleanup=reduce_cleanup,
                      input_paths=["/in"], num_reducers=3)
            return fs, job

        _, registry = assert_job_chaos_equivalent(make, plan, WORKERS)
        # every non-empty reduce bucket crashed once and retried once
        crashes = registry.injected_counts()[TASK_CRASH]
        assert crashes >= 2
        assert registry.recovery_counts()[TASK_RETRY] == crashes

    def test_speculative_win_replaces_straggler(self):
        plan = FaultPlan(scheduled=(
            FaultSpec(kind=TASK_STRAGGLER, job="diff", task_kind="map",
                      task_id=0),))
        spec = {"rows": [(k % 3, k) for k in range(30)], "num_files": 2,
                "num_reducers": 1, "use_combiner": False, "block_size": 600}
        _, registry = assert_job_chaos_equivalent(
            lambda: make_kv_job(spec), plan, WORKERS)
        assert registry.injected_counts() == {TASK_STRAGGLER: 1}
        assert registry.recovery_counts() == {SPECULATIVE_WIN: 1}

    def test_crashed_speculative_attempt_falls_back_to_original(self):
        plan = FaultPlan(scheduled=(
            FaultSpec(kind=TASK_STRAGGLER, job="diff", task_kind="map",
                      task_id=0),
            FaultSpec(kind=TASK_CRASH, job="diff", task_kind="map",
                      task_id=0, attempt=1),))  # kills only the duplicate
        spec = {"rows": [(k % 3, k) for k in range(30)], "num_files": 2,
                "num_reducers": 1, "use_combiner": False, "block_size": 600}
        _, registry = assert_job_chaos_equivalent(
            lambda: make_kv_job(spec), plan, WORKERS)
        assert registry.injected_counts() == {TASK_STRAGGLER: 1,
                                              TASK_CRASH: 1}
        # the original result stood: no speculative win, no retry, and a
        # doomed duplicate charges no backoff
        assert registry.recovery_counts() == {}
        assert registry.backoff_seconds == 0.0

    def test_speculation_disabled_by_policy(self):
        plan = FaultPlan(scheduled=(
            FaultSpec(kind=TASK_STRAGGLER, job="diff", task_kind="map",
                      task_id=0),),
            policy=RetryPolicy(speculative_execution=False))
        spec = {"rows": [(1, 1), (2, 2)], "num_files": 1, "num_reducers": 0,
                "use_combiner": False, "block_size": 4096}
        _, registry = assert_job_chaos_equivalent(
            lambda: make_kv_job(spec), plan, WORKERS)
        assert registry.total_injected() == 0
        assert registry.total_recovered() == 0

    def test_dead_datanode_forces_replica_failover(self):
        plan = FaultPlan(dead_datanodes=(0,))
        spec = {"rows": [(k % 5, k) for k in range(80)], "num_files": 3,
                "num_reducers": 2, "use_combiner": False, "block_size": 256}
        _, registry = assert_job_chaos_equivalent(
            lambda: make_kv_job(spec), plan, WORKERS)
        assert registry.injected_counts() == {DATANODE_DEAD: 1}
        assert registry.recovery_counts()[REPLICA_FAILOVER] >= 1

    def test_kv_timeouts_recover_inside_a_session(self):
        plan = FaultPlan(seed=FAULT_SEED, kv_timeout_rate=0.3)
        _, registry = assert_chaos_equivalent(
            _fixed_workload(), plan, WORKERS)
        assert registry.injected_counts()[KV_TIMEOUT] >= 1
        assert registry.recovery_counts()[KV_RETRY] >= 1

    def test_kv_timeout_exhaustion_surfaces_transient_error(self):
        plan = FaultPlan(scheduled=(
            FaultSpec(kind=KV_TIMEOUT, op="put", times=3),))
        with pytest.raises(KVStoreTimeout) as excinfo:
            run_workload(_fixed_workload(), faults=FaultInjector(plan))
        assert isinstance(excinfo.value, TransientError)


class TestFaultObservability:
    def test_explain_analyze_shows_fault_spans(self):
        plan = FaultPlan(scheduled=(
            ALWAYS_CRASH_MAP0,
            # the planner reads GFU metadata via multi_get; one timeout
            # per batch, recovered by a retry
            FaultSpec(kind=KV_TIMEOUT, op="multi_get"),))
        # cache=False so planner reads hit the store inside the query span
        # (cache fills run in detached spans and would hide the counters)
        session = HiveSession(num_datanodes=4, faults=plan, cache=False)
        session.fs.block_size = 2048
        session.execute(METER_DDL)
        session.load_rows("meterdata", _fixed_rows())
        session.execute(index_sql(10))
        # a full scan runs a MapReduce job whose map task 0 crashes+retries
        scan = session.execute(
            "EXPLAIN ANALYZE SELECT sum(powerconsumed) FROM meterdata "
            "WHERE userid >= 0 AND userid < 40", SCAN)
        assert "fault:task_crash" in scan.description
        assert "fault:task_retry" in scan.description
        # an indexed query reads GFU metadata: its gets time out and retry
        indexed = session.execute(
            "EXPLAIN ANALYZE SELECT sum(powerconsumed), count(*) "
            "FROM meterdata WHERE userid >= 3 AND userid < 37")
        assert "fault.kv_timeouts" in indexed.description
        assert "fault.kv_retries" in indexed.description

    def test_fault_metrics_exported_from_session(self):
        plan = FaultPlan(scheduled=(ALWAYS_CRASH_MAP0,))
        session = HiveSession(num_datanodes=4, faults=plan)
        session.execute(METER_DDL)
        session.load_rows("meterdata", _fixed_rows())
        session.execute("SELECT count(*) FROM meterdata")
        metrics = session.metrics
        assert metrics.counter("faults_injected_total", "").value(
            kind=TASK_CRASH) >= 1
        assert metrics.counter("fault_recoveries_total", "").value(
            kind=TASK_RETRY) >= 1

    def test_traces_differ_only_by_fault_data(self):
        """Sanity check on the harness itself: the raw chaos trace *does*
        contain fault spans (we are not comparing empty against empty)."""
        workload = _fixed_workload()
        plan = FaultPlan(scheduled=(ALWAYS_CRASH_MAP0,))
        fingerprint = run_workload(workload, faults=FaultInjector(plan))
        # query:1 is the forced full scan: its job ran, so its trace holds
        # the crash/retry spans...
        raw = repr(fingerprint["query:1"]["trace"])
        assert "fault:task_crash" in raw and "fault:task_retry" in raw
        # ...and the chaos view strips every one of them
        from tests.harness.chaos import chaos_view
        view = chaos_view(fingerprint)
        assert "fault:" not in repr(view) and "fault." not in repr(view)


# --------------------------------------------- suite-level demonstrability
def test_chaos_suite_demonstrably_fired_every_kind():
    """Runs after the generated tests (file order): every fault kind was
    injected and every recovery kind actually recovered at least once."""
    if not (_EXAMPLES_RAN["sessions"] and _EXAMPLES_RAN["jobs"]):
        pytest.skip("generated chaos tests did not run in this invocation")
    assert _EXAMPLES_RAN["sessions"] + _EXAMPLES_RAN["jobs"] >= 100, \
        _EXAMPLES_RAN
    for kind in FAULT_KINDS:
        assert TOTALS_INJECTED[kind] > 0, (kind, dict(TOTALS_INJECTED))
    for kind in RECOVERY_KINDS:
        assert TOTALS_RECOVERED[kind] > 0, (kind, dict(TOTALS_RECOVERED))
