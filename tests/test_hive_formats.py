"""Tests for the format-dispatch layer (writers, input formats, scans)."""

import pytest

from repro.errors import MetastoreError
from repro.hdfs.filesystem import HDFS
from repro.hive import formats
from repro.hive.metastore import TableInfo
from repro.storage.schema import DataType, Schema


@pytest.fixture
def schema():
    return Schema.of(("a", DataType.INT), ("b", DataType.STRING))


@pytest.fixture(params=["TEXTFILE", "RCFILE", "SEQUENCEFILE"])
def table(request, schema):
    return TableInfo(name="t", schema=schema, stored_as=request.param)


ROWS = [(i, f"value-{i}") for i in range(200)]


class TestRoundtripAllFormats:
    def test_write_then_scan(self, table):
        fs = HDFS(num_datanodes=2, block_size=1024)
        fs.mkdirs(table.location)
        with formats.open_row_writer(fs, f"{table.location}/f0",
                                     table) as writer:
            writer.write_rows(ROWS)
        got = list(formats.scan_table_rows(fs, table))
        assert got == ROWS

    def test_splits_cover_rows(self, table):
        fs = HDFS(num_datanodes=2, block_size=1024)
        fs.mkdirs(table.location)
        with formats.open_row_writer(fs, f"{table.location}/f0",
                                     table) as writer:
            writer.write_rows(ROWS)
        fmt = formats.input_format_for(table)
        splits = fmt.get_splits(fs, [table.location])
        assert len(splits) > 1
        collected = [row for split in splits
                     for _k, row in fmt.read_split(fs, split)]
        assert sorted(collected) == ROWS


class TestDispatch:
    def test_unknown_format_rejected(self, schema):
        bad = TableInfo(name="t", schema=schema, stored_as="PARQUET")
        fs = HDFS(num_datanodes=1)
        with pytest.raises(MetastoreError):
            formats.input_format_for(bad)
        with pytest.raises(MetastoreError):
            formats.open_row_writer(fs, "/x", bad)

    def test_scan_missing_location_is_empty(self, schema):
        table = TableInfo(name="ghost", schema=schema)
        fs = HDFS(num_datanodes=1)
        assert list(formats.scan_table_rows(fs, table)) == []
        assert formats.data_paths(fs, table) == []

    def test_data_paths_follow_dgf_location(self, schema):
        fs = HDFS(num_datanodes=1)
        table = TableInfo(name="t", schema=schema)
        fs.write_bytes(f"{table.location}/f0", b"1|x\n")
        fs.write_bytes("/warehouse/t__dgf/g0", b"1|x\n")
        assert formats.data_paths(fs, table) == [f"{table.location}/f0"]
        table.properties["dgf_data_location"] = "/warehouse/t__dgf"
        assert formats.data_paths(fs, table) == ["/warehouse/t__dgf/g0"]

    def test_rcfile_gets_pruning_hooks(self, schema):
        table = TableInfo(name="t", schema=schema, stored_as="RCFILE")
        fmt = formats.input_format_for(table, columns=["a"],
                                       group_filter=lambda p, o: True)
        assert fmt.columns == ["a"]
        assert fmt.group_filter is not None

    def test_scan_location_override(self, schema):
        fs = HDFS(num_datanodes=1)
        table = TableInfo(name="t", schema=schema)
        fs.mkdirs(table.location)
        fs.mkdirs("/staging")
        with formats.open_row_writer(fs, "/staging/f", table) as writer:
            writer.write_rows(ROWS[:3])
        got = list(formats.scan_table_rows(fs, table,
                                           location="/staging"))
        assert got == ROWS[:3]
