"""Differential tests: the parallel engine is byte-identical to sequential.

Every test here generates a workload, executes it once on the sequential
engine and once per ``max_workers`` setting, and asserts the fingerprints
(rows, counters, JobStats, per-task TaskStats, simulated cost-model
seconds, global fs/KV accounting) are *identical* — not approximately
equal.  Across the three Hypothesis tests the suite covers >= 200
generated workloads (130 raw jobs + 45 MDRQ sessions + 25 append
sessions), satisfying the ISSUE 1 acceptance bar, and the deterministic
stress class drives every DgfIndexHandler query path (aggregation
headers, slice reads, partial predicates, no-precompute, joins) under
the parallel engine.

The worker counts checked default to ``(1, 2, 4, 8)``; set the
``REPRO_DIFF_WORKERS`` environment variable (e.g. ``"4"``) to narrow
them — the CI differential job does this.
"""

import datetime
import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.hdfs.filesystem import HDFS
from repro.hive.session import QueryOptions
from repro.mapreduce.job import Job
from repro.mapreduce.splits import TextRowInputFormat
from repro.storage.schema import DataType, Schema
from repro.storage.textfile import TextFileWriter
from tests.conftest import SCAN
from tests.harness.differential import (WORKER_COUNTS, Workload,
                                        assert_job_equivalent,
                                        assert_session_equivalent)


def _worker_counts():
    raw = os.environ.get("REPRO_DIFF_WORKERS", "").strip()
    if not raw:
        return WORKER_COUNTS
    return tuple(int(tok) for tok in raw.replace(",", " ").split())


WORKERS = _worker_counts()

# ------------------------------------------------------------ raw job level
KV_SCHEMA = Schema.of(("k", DataType.INT), ("v", DataType.INT))


def write_kv_table(fs, rows, num_files):
    """Spread rows deterministically (round-robin) over ``num_files``."""
    for i in range(num_files):
        with fs.create(f"/in/part-{i}") as stream:
            writer = TextFileWriter(stream, KV_SCHEMA)
            for row in rows[i::num_files]:
                writer.write_row(row)


raw_job_strategy = st.fixed_dictionaries({
    "rows": st.lists(st.tuples(st.integers(0, 11),
                               st.integers(-1000, 1000)), max_size=200),
    "num_files": st.integers(1, 3),
    "num_reducers": st.integers(0, 5),
    "use_combiner": st.booleans(),
    "block_size": st.sampled_from([256, 600, 4096]),
})


def make_kv_job(spec):
    """Fresh fs + job per call, as assert_job_equivalent requires."""
    fs = HDFS(num_datanodes=3, block_size=spec["block_size"])
    write_kv_table(fs, spec["rows"], spec["num_files"])

    def mapper(key, row, ctx):
        ctx.counter("m", "records")
        ctx.emit(row[0], (row[1], 1))

    def fold(key, values, ctx):
        ctx.counter("r", "folds")
        ctx.emit(key, (sum(v[0] for v in values),
                       sum(v[1] for v in values)))

    reduce_side = spec["num_reducers"] > 0
    job = Job(name="diff", input_format=TextRowInputFormat(KV_SCHEMA),
              mapper=mapper, input_paths=["/in"],
              num_reducers=spec["num_reducers"],
              reducer=fold if reduce_side else None,
              combiner=fold if reduce_side and spec["use_combiner"]
              else None)
    return fs, job


@settings(max_examples=130, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(spec=raw_job_strategy)
def test_generated_jobs_equivalent(spec):
    """Map-only, reduce and combiner jobs over generated data: identical
    output, counters, JobStats and TaskStats at every worker count."""
    baseline = assert_job_equivalent(lambda: make_kv_job(spec), WORKERS)
    counters = baseline["counters"]
    assert counters.get("m", {}).get("records", 0) == len(spec["rows"])
    if spec["num_reducers"] > 0:
        groups = {k for k, _ in spec["rows"]}
        total = sum(v for _, v in spec["rows"])
        assert sum(s for s, _ in (v for _, v in baseline["output"])) == total
        assert len(baseline["output"]) == len(groups)


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(rows=st.lists(st.tuples(st.integers(0, 7), st.integers(0, 100)),
                     min_size=1, max_size=120),
       num_reducers=st.integers(1, 4))
def test_reduce_side_writes_equivalent(rows, num_reducers):
    """Reduce tasks that *write files* (the DGF build shape) are identical
    under the thread pool: same output_bytes per task, same fs contents."""
    def make():
        fs = HDFS(num_datanodes=3, block_size=600)
        write_kv_table(fs, rows, 2)

        def mapper(key, row, ctx):
            ctx.emit(row[0], row[1])

        def reduce_setup(ctx):
            ctx.state["stream"] = ctx.fs.create(f"/out/part-{ctx.task_id}")

        def reducer(key, values, ctx):
            ctx.state["stream"].write(
                f"{key},{sum(values)}\n".encode("utf-8"))
            ctx.emit(key, sum(values))

        def reduce_cleanup(ctx):
            ctx.state["stream"].close()

        job = Job(name="writes", input_format=TextRowInputFormat(KV_SCHEMA),
                  mapper=mapper, reducer=reducer,
                  reduce_setup=reduce_setup, reduce_cleanup=reduce_cleanup,
                  input_paths=["/in"], num_reducers=num_reducers)
        return fs, job

    baseline = assert_job_equivalent(make, WORKERS)
    written = [t for t in baseline["tasks"] if t["kind"] == "reduce"]
    assert sum(t["output_bytes"] for t in written) > 0


# ------------------------------------------------------- MDRQ session level
DAYS = [(datetime.date(2012, 12, 1)
         + datetime.timedelta(days=d)).isoformat() for d in range(8)]

METER_DDL = ("CREATE TABLE meterdata (userid bigint, regionid int, "
             "ts date, powerconsumed double) STORED AS TEXTFILE")

meter_row = st.tuples(
    st.integers(min_value=0, max_value=60),
    st.integers(min_value=0, max_value=4),
    st.sampled_from(DAYS),
    st.floats(min_value=0.0, max_value=100.0,
              allow_nan=False, width=32).map(lambda f: round(f, 2)),
)

predicate_strategy = st.fixed_dictionaries({
    "u_lo": st.integers(-5, 60),
    "u_width": st.integers(0, 40),
    "r_lo": st.integers(0, 4),
    "r_width": st.integers(0, 4),
    "d_lo": st.integers(0, 7),
    "d_width": st.integers(0, 7),
})


def index_sql(interval, precompute="sum(powerconsumed),count(*)"):
    props = (f"'userid'='0_{interval}', 'regionid'='0_1', "
             "'ts'='2012-12-01_2d'")
    if precompute:
        props += f", 'precompute'='{precompute}'"
    return ("CREATE INDEX d ON TABLE meterdata(userid, regionid, ts) "
            f"AS 'dgf' IDXPROPERTIES ({props})")


def mdrq_sql(select, predicate):
    day_lo = DAYS[predicate["d_lo"]]
    day_hi = DAYS[min(predicate["d_lo"] + predicate["d_width"], 7)]
    return (f"SELECT {select} FROM meterdata "
            f"WHERE userid >= {predicate['u_lo']} "
            f"AND userid < {predicate['u_lo'] + predicate['u_width']} "
            f"AND regionid >= {predicate['r_lo']} "
            f"AND regionid <= {predicate['r_lo'] + predicate['r_width']} "
            f"AND ts >= '{day_lo}' AND ts <= '{day_hi}'")


@st.composite
def mdrq_workloads(draw):
    rows = tuple(sorted(draw(st.lists(meter_row, min_size=1, max_size=80)),
                        key=lambda r: r[2]))
    predicate = draw(predicate_strategy)
    interval = draw(st.sampled_from([5, 10, 25]))
    agg = mdrq_sql("sum(powerconsumed), count(*)", predicate)
    queries = [(agg, None), (agg, SCAN)]
    kind = draw(st.sampled_from(
        ["headers", "groupby", "noprecompute", "projection", "partial"]))
    if kind == "groupby":
        queries.append(
            (mdrq_sql("ts, sum(powerconsumed)", predicate) + " GROUP BY ts",
             None))
    elif kind == "noprecompute":
        queries.append((agg, QueryOptions(dgf_use_precompute=False)))
    elif kind == "projection":
        queries.append((mdrq_sql("userid, powerconsumed", predicate), None))
    elif kind == "partial":
        hi = predicate["u_lo"] + predicate["u_width"]
        queries.append(
            ("SELECT sum(powerconsumed), count(*) FROM meterdata "
             f"WHERE userid >= {predicate['u_lo']} AND userid < {hi}",
             None))
    return Workload(table="meterdata", ddl=METER_DDL, rows=rows,
                    queries=tuple(queries), index_sql=index_sql(interval),
                    index_name="d",
                    block_size=draw(st.sampled_from([1024, 2048])))


@settings(max_examples=45, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(workload=mdrq_workloads())
def test_mdrq_sessions_equivalent(workload):
    """Full sessions — load, DGF build, MDRQ queries over every planner
    path — fingerprint identically at every worker count."""
    baseline = assert_session_equivalent(workload, WORKERS)
    assert baseline["build:d"]["stats"]["map_input_records"] \
        == len(workload.rows)
    assert baseline["query:0"]["index_used"]
    assert not baseline["query:1"]["index_used"]


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(rows=st.lists(meter_row, min_size=1, max_size=50),
       append=st.lists(meter_row, min_size=1, max_size=20),
       predicate=predicate_strategy)
def test_append_workloads_equivalent(rows, append, predicate):
    """The no-rebuild append path (incremental build job + slice merge)
    is deterministic under the parallel engine too."""
    agg = mdrq_sql("sum(powerconsumed), count(*)", predicate)
    workload = Workload(
        table="meterdata", ddl=METER_DDL,
        rows=tuple(sorted(rows, key=lambda r: r[2])),
        queries=((agg, None), (agg, SCAN)),
        index_sql=index_sql(10, precompute="sum(powerconsumed)"),
        index_name="d",
        append_rows=tuple(sorted(append, key=lambda r: r[2])))
    baseline = assert_session_equivalent(workload, WORKERS)
    # sanity: the indexed answer over appended data still equals a scan
    assert baseline["query:0"]["rows"][0][1] \
        == baseline["query:1"]["rows"][0][1]


# ------------------------------------------------------ deterministic stress
def stress_rows():
    """A fixed, dense meter dataset big enough for multi-split jobs."""
    rows = []
    for userid in range(80):
        for day in range(6):
            rows.append((userid, userid % 5, DAYS[day],
                         round((userid * 7 + day * 3) % 50 + 0.25, 2)))
    return tuple(rows)


class TestDgfStressParallel:
    """Every DgfIndexHandler query path, plus joins and INSERT DIRECTORY,
    replayed at each worker count against one dense dataset."""

    QUERIES = (
        # grid-aligned range: pure aggregation-header path
        ("SELECT sum(powerconsumed), count(*) FROM meterdata "
         "WHERE userid >= 0 AND userid < 50 AND regionid >= 0 "
         f"AND regionid <= 4 AND ts >= '{DAYS[0]}' AND ts <= '{DAYS[5]}'",
         None),
        # unaligned range: headers for interior GFUs + slice reads at edges
        ("SELECT sum(powerconsumed), count(*) FROM meterdata "
         "WHERE userid >= 3 AND userid < 47 AND regionid >= 1 "
         f"AND regionid <= 3 AND ts >= '{DAYS[1]}' AND ts <= '{DAYS[4]}'",
         None),
        # GROUP BY forces the slice-scan MapReduce path
        ("SELECT ts, sum(powerconsumed) FROM meterdata "
         "WHERE userid >= 5 AND userid < 40 AND regionid >= 0 "
         f"AND regionid <= 2 AND ts >= '{DAYS[0]}' AND ts <= '{DAYS[5]}' "
         "GROUP BY ts", None),
        # partial predicate: only one of three index dimensions bound
        ("SELECT sum(powerconsumed), count(*) FROM meterdata "
         "WHERE userid >= 10 AND userid < 30", None),
        # precompute disabled: header path must re-read slices
        ("SELECT sum(powerconsumed), count(*) FROM meterdata "
         "WHERE userid >= 0 AND userid < 25 AND regionid >= 0 "
         f"AND regionid <= 4 AND ts >= '{DAYS[0]}' AND ts <= '{DAYS[3]}'",
         QueryOptions(dgf_use_precompute=False)),
        # projection through filtered slices
        ("SELECT userid, powerconsumed FROM meterdata "
         "WHERE userid >= 70 AND userid < 75 AND regionid >= 0 "
         f"AND regionid <= 4 AND ts >= '{DAYS[2]}' AND ts <= '{DAYS[3]}'",
         None),
        # forced full scan for contrast
        ("SELECT count(*) FROM meterdata", SCAN),
        # sorted aggregate output
        ("SELECT ts, count(*) FROM meterdata GROUP BY ts "
         "ORDER BY ts DESC LIMIT 3", SCAN),
        # join against a dimension table (map-side hash join path)
        ("SELECT t2.username, sum(t1.powerconsumed) FROM meterdata t1 "
         "JOIN userinfo t2 ON t1.userid = t2.userid "
         "WHERE t1.userid < 3 GROUP BY t2.username", SCAN),
        # INSERT ... DIRECTORY writes job output back into HDFS
        ("INSERT OVERWRITE DIRECTORY '/tmp/diffout' "
         "SELECT userid FROM meterdata WHERE userid < 2 "
         f"AND ts = '{DAYS[0]}'", SCAN),
    )

    @pytest.fixture(scope="class")
    def fingerprint(self):
        workload = Workload(
            table="meterdata", ddl=METER_DDL, rows=stress_rows(),
            queries=self.QUERIES, index_sql=index_sql(10),
            index_name="d", block_size=2048, load_files=3,
            extra_tables=(
                ("userinfo",
                 "CREATE TABLE userinfo (userid bigint, username string)",
                 tuple((u, f"user{u}") for u in range(80))),))
        return assert_session_equivalent(workload, WORKERS)

    def test_header_path_used(self, fingerprint):
        query = fingerprint["query:0"]
        assert query["index_used"]
        assert query["rows"][0][1] == 50 * 6  # 50 users x 6 days

    def test_slice_path_reads_data(self, fingerprint):
        assert fingerprint["query:2"]["index_used"]
        assert fingerprint["query:2"]["records_read"] > 0
        assert len(fingerprint["query:2"]["rows"]) == 6

    def test_partial_predicate_uses_index(self, fingerprint):
        assert fingerprint["query:3"]["index_used"]
        assert fingerprint["query:3"]["rows"][0][1] == 20 * 6

    def test_noprecompute_matches_scan_count(self, fingerprint):
        assert fingerprint["query:4"]["rows"][0][1] == 25 * 4
        assert fingerprint["query:4"]["index_used"]

    def test_scan_baseline(self, fingerprint):
        assert fingerprint["query:6"]["rows"] == [(480,)]

    def test_join_rows(self, fingerprint):
        assert len(fingerprint["query:8"]["rows"]) == 3

    def test_build_report_captured(self, fingerprint):
        report = fingerprint["build:d"]
        assert report["stats"]["map_input_records"] == 480
        assert report["index_size_bytes"] > 0

    def test_global_io_accounted(self, fingerprint):
        assert fingerprint["fs_io"]["bytes_read"] > 0
        assert fingerprint["fs_io"]["bytes_written"] > 0
        assert fingerprint["kv_ops"]["puts"] > 0
