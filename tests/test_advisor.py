"""Tests for the workload-driven divergent advisor stack.

Covers the query log (:mod:`repro.service.querylog`), the session's
capture hook, the what-if evaluator (:mod:`repro.core.dgf.whatif`), the
clustering and divergent search (:mod:`repro.core.dgf.advisor`), and the
:class:`~repro.service.advisor.Advisor` facade's observe → report →
apply → auto-tune lifecycle, including the drift-watching re-tune
workflow and the ``dgf_layout`` plan-time validation fix.
"""

from __future__ import annotations

import math

import pytest

from repro.core.dgf import fleet
from repro.core.dgf.advisor import (Advice, AdvisorReport, DimensionStats,
                                    PolicyAdvisor, QueryProfile,
                                    cluster_signatures, signature_distance,
                                    signature_of)
from repro.core.dgf.policy import SplittingPolicy
from repro.core.dgf.whatif import WhatIfEvaluator, stats_from_policy
from repro.errors import DGFError
from repro.hive.session import HiveSession, QueryOptions
from repro.hiveql.predicates import Interval
from repro.mapreduce.cost import CostModel
from repro.service.advisor import Advisor
from repro.service.querylog import LoggedQuery, QueryLog
from repro.storage.schema import DataType, Schema
from repro.workflow.coordinator import Coordinator

from tests.harness.replicas import dyadic_rows

METER_DDL = ("CREATE TABLE meterdata (userid bigint, regionid int, "
             "ts date, powerconsumed double)")
INDEX_SQL = ("CREATE INDEX dgf_idx ON TABLE meterdata"
             "(userid, regionid, ts) AS 'dgf' IDXPROPERTIES ("
             "'userid'='0_25', 'regionid'='0_1', 'ts'='2012-12-01_2d', "
             "'precompute'='sum(powerconsumed),count(*)')")


def point_sql(user: int, day: str) -> str:
    return (f"SELECT sum(powerconsumed), count(*) FROM meterdata "
            f"WHERE userid = {user} AND ts = '{day}'")


def wide_sql() -> str:
    return ("SELECT sum(powerconsumed), count(*) FROM meterdata "
            "WHERE userid >= 0 AND userid <= 79 "
            "AND ts >= '2012-12-01' AND ts <= '2012-12-04'")


def tuned_session() -> HiveSession:
    session = HiveSession(num_datanodes=4)
    session.fs.block_size = 2048
    session.execute(METER_DDL)
    rows = dyadic_rows(num_users=80, num_days=4)
    half = len(rows) // 2
    session.load_rows("meterdata", rows[:half])
    session.load_rows("meterdata", rows[half:])
    session.execute(INDEX_SQL)
    return session


def advisor_for(session: HiveSession, **kwargs) -> Advisor:
    return Advisor(session, "meterdata", "dgf_idx", **kwargs)


# ------------------------------------------------------------- signatures
class TestSignatures:
    STATS = {"u": DimensionStats("u", DataType.BIGINT, 0.0, 100.0),
             "t": DimensionStats("t", DataType.DATE, 0.0, 10.0)}

    def test_signature_normalizes_and_clips(self):
        profile = QueryProfile(widths={"u": 50.0, "t": None})
        signature = signature_of(profile, self.STATS, ["u", "t"])
        assert signature == {"u": 0.5, "t": 1.0}
        oversized = QueryProfile(widths={"u": 1e6, "t": 0.0})
        assert signature_of(oversized, self.STATS, ["u", "t"]) \
            == {"u": 1.0, "t": 0.0}

    def test_signature_distance_properties(self):
        a = {"u": 0.0, "t": 0.0}
        b = {"u": 1.0, "t": 1.0}
        assert signature_distance(a, a) == 0.0
        assert signature_distance({}, {}) == 0.0
        assert signature_distance(a, b) == pytest.approx(1.0)
        assert signature_distance(a, b) == signature_distance(b, a)
        # missing keys default to 1.0 (unconstrained)
        assert signature_distance({"u": 1.0}, {"u": 1.0, "t": 1.0}) == 0.0

    def test_clustering_is_deterministic(self):
        signatures = [{"a": 0.1, "b": 0.1}, {"a": 0.12, "b": 0.1},
                      {"a": 0.9, "b": 0.95}, {"a": 0.88, "b": 0.9}]
        assert cluster_signatures(signatures, 3) == ([0, 2], [0, 0, 1, 1])

    def test_identical_signatures_collapse_to_one_cluster(self):
        signatures = [{"a": 0.4, "b": 0.4}] * 5
        medoids, assignments = cluster_signatures(signatures, 3)
        assert medoids == [0]
        assert assignments == [0] * 5

    def test_empty_and_single(self):
        assert cluster_signatures([], 2) == ([], [])
        assert cluster_signatures([{"a": 0.3}], 4) == ([0], [0])

    def test_budget_caps_cluster_count(self):
        signatures = [{"a": 0.0}, {"a": 0.33}, {"a": 0.66}, {"a": 1.0}]
        medoids, _ = cluster_signatures(signatures, 2)
        assert len(medoids) == 2


# ---------------------------------------------------------------- what-if
class TestWhatIf:
    STATS = {"u": DimensionStats("u", DataType.BIGINT, 0.0, 1000.0),
             "t": DimensionStats("t", DataType.DATE, 0.0, 100.0)}

    @pytest.fixture
    def evaluator(self):
        return WhatIfEvaluator(CostModel(), self.STATS,
                               total_records=1e6, total_bytes=1e8)

    def test_point_query_prefers_fine_grid(self, evaluator):
        point = QueryProfile(widths={"u": 1.0, "t": 1.0})
        fine = evaluator.query_seconds(point, {"u": 256, "t": 64})
        coarse = evaluator.query_seconds(point, {"u": 1, "t": 1})
        assert fine < coarse

    def test_wide_scan_prefers_coarse_grid(self, evaluator):
        # without the header shortcut every overlapped cell is probed,
        # so a broad scan wants few, large cells
        wide = QueryProfile(widths={"u": None, "t": None},
                            agg_path=False)
        coarse = evaluator.query_seconds(wide, {"u": 1, "t": 1})
        fine = evaluator.query_seconds(wide, {"u": 256, "t": 64})
        assert coarse < fine

    def test_header_path_never_costs_more(self, evaluator):
        grid = {"u": 16, "t": 8}
        widths = {"u": 500.0, "t": 50.0}
        with_headers = evaluator.query_seconds(
            QueryProfile(widths=widths, agg_path=True), grid)
        without = evaluator.query_seconds(
            QueryProfile(widths=widths, agg_path=False), grid)
        assert with_headers < without

    def test_whatif_formula_is_the_router_formula(self):
        model = CostModel()
        for args in ((1, 0.0, 0.0), (120, 5e4, 2e7), (4096, 1e6, 1e9)):
            assert model.whatif_seconds(*args) \
                == model.layout_route_seconds(*args)

    def test_workload_seconds_respects_weights(self, evaluator):
        grid = {"u": 16, "t": 8}
        one = QueryProfile(widths={"u": 10.0, "t": 5.0})
        double = QueryProfile(widths={"u": 10.0, "t": 5.0}, weight=2.0)
        assert evaluator.workload_seconds([double], grid) \
            == pytest.approx(2 * evaluator.workload_seconds([one], grid))

    def test_stats_from_policy_covers_cell_aligned_extent(self):
        session = tuned_session()
        store = session.dgf_store("meterdata", "dgf_idx")
        stats = stats_from_policy(store.load_policy(), store.load_bounds())
        assert set(stats) == {"userid", "regionid", "ts"}
        # users 0..79 with interval 25 occupy cells 0..3 -> extent [0, 100)
        assert stats["userid"].low == 0.0
        assert stats["userid"].high == 100.0


# ------------------------------------------------------- structured advice
class TestAdvice:
    @pytest.fixture
    def schema(self):
        return Schema.of(("u", DataType.BIGINT), ("d", DataType.DATE))

    @pytest.fixture
    def rows(self):
        import datetime
        out = []
        for day in range(10):
            date = (datetime.date(2012, 12, 1)
                    + datetime.timedelta(days=day)).isoformat()
            for u in range(0, 1000, 7):
                out.append((u, date))
        return out

    HISTORY = [{"u": Interval(low=100, high=200)}]

    def test_advise_returns_structured_advice(self, schema, rows):
        advisor = PolicyAdvisor(schema, ["u", "d"],
                                records_per_unit_volume=1e9)
        advice = advisor.advise(rows, self.HISTORY)
        assert isinstance(advice, Advice)
        assert isinstance(advice.policy, SplittingPolicy)
        assert set(advice.cell_counts) == {"u", "d"}
        assert advice.queries == 1
        assert advice.predicted_seconds > 0
        assert "coordinate descent" in advice.rationale
        # the properties render rebuilds the same policy
        rebuilt = SplittingPolicy.from_properties(schema, ["u", "d"],
                                                  advice.properties)
        assert rebuilt.dimension("u").interval \
            == advice.policy.dimension("u").interval

    def test_advice_roundtrips_through_dict(self, schema, rows):
        advisor = PolicyAdvisor(schema, ["u", "d"],
                                records_per_unit_volume=1e9)
        advice = advisor.advise(rows, self.HISTORY)
        again = Advice.from_dict(advice.to_dict())
        assert again.to_dict() == advice.to_dict()
        assert again.cell_counts == advice.cell_counts

    def test_recommend_is_a_deprecation_shim(self, schema, rows):
        advisor = PolicyAdvisor(schema, ["u", "d"],
                                records_per_unit_volume=1e9)
        with pytest.warns(DeprecationWarning, match="use advise\\(\\)"):
            policy = advisor.recommend(rows, self.HISTORY)
        advice = advisor.advise(rows, self.HISTORY)
        assert policy.to_dict() == advice.policy.to_dict()

    def test_empty_history_rejected(self, schema, rows):
        advisor = PolicyAdvisor(schema, ["u"])
        with pytest.raises(DGFError, match="at least one"):
            advisor.advise_profiles(advisor.profile_data(rows), [])


# -------------------------------------------------------- divergent search
class TestDivergentSearch:
    STATS = {"u": DimensionStats("u", DataType.BIGINT, 0.0, 1000.0),
             "t": DimensionStats("t", DataType.BIGINT, 0.0, 100.0)}
    SCHEMA = Schema.of(("u", DataType.BIGINT), ("t", DataType.BIGINT))

    def advisor(self):
        return PolicyAdvisor(self.SCHEMA, ["u", "t"])

    def evaluator(self):
        return WhatIfEvaluator(CostModel(), self.STATS, 1e6, 1e8)

    def points_and_wides(self):
        points = [QueryProfile(widths={"u": 1.0, "t": 1.0})
                  for _ in range(3)]
        wides = [QueryProfile(widths={"u": None, "t": None})
                 for _ in range(3)]
        return points + wides

    def test_two_clusters_two_specialists(self):
        report = self.advisor().advise_divergent(
            self.STATS, self.points_and_wides(), self.evaluator(),
            max_layouts=3, table="m", index="i")
        assert len(report.layouts) == 2
        assert report.assignments[:3] == [0] * 3
        assert report.assignments[3:] == [1] * 3
        point_layout = report.layouts[0]
        wide_layout = report.layouts[1]
        # the specialists genuinely diverge, in the expected directions
        assert point_layout.advice.cell_counts["u"] \
            > wide_layout.advice.cell_counts["u"]
        assert report.specialist_for({"u": 0.0, "t": 0.0}) \
            == point_layout.name
        assert report.specialist_for({"u": 1.0, "t": 1.0}) \
            == wide_layout.name
        # divergent fleet never predicted slower than the best uniform
        assert report.predicted_speedup >= 1.0

    def test_identical_workload_yields_one_layout(self):
        profiles = [QueryProfile(widths={"u": 50.0, "t": 5.0})
                    for _ in range(4)]
        report = self.advisor().advise_divergent(
            self.STATS, profiles, self.evaluator(), max_layouts=3)
        assert len(report.layouts) == 1
        assert report.assignments == [0] * 4
        assert report.layouts[0].queries == 4

    def test_single_query_log(self):
        report = self.advisor().advise_divergent(
            self.STATS, [QueryProfile(widths={"u": 1.0, "t": 1.0})],
            self.evaluator(), max_layouts=2)
        assert len(report.layouts) == 1
        assert report.assignments == [0]

    def test_empty_log_rejected(self):
        with pytest.raises(DGFError, match="at least one"):
            self.advisor().advise_divergent(self.STATS, [],
                                            self.evaluator())

    def test_cluster_matching_primary_grid_builds_nothing(self):
        profiles = [QueryProfile(widths={"u": 1.0, "t": 1.0})]
        first = self.advisor().advise_divergent(
            self.STATS, profiles, self.evaluator(), max_layouts=2)
        grid = first.layouts[0].advice.cell_counts
        again = self.advisor().advise_divergent(
            self.STATS, profiles, self.evaluator(), max_layouts=2,
            primary_cell_counts=dict(grid))
        assert again.layouts[0].name == "primary"
        assert again.layout_names() == []
        assert again.specialist_for({"u": 0.0, "t": 0.0}) == "primary"

    def test_report_roundtrips_through_dict(self):
        report = self.advisor().advise_divergent(
            self.STATS, self.points_and_wides(), self.evaluator(),
            table="m", index="i")
        again = AdvisorReport.from_dict(report.to_dict())
        assert again.to_dict() == report.to_dict()
        assert again.predicted_speedup \
            == pytest.approx(report.predicted_speedup)


# -------------------------------------------------------------- query log
class TestQueryLog:
    def entry(self, user: float = 5.0, **overrides) -> LoggedQuery:
        fields = dict(table="meterdata", index="dgf_idx",
                      spans={"userid": (user, user + 1.0), "ts": None},
                      agg_path=True, seconds=0.25)
        fields.update(overrides)
        return LoggedQuery(**fields)

    def test_bounded_capacity_counts_drops(self):
        log = QueryLog(capacity=3)
        for user in range(5):
            log.record(self.entry(float(user)))
        assert len(log) == 3
        assert log.total == 5
        assert log.dropped == 2
        kept = [entry.spans["userid"][0] for entry in log.entries()]
        assert kept == [2.0, 3.0, 4.0]

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            QueryLog(capacity=0)

    def test_window_returns_newest_oldest_first(self):
        log = QueryLog()
        for user in range(4):
            log.record(self.entry(float(user)))
        window = log.window(2)
        assert [e.spans["userid"][0] for e in window] == [2.0, 3.0]
        assert log.window(0) == []

    def test_for_index_filters_case_insensitively(self):
        log = QueryLog()
        log.record(self.entry(1.0))
        log.record(self.entry(2.0, table="OTHER"))
        log.record(self.entry(3.0, index="other_idx"))
        matches = log.for_index("MeterData", "DGF_IDX")
        assert [e.spans["userid"][0] for e in matches] == [1.0]
        assert len(log.for_index("meterdata", "other_idx")) == 1

    def test_widths_from_spans(self):
        entry = self.entry(10.0)
        assert entry.widths == {"userid": 1.0, "ts": None}

    def test_json_roundtrip(self):
        log = QueryLog(capacity=3)
        for user in range(5):
            log.record(self.entry(float(user), layout="adv-0",
                                  records_read=7))
        again = QueryLog.from_json(log.to_json())
        assert again.capacity == 3
        assert again.total == 5
        assert again.dropped == 2
        assert again.entries() == log.entries()

    def test_save_load(self, tmp_path):
        log = QueryLog()
        log.record(self.entry(9.0, agg_path=False))
        path = tmp_path / "querylog.json"
        log.save(path)
        assert QueryLog.load(path).entries() == log.entries()

    def test_clear_keeps_totals(self):
        log = QueryLog()
        log.record(self.entry())
        log.clear()
        assert len(log) == 0
        assert log.total == 1


# ---------------------------------------------------------------- capture
class TestCapture:
    def test_executed_range_query_is_logged(self, dgf_session):
        log = QueryLog()
        dgf_session.query_log = log
        result = dgf_session.execute(
            "SELECT sum(powerconsumed) FROM meterdata "
            "WHERE userid >= 20 AND userid < 120 "
            "AND ts >= '2012-12-01' AND ts < '2012-12-05'")
        assert len(log) == 1
        entry = log.entries()[0]
        assert (entry.table, entry.index) == ("meterdata", "dgf_idx")
        assert entry.agg_path is True
        assert entry.layout is None  # no fleet on this session
        assert entry.seconds == result.stats.time.total > 0
        assert entry.records_matched == result.stats.records_matched
        assert entry.output_records == result.stats.output_records
        assert set(entry.spans) == {"userid", "regionid", "ts"}
        assert entry.spans["regionid"] is None  # unconstrained
        low, high = entry.spans["userid"]
        assert low == 20.0 and high > low

    def test_non_aggregation_query_records_agg_path_false(self, dgf_session):
        dgf_session.query_log = QueryLog()
        dgf_session.execute(
            "SELECT userid, powerconsumed FROM meterdata "
            "WHERE userid >= 10 AND userid < 14")
        entry = dgf_session.query_log.entries()[0]
        assert entry.agg_path is False

    def test_explain_stages_but_never_commits(self, dgf_session):
        dgf_session.query_log = QueryLog()
        dgf_session.execute(
            "EXPLAIN SELECT sum(powerconsumed) FROM meterdata "
            "WHERE userid >= 0 AND userid < 50")
        assert len(dgf_session.query_log) == 0
        # the next executed query logs its own region, not the EXPLAIN's
        dgf_session.execute(
            "SELECT sum(powerconsumed) FROM meterdata "
            "WHERE userid >= 100 AND userid < 110")
        entries = dgf_session.query_log.entries()
        assert len(entries) == 1
        assert entries[0].spans["userid"][0] == 100.0

    def test_unindexed_queries_are_not_logged(self, dgf_session):
        dgf_session.query_log = QueryLog()
        dgf_session.execute("SELECT count(*) FROM meterdata",
                            QueryOptions(use_index=False))
        assert len(dgf_session.query_log) == 0

    def test_capture_honours_capacity(self, dgf_session):
        dgf_session.query_log = QueryLog(capacity=2)
        for low in (0, 30, 60):
            dgf_session.execute(
                f"SELECT count(*) FROM meterdata "
                f"WHERE userid >= {low} AND userid < {low + 10}")
        assert len(dgf_session.query_log) == 2
        assert dgf_session.query_log.dropped == 1


# ----------------------------------------------------------- the facade
class TestAdvisorFacade:
    def observe_and_run(self, session, queries):
        advisor = advisor_for(session)
        advisor.observe()
        for sql in queries:
            session.execute(sql)
        return advisor

    def test_report_requires_observation(self):
        session = tuned_session()
        with pytest.raises(DGFError, match="observe"):
            advisor_for(session).report()

    def test_single_query_report_applies_cleanly(self):
        session = tuned_session()
        advisor = self.observe_and_run(
            session, [point_sql(33, "2012-12-02")])
        report = advisor.report(max_layouts=3)
        assert len(report.layouts) == 1
        assert report.assignments == [0]
        built = advisor.apply(report)
        assert built == report.layout_names()
        index = session.metastore.get_index("meterdata", "dgf_idx")
        assert set(fleet.registered_layouts(index)) == set(built)

    def test_identical_workload_yields_one_layout(self):
        session = tuned_session()
        advisor = self.observe_and_run(session, [wide_sql()] * 3)
        report = advisor.report(max_layouts=3)
        assert len(report.layouts) == 1
        assert report.layouts[0].queries == 3

    def test_divergent_report_and_specialist_routing(self):
        session = tuned_session()
        advisor = self.observe_and_run(
            session, [point_sql(5, "2012-12-01"),
                      point_sql(61, "2012-12-03"),
                      wide_sql(), wide_sql()])
        report = advisor.report()
        assert len(report.layouts) == 2
        advisor.apply(report)
        # a fresh point query routes to the layout the report names
        result = session.execute(point_sql(17, "2012-12-02"))
        entries = advisor.entries()
        signature = advisor._signatures(entries[-1:])[0]
        assert result.plan.access.layout \
            == report.specialist_for(signature)

    def test_reapply_drops_stale_layouts(self):
        session = tuned_session()
        advisor = self.observe_and_run(
            session, [point_sql(5, "2012-12-01"),
                      point_sql(33, "2012-12-02")])
        first = advisor.report()
        advisor.apply(first)
        advisor.log.clear()
        for _ in range(3):
            session.execute(wide_sql())
        second = advisor.report()
        # same positional names, but the workload flipped so the grid must
        # have flipped with it
        assert second.layouts[0].advice.cell_counts \
            != first.layouts[0].advice.cell_counts
        advisor.apply(second)
        index = session.metastore.get_index("meterdata", "dgf_idx")
        assert set(fleet.registered_layouts(index)) \
            == set(second.layout_names())

    def test_drift_lifecycle(self):
        session = tuned_session()
        advisor = self.observe_and_run(
            session, [point_sql(5, "2012-12-01"),
                      point_sql(33, "2012-12-02")])
        assert advisor.drift() == float("inf")  # nothing fitted yet
        advisor.apply(advisor.report())
        advisor.log.clear()
        assert advisor.drift() == 0.0  # empty window
        session.execute(point_sql(61, "2012-12-03"))
        assert advisor.drift() <= advisor.drift_threshold
        advisor.log.clear()
        session.execute(wide_sql())
        assert advisor.drift() > advisor.drift_threshold

    def test_auto_tune_insufficient_log(self):
        session = tuned_session()
        advisor = advisor_for(session, min_queries=50)
        advisor.observe()
        session.execute(point_sql(5, "2012-12-01"))
        run = advisor.auto_tune()
        assert run.succeeded
        assert run.result_of("decide")["decision"] == "insufficient"
        assert run.result_of("retune")["outcome"] == "insufficient"

    def test_auto_tune_stable_then_drift_retunes(self):
        session = tuned_session()
        advisor = advisor_for(session, window=4)
        advisor.observe()
        for user, day in ((5, 1), (33, 2), (61, 3), (17, 4)):
            session.execute(point_sql(user, f"2012-12-0{day}"))
        advisor.apply(advisor.report())
        fitted_grid = dict(advisor.fitted.layouts[0].advice.cell_counts)

        run = advisor.auto_tune()
        assert run.succeeded
        assert run.result_of("decide")["decision"] == "stable"

        # adversarial drift: the workload flips shape mid-window
        for _ in range(4):
            session.execute(wide_sql())
        run = advisor.auto_tune()
        assert run.result_of("decide")["decision"] == "retune"
        assert run.result_of("decide")["drift"] > advisor.drift_threshold
        assert run.result_of("retune")["outcome"].startswith("retuned:")
        assert run.result_of("retune")["outcome"] != "retuned:0"
        assert dict(advisor.fitted.layouts[0].advice.cell_counts) \
            != fitted_grid
        index = session.metastore.get_index("meterdata", "dgf_idx")
        registered = fleet.registered_layouts(index)
        assert set(registered) == set(advisor.fitted.layout_names())
        # the *physical* grid was rebuilt to the new advice, not just
        # renamed over the stale one (layout names are positional)
        for layout in advisor.fitted.layouts:
            assert registered[layout.name].grid_properties() \
                == dict(layout.advice.properties)

    def test_auto_tune_schedules_on_coordinator(self):
        session = tuned_session()
        advisor = advisor_for(session, min_queries=50)
        advisor.observe()
        coordinator = Coordinator(session)
        advisor.auto_tune(coordinator=coordinator, period=60.0)
        fired = coordinator.advance_by(120.0)
        assert len(fired) == 3  # t=0, 60, 120
        assert all(record.run.succeeded for record in fired)
        assert coordinator.runs_of("advisor-retune")

    def test_ledgered_traces_and_metrics(self):
        session = tuned_session()
        advisor = self.observe_and_run(
            session, [point_sql(5, "2012-12-01")])
        advisor.apply(advisor.report())
        names = [trace.root.name for trace in advisor.traces]
        assert names == ["advisor:report", "advisor:apply"]
        report_span = advisor.traces[0].root
        assert report_span.attrs["queries"] == 1
        assert "predicted_speedup" in report_span.attrs
        metrics = {m.name for m in session.metrics.all_metrics()} \
            if hasattr(session.metrics, "all_metrics") else None
        if metrics is not None:
            assert "advisor_reports_total" in metrics

    def test_status_summary(self):
        session = tuned_session()
        advisor = advisor_for(session)
        status = advisor.status()
        assert status["observing"] is False
        assert status["fitted"] is False
        assert status["drift"] is None
        advisor.observe()
        session.execute(point_sql(5, "2012-12-01"))
        advisor.apply(advisor.report())
        status = advisor.status()
        assert status["observing"] and status["fitted"]
        assert status["logged"] == 1
        assert status["layouts"] == advisor.fitted.layout_names()

    def test_stop_observing_detaches_log(self):
        session = tuned_session()
        advisor = advisor_for(session)
        log = advisor.observe()
        assert advisor.observe() is log  # idempotent
        advisor.stop_observing()
        assert session.query_log is None
        session.execute(point_sql(5, "2012-12-01"))
        assert len(log) == 0


# ----------------------------------------------- dgf_layout validation fix
class TestLayoutOptionValidation:
    def test_unknown_layout_without_fleet_fails_at_plan_time(self):
        session = tuned_session()
        with pytest.raises(DGFError, match="no replica fleet"):
            session.execute(wide_sql(), QueryOptions(dgf_layout="nope"))

    def test_error_names_the_live_layouts(self):
        session = tuned_session()
        with pytest.raises(DGFError, match="'primary'"):
            session.execute(wide_sql(),
                            QueryOptions(dgf_layout="adv-0"))

    def test_primary_pin_without_fleet_is_a_noop(self):
        session = tuned_session()
        plain = session.execute(wide_sql())
        pinned = session.execute(wide_sql(),
                                 QueryOptions(dgf_layout="primary"))
        assert pinned.rows == plain.rows
        assert pinned.plan.access.layout is None
