"""Tests for splitting policies and grid geometry."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dgf.policy import DimensionPolicy, SplittingPolicy
from repro.errors import DGFError
from repro.hiveql.predicates import Interval
from repro.storage.schema import DataType, Schema


def numeric_dim(origin=0, interval=10, dtype=DataType.BIGINT, name="u"):
    return DimensionPolicy(name=name, dtype=dtype, origin=origin,
                           interval=interval)


def date_dim(origin="2012-12-01", interval=1, name="ts"):
    return DimensionPolicy(name=name, dtype=DataType.DATE, origin=origin,
                           interval=interval)


class TestDimensionPolicy:
    def test_cell_of_numeric(self):
        dim = numeric_dim(origin=1, interval=3)
        assert dim.cell_of(1) == 0
        assert dim.cell_of(3) == 0
        assert dim.cell_of(4) == 1
        assert dim.cell_of(0) == -1

    def test_standardize_matches_paper_example(self):
        """Figure 6: dimension A with origin 1, interval 3: value 7 -> 7,
        value 9 -> 7 (cell [7, 10))."""
        dim = numeric_dim(origin=1, interval=3, name="A")
        assert dim.standardize(7) == 7
        assert dim.standardize(9) == 7
        assert dim.standardize(8) == 7
        assert dim.standardize(12) == 10

    def test_cell_bounds(self):
        dim = numeric_dim(origin=0, interval=10)
        assert dim.cell_start(2) == 20
        assert dim.cell_end(2) == 30

    def test_float_dimension(self):
        dim = DimensionPolicy(name="d", dtype=DataType.DOUBLE, origin=0,
                              interval=0.01)
        assert dim.cell_of(0.07) == 7
        assert dim.cell_of(0.0799) == 7
        assert dim.cell_of(0.08) == 8

    def test_date_dimension(self):
        dim = date_dim(interval=2)
        assert dim.cell_of("2012-12-01") == 0
        assert dim.cell_of("2012-12-02") == 0
        assert dim.cell_of("2012-12-03") == 1
        assert dim.cell_start(1) == "2012-12-03"
        assert dim.standardize("2012-12-04") == "2012-12-03"

    def test_labels(self):
        assert numeric_dim(origin=1, interval=3).label(2) == "7"
        assert date_dim().label(3) == "2012-12-04"
        dim = DimensionPolicy(name="d", dtype=DataType.DOUBLE, origin=0,
                              interval=0.5)
        assert dim.label(1) == "0.5"
        assert dim.label(2) == "1"  # integral floats render as ints

    def test_parse_label_roundtrip(self):
        for dim in (numeric_dim(origin=1, interval=3), date_dim(),
                    DimensionPolicy(name="d", dtype=DataType.DOUBLE,
                                    origin=0, interval=0.25)):
            for k in (0, 1, 5):
                label = dim.label(k)
                assert dim.cell_of(dim.parse_label(label)) == k

    def test_invalid_interval(self):
        with pytest.raises(DGFError):
            numeric_dim(interval=0)
        with pytest.raises(DGFError):
            numeric_dim(interval=-1)

    def test_discrete_needs_integer_interval(self):
        with pytest.raises(DGFError):
            DimensionPolicy(name="u", dtype=DataType.BIGINT, origin=0,
                            interval=2.5)

    def test_bad_date_origin(self):
        with pytest.raises(DGFError):
            date_dim(origin="12/01/2012")


class TestCoverage:
    def test_continuous_coverage(self):
        dim = DimensionPolicy(name="d", dtype=DataType.DOUBLE, origin=0,
                              interval=10)
        covering = Interval(low=0, high=30)
        assert dim.covers_cell(covering, 1)       # [10, 20) inside [0, 30)
        assert not dim.covers_cell(Interval(low=15, high=30), 1)

    def test_discrete_equality_covers_unit_cell(self):
        """``regionid = 5`` with interval 1 covers the whole cell — the
        mechanism behind Figure 17's precompute win."""
        dim = numeric_dim(origin=0, interval=1, dtype=DataType.INT)
        assert dim.covers_cell(Interval.point(5), 5)

    def test_discrete_coverage_with_wide_cells(self):
        dim = numeric_dim(origin=0, interval=10, dtype=DataType.BIGINT)
        assert dim.covers_cell(Interval(low=10, high=19,
                                        high_inclusive=True), 1)
        assert not dim.covers_cell(Interval(low=10, high=19), 1)

    def test_date_equality_covers_daily_cell(self):
        dim = date_dim(interval=1)
        assert dim.covers_cell(Interval.point("2012-12-30"),
                               dim.cell_of("2012-12-30"))

    def test_unconstrained_dimension_covers(self):
        assert numeric_dim().covers_cell(None, 3)

    def test_overlap(self):
        dim = numeric_dim(origin=0, interval=10)
        assert dim.overlaps_cell(Interval(low=25, high=26), 2)
        assert not dim.overlaps_cell(Interval(low=30, high=40), 2)

    def test_cell_span_clamps_to_bounds(self):
        dim = numeric_dim(origin=0, interval=10)
        assert dim.cell_span(Interval(low=-100, high=1000), 0, 5) == (0, 5)
        assert dim.cell_span(Interval(low=25, high=47), 0, 5) == (2, 4)
        assert dim.cell_span(None, 1, 4) == (1, 4)

    def test_cell_span_exclusive_boundary_high(self):
        dim = numeric_dim(origin=0, interval=10)
        # high = 30 exclusive sits exactly on a boundary: cell 3 excluded
        assert dim.cell_span(Interval(low=0, high=30), 0, 9) == (0, 2)
        assert dim.cell_span(Interval(low=0, high=30, high_inclusive=True),
                             0, 9) == (0, 3)

    def test_cell_span_empty(self):
        dim = numeric_dim(origin=0, interval=10)
        assert dim.cell_span(Interval(low=50, high=40), 0, 9) is None
        assert dim.cell_span(Interval(low=200), 0, 9) is None


class TestSplittingPolicy:
    @pytest.fixture
    def schema(self):
        return Schema.of(("A", DataType.BIGINT), ("B", DataType.INT),
                         ("ts", DataType.DATE))

    def test_from_properties_listing3(self, schema):
        policy = SplittingPolicy.from_properties(
            schema, ["A", "B"], {"A": "1_3", "B": "11_2"})
        assert policy.dimension("a").origin == 1
        assert policy.dimension("b").interval == 2

    def test_missing_spec(self, schema):
        with pytest.raises(DGFError):
            SplittingPolicy.from_properties(schema, ["A", "B"],
                                            {"A": "1_3"})

    def test_date_spec(self, schema):
        policy = SplittingPolicy.from_properties(
            schema, ["ts"], {"ts": "2012-12-01_7d"})
        assert policy.dimension("ts").interval == 7

    def test_date_spec_requires_unit(self, schema):
        with pytest.raises(DGFError):
            SplittingPolicy.from_properties(schema, ["ts"],
                                            {"ts": "2012-12-01_7"})

    def test_bad_spec_format(self, schema):
        with pytest.raises(DGFError):
            SplittingPolicy.from_properties(schema, ["A"], {"A": "nope"})

    def test_key_of_row_matches_paper(self, schema):
        """Figure 5's highlighted GFU: record (9, 14) with A='1_3',
        B='11_2' lives in GFU '7_13'."""
        policy = SplittingPolicy.from_properties(
            schema, ["A", "B"], {"A": "1_3", "B": "11_2"})
        assert policy.key_of_row((9, 14)) == "7_13"
        assert policy.key_of_row((8, 13)) == "7_13"
        assert policy.key_of_row((1, 14)) == "1_13"

    def test_duplicate_dimensions_rejected(self):
        dim = numeric_dim()
        with pytest.raises(DGFError):
            SplittingPolicy([dim, dim])

    def test_serialization_roundtrip(self, schema):
        policy = SplittingPolicy.from_properties(
            schema, ["A", "ts"], {"A": "0_5", "ts": "2012-12-01_2d"})
        again = SplittingPolicy.from_dict(policy.to_dict())
        assert again.names == policy.names
        assert again.key_of_row((7, "2012-12-04")) \
            == policy.key_of_row((7, "2012-12-04"))


@settings(max_examples=100, deadline=None)
@given(origin=st.integers(-100, 100), interval=st.integers(1, 50),
       value=st.integers(-1000, 1000))
def test_property_cell_contains_its_values(origin, interval, value):
    """Every value lands in the cell whose [start, end) range contains it."""
    dim = numeric_dim(origin=origin, interval=interval)
    k = dim.cell_of(value)
    assert dim.cell_start(k) <= value < dim.cell_end(k)


@settings(max_examples=60, deadline=None)
@given(origin=st.floats(-10, 10, allow_nan=False),
       interval=st.floats(0.01, 5.0, allow_nan=False),
       value=st.floats(-100, 100, allow_nan=False))
def test_property_float_cells_consistent(origin, interval, value):
    dim = DimensionPolicy(name="d", dtype=DataType.DOUBLE, origin=origin,
                          interval=interval)
    k = dim.cell_of(value)
    # allow the epsilon guard at boundaries
    assert dim.cell_start(k) <= value + 1e-6
    assert value - 1e-6 < dim.cell_end(k)
