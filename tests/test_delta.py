"""Unit tests for the streaming-delta subsystem (ISSUE 7).

The differential contract lives in ``tests/test_delta_differential.py``;
this file pins the component behaviours: binding validation and
attach/detach semantics, writer admission control, compaction reports,
the planner guards (join build sides, index rebuild) and the delta
observability surface (EXPLAIN residency line, plan fields, metrics).
"""

import pytest

from repro.delta import Compactor, DeltaStore, StreamingWriter
from repro.errors import (DeltaError, ExecutionError, ServiceClosedError,
                          ServiceDegradedError, ServiceOverloadedError)
from repro.service.queryservice import QueryService

from tests.harness.streaming import (INDEX, KEY_COLUMNS, TABLE,
                                     apply_stream, make_session)

MDRQ = ("SELECT sum(powerconsumed), count(*) FROM {t} "
        "WHERE userid >= 10 AND userid < 30 AND ts >= 100 AND ts < 104"
        ).format(t=TABLE)


def attach(session, **kwargs):
    kwargs.setdefault("key_columns", list(KEY_COLUMNS))
    return session.attach_delta(TABLE, INDEX, **kwargs)


# ------------------------------------------------------------------- binding
class TestBinding:
    def test_key_columns_must_cover_every_dimension(self):
        session = make_session()
        with pytest.raises(DeltaError, match="every index dimension"):
            attach(session, key_columns=["userid"])  # ts missing

    def test_upsert_and_delete_need_key_columns(self):
        session = make_session()
        binding = attach(session, key_columns=None)
        assert binding.ingest([("insert", (3, 3, 100, 1.0))]) == 1
        with pytest.raises(DeltaError, match="key_columns"):
            binding.ingest([("upsert", (3, 3, 100, 2.0))])
        with pytest.raises(DeltaError, match="key_columns"):
            binding.ingest([("delete", (3, 100))])

    def test_delete_key_arity_checked(self):
        session = make_session()
        binding = attach(session)
        with pytest.raises(DeltaError, match="key_columns is"):
            binding.ingest([("delete", (3,))])

    def test_unknown_op_kind_rejected(self):
        session = make_session()
        binding = attach(session)
        with pytest.raises(DeltaError, match="unknown delta op kind"):
            binding.ingest([("replace", (3, 3, 100, 1.0))])

    def test_attach_is_idempotent_and_rebind_raises(self):
        session = make_session()
        binding = attach(session)
        assert attach(session) is binding
        # Rebinding the table to any other index name is refused up front
        # (one delta stream per table, like the one-DGFIndex rule).
        with pytest.raises(DeltaError, match="detach_delta"):
            session.attach_delta(TABLE, "other")

    def test_detach_keeps_ops_unless_cleared(self):
        session = make_session()
        binding = attach(session)
        binding.ingest([("insert", (3, 3, 100, 1.0))])
        session.detach_delta(TABLE)
        assert session.delta_binding(TABLE) is None
        # re-attach restores the durable state (seq, cells, key config)
        rebound = attach(session, key_columns=None)
        assert rebound.resident_ops == 1
        assert rebound.key_columns == tuple(KEY_COLUMNS)
        session.detach_delta(TABLE, clear=True)
        assert attach(session).resident_ops == 0

    def test_state_survives_in_kv_not_memory(self):
        session = make_session()
        binding = attach(session)
        binding.ingest([("insert", (3, 3, 100, 1.0)),
                        ("delete", (5, 101))])
        store = DeltaStore(session.kvstore, TABLE, INDEX)
        state = store.load_state()
        assert state["seq"] == 2 and state["ops"] == 2
        assert state["key_columns"] == list(KEY_COLUMNS)
        assert sorted(state["cells"]) == list(binding.resident_cells)

    def test_drop_table_clears_delta_namespace(self):
        session = make_session()
        binding = attach(session)
        binding.ingest([("insert", (3, 3, 100, 1.0))])
        session.execute(f"DROP TABLE {TABLE}")
        assert session.delta_binding(TABLE) is None
        store = DeltaStore(session.kvstore, TABLE, INDEX)
        assert store.load_state() is None
        stop = store.cell_key("\U0010ffff")
        assert not list(session.kvstore.scan(store.cell_key(""), stop))


# -------------------------------------------------------------------- writer
class TestWriterAdmission:
    def test_batched_flush_and_counters(self):
        session = make_session()
        writer = StreamingWriter(attach(session), batch_size=3)
        writer.insert([(3, 3, 100, 1.0), (4, 0, 100, 2.0)])
        assert writer.pending_ops == 2 and writer.flushed_ops == 0
        writer.insert([(5, 1, 100, 3.0)])  # hits batch_size
        assert writer.pending_ops == 0 and writer.flushed_ops == 3
        assert writer.accepted_ops == 3
        counter = session.metrics.counter("delta_ops_total")
        assert counter.value(kind="insert") == 3
        gauge = session.metrics.gauge("delta_resident_ops")
        assert gauge.value() == 3

    def test_closed_writer_refuses(self):
        session = make_session()
        writer = StreamingWriter(attach(session))
        writer.close()
        with pytest.raises(ServiceClosedError):
            writer.insert([(3, 3, 100, 1.0)])

    def test_buffer_overflow_raises(self):
        session = make_session()
        writer = StreamingWriter(attach(session), batch_size=4,
                                 buffer_limit=4)
        writer.insert([(3, 3, 100, 1.0), (4, 0, 100, 2.0)])
        with pytest.raises(ServiceOverloadedError):
            writer.insert([(5, 1, 100, 1.0), (6, 2, 100, 1.0),
                           (7, 3, 100, 1.0)])

    def test_exception_path_keeps_partial_batch_unflushed(self):
        session = make_session()
        binding = attach(session)
        with pytest.raises(RuntimeError):
            with StreamingWriter(binding, batch_size=100) as writer:
                writer.insert([(3, 3, 100, 1.0)])
                raise RuntimeError("caller unwinding")
        assert writer.closed
        assert binding.resident_ops == 0  # the partial batch was dropped

    def test_clean_exit_flushes(self):
        session = make_session()
        binding = attach(session)
        with StreamingWriter(binding, batch_size=100) as writer:
            writer.insert([(3, 3, 100, 1.0)])
        assert writer.closed and binding.resident_ops == 1

    def test_service_closed_refuses_writes(self):
        session = make_session()
        service = QueryService(session, max_workers=1)
        writer = service.streaming_writer(TABLE, INDEX,
                                          key_columns=list(KEY_COLUMNS))
        service.close()
        with pytest.raises(ServiceClosedError):
            writer.insert([(3, 3, 100, 1.0)])

    def test_degraded_service_sheds_when_asked(self):
        from repro.errors import SemanticError
        session = make_session()
        service = QueryService(session, max_workers=1,
                               degraded_error_window=2,
                               degraded_error_threshold=0.5,
                               shed_when_degraded=True)
        try:
            writer = service.streaming_writer(
                TABLE, INDEX, key_columns=list(KEY_COLUMNS))
            assert writer.shed_when_degraded  # inherited from the service
            with pytest.raises(SemanticError):
                service.execute(f"SELECT nope FROM {TABLE}")
            assert service.degraded
            with pytest.raises(ServiceDegradedError):
                writer.insert([(3, 3, 100, 1.0)])
            # an ingest-first writer may opt out of shedding
            tolerant = service.streaming_writer(
                TABLE, INDEX, shed_when_degraded=False)
            assert tolerant.insert([(3, 3, 100, 1.0)]) == 1
        finally:
            service.close()

    def test_threshold_triggers_compaction(self):
        session = make_session()
        writer = StreamingWriter(attach(session), batch_size=2,
                                 compact_threshold=2)
        writer.insert([(3, 3, 100, 1.0), (4, 0, 100, 2.0)])
        assert len(writer.compactions) == 1
        assert writer.compactions[0].folded_rows == 2
        assert writer.binding.resident_ops == 0


# ---------------------------------------------------------------- compaction
class TestCompaction:
    def test_report_full_cycle(self):
        session = make_session()
        binding = attach(session)
        apply_stream(session)
        before_gen = binding.dgf_store.get_meta("generation")
        report = Compactor(binding).run()
        assert report.watermark == binding.current_seq
        assert report.generation == before_gen + 1
        assert report.folded_cells > 0 and report.rewritten_cells > 0
        assert report.compacted_cells == (report.folded_cells
                                          + report.rewritten_cells)
        assert report.pruned_ops == 10
        assert report.suppressed_rows > 0
        assert report.dead_bytes > 0
        assert binding.resident_ops == 0 and binding.resident_cells == ()
        assert report.run.succeeded

    def test_empty_compaction_is_a_noop(self):
        session = make_session()
        binding = attach(session)
        before_gen = binding.dgf_store.get_meta("generation")
        report = Compactor(binding).run()
        assert report.compacted_cells == 0 and report.pruned_ops == 0
        assert report.generation is None
        assert binding.dgf_store.get_meta("generation") == before_gen

    def test_partial_compaction_leaves_rest_resident(self):
        session = make_session()
        binding = attach(session)
        apply_stream(session)
        cells = binding.resident_cells
        report = Compactor(binding).run(cells[:2])
        assert report.compacted_cells == 2
        assert set(binding.resident_cells) == set(cells[2:])
        assert binding.resident_ops > 0

    def test_compaction_spans_and_metrics(self):
        session = make_session()
        binding = attach(session)
        binding.ingest([("insert", (3, 3, 100, 1.0))])
        Compactor(binding).run()
        assert session.metrics.counter(
            "delta_compactions_total").value() == 1
        assert session.metrics.counter(
            "delta_folded_rows_total").value() == 1
        assert session.metrics.gauge("delta_resident_ops").value() == 0


# ------------------------------------------------------------ planner guards
class TestPlannerIntegration:
    def test_explain_shows_residency_only_while_resident(self):
        session = make_session()
        apply_stream(session)
        text = "\n".join(r[0] for r in
                         session.execute("EXPLAIN " + MDRQ).rows)
        assert "delta: merge-on-read cells=" in text
        Compactor(session.delta_binding(TABLE)).run()
        text = "\n".join(r[0] for r in
                         session.execute("EXPLAIN " + MDRQ).rows)
        assert "delta" not in text

    def test_plan_fields_track_residency(self):
        session = make_session()
        apply_stream(session)
        plan = session.execute(MDRQ).plan
        assert plan.delta_cells > 0 and plan.delta_rows > 0
        assert plan.to_dict()["delta_cells"] == plan.delta_cells
        Compactor(session.delta_binding(TABLE)).run()
        plan = session.execute(MDRQ).plan
        assert plan.delta_cells == 0
        assert "delta_cells" not in plan.to_dict()

    def test_rebuild_index_guard(self):
        session = make_session()
        binding = attach(session)
        binding.ingest([("insert", (3, 3, 100, 1.0))])
        with pytest.raises(DeltaError, match="resident streaming ops"):
            session.rebuild_index(TABLE, INDEX)
        Compactor(binding).run()
        session.rebuild_index(TABLE, INDEX)  # clean after compaction

    def test_join_build_side_guard(self):
        session = make_session()
        session.execute("CREATE TABLE userinfo (userid bigint, "
                        "username string)")
        session.load_rows("userinfo", [(u, f"user{u}") for u in range(50)])
        session.execute(
            "CREATE INDEX ui_idx ON TABLE userinfo(userid) AS 'dgf' "
            "IDXPROPERTIES ('userid'='0_10')")
        side = session.attach_delta("userinfo", "ui_idx",
                                    key_columns=["userid"])
        side.ingest([("insert", (60, "user60"))])
        join = (f"SELECT t2.username, t1.powerconsumed FROM {TABLE} t1 "
                "JOIN userinfo t2 ON t1.userid = t2.userid "
                "WHERE t1.userid >= 3 AND t1.userid < 5")
        with pytest.raises(ExecutionError, match="join build side"):
            session.execute(join)
        Compactor(side).run()
        result = session.execute(join)
        assert len(result.rows) == 8
