"""Shared fixtures for the test suite."""

from __future__ import annotations

import datetime
import random

import pytest

from repro.hdfs.filesystem import HDFS
from repro.hive.session import HiveSession, QueryOptions
from repro.storage.schema import DataType, Schema


@pytest.fixture
def fs() -> HDFS:
    """A small filesystem with tiny blocks so files span several blocks."""
    return HDFS(num_datanodes=4, block_size=1024)


@pytest.fixture
def simple_schema() -> Schema:
    return Schema.of(("a", DataType.INT), ("b", DataType.DOUBLE),
                     ("c", DataType.STRING))


def make_session(block_size: int = 64 * 1024,
                 execution=None) -> HiveSession:
    """Fresh session; ``execution`` is an optional
    :class:`~repro.mapreduce.cluster.ExecutionConfig` (None = sequential)."""
    session = HiveSession(num_datanodes=4, execution=execution)
    session.fs.block_size = block_size
    return session


METER_DDL = ("CREATE TABLE meterdata (userid bigint, regionid int, "
             "ts date, powerconsumed double)")


def meter_rows(num_users: int = 200, num_days: int = 6,
               seed: int = 7, num_regions: int = 5):
    """Small deterministic meter-like rows, time-sorted like real data."""
    rng = random.Random(seed)
    regions = [rng.randrange(num_regions) for _ in range(num_users)]
    rows = []
    start = datetime.date(2012, 12, 1)
    for day in range(num_days):
        date_text = (start + datetime.timedelta(days=day)).isoformat()
        for user in range(num_users):
            rows.append((user, regions[user], date_text,
                         round(rng.uniform(0.0, 50.0), 2)))
    return rows


@pytest.fixture
def meter_session() -> HiveSession:
    """A session with a small loaded meterdata table (TextFile)."""
    session = make_session()
    session.execute(METER_DDL)
    rows = meter_rows()
    # two files, as data accumulates over collection periods
    half = len(rows) // 2
    session.load_rows("meterdata", rows[:half])
    session.load_rows("meterdata", rows[half:])
    return session


@pytest.fixture
def dgf_session(meter_session) -> HiveSession:
    meter_session.execute(
        "CREATE INDEX dgf_idx ON TABLE meterdata(userid, regionid, ts) "
        "AS 'dgf' IDXPROPERTIES ('userid'='0_25', 'regionid'='0_1', "
        "'ts'='2012-12-01_2d', "
        "'precompute'='sum(powerconsumed),count(*)')")
    return meter_session


SCAN = QueryOptions(use_index=False)
