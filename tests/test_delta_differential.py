"""Streaming-delta differential suite (ISSUE 7 acceptance).

One session loads a base table, streams a fixed op script (inserts into
existing and brand-new grid cells, upserts, deletes) into the KV delta
store, and replays the same query battery in three physical states —
delta-resident, after a *partial* compaction between two query windows,
and fully compacted.  The contract, asserted byte-for-byte:

* within each state, results/QueryStats/plans/normalized traces are
  identical across ``max_workers`` {1, 4, 8}, with the GFU cache on and
  off (physical KV op counts excluded), and on the vectorized engine
  (modulo its stripped observability layer) — for TEXTFILE and RCFILE;
* row content is identical across the three states, and identical to a
  plain session whose base table eagerly materializes the op script;
* the whole scenario — ingest, partial and full compaction, every query
  window — replayed under a seeded :class:`~repro.faults.FaultPlan`
  (task crashes, stragglers, a dead datanode, KV timeouts) matches the
  fault-free run modulo fault spans, with identical injection/recovery
  registries across worker counts;
* an insert-only stream folded by the compactor is byte-identical —
  per-query fingerprints *and* global ``fs_io`` — to
  :func:`~repro.core.dgf.builder.append_with_dgf` fed the same rows;
* the query service serves delta-resident scans identically to the
  direct session at every concurrency level.
"""

import os
from dataclasses import asdict

from repro.delta import Compactor, StreamingWriter
from repro.faults import FaultPlan, FaultSpec, TASK_CRASH
from repro.service.queryservice import QueryService

from tests.harness.differential import _assert_same, query_fingerprint
from tests.harness.streaming import (INDEX, KEY_COLUMNS, QUERIES,
                                     STREAM_WORKERS, TABLE, apply_stream,
                                     assert_streaming_chaos_equivalent,
                                     assert_streaming_equivalent, base_rows,
                                     make_session, materialized_rows,
                                     phase_rows, run_streaming_workload)

FAULT_SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))

#: map task 0 of every job crashes its first attempt — guarantees the
#: chaos overlap injects at least one fault into every build/compaction
#: job and every query window even at low rates.
ALWAYS_CRASH_MAP0 = FaultSpec(kind=TASK_CRASH, task_kind="map", task_id=0,
                              attempt=0)


def streaming_plan(salt: int) -> FaultPlan:
    """All four fault kinds at once over the streaming scenario (4
    datanodes, replication 2; killing one keeps every block readable)."""
    return FaultPlan(seed=FAULT_SEED + salt,
                     task_crash_rate=0.25,
                     task_straggler_rate=0.2,
                     kv_timeout_rate=0.15,
                     dead_datanodes=(2,),
                     scheduled=(ALWAYS_CRASH_MAP0,))


# ------------------------------------------------------------ core contract
def test_streaming_differential_textfile():
    baseline = assert_streaming_equivalent("TEXTFILE")
    # The three states are physically distinct: everything resident,
    # partially folded, fully folded.
    assert baseline["pre:resident"] > 0
    assert 0 < baseline["mid:resident"] < baseline["pre:resident"]
    assert baseline["post:resident"] == 0


def test_streaming_differential_rcfile():
    baseline = assert_streaming_equivalent("RCFILE")
    assert baseline["pre:resident"] > 0
    assert baseline["post:resident"] == 0


def test_streaming_matches_materialized_baseline():
    """DualTable's defining property: base+delta is a *physical* layout.

    A plain session whose base table eagerly contains the op script's
    outcome must return the same row multisets in every phase of the
    streaming session (ordered identically wherever the query orders)."""
    from repro.hive.session import HiveSession
    session = HiveSession(num_datanodes=4)
    session.execute(
        "CREATE TABLE {t} (userid bigint, regionid int, ts bigint, "
        "powerconsumed double) STORED AS TEXTFILE".format(t=TABLE))
    session.load_rows(TABLE, materialized_rows())
    eager = [sorted(session.execute(sql.format(t=TABLE)).rows)
             for sql in QUERIES]

    streamed = run_streaming_workload()
    for phase in ("pre", "mid", "post"):
        got = [sorted(rows) for rows in phase_rows(streamed, phase)]
        assert got == eager, f"phase {phase} diverged from eager baseline"


def test_streaming_chaos_overlap():
    """Ingest, mid-window partial compaction, full compaction and every
    query replayed under chaos across worker counts (ISSUE 7: compaction
    interleaving with scans under the fault plans)."""
    assert_streaming_chaos_equivalent(streaming_plan(salt=7),
                                      worker_counts=STREAM_WORKERS)


# ----------------------------------------------- compaction vs. bulk append
def test_insert_only_compaction_matches_append():
    """Folding an insert-only delta must be *the same physical build* as
    the bulk `append_with_dgf` path fed the identical rows in the
    identical order — same staged bytes, same generation, same slice
    files, hence byte-identical query fingerprints and global fs_io."""
    from repro.core.dgf.builder import append_with_dgf

    fresh = [(41, 1, 100, 100 / 64.0),
             (45, 1, 104, 104 / 64.0),
             (12, 0, 104, 112 / 64.0),
             (25, 1, 102, 640 / 64.0)]

    streamed = make_session()
    binding = streamed.attach_delta(TABLE, INDEX,
                                    key_columns=list(KEY_COLUMNS))
    with StreamingWriter(binding) as writer:
        writer.insert(fresh)
    report = Compactor(binding).run()
    assert report.folded_rows == len(fresh)
    assert report.rewritten_cells == 0

    appended = make_session()
    append_with_dgf(appended, TABLE, INDEX, list(fresh))

    fp_streamed = {}
    fp_appended = {}
    for position, sql in enumerate(QUERIES):
        fp_streamed[f"query:{position}"] = query_fingerprint(
            streamed.execute(sql.format(t=TABLE)))
        fp_appended[f"query:{position}"] = query_fingerprint(
            appended.execute(sql.format(t=TABLE)))
    fp_streamed["fs_io"] = asdict(streamed.fs.io)
    fp_appended["fs_io"] = asdict(appended.fs.io)
    _assert_same(fp_appended, fp_streamed, "insert-only fold vs append")


# ------------------------------------------------------------- service path
def test_service_serves_delta_resident_scans():
    """The query service must serve merge-on-read scans byte-identically
    to the direct session while ops are resident, at every concurrency."""
    direct = make_session()
    apply_stream(direct)
    baseline = {}
    for position, sql in enumerate(QUERIES):
        baseline[f"query:{position}"] = query_fingerprint(
            direct.execute(sql.format(t=TABLE)))
    baseline["fs_io"] = asdict(direct.fs.io)
    baseline["jobs_run"] = direct.engine.jobs_run

    for concurrency in (1, 4):
        session = make_session()
        apply_stream(session)
        with QueryService(session, max_workers=concurrency,
                          queue_depth=len(QUERIES)) as service:
            results = service.run_all(
                [(sql.format(t=TABLE), None) for sql in QUERIES])
        candidate = {f"query:{i}": query_fingerprint(r)
                     for i, r in enumerate(results)}
        candidate["fs_io"] = asdict(session.fs.io)
        candidate["jobs_run"] = session.engine.jobs_run
        _assert_same(baseline, candidate,
                     f"service delta-resident concurrency={concurrency}")
