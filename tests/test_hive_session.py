"""End-to-end tests of the HiveSession: DDL, loading, SELECT shapes."""

import pytest

from repro.errors import (ExecutionError, MetastoreError, SemanticError)
from repro.hive.session import HiveSession, QueryOptions
from tests.conftest import METER_DDL, SCAN, make_session, meter_rows


class TestDDL:
    def test_create_and_describe(self):
        session = make_session()
        session.execute("CREATE TABLE t (a int, b string)")
        described = session.execute("DESCRIBE t")
        assert described.rows == [("a", "int"), ("b", "string")]

    def test_show_tables(self):
        session = make_session()
        session.execute("CREATE TABLE b (x int)")
        session.execute("CREATE TABLE a (x int)")
        assert session.execute("SHOW TABLES").rows == [("a",), ("b",)]

    def test_if_not_exists(self):
        session = make_session()
        session.execute("CREATE TABLE t (a int)")
        result = session.execute("CREATE TABLE IF NOT EXISTS t (a int)")
        assert result.rows == [("EXISTS",)]

    def test_drop_table_removes_data(self):
        session = make_session()
        session.execute("CREATE TABLE t (a int)")
        session.load_rows("t", [(1,), (2,)])
        session.execute("DROP TABLE t")
        assert session.execute("SHOW TABLES").rows == []
        assert not session.fs.exists("/warehouse/t")

    def test_drop_if_exists(self):
        result = make_session().execute("DROP TABLE IF EXISTS ghost")
        assert result.rows == [("SKIPPED",)]

    def test_show_indexes(self):
        session = make_session()
        session.execute("CREATE TABLE t (a int)")
        session.load_rows("t", [(i,) for i in range(10)])
        session.execute("CREATE INDEX i ON TABLE t(a) AS 'compact'")
        rows = session.execute("SHOW INDEXES ON t").rows
        assert rows[0][:2] == ("i", "compact")
        assert rows[0][3] is True

    def test_deferred_rebuild(self):
        session = make_session()
        session.execute("CREATE TABLE t (a int)")
        session.load_rows("t", [(1,)])
        result = session.execute("CREATE INDEX i ON TABLE t(a) "
                                 "AS 'compact' WITH DEFERRED REBUILD")
        assert result.rows == [("DEFERRED",)]
        report = session.rebuild_index("t", "i")
        assert report.index_size_bytes > 0

    def test_create_index_unknown_column(self):
        session = make_session()
        session.execute("CREATE TABLE t (a int)")
        with pytest.raises(Exception):
            session.execute("CREATE INDEX i ON TABLE t(zz) AS 'compact'")


class TestLoading:
    def test_load_validates_rows(self):
        session = make_session()
        session.execute("CREATE TABLE t (a int)")
        with pytest.raises(Exception):
            session.load_rows("t", [("not-int",)])

    def test_each_load_appends_a_file(self):
        session = make_session()
        session.execute("CREATE TABLE t (a int)")
        session.load_rows("t", [(1,)])
        session.load_rows("t", [(2,)])
        assert len(session.fs.list_files("/warehouse/t")) == 2
        assert session.table_row_count("t") == 2


class TestSelect:
    @pytest.fixture
    def session(self, meter_session):
        return meter_session

    def test_projection(self, session):
        result = session.execute(
            "SELECT userid, powerconsumed FROM meterdata "
            "WHERE userid = 3 AND ts = '2012-12-01'", SCAN)
        assert len(result.rows) == 1
        assert result.rows[0][0] == 3
        assert result.columns == ["userid", "powerconsumed"]

    def test_select_star(self, session):
        result = session.execute(
            "SELECT * FROM meterdata WHERE userid = 0", SCAN)
        assert len(result.rows) == 6  # one per day
        assert len(result.rows[0]) == 4

    def test_global_aggregate(self, session):
        result = session.execute(
            "SELECT count(*), sum(powerconsumed), min(powerconsumed), "
            "max(powerconsumed), avg(powerconsumed) FROM meterdata", SCAN)
        count, total, low, high, mean = result.rows[0]
        assert count == 1200
        assert low <= mean <= high
        assert mean == pytest.approx(total / count)

    def test_aggregate_over_empty_selection(self, session):
        result = session.execute(
            "SELECT count(*), sum(powerconsumed) FROM meterdata "
            "WHERE userid = 99999", SCAN)
        assert result.rows == [(0, None)]

    def test_count_distinct(self, session):
        result = session.execute(
            "SELECT count(DISTINCT userid) FROM meterdata", SCAN)
        assert result.scalar() == 200

    def test_group_by(self, session):
        result = session.execute(
            "SELECT ts, count(*) FROM meterdata GROUP BY ts", SCAN)
        assert len(result.rows) == 6
        assert all(count == 200 for _ts, count in result.rows)
        assert [ts for ts, _ in result.rows] == sorted(
            ts for ts, _ in result.rows)

    def test_group_by_expression_alias(self, session):
        result = session.execute(
            "SELECT regionid, sum(powerconsumed) AS total FROM meterdata "
            "GROUP BY regionid", SCAN)
        assert result.columns == ["regionid", "total"]

    def test_order_by_limit(self, session):
        result = session.execute(
            "SELECT ts, sum(powerconsumed) FROM meterdata GROUP BY ts "
            "ORDER BY ts DESC LIMIT 2", SCAN)
        assert len(result.rows) == 2
        assert result.rows[0][0] > result.rows[1][0]

    def test_non_grouped_item_rejected(self, session):
        with pytest.raises(SemanticError):
            session.execute("SELECT userid, sum(powerconsumed) "
                            "FROM meterdata GROUP BY regionid", SCAN)

    def test_join(self, session):
        session.execute("CREATE TABLE userinfo (userid bigint, "
                        "username string)")
        session.load_rows("userinfo",
                          [(u, f"user{u}") for u in range(200)])
        result = session.execute(
            "SELECT t2.username, t1.powerconsumed FROM meterdata t1 "
            "JOIN userinfo t2 ON t1.userid = t2.userid "
            "WHERE t1.userid = 5 AND t1.ts = '2012-12-02'", SCAN)
        assert len(result.rows) == 1
        assert result.rows[0][0] == "user5"

    def test_join_with_group_by(self, session):
        session.execute("CREATE TABLE userinfo (userid bigint, "
                        "username string)")
        session.load_rows("userinfo",
                          [(u, f"user{u}") for u in range(200)])
        result = session.execute(
            "SELECT t2.username, sum(t1.powerconsumed) FROM meterdata t1 "
            "JOIN userinfo t2 ON t1.userid = t2.userid "
            "WHERE t1.userid < 3 GROUP BY t2.username", SCAN)
        assert len(result.rows) == 3

    def test_insert_overwrite_directory(self, session):
        session.execute(
            "INSERT OVERWRITE DIRECTORY '/tmp/out' "
            "SELECT userid FROM meterdata WHERE userid < 2 "
            "AND ts = '2012-12-01'", SCAN)
        content = session.fs.read_bytes("/tmp/out/000000_0")
        assert content == b"0\n1\n"

    def test_explain(self, session):
        result = session.execute("EXPLAIN SELECT sum(powerconsumed) "
                                 "FROM meterdata WHERE userid < 5")
        text = "\n".join(r[0] for r in result.rows)
        assert "meterdata" in text
        assert "shape: group/aggregate" in text

    def test_scalar_helper(self, session):
        result = session.execute("SELECT count(*) FROM meterdata", SCAN)
        assert result.scalar() == 1200
        multi = session.execute("SELECT ts, count(*) FROM meterdata "
                                "GROUP BY ts", SCAN)
        with pytest.raises(ExecutionError):
            multi.scalar()

    def test_stats_populated(self, session):
        result = session.execute("SELECT count(*) FROM meterdata "
                                 "WHERE userid < 10", SCAN)
        stats = result.stats
        assert stats.records_read == 1200
        assert stats.records_matched == 60
        assert stats.bytes_read > 0
        assert stats.jobs == 1
        assert stats.simulated_seconds > 0
        assert stats.index_used is None

    def test_forced_missing_index(self, session):
        with pytest.raises(MetastoreError):
            session.execute("SELECT count(*) FROM meterdata",
                            QueryOptions(index_name="nope"))

    def test_unknown_table(self, session):
        with pytest.raises(MetastoreError):
            session.execute("SELECT a FROM ghost")


class TestPartitionedTables:
    @pytest.fixture
    def session(self):
        session = make_session()
        session.execute("CREATE TABLE logs (v int, dt date) "
                        "PARTITIONED BY (dt date)")
        session.load_rows("logs", [(i, f"2012-12-0{1 + i % 3}")
                                   for i in range(30)])
        return session

    def test_partition_directories(self, session):
        table = session.metastore.get_table("logs")
        assert len(table.partitions) == 3
        assert session.fs.exists("/warehouse/logs/dt=2012-12-01")

    def test_pruning_reduces_reads(self, session):
        full = session.execute("SELECT count(*) FROM logs", SCAN)
        pruned = session.execute(
            "SELECT count(*) FROM logs WHERE dt = '2012-12-02'", SCAN)
        assert full.scalar() == 30
        assert pruned.scalar() == 10
        assert pruned.stats.records_read < full.stats.records_read

    def test_range_pruning(self, session):
        result = session.execute(
            "SELECT count(*) FROM logs WHERE dt >= '2012-12-02'", SCAN)
        assert result.scalar() == 20
        assert result.stats.records_read == 20

    def test_namenode_memory_grows_with_partitions(self, session):
        memory = session.fs.namenode.metadata_memory_bytes()
        assert memory >= 3 * 150  # at least one object per partition dir
