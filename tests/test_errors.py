"""The error-hierarchy contract: most specific subclass, transient axis.

The module docstring of :mod:`repro.errors` *is* the documented contract
(doctested here); the explicit assertions below pin the full transient
branch so a new error class cannot silently drop its marker.
"""

import doctest

import repro.errors as errors
from repro.errors import (DataNodeUnavailable, HDFSError, KVStoreError,
                          KVStoreTimeout, MapReduceError, ReproError,
                          ServiceDegradedError, ServiceError,
                          TaskAttemptFailed, TransientError)

TRANSIENT = (DataNodeUnavailable, TaskAttemptFailed, KVStoreTimeout,
             ServiceDegradedError)

SUBSYSTEM_BASE = {
    DataNodeUnavailable: HDFSError,
    TaskAttemptFailed: MapReduceError,
    KVStoreTimeout: KVStoreError,
    ServiceDegradedError: ServiceError,
}


def test_module_doctests():
    results = doctest.testmod(errors)
    assert results.failed == 0
    assert results.attempted >= 7, "the documented contract lost examples"


def test_transient_errors_carry_both_bases():
    for cls in TRANSIENT:
        assert issubclass(cls, TransientError), cls
        assert issubclass(cls, SUBSYSTEM_BASE[cls]), cls
        assert issubclass(cls, ReproError), cls


def test_catching_transient_catches_every_recoverable_fault():
    for cls in TRANSIENT:
        try:
            raise cls("injected")
        except TransientError as exc:
            assert isinstance(exc, cls)


def test_permanent_errors_are_not_transient():
    transient_names = {cls.__name__ for cls in TRANSIENT}
    transient_names.add("TransientError")
    for name in dir(errors):
        obj = getattr(errors, name)
        if not (isinstance(obj, type) and issubclass(obj, ReproError)):
            continue
        if name in transient_names:
            continue
        assert not issubclass(obj, TransientError), \
            f"{name} unexpectedly carries the transient marker"
