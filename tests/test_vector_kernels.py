"""Property tests: batch kernels == the row evaluator, lane for lane.

Hypothesis generates typed expression trees (comparisons, Kleene
AND/OR/NOT, arithmetic, BETWEEN, IN) over column batches seeded with the
values that break naive vectorization — NaN, ``±0.0``, infinities,
int64-boundary integers (``±2**31``, ``2**53``, ``-2**63``), integers
beyond int64, empty strings, empty batches and single-row batches — and
asserts that whenever :func:`repro.vector.kernels.compile_kernel`
produces a kernel *and* the kernel accepts the batch, its lanes equal
:func:`repro.hiveql.evaluator.compile_expr` applied row by row,
bit-for-bit (NaN is NaN, ``-0.0`` keeps its sign, bool stays bool).
A kernel may instead *decline* — return ``None`` at compile time or
raise ``KernelFallback``/``ArrayUnavailable`` on a hostile batch — but
it may never disagree.

The aggregate folds get the same treatment: float ``sum``/``avg`` must
replicate the row engine's strictly sequential merge chain (pairwise
``np.sum`` rounds differently and is asserted to differ on the
regression vector), ``min``/``max`` its order-dependent NaN/``-0.0``
tie-breaking, int ``sum`` Python's exact arithmetic.

NULLs enter through expressions (``NULL`` literals, ``x / 0``) and
through aggregate null masks, exactly as in production: stored columns
never contain ``None``.
"""

import math
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.hive.aggregates import CompiledAggregate
from repro.hiveql import ast
from repro.hiveql.evaluator import (ColumnResolver, compile_expr,
                                    predicate_fn)
from repro.storage.schema import Column, DataType, Schema
from repro.vector import runtime
from repro.vector.aggfold import fold_array, fold_python_values
from repro.vector.batch import ArrayUnavailable, ColumnBatch
from repro.vector.kernels import (KernelFallback, compile_kernel,
                                  is_true_mask)
from repro.vector.plan import _select_python

np = runtime.numpy_module()
pytestmark = pytest.mark.skipif(np is None, reason="NumPy unavailable")

SCHEMA = Schema([Column("a", DataType.BIGINT), Column("b", DataType.INT),
                 Column("x", DataType.DOUBLE), Column("y", DataType.DOUBLE),
                 Column("s", DataType.STRING)])
RESOLVER = ColumnResolver.for_schema(SCHEMA)

_FALLBACK = (KernelFallback, ArrayUnavailable)


# ------------------------------------------------------------------- values
#: int64 boundaries plus values past them (the latter force
#: ``ArrayUnavailable``), mixed with small everyday integers.
INTS = st.one_of(
    st.integers(-6, 6),
    st.sampled_from([2 ** 31, -(2 ** 31), 2 ** 53, -(2 ** 53) - 1,
                     2 ** 62, -(2 ** 63), 2 ** 63, 2 ** 70]),
    st.integers(-2 ** 40, 2 ** 40))

FLOATS = st.one_of(
    st.sampled_from([0.0, -0.0, math.nan, math.inf, -math.inf,
                     1e16, -1e16, 5e-324, 0.1, 0.2]),
    st.floats(width=64))

STRINGS = st.text(alphabet="ab-0é", max_size=3)

INT_LITERALS = st.one_of(
    st.integers(-6, 6),
    st.sampled_from([0, 1, 2 ** 31 - 1, 2 ** 31, 2 ** 53, 2 ** 60]))
FLOAT_LITERALS = st.sampled_from([0.0, -0.0, 1.5, -2.0, 1e16, math.inf])


@st.composite
def batches(draw):
    num_rows = draw(st.one_of(st.just(0), st.just(1), st.integers(2, 10)))
    columns = [draw(st.lists(values, min_size=num_rows, max_size=num_rows))
               for values in (INTS, INTS, FLOATS, FLOATS, STRINGS)]
    return ColumnBatch(SCHEMA, num_rows, columns)


# -------------------------------------------------------------- expressions
def _col(name):
    return ast.ColumnRef(name)


@st.composite
def numeric_exprs(draw, depth=2):
    if depth == 0 or draw(st.integers(0, 2)) == 0:
        return draw(st.one_of(
            st.sampled_from([_col("a"), _col("b"), _col("x"), _col("y")]),
            INT_LITERALS.map(ast.Literal),
            FLOAT_LITERALS.map(ast.Literal),
            st.just(ast.Literal(None))))
    op = draw(st.sampled_from(["+", "-", "*", "/", "neg"]))
    if op == "neg":
        return ast.UnaryOp("-", draw(numeric_exprs(depth=depth - 1)))
    return ast.BinaryOp(op, draw(numeric_exprs(depth=depth - 1)),
                        draw(numeric_exprs(depth=depth - 1)))


@st.composite
def string_exprs(draw):
    return draw(st.one_of(st.just(_col("s")), STRINGS.map(ast.Literal)))


@st.composite
def bool_exprs(draw, depth=2):
    kind = draw(st.sampled_from(
        ["cmp", "cmp", "between", "in"]
        + (["and", "or", "not"] if depth > 0 else [])))
    if kind in ("and", "or"):
        return ast.BinaryOp(kind.upper(),
                            draw(bool_exprs(depth=depth - 1)),
                            draw(bool_exprs(depth=depth - 1)))
    if kind == "not":
        return ast.UnaryOp("NOT", draw(bool_exprs(depth=depth - 1)))
    stringy = draw(st.booleans())
    operand = string_exprs() if stringy else numeric_exprs(depth=1)
    if kind == "cmp":
        op = draw(st.sampled_from(["=", "!=", "<", "<=", ">", ">="]))
        return ast.BinaryOp(op, draw(operand), draw(operand))
    if kind == "between":
        return ast.Between(draw(operand), draw(operand), draw(operand))
    options = tuple(draw(st.lists(operand, min_size=1, max_size=3)))
    if draw(st.booleans()):
        options = options + (ast.Literal(None),)
    return ast.InList(draw(operand), options)


# ------------------------------------------------------------- equivalence
def same_scalar(got, expected):
    """Bit-level scalar equality: NaN == NaN, ``-0.0 != 0.0``, bool is
    not int."""
    if got is None or expected is None:
        return got is None and expected is None
    if type(got) is not type(expected):
        return False
    if isinstance(got, float):
        if math.isnan(got) or math.isnan(expected):
            return math.isnan(got) and math.isnan(expected)
        return (got == expected
                and math.copysign(1.0, got) == math.copysign(1.0, expected))
    return got == expected


def check_kernel_against_rows(expr, batch):
    """Run ``expr`` both ways over ``batch``; return True when the kernel
    path actually produced lanes (False = declined, which is always
    legal).  Any disagreement asserts."""
    kernel = compile_kernel(expr, RESOLVER, SCHEMA, np)
    if kernel is None:
        return False
    try:
        value = kernel(batch)
        lanes = _select_python(np, value, np.arange(batch.num_rows))
    except _FALLBACK:
        return False
    rowfn = compile_expr(expr, RESOLVER)
    expected = [rowfn(row) for row in batch.rows()]
    assert len(lanes) == batch.num_rows
    for i, (got, want) in enumerate(zip(lanes, expected)):
        assert same_scalar(got, want), (
            f"{expr.render()} row {i} {batch.rows()[i]!r}: "
            f"kernel={got!r} row-engine={want!r}")
    return True


@settings(max_examples=400, deadline=None)
@given(expr=bool_exprs(), batch=batches())
def test_bool_kernels_match_row_evaluator(expr, batch):
    check_kernel_against_rows(expr, batch)


@settings(max_examples=400, deadline=None)
@given(expr=numeric_exprs(), batch=batches())
def test_numeric_kernels_match_row_evaluator(expr, batch):
    check_kernel_against_rows(expr, batch)


@settings(max_examples=200, deadline=None)
@given(expr=bool_exprs(), batch=batches())
def test_where_mask_matches_predicate_fn(expr, batch):
    """The WHERE coercion (TRUE keeps, FALSE/NULL drops) must agree with
    ``predicate_fn``'s ``is True`` row filter."""
    kernel = compile_kernel(expr, RESOLVER, SCHEMA, np)
    if kernel is None:
        return
    try:
        mask = is_true_mask(np, kernel(batch), batch.num_rows)
    except _FALLBACK:
        return
    keep = predicate_fn(expr, RESOLVER)
    assert mask.tolist() == [keep(row) for row in batch.rows()]


def test_every_supported_operator_actually_vectorizes():
    """One expression per supported operator class must compile to a
    kernel and agree on a batch exercising NaN, ``-0.0`` and NULL-making
    division — guarding against the property tests silently degrading
    into all-declined runs."""
    batch = ColumnBatch(SCHEMA, 4, [
        [1, -3, 6, 0], [2, 2, 2, 2],
        [0.0, -0.0, math.nan, 1e16], [1.0, -0.0, 2.5, math.inf],
        ["ab", "", "b-", "a"]])
    supported = [
        ast.BinaryOp("<", _col("a"), ast.Literal(2)),
        ast.BinaryOp("=", _col("x"), _col("y")),
        ast.BinaryOp(">=", _col("s"), ast.Literal("a")),
        ast.BinaryOp("AND",
                     ast.BinaryOp(">", _col("x"), ast.Literal(0.0)),
                     ast.BinaryOp("OR",
                                  ast.BinaryOp("=", _col("b"),
                                               ast.Literal(2)),
                                  ast.Literal(None))),
        ast.UnaryOp("NOT", ast.BinaryOp("!=", _col("a"), _col("b"))),
        ast.UnaryOp("-", _col("x")),
        ast.BinaryOp("+", _col("a"), _col("b")),
        ast.BinaryOp("-", _col("x"), _col("y")),
        ast.BinaryOp("*", _col("a"), ast.Literal(3)),
        ast.BinaryOp("/", _col("x"), _col("y")),
        ast.BinaryOp("/", _col("a"), ast.Literal(0)),  # NULL lanes
        ast.Between(_col("a"), ast.Literal(0), ast.Literal(5)),
        ast.Between(_col("s"), ast.Literal("a"), ast.Literal("b")),
        ast.InList(_col("b"), (ast.Literal(2), ast.Literal(9))),
        ast.InList(_col("s"), (ast.Literal("ab"), ast.Literal(None))),
    ]
    for expr in supported:
        assert check_kernel_against_rows(expr, batch), expr.render()
    for empty_rows in (ColumnBatch(SCHEMA, 0, [[], [], [], [], []]),
                       ColumnBatch(SCHEMA, 1,
                                   [[0], [1], [-0.0], [math.nan], [""]])):
        for expr in supported:
            assert check_kernel_against_rows(expr, empty_rows)


def test_unsupported_expressions_do_not_compile():
    """The deliberately row-only classes must decline at compile time."""
    row_only = [
        ast.BinaryOp("%", _col("a"), ast.Literal(7)),
        ast.BinaryOp("LIKE", _col("s"), ast.Literal("a%")),
        ast.FuncCall("abs", (_col("x"),)),
        ast.BinaryOp("=", _col("s"), ast.Literal(3)),      # str vs int
        ast.BinaryOp("<", _col("a"), ast.Literal(2 ** 60)),  # huge literal
        ast.BinaryOp("+", _col("s"), ast.Literal("a")),
    ]
    for expr in row_only:
        assert compile_kernel(expr, RESOLVER, SCHEMA, np) is None, \
            expr.render()


def test_int64_hostile_batches_fall_back_not_wrap():
    """Columns holding ``-2**63`` (negation wraps, and ``np.abs`` wraps
    inside a naive guard) or values past int64 must raise a fallback,
    never return wrapped lanes."""
    minint = ColumnBatch(SCHEMA, 2, [[-(2 ** 63), 1], [2, 2],
                                     [0.0, 0.0], [0.0, 0.0], ["", ""]])
    for expr in (ast.UnaryOp("-", _col("a")),
                 ast.BinaryOp("*", _col("a"), ast.Literal(2)),
                 ast.BinaryOp("+", _col("a"), _col("b"))):
        kernel = compile_kernel(expr, RESOLVER, SCHEMA, np)
        assert kernel is not None
        with pytest.raises(_FALLBACK):
            kernel(minint)
    beyond = ColumnBatch(SCHEMA, 1, [[2 ** 70], [1], [0.0], [0.0], [""]])
    kernel = compile_kernel(ast.BinaryOp("<", _col("a"), ast.Literal(0)),
                            RESOLVER, SCHEMA, np)
    with pytest.raises(ArrayUnavailable):
        kernel(beyond)


def test_null_between_bound_falls_back():
    """The row engine raises TypeError on a NULL BETWEEN bound.  A
    *literal* NULL bound is declined at compile time; a bound that only
    evaluates to NULL at runtime (``y / 0``) compiles but must hand the
    batch back instead of guessing."""
    assert compile_kernel(
        ast.Between(_col("x"), ast.Literal(None), ast.Literal(1.0)),
        RESOLVER, SCHEMA, np) is None
    batch = ColumnBatch(SCHEMA, 1, [[1], [1], [0.5], [0.5], ["a"]])
    kernel = compile_kernel(
        ast.Between(_col("x"),
                    ast.BinaryOp("/", _col("y"), ast.Literal(0)),
                    ast.Literal(1.0)),
        RESOLVER, SCHEMA, np)
    assert kernel is not None
    with pytest.raises(KernelFallback):
        kernel(batch)


# --------------------------------------------------------- aggregate folds
def _agg(name, column="x"):
    args = (ast.Star(),) if column is None else (_col(column),)
    return CompiledAggregate.compile(ast.FuncCall(name, args), RESOLVER)


def _bits(value):
    if isinstance(value, float):
        return struct.pack("<d", value)
    return value


def _states_equal(left, right):
    if isinstance(left, tuple) and isinstance(right, tuple):
        return (len(left) == len(right)
                and all(_states_equal(a, b) for a, b in zip(left, right)))
    return type(left) is type(right) and _bits(left) == _bits(right)


def _fold_in_chunks(agg, values, split, nulls=None):
    """Fold ``values`` through ``fold_array`` as two batches split at
    ``split`` (the cross-batch state-continuation path)."""
    state = agg.function.initial()
    for lo, hi in ((0, split), (split, len(values))):
        chunk = values[lo:hi]
        data = np.array(chunk, dtype=np.float64)
        null = None
        if nulls is not None and any(nulls[lo:hi]):
            null = np.array(nulls[lo:hi], dtype=bool)
        state = fold_array(np, agg, state, data, null)
    return state


@settings(max_examples=300, deadline=None)
@given(values=st.lists(FLOATS, max_size=24),
       nulls=st.lists(st.booleans(), max_size=24),
       split=st.integers(0, 24),
       name=st.sampled_from(["sum", "avg", "min", "max", "count"]))
def test_float_folds_replicate_row_merge_chain(values, nulls, split, name):
    nulls = (nulls + [False] * len(values))[:len(values)]
    split = min(split, len(values))
    agg = _agg(name)
    reference = fold_python_values(
        agg, agg.function.initial(),
        [None if is_null else v for v, is_null in zip(values, nulls)])
    state = _fold_in_chunks(agg, values, split, nulls)
    assert _states_equal(state, reference), (name, values, nulls, split)


@settings(max_examples=200, deadline=None)
@given(values=st.lists(INTS.filter(lambda v: abs(v) < 2 ** 63),
                       max_size=20),
       split=st.integers(0, 20))
def test_int_sum_folds_exactly(values, split):
    split = min(split, len(values))
    agg = _agg("sum", "a")
    state = agg.function.initial()
    for chunk in (values[:split], values[split:]):
        state = fold_array(np, agg, state,
                           np.array(chunk, dtype=np.int64), None)
    assert _states_equal(
        state, fold_python_values(agg, agg.function.initial(), values))


def test_float_sum_is_sequential_not_pairwise():
    """The regression vector where fold order is visible: sequentially,
    ``1e16 + 1.0`` rounds away every time (the row engine's answer);
    NumPy's pairwise ``np.sum`` accumulates the 1.0s first and differs.
    The vector fold must produce the row engine's answer."""
    values = [1e16] + [1.0] * 255
    agg = _agg("sum")
    sequential = fold_python_values(agg, agg.function.initial(), values)
    assert sequential == 1e16
    pairwise = float(np.sum(np.array(values, dtype=np.float64)))
    assert pairwise != sequential  # fold order is genuinely observable
    for split in (0, 1, 128, 255):
        assert _fold_in_chunks(agg, values, split) == sequential


def test_avg_fold_matches_minus_zero_shift():
    """``avg`` accumulates ``0.0 + value``: a lone ``-0.0`` makes the
    total ``+0.0`` in the row engine, and the fold must match bit-wise."""
    agg = _agg("avg")
    reference = fold_python_values(agg, agg.function.initial(), [-0.0])
    state = _fold_in_chunks(agg, [-0.0], 0)
    assert _states_equal(state, reference)
    assert math.copysign(1.0, state[0]) == 1.0


def test_minmax_fold_keeps_nan_and_zero_sign_order():
    """builtin ``min``/``max`` are order-dependent under NaN and ``±0.0``
    ties; the fold iterates scalars in row order to match exactly."""
    for name in ("min", "max"):
        agg = _agg(name)
        for values in ([math.nan, 1.0, 2.0], [1.0, math.nan, 2.0],
                       [0.0, -0.0], [-0.0, 0.0]):
            for split in range(len(values) + 1):
                assert _states_equal(
                    _fold_in_chunks(agg, values, split),
                    fold_python_values(agg, agg.function.initial(), values))


def test_empty_and_all_null_chunks_leave_state_untouched():
    agg = _agg("sum")
    state = fold_array(np, agg, agg.function.initial(),
                       np.array([], dtype=np.float64), None)
    assert state is agg.function.initial()
    state = fold_array(np, agg, 3.5, np.array([1.0, 2.0]),
                       np.array([True, True]))
    assert state == 3.5
