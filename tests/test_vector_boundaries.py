"""Batch decoders at the edges: split, row-group and GFU-slice boundaries.

The batch readers (:mod:`repro.vector.decode`) promise two things the
differential suite relies on: they yield **exactly** the rows the row
input formats yield for the same split — first/last partial batches at a
split or slice boundary included — and they issue exactly the same
filesystem preads (``bytes_read`` / ``read_ops`` / ``seeks``), because
per-task I/O counters are part of the byte-identity contract.

These tests pin that down directly against :meth:`InputFormat.read_split`
for hostile boundaries: splits starting and ending mid-line, splits
owning a partial first and last row group, GFU slice ranges starting
mid-line, and empty/degenerate ranges.  They run with or without NumPy —
decoding to Python lists is NumPy-free by design.

Also here: the ``estimate_size`` regression — NumPy integer/float
scalars must be accounted like their Python counterparts (8 bytes), not
fall through to the generic ``sys.getsizeof`` branch, which would make
shuffle spill accounting differ between the two engines.
"""

import types

import pytest

from repro.core.dgf.inputformat import SLICES_META_KEY, DgfSliceInputFormat
from repro.hdfs.filesystem import HDFS
from repro.mapreduce.engine import estimate_size
from repro.mapreduce.splits import (FileSplit, RCFileRowInputFormat,
                                    TextRowInputFormat)
from repro.storage.rcfile import RCFileReader, RCFileWriter
from repro.storage.schema import Column, DataType, Schema
from repro.storage.textfile import TextFileWriter
from repro.vector.decode import batch_reader_for

SCHEMA = Schema([Column("a", DataType.BIGINT), Column("x", DataType.DOUBLE),
                 Column("s", DataType.STRING)])

ROWS = [(i, i * 0.5 - 3.25, f"s{i % 7}") for i in range(60)]


def _with_io(fs, action):
    before = fs.io.snapshot()
    result = action()
    delta = fs.io.delta(before)
    return result, (delta.bytes_read, delta.read_ops, delta.seeks)


def assert_batches_equal_rows(fs, input_format, split):
    """Rows and the pread pattern must match between the row reader and
    the batch reader for one split."""
    row_rows, row_io = _with_io(
        fs, lambda: [value for _key, value in
                     input_format.read_split(fs, split)])
    reader = batch_reader_for(input_format)
    assert reader is not None
    batch_rows, vec_io = _with_io(
        fs, lambda: [row for batch in reader.read_batches(fs, split)
                     for row in batch.rows()])
    assert batch_rows == row_rows, f"rows differ for {split}"
    assert vec_io == row_io, f"pread pattern differs for {split}"
    return row_rows


# ------------------------------------------------------------------ fixtures
@pytest.fixture()
def text_file():
    fs = HDFS(num_datanodes=3, block_size=512)
    offsets = []
    with fs.create("/t.txt") as stream:
        writer = TextFileWriter(stream, SCHEMA)
        for row in ROWS:
            offsets.append(writer.write_row(row))
    length = fs.status("/t.txt").length
    return fs, offsets, length


@pytest.fixture()
def rcfile():
    fs = HDFS(num_datanodes=3, block_size=512)
    writer = RCFileWriter(fs.create("/t.rc"), SCHEMA, row_group_size=7)
    writer.write_rows(ROWS)
    writer.close()  # flushes the 4-row partial last group
    with fs.open("/t.rc") as stream:
        groups = list(RCFileReader(stream, SCHEMA).iter_groups(0, None))
    length = fs.status("/t.rc").length
    return fs, groups, length


# ----------------------------------------------------------- text boundaries
def test_text_splits_tile_with_midline_boundaries(text_file):
    """Splits cutting lines mid-byte: each side yields the same partial
    first/last batches as the row reader, and the tiles cover every row
    exactly once."""
    fs, offsets, length = text_file
    fmt = TextRowInputFormat(SCHEMA)
    cuts = [0, offsets[7] + 3, offsets[20], offsets[33] + 1, length]
    covered = []
    for start, end in zip(cuts, cuts[1:]):
        split = FileSplit("/t.txt", start, end - start)
        covered.extend(assert_batches_equal_rows(fs, fmt, split))
    assert covered == ROWS


def test_text_degenerate_splits(text_file):
    fs, offsets, length = text_file
    fmt = TextRowInputFormat(SCHEMA)
    for start, end in [(offsets[5], offsets[5]),          # empty
                       (offsets[5] + 1, offsets[6] - 1),  # inside one line
                       (offsets[59], length),             # exactly last row
                       (length, length)]:                 # at EOF
        split = FileSplit("/t.txt", start, end - start)
        assert_batches_equal_rows(fs, fmt, split)


# --------------------------------------------------------- rcfile boundaries
def test_rcfile_split_owns_partial_first_and_last_group(rcfile):
    """A split whose range starts and ends inside row groups owns exactly
    the groups whose header starts inside it — the batch reader must
    agree on that ownership and on every decoded value."""
    fs, groups, length = rcfile
    fmt = RCFileRowInputFormat(SCHEMA)
    cuts = [0, groups[2][0] + 5, groups[5][0] + 1, length]
    covered = []
    for start, end in zip(cuts, cuts[1:]):
        split = FileSplit("/t.rc", start, end - start)
        covered.extend(assert_batches_equal_rows(fs, fmt, split))
    assert covered == ROWS


def test_rcfile_column_pruning_matches(rcfile):
    fs, groups, length = rcfile
    fmt = RCFileRowInputFormat(SCHEMA, columns=["s", "a"])
    split = FileSplit("/t.rc", 0, length)
    rows = assert_batches_equal_rows(fs, fmt, split)
    assert rows[0] == (0, None, "s0")  # pruned column is None both ways


def test_rcfile_filtered_scans_have_no_batch_reader(rcfile):
    """Group/row-filtered RCFile scans stay on the row engine."""
    fmt = RCFileRowInputFormat(SCHEMA, group_filter=lambda path, off: True)
    assert batch_reader_for(fmt) is None
    fmt = RCFileRowInputFormat(SCHEMA, row_filter=lambda off, r: True)
    assert batch_reader_for(fmt) is None


# ------------------------------------------------------ GFU slice boundaries
def _dgf_format(stored_as):
    return DgfSliceInputFormat(
        types.SimpleNamespace(schema=SCHEMA, stored_as=stored_as))


def test_dgf_text_slices_with_partial_batches(text_file):
    """Slice ranges over a text file — including one starting mid-line
    and one empty — produce the row reader's exact rows and preads."""
    fs, offsets, length = text_file
    fmt = _dgf_format("textfile")
    ranges = [(offsets[3], offsets[9]),
              (offsets[12] + 2, offsets[20]),   # starts mid-line
              (offsets[30], offsets[30]),       # empty
              (offsets[45], length)]            # runs to EOF
    split = FileSplit("/t.txt", 0, length,
                      meta={SLICES_META_KEY: ranges})
    rows = assert_batches_equal_rows(fs, fmt, split)
    assert rows == ROWS[3:9] + ROWS[13:20] + ROWS[45:]


def test_dgf_text_split_without_slices_reads_nothing(text_file):
    fs, _offsets, length = text_file
    assert assert_batches_equal_rows(
        fs, _dgf_format("textfile"),
        FileSplit("/t.txt", 0, length, meta={})) == []


def test_dgf_rcfile_slices_select_whole_groups(rcfile):
    """RCFile slices are group-aligned by the builder; a slice boundary
    between groups must yield whole first/last groups on both paths."""
    fs, groups, length = rcfile
    fmt = _dgf_format("rcfile")
    ranges = [(groups[1][0], groups[3][0]), (groups[6][0], length)]
    split = FileSplit("/t.rc", 0, length,
                      meta={SLICES_META_KEY: ranges})
    rows = assert_batches_equal_rows(fs, fmt, split)
    assert rows == ROWS[7:21] + ROWS[42:]


def test_dgf_sequencefile_has_no_batch_reader():
    assert batch_reader_for(_dgf_format("sequencefile")) is None


# -------------------------------------------------- estimate_size regression
def test_estimate_size_counts_numpy_scalars_like_python():
    """NumPy int64/float64 leaking into shuffle accounting must weigh
    exactly what the row engine's Python ints/floats weigh."""
    np = pytest.importorskip("numpy")
    assert estimate_size(5) == 8
    assert estimate_size(np.int64(5)) == estimate_size(5)
    assert estimate_size(np.float64(2.5)) == estimate_size(2.5)
    assert (estimate_size((np.int64(1), np.float64(2.0)))
            == estimate_size((1, 2.0)))
