"""Unit tests for the hierarchical GFU aggregation pyramid (ISSUE 10).

Covers the pyramid package itself (key codec, level math, greedy cover
geometry, fold determinism), its maintenance hooks (build, incremental
append refresh, delta demotion, compaction repair, fleet layouts, drop),
the planner integration (EXPLAIN line, plan fields, forced-off knob, the
extracted tombstone-demotion helper including the all-demoted edge), the
metadata-cache coherence of pyramid nodes, and the cost-model / what-if
pyramid probe estimates the router and advisor consume.
"""

import pytest

from repro import pyramid as pyr
from repro.core.dgf.handler import demote_suppressed_cells
from repro.errors import IndexError_
from repro.hive.session import HiveSession, QueryOptions
from repro.mapreduce.cost import CostModel
from repro.pyramid import (DEFAULT_FANOUT, PyramidNode, PyramidStore,
                           cover_box, decompose_region, fold_children,
                           levels_for_extent, node_key, parse_node_key,
                           pyramid_levels, pyramid_store, rebuild_pyramid,
                           resolve_cover)

TABLE = "meterdata"
INDEX = "idx"

DDL = (f"CREATE TABLE {TABLE} (userid bigint, regionid int, ts date, "
       "powerconsumed double)")
INDEX_SQL = (f"CREATE INDEX {INDEX} ON TABLE {TABLE}(userid, ts) AS 'dgf' "
             "IDXPROPERTIES ('userid'='0_2', 'ts'='2012-12-01_1d', "
             "'precompute'='sum(powerconsumed),count(powerconsumed)')")
QUERY = ("SELECT sum(powerconsumed), count(powerconsumed) FROM "
         f"{TABLE} WHERE userid >= 2 AND userid < 60 "
         "AND ts >= '2012-12-02' AND ts < '2012-12-15'")


def rows(users=64, days=16):
    """Dyadic-valued rows (exact binary fractions; folds are bit-stable
    regardless of association)."""
    return [(u, u % 2, f"2012-12-{t + 1:02d}", ((u * 7 + t) % 640) / 64.0)
            for u in range(users) for t in range(days)]


def make_session(load=True, **kw):
    session = HiveSession(**kw)
    session.execute(DDL)
    if load:
        session.load_rows(TABLE, rows())
    session.execute(INDEX_SQL)
    return session


def pyramid_nodes(session):
    """All (node_id, node) pairs in the primary pyramid namespace."""
    store = pyramid_store(session, TABLE, INDEX)
    return dict(store.iter_nodes())


# ---------------------------------------------------------------- geometry
def test_node_key_roundtrip():
    assert node_key(3, (5, -2)) == "3:5_-2"
    assert parse_node_key("3:5_-2") == (3, (5, -2))
    assert parse_node_key(node_key(1, (0,))) == (1, (0,))


def test_levels_for_extent():
    assert levels_for_extent(1, 2) == 1
    assert levels_for_extent(2, 2) == 1
    assert levels_for_extent(3, 2) == 2
    assert levels_for_extent(100, 2) == 7   # 2**7 = 128 >= 100
    assert levels_for_extent(100, 4) == 4   # 4**4 = 256 >= 100


def test_cover_box_aligned_is_one_node():
    # A box exactly spanning one level-2 region collapses to one node.
    nodes, leaves = cover_box((0, 0), (3, 3), frozenset(), 2, 2)
    assert nodes == [(2, (0, 0))]
    assert leaves == []


def test_cover_box_misaligned_mixes_levels():
    nodes, leaves = cover_box((1, 1), (6, 6), frozenset(), 2, 3)
    covered = set(leaves)
    for level, block in nodes:
        size = 2 ** level
        for dx in range(size):
            for dy in range(size):
                covered.add((block[0] * size + dx, block[1] * size + dy))
    assert covered == {(x, y) for x in range(1, 7) for y in range(1, 7)}
    # Strictly better than one probe per cell, and at least one real node.
    assert len(nodes) + len(leaves) < 36
    assert any(level >= 1 for level, _ in nodes)


def test_cover_box_blocked_cells_are_excluded():
    blocked = frozenset({(2, 2)})
    nodes, leaves = cover_box((0, 0), (3, 3), blocked, 2, 2)
    covered = set(leaves)
    for level, block in nodes:
        size = 2 ** level
        for dx in range(size):
            for dy in range(size):
                covered.add((block[0] * size + dx, block[1] * size + dy))
    assert (2, 2) not in covered
    assert covered == {(x, y) for x in range(4) for y in range(4)
                       if (x, y) != (2, 2)}


def test_fold_children_merges_headers_and_counts():
    a = PyramidNode(header={"sum(x)": 1.5, "count(x)": 2}, cells=3,
                    records=10)
    b = PyramidNode(header={"sum(x)": 2.25}, cells=1, records=4)
    folded = fold_children([a, b])
    assert folded.header["sum(x)"] == 3.75
    assert folded.header["count(x)"] == 2   # missing key: carried through
    assert folded.cells == 4
    assert folded.records == 14


# ------------------------------------------------------------------- build
def test_build_pyramid_records_state_and_nodes():
    session = make_session()
    summary = session.build_pyramid(TABLE, INDEX)
    index = session.metastore.get_index(TABLE, INDEX)
    state = index.state[pyr.PYRAMID_STATE_KEY]
    assert state["fanout"] == DEFAULT_FANOUT
    assert summary["primary"]["levels"] == state["layouts"]["primary"]
    assert pyramid_levels(index, None) == summary["primary"]["levels"]
    nodes = pyramid_nodes(session)
    assert len(nodes) == summary["primary"]["nodes"]
    # Level-1 nodes summarize exactly the base GFU population.
    store = session.dgf_store(TABLE, INDEX)
    base = dict(store.iter_entries())
    total = sum(node.cells for (level, _b), node in nodes.items()
                if level == 1)
    assert total == len(base)
    top = [n for (level, _b), n in nodes.items()
           if level == summary["primary"]["levels"]]
    assert sum(n.records for n in top) == sum(v.records
                                              for v in base.values())


def test_build_pyramid_validates():
    session = make_session(load=False)
    with pytest.raises(IndexError_):
        session.build_pyramid(TABLE, INDEX, fanout=1)
    other = HiveSession()
    other.execute(DDL)
    other.execute(f"CREATE INDEX cidx ON TABLE {TABLE}(userid) "
                  "AS 'compact'")
    with pytest.raises(IndexError_):
        other.build_pyramid(TABLE, "cidx")


def test_append_refreshes_incrementally():
    incremental = make_session()
    incremental.build_pyramid(TABLE, INDEX)
    from repro.core.dgf.builder import append_with_dgf
    extra = [(200, 0, "2012-12-07", 1.25), (7, 1, "2012-12-03", 0.5)]
    append_with_dgf(incremental, TABLE, INDEX, extra)

    rebuilt = make_session()
    append_with_dgf(rebuilt, TABLE, INDEX, extra)
    rebuilt.build_pyramid(TABLE, INDEX)

    assert pyramid_nodes(incremental) == pyramid_nodes(rebuilt)


def test_index_rebuild_regenerates_pyramid():
    session = make_session()
    session.build_pyramid(TABLE, INDEX)
    before = pyramid_nodes(session)
    session.rebuild_index(TABLE, INDEX)
    assert pyramid_nodes(session) == before


def test_drop_pyramid_clears_namespace_and_path():
    session = make_session()
    session.build_pyramid(TABLE, INDEX)
    assert pyramid_nodes(session)
    session.drop_pyramid(TABLE, INDEX)
    assert not pyramid_nodes(session)
    index = session.metastore.get_index(TABLE, INDEX)
    assert pyr.PYRAMID_STATE_KEY not in index.state
    result = session.execute(QUERY)
    assert "pyramid:" not in result.description


def test_drop_index_clears_pyramid_keys():
    session = make_session()
    session.build_pyramid(TABLE, INDEX)
    session.execute(f"DROP INDEX {INDEX} ON {TABLE}")
    remaining = list(session.kvstore.scan("dgfpyr:",
                                          "dgfpyr:\U0010ffff"))
    assert remaining == []


# ------------------------------------------------------------ query path
def test_query_uses_pyramid_and_matches_flat():
    flat_session = make_session()
    flat = flat_session.execute(QUERY)
    session = make_session()
    session.build_pyramid(TABLE, INDEX)
    result = session.execute(QUERY)
    assert result.rows == flat.rows
    access = result.plan.access
    assert access.pyramid_nodes > 0
    assert access.pyramid_levels >= 1
    # Logical accounting replays the flat path exactly.
    assert result.stats.index_kv_gets == flat.stats.index_kv_gets
    assert f"pyramid: levels={access.pyramid_levels}" in result.description
    off = session.execute(QUERY, QueryOptions(dgf_pyramid=False))
    assert off.rows == flat.rows
    assert off.plan.access.pyramid_nodes == 0
    assert "pyramid:" not in off.description


def test_pyramid_reduces_physical_gets():
    session = make_session(cache=False)
    session.build_pyramid(TABLE, INDEX)
    before = session.kvstore.snapshot_stats()
    on = session.execute(QUERY)
    with_pyramid = session.kvstore.stats_delta(before).gets
    before = session.kvstore.snapshot_stats()
    off = session.execute(QUERY, QueryOptions(dgf_pyramid=False))
    without = session.kvstore.stats_delta(before).gets
    assert on.rows == off.rows
    assert with_pyramid < without


def test_explain_shows_pyramid_line():
    session = make_session()
    session.build_pyramid(TABLE, INDEX)
    plan_text = session.execute(f"EXPLAIN {QUERY}").description
    assert "  pyramid: levels=" in plan_text
    assert "nodes=" in plan_text and "leaves=" in plan_text


def test_trace_has_pyramid_span_and_counters():
    session = make_session()
    session.build_pyramid(TABLE, INDEX)
    result = session.execute(QUERY)
    root = result.trace.normalized()["root"]

    def find(node, name):
        if node["name"] == name:
            return node
        for child in node.get("children", []):
            hit = find(child, name)
            if hit is not None:
                return hit
        return None

    span = find(root, "dgf.pyramid")
    assert span is not None
    counters = span["counters"]
    assert counters["pyramid.nodes"] == result.plan.access.pyramid_nodes
    assert counters["pyramid.leaves"] == result.plan.access.pyramid_leaves


# --------------------------------------------------- demotion and deltas
def test_delta_ingest_demotes_and_resolve_recurses():
    session = make_session()
    session.build_pyramid(TABLE, INDEX)
    flat = session.execute(QUERY, QueryOptions(dgf_pyramid=False))
    binding = session.attach_delta(TABLE, INDEX,
                                   key_columns=["userid", "ts"])
    binding.ingest([("delete", (10, "2012-12-05"))])
    store = pyramid_store(session, TABLE, INDEX)
    demoted = [nid for nid, node in store.iter_nodes() if node.demoted]
    assert demoted, "ingest must demote ancestor chains"
    mid = session.execute(QUERY)
    mid_off = session.execute(QUERY, QueryOptions(dgf_pyramid=False))
    assert mid.rows == mid_off.rows
    assert mid.rows != flat.rows  # the tombstone is visible

    from repro.delta.compact import Compactor
    Compactor(binding).run()
    repaired = pyramid_store(session, TABLE, INDEX)
    assert not [nid for nid, node in repaired.iter_nodes()
                if node.demoted], "compaction must repair demotions"
    post = session.execute(QUERY)
    assert post.rows == mid.rows


def test_partial_compaction_keeps_resident_demoted():
    session = make_session()
    session.build_pyramid(TABLE, INDEX)
    binding = session.attach_delta(TABLE, INDEX,
                                   key_columns=["userid", "ts"])
    binding.ingest([("delete", (10, "2012-12-05")),
                    ("insert", (300, 0, "2012-12-30", 2.0))])
    from repro.delta.compact import Compactor
    partial = list(binding.resident_cells)[:1]
    Compactor(binding).run(partial)
    assert binding.resident_cells  # something is still unfolded
    store = pyramid_store(session, TABLE, INDEX)
    still = [nid for nid, node in store.iter_nodes() if node.demoted]
    assert still, "cells still resident must stay demoted"
    on = session.execute(QUERY)
    off = session.execute(QUERY, QueryOptions(dgf_pyramid=False))
    assert on.rows == off.rows


def test_demote_suppressed_cells_helper():
    class FakeOverlay:
        def __init__(self, suppress):
            self.suppress = suppress

        @property
        def has_suppression(self):
            return bool(self.suppress)

    inner = ["a", "b", "c"]
    boundary = ["x"]
    # No overlay / not agg path / nothing suppressed: untouched.
    assert demote_suppressed_cells(inner, boundary, None, True) == \
        (inner, boundary, [])
    overlay = FakeOverlay({"b": frozenset({(1,)})})
    assert demote_suppressed_cells(inner, boundary, overlay, False) == \
        (inner, boundary, [])
    kept, scan, demoted = demote_suppressed_cells(inner, boundary,
                                                  overlay, True)
    assert kept == ["a", "c"]
    assert scan == ["x", "b"]
    assert demoted == ["b"]
    # All-demoted edge: every inner key suppressed -> pure slice path.
    overlay = FakeOverlay({"a": frozenset(), "b": frozenset(),
                           "c": frozenset()})
    kept, scan, demoted = demote_suppressed_cells(inner, boundary,
                                                  overlay, True)
    assert kept == []
    assert scan == ["x", "a", "b", "c"]
    assert demoted == ["a", "b", "c"]


def test_all_demoted_query_has_zero_inner_gfus():
    """Every inner cell tombstoned: the plan degrades to the pure slice
    path (inner_gfus == 0) and still answers correctly, pyramid on/off."""
    session = make_session()
    session.build_pyramid(TABLE, INDEX)
    binding = session.attach_delta(TABLE, INDEX,
                                   key_columns=["userid", "ts"])
    # A 1-cell inner region: userid in [2,4) x ts in [2012-12-03..05)
    # has exactly one fully-covered cell; tombstone a row inside it.
    small = ("SELECT sum(powerconsumed), count(powerconsumed) FROM "
             f"{TABLE} WHERE userid >= 0 AND userid < 6 "
             "AND ts >= '2012-12-02' AND ts < '2012-12-06'")
    baseline = session.execute(small)
    assert baseline.plan.access.inner_gfus >= 1
    doomed = [(u, f"2012-12-{t:02d}")
              for u in range(0, 6) for t in range(2, 6)]
    binding.ingest([("delete", key) for key in doomed])
    result = session.execute(small)
    assert result.plan.access.inner_gfus == 0
    assert result.plan.access.pyramid_nodes == 0
    off = session.execute(small, QueryOptions(dgf_pyramid=False))
    assert result.rows == off.rows
    assert result.rows[0][1] == baseline.rows[0][1] - len(doomed)


# ----------------------------------------------------------------- fleet
def test_fleet_layout_gets_its_own_pyramid():
    session = make_session()
    session.build_pyramid(TABLE, INDEX)
    session.add_layout(TABLE, INDEX, "fine", grid={"userid": "0_1"})
    index = session.metastore.get_index(TABLE, INDEX)
    state = index.state[pyr.PYRAMID_STATE_KEY]
    assert "fine" in state["layouts"]
    fine = pyramid_store(session, TABLE, INDEX, layout_name="fine")
    assert fine.count_nodes() > 0
    # Pinning the router to the layout answers through its pyramid.
    routed = session.execute(QUERY, QueryOptions(dgf_layout="fine"))
    flat = make_session().execute(QUERY)
    assert routed.rows == flat.rows
    assert routed.plan.access.layout == "fine"
    assert routed.plan.access.pyramid_nodes > 0
    session.drop_layout(TABLE, INDEX, "fine")
    assert "fine" not in index.state[pyr.PYRAMID_STATE_KEY]["layouts"]
    assert fine.count_nodes() == 0


# ----------------------------------------------------------------- cache
def test_cache_serves_and_invalidates_pyramid_nodes():
    session = make_session(cache=True)
    session.build_pyramid(TABLE, INDEX)
    cache = session.metadata_cache
    session.execute(QUERY)
    assert any(k.startswith("dgfpyr:") for k in cache_keys(session
                                                           .metadata_cache))
    first_hits = cache.stats.hits
    session.execute(QUERY)
    assert cache.stats.hits > first_hits
    from repro.service.cache import _kind_of
    assert _kind_of("dgfpyr:meterdata:idx:2:0_1") == "pyramid"
    # Writing one node evicts exactly that entry (write listener).
    store = PyramidStore(session.kvstore, TABLE, INDEX)
    nid, node = next(iter(store.iter_nodes()))
    resident = len(cache)
    store.put_node(nid[0], nid[1], node)
    assert len(cache) <= resident
    hits, missing = cache.lookup([store.full_key(nid[0], nid[1])])
    assert missing == [store.full_key(nid[0], nid[1])]


def test_invalidate_index_covers_pyramid_prefix():
    session = make_session(cache=True)
    session.build_pyramid(TABLE, INDEX)
    session.execute(QUERY)
    assert any(k.startswith("dgfpyr:")
               for k in cache_keys(session.metadata_cache))
    session._invalidate_index_cache(TABLE, INDEX)
    assert not any(k.startswith("dgfpyr:")
                   for k in cache_keys(session.metadata_cache))


def cache_keys(cache):
    with cache._lock:
        return list(cache._entries)


# ------------------------------------------------------- cost and what-if
def test_pyramid_probe_count_beats_flat():
    model = CostModel()
    for extent in (10, 50, 100, 200):
        flat = extent * extent
        levels = levels_for_extent(extent, 2)
        probes = model.pyramid_probe_count([extent, extent], 2, levels)
        assert probes < flat
        if extent >= 100:
            assert flat / probes >= 10


def test_whatif_prices_fine_grids_cheaper_with_pyramid():
    from repro.core.dgf.advisor import DimensionStats, QueryProfile
    from repro.core.dgf.whatif import WhatIfEvaluator
    model = CostModel()
    stats = {"a": DimensionStats(name="a", dtype=None, low=0.0,
                                 high=1000.0),
             "b": DimensionStats(name="b", dtype=None, low=0.0,
                                 high=1000.0)}
    profile = QueryProfile(widths={"a": 800.0, "b": 800.0}, weight=1.0,
                           agg_path=True)
    fine = {"a": 500, "b": 500}
    flat_cost = WhatIfEvaluator(model, stats, 1e6, 1e8).query_seconds(
        profile, fine)
    pyr_cost = WhatIfEvaluator(model, stats, 1e6, 1e8,
                               pyramid_fanout=2).query_seconds(
        profile, fine)
    assert pyr_cost < flat_cost
    # Without an inner region (non-agg), the pyramid changes nothing.
    scan = QueryProfile(widths={"a": 800.0, "b": 800.0}, weight=1.0,
                        agg_path=False)
    assert WhatIfEvaluator(model, stats, 1e6, 1e8,
                           pyramid_fanout=2).query_seconds(scan, fine) \
        == WhatIfEvaluator(model, stats, 1e6, 1e8).query_seconds(scan,
                                                                 fine)


def test_decompose_region_requires_full_box():
    session = make_session()
    session.build_pyramid(TABLE, INDEX)
    store = session.dgf_store(TABLE, INDEX)
    policy = store.load_policy()
    keys = [key for key, _v in store.iter_entries()]
    cover = decompose_region(policy, keys[:3] + keys[5:6], (), 2, 5)
    # An arbitrary subset is almost surely not an axis-aligned box.
    if cover is not None:
        coords = sorted(pyr.cell_coords(policy, k)
                        for k in keys[:3] + keys[5:6])
        lo = tuple(min(c[d] for c in coords) for d in range(2))
        hi = tuple(max(c[d] for c in coords) for d in range(2))
        volume = 1
        for a, b in zip(lo, hi):
            volume *= b - a + 1
        assert volume == 4
    assert decompose_region(policy, [], (), 2, 5) is None
    assert decompose_region(policy, keys[:4], (), 2, 0) is None


def test_resolve_cover_matches_flat_fold():
    session = make_session()
    session.build_pyramid(TABLE, INDEX)
    store = session.dgf_store(TABLE, INDEX)
    policy = store.load_policy()
    keys = sorted(key for key, _v in store.iter_entries())
    inner = [k for k in keys
             if 1 <= pyr.cell_coords(policy, k)[0] <= 20
             and 2 <= pyr.cell_coords(policy, k)[1] <= 11]
    index = session.metastore.get_index(TABLE, INDEX)
    cover = decompose_region(policy, inner, (), 2,
                             pyramid_levels(index, None))
    assert cover is not None
    pstore = pyramid_store(session, TABLE, INDEX)
    values, stats = resolve_cover(pstore, store, policy, cover, 2)
    flat = store.multi_get(inner)
    merged = sum(v.header["sum(powerconsumed)"] for v in flat.values())
    pyramid_sum = sum(v.header["sum(powerconsumed)"] for v in values)
    assert pyramid_sum == merged
    assert stats["inner_hits"] == len(flat)
    assert stats["nodes"] + stats["leaves"] < len(inner)
