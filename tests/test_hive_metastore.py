"""Tests for the metastore."""

import pytest

from repro.errors import MetastoreError
from repro.hive.metastore import IndexInfo, Metastore, TableInfo, parse_type
from repro.storage.schema import DataType, Schema


def table(name="t", partitioned=False):
    schema = Schema.of(("a", DataType.INT), ("dt", DataType.DATE))
    partition_schema = Schema.of(("dt", DataType.DATE)) if partitioned \
        else None
    return TableInfo(name=name, schema=schema,
                     partition_schema=partition_schema)


class TestParseType:
    def test_known_types(self):
        assert parse_type("BIGINT") is DataType.BIGINT
        assert parse_type("float") is DataType.DOUBLE

    def test_unknown(self):
        with pytest.raises(MetastoreError):
            parse_type("blob")


class TestTables:
    def test_create_get(self):
        ms = Metastore()
        ms.create_table(table())
        assert ms.get_table("T").name == "t"

    def test_default_location(self):
        assert table("Sales").location == "/warehouse/sales"

    def test_duplicate(self):
        ms = Metastore()
        ms.create_table(table())
        with pytest.raises(MetastoreError):
            ms.create_table(table())

    def test_unknown(self):
        with pytest.raises(MetastoreError):
            Metastore().get_table("ghost")

    def test_drop_removes_indexes(self):
        ms = Metastore()
        ms.create_table(table())
        ms.add_index(IndexInfo(name="i", table="t", columns=("a",),
                               handler="compact"))
        ms.drop_table("t")
        assert ms.list_tables() == []

    def test_partition_dir(self):
        info = table(partitioned=True)
        assert info.partition_dir(("2012-12-01",)) \
            == "/warehouse/t/dt=2012-12-01"

    def test_partition_dir_arity(self):
        with pytest.raises(MetastoreError):
            table(partitioned=True).partition_dir(("a", "b"))

    def test_partition_dir_on_unpartitioned(self):
        with pytest.raises(MetastoreError):
            table().partition_dir(("x",))

    def test_data_location_follows_dgf_reorg(self):
        info = table()
        assert info.data_location == info.location
        info.properties["dgf_data_location"] = "/warehouse/t__dgf"
        assert info.data_location == "/warehouse/t__dgf"


class TestIndexes:
    def test_add_get_drop(self):
        ms = Metastore()
        ms.create_table(table())
        ms.add_index(IndexInfo(name="i", table="t", columns=("a",),
                               handler="compact"))
        assert ms.get_index("t", "I").handler == "compact"
        ms.drop_index("t", "i")
        with pytest.raises(MetastoreError):
            ms.get_index("t", "i")

    def test_index_requires_table(self):
        with pytest.raises(MetastoreError):
            Metastore().add_index(IndexInfo(name="i", table="ghost",
                                            columns=("a",),
                                            handler="compact"))

    def test_duplicate_index(self):
        ms = Metastore()
        ms.create_table(table())
        ms.add_index(IndexInfo(name="i", table="t", columns=("a",),
                               handler="compact"))
        with pytest.raises(MetastoreError):
            ms.add_index(IndexInfo(name="i", table="t", columns=("a",),
                                   handler="compact"))

    def test_single_dgf_per_table(self):
        """The paper: each table can only create one DGFIndex (the index
        reorganizes the table's physical layout)."""
        ms = Metastore()
        ms.create_table(table())
        ms.add_index(IndexInfo(name="d1", table="t", columns=("a",),
                               handler="dgf"))
        with pytest.raises(MetastoreError):
            ms.add_index(IndexInfo(name="d2", table="t", columns=("a",),
                                   handler="dgf"))
        # a compact index can still coexist
        ms.add_index(IndexInfo(name="c", table="t", columns=("a",),
                               handler="compact"))

    def test_indexes_on_filter(self):
        ms = Metastore()
        ms.create_table(table())
        ms.add_index(IndexInfo(name="d", table="t", columns=("a",),
                               handler="dgf"))
        ms.add_index(IndexInfo(name="c", table="t", columns=("a",),
                               handler="compact"))
        assert [i.name for i in ms.indexes_on("t")] == ["c", "d"]
        assert [i.name for i in ms.indexes_on("t", "dgf")] == ["d"]
