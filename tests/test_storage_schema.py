"""Tests for column types and schemas."""

import pytest

from repro.errors import SchemaError
from repro.storage.schema import (Column, DataType, Schema, date_to_ordinal,
                                  ordinal_to_date)


class TestDataType:
    def test_int_roundtrip(self):
        assert DataType.INT.parse(DataType.INT.serialize(42)) == 42

    def test_double_roundtrip_exact(self):
        value = 0.1 + 0.2  # notoriously unrepresentable
        text = DataType.DOUBLE.serialize(value)
        assert DataType.DOUBLE.parse(text) == value

    def test_string_verbatim(self):
        assert DataType.STRING.parse("hi there") == "hi there"

    def test_date_kept_as_iso(self):
        assert DataType.DATE.parse("2012-12-01") == "2012-12-01"

    def test_validate_accepts(self):
        DataType.BIGINT.validate(10)
        DataType.DOUBLE.validate(1)  # ints are valid doubles
        DataType.DATE.validate("2014-07-09")

    def test_validate_rejects_wrong_type(self):
        with pytest.raises(SchemaError):
            DataType.INT.validate("5")

    def test_validate_rejects_bad_date(self):
        with pytest.raises(SchemaError):
            DataType.DATE.validate("12/30/2012")

    def test_is_numeric(self):
        assert DataType.DOUBLE.is_numeric
        assert not DataType.STRING.is_numeric

    def test_date_ordinal_roundtrip(self):
        assert ordinal_to_date(date_to_ordinal("2012-12-30")) == "2012-12-30"

    def test_date_ordinal_arithmetic(self):
        assert date_to_ordinal("2012-12-02") \
            == date_to_ordinal("2012-12-01") + 1


class TestColumn:
    def test_valid_name(self):
        Column("user_id", DataType.BIGINT)

    def test_invalid_name(self):
        with pytest.raises(SchemaError):
            Column("bad name", DataType.INT)

    def test_empty_name(self):
        with pytest.raises(SchemaError):
            Column("", DataType.INT)


class TestSchema:
    def test_of_shorthand(self, simple_schema):
        assert simple_schema.names() == ["a", "b", "c"]

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_duplicate_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of(("a", DataType.INT), ("A", DataType.INT))

    def test_index_of_case_insensitive(self, simple_schema):
        assert simple_schema.index_of("B") == 1

    def test_index_of_unknown(self, simple_schema):
        with pytest.raises(SchemaError):
            simple_schema.index_of("zz")

    def test_validate_row(self, simple_schema):
        simple_schema.validate_row((1, 2.0, "x"))

    def test_validate_row_wrong_arity(self, simple_schema):
        with pytest.raises(SchemaError):
            simple_schema.validate_row((1, 2.0))

    def test_validate_row_wrong_type(self, simple_schema):
        with pytest.raises(SchemaError):
            simple_schema.validate_row((1, "not-a-number", "x"))

    def test_project(self, simple_schema):
        projected = simple_schema.project(["c", "a"])
        assert projected.names() == ["c", "a"]

    def test_equality(self, simple_schema):
        clone = Schema.of(("a", DataType.INT), ("b", DataType.DOUBLE),
                          ("c", DataType.STRING))
        assert simple_schema == clone
