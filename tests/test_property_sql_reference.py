"""Property tests: the Hive executor vs a plain-Python reference.

Index-equivalence tests (test_property_end_to_end) check indexed plans
against scans; these check the *scan itself* — filters, grouping, joins,
aggregates — against straight-line Python over the same rows.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.hive.session import QueryOptions
from tests.conftest import make_session

SCAN = QueryOptions(use_index=False)

row_strategy = st.tuples(
    st.integers(0, 20),                                   # k
    st.integers(0, 3),                                    # g
    st.floats(-50, 50, allow_nan=False,
              width=32).map(lambda f: round(f, 2)),       # v
)


def load(rows):
    session = make_session(block_size=1024)
    session.execute("CREATE TABLE t (k int, g int, v double)")
    session.load_rows("t", rows)
    return session


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(rows=st.lists(row_strategy, min_size=1, max_size=80),
       lo=st.integers(0, 20), width=st.integers(0, 15))
def test_filtered_global_aggregates(rows, lo, width):
    session = load(rows)
    hi = lo + width
    result = session.execute(
        f"SELECT count(*), sum(v), min(v), max(v), avg(v) FROM t "
        f"WHERE k >= {lo} AND k < {hi}", SCAN)
    matching = [v for k, _g, v in rows if lo <= k < hi]
    count, total, low, high, mean = result.rows[0]
    assert count == len(matching)
    if matching:
        assert total == pytest.approx(sum(matching))
        assert low == min(matching)
        assert high == max(matching)
        assert mean == pytest.approx(sum(matching) / len(matching))
    else:
        assert (total, low, high, mean) == (None, None, None, None)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(rows=st.lists(row_strategy, min_size=1, max_size=80))
def test_group_by_matches_reference(rows):
    session = load(rows)
    result = session.execute(
        "SELECT g, count(*), sum(v) FROM t GROUP BY g", SCAN)
    reference = {}
    for _k, g, v in rows:
        count, total = reference.get(g, (0, 0.0))
        reference[g] = (count + 1, total + v)
    assert len(result.rows) == len(reference)
    for g, count, total in result.rows:
        assert count == reference[g][0]
        assert total == pytest.approx(reference[g][1])
    assert [g for g, _c, _s in result.rows] == sorted(reference)


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(rows=st.lists(row_strategy, min_size=1, max_size=60),
       names=st.lists(st.integers(0, 20), min_size=1, max_size=10,
                      unique=True))
def test_join_matches_reference(rows, names):
    session = load(rows)
    session.execute("CREATE TABLE d (k int, label string)")
    session.load_rows("d", [(k, f"name-{k}") for k in names])
    result = session.execute(
        "SELECT d.label, t.v FROM t JOIN d ON t.k = d.k", SCAN)
    expected = sorted((f"name-{k}", v) for k, _g, v in rows
                      if k in set(names))
    got = sorted(result.rows)
    assert len(got) == len(expected)
    for (left_label, left_v), (right_label, right_v) in zip(expected, got):
        assert left_label == right_label
        assert left_v == pytest.approx(right_v)


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(rows=st.lists(row_strategy, min_size=1, max_size=60),
       limit=st.integers(1, 10))
def test_order_by_limit_matches_reference(rows, limit):
    session = load(rows)
    result = session.execute(
        f"SELECT g, sum(v) AS total FROM t GROUP BY g "
        f"ORDER BY g DESC LIMIT {limit}", SCAN)
    reference = {}
    for _k, g, v in rows:
        reference[g] = reference.get(g, 0.0) + v
    expected = sorted(reference.items(), reverse=True)[:limit]
    assert [g for g, _ in result.rows] == [g for g, _ in expected]
    for (_, left), (_, right) in zip(result.rows, expected):
        assert left == pytest.approx(right)


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(rows=st.lists(row_strategy, min_size=1, max_size=60))
def test_count_distinct_matches_reference(rows):
    session = load(rows)
    result = session.execute("SELECT count(DISTINCT k) FROM t", SCAN)
    assert result.scalar() == len({k for k, _g, _v in rows})
