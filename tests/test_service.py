"""Tests for the concurrent query service (admission, workers, lifecycle)."""

from __future__ import annotations

import threading

import pytest

from repro.errors import (SemanticError, ServiceClosedError,
                          ServiceDegradedError, ServiceOverloadedError)
from repro.hive.session import QueryOptions
from repro.service import QueryService

from tests.conftest import make_session, METER_DDL, meter_rows

MDRQ = ("SELECT sum(powerconsumed) FROM meterdata "
        "WHERE userid >= 20 AND userid < 120 "
        "AND ts >= '2012-12-01' AND ts < '2012-12-05'")


def _dgf_session():
    session = make_session()
    session.execute(METER_DDL)
    rows = meter_rows()
    half = len(rows) // 2
    session.load_rows("meterdata", rows[:half])
    session.load_rows("meterdata", rows[half:])
    session.execute(
        "CREATE INDEX dgf_idx ON TABLE meterdata(userid, regionid, ts) "
        "AS 'dgf' IDXPROPERTIES ('userid'='0_25', 'regionid'='0_1', "
        "'ts'='2012-12-01_2d', "
        "'precompute'='sum(powerconsumed),count(*)')")
    return session


class TestExecution:
    def test_execute_matches_direct_session(self):
        session = _dgf_session()
        direct = session.execute(MDRQ)
        with QueryService(session, max_workers=2) as service:
            served = service.execute(MDRQ)
        assert served.rows == direct.rows
        assert served.description == direct.description
        assert (served.trace.normalized_json()
                == direct.trace.normalized_json())

    def test_run_all_preserves_submission_order(self):
        session = _dgf_session()
        statements = [
            f"SELECT count(*) FROM meterdata WHERE userid >= {lo} "
            f"AND userid < {lo + 10}" for lo in range(0, 80, 10)]
        expected = [session.execute(sql).rows for sql in statements]
        with QueryService(session, max_workers=4) as service:
            results = service.run_all(statements)
        assert [r.rows for r in results] == expected

    def test_run_all_accepts_options_pairs(self):
        session = _dgf_session()
        with QueryService(session, max_workers=2) as service:
            indexed, scanned = service.run_all([
                MDRQ, (MDRQ, QueryOptions(use_index=False))])
        assert indexed.rows == scanned.rows
        assert indexed.stats.index_used is not None
        assert scanned.stats.index_used is None

    def test_many_concurrent_queries_byte_identical(self):
        session = _dgf_session()
        expected = session.execute(MDRQ)
        with QueryService(session, max_workers=8) as service:
            futures = [service.submit(MDRQ, block=True) for _ in range(24)]
            results = [f.result() for f in futures]
        for result in results:
            assert result.rows == expected.rows
            assert (result.trace.normalized_json()
                    == expected.trace.normalized_json())

    def test_error_propagates_through_future(self):
        session = _dgf_session()
        with QueryService(session, max_workers=2) as service:
            future = service.submit("SELECT nope FROM meterdata",
                                    block=True)
            with pytest.raises(SemanticError):
                future.result()
        # the worker survives a failed statement
        # (service is closed now; check the counter instead)
        errors = session.metrics.counter("service_queries_total")
        assert errors.value(status="error") == 1


class TestAdmission:
    def test_overload_sheds_with_service_overloaded_error(self):
        session = _dgf_session()
        started = threading.Event()
        release = threading.Event()
        original = session.execute

        def stalled(sql, options=None):
            started.set()
            release.wait(timeout=30)
            return original(sql, options)

        session.execute = stalled
        service = QueryService(session, max_workers=1, queue_depth=2)
        try:
            admitted = [service.submit(MDRQ)]
            assert started.wait(timeout=10)  # worker holds the first item
            # fill the queue (the worker is stalled on the first item)
            for _ in range(2):
                admitted.append(service.submit(MDRQ))
            with pytest.raises(ServiceOverloadedError):
                service.submit(MDRQ)
            rejected = session.metrics.counter("service_rejected_total")
            assert rejected.value() == 1
        finally:
            release.set()
            for future in admitted:
                future.result()
            session.execute = original
            service.close()

    def test_submit_to_closed_service_raises(self):
        session = _dgf_session()
        service = QueryService(session, max_workers=1)
        service.close()
        with pytest.raises(ServiceClosedError):
            service.submit(MDRQ)

    def test_close_drains_pending_work(self):
        session = _dgf_session()
        service = QueryService(session, max_workers=2)
        futures = [service.submit(MDRQ, block=True) for _ in range(6)]
        service.close(wait=True)
        assert all(f.result().rows for f in futures)

    def test_close_is_idempotent(self):
        service = QueryService(_dgf_session(), max_workers=1)
        service.close()
        service.close()
        assert service.closed

    def test_invalid_configuration_rejected(self):
        session = _dgf_session()
        with pytest.raises(ValueError):
            QueryService(session, max_workers=0)
        with pytest.raises(ValueError):
            QueryService(session, queue_depth=0)


class TestObservability:
    def test_status_counters_and_wait_histogram(self):
        session = _dgf_session()
        with QueryService(session, max_workers=2) as service:
            service.run_all([MDRQ, MDRQ, MDRQ])
        counter = session.metrics.counter("service_queries_total")
        assert counter.value(status="ok") == 3
        histogram = session.metrics.histogram("service_queue_wait_seconds")
        assert histogram.count() == 3

    def test_workers_default_from_execution_config(self):
        from repro.mapreduce.cluster import ExecutionConfig
        session = _dgf_session()
        service = QueryService(session,
                               execution=ExecutionConfig(max_workers=3))
        try:
            assert service.max_workers == 3
        finally:
            service.close()


BAD_SQL = "SELECT no_such_column FROM meterdata"


class TestDegradation:
    """Graceful degradation: partial-availability status, the degraded
    flag over the recent-error window, and optional load shedding."""

    def test_fresh_service_is_fully_available(self):
        service = QueryService(_dgf_session(), max_workers=1)
        try:
            status = service.status()
            assert status.state == "available"
            assert not status.degraded
            assert status.availability == 1.0
            assert status.window_ok == status.window_error == 0
        finally:
            service.close()

    def test_error_rate_degrades_then_recovers(self):
        service = QueryService(_dgf_session(), max_workers=1,
                               degraded_error_window=4,
                               degraded_error_threshold=0.5)
        try:
            with pytest.raises(SemanticError):
                service.execute(BAD_SQL)
            with pytest.raises(SemanticError):
                service.execute(BAD_SQL)
            status = service.status()
            assert status.degraded and status.state == "degraded"
            assert status.availability == 0.0
            assert status.window_error == 2
            # successes refill the window and clear the flag
            for _ in range(4):
                service.execute(MDRQ)
            status = service.status()
            assert not status.degraded
            assert status.availability == 1.0
            assert status.window_ok == 4
        finally:
            service.close()

    def test_shedding_rejects_with_transient_degraded_error(self):
        from repro.errors import TransientError
        session = _dgf_session()
        service = QueryService(session, max_workers=1,
                               degraded_error_window=2,
                               degraded_error_threshold=0.5,
                               shed_when_degraded=True)
        try:
            with pytest.raises(SemanticError):
                service.execute(BAD_SQL)
            assert service.degraded
            with pytest.raises(ServiceDegradedError) as excinfo:
                service.submit(MDRQ)
            assert isinstance(excinfo.value, TransientError)
            rejects = session.metrics.counter(
                "service_degraded_rejects_total")
            assert rejects.value() == 1
            # an operator can stop shedding; served work then recovers
            service.shed_when_degraded = False
            service.execute(MDRQ)
            service.execute(MDRQ)
            assert not service.degraded
        finally:
            service.close()

    def test_availability_gauge_tracks_window(self):
        session = _dgf_session()
        service = QueryService(session, max_workers=1,
                               degraded_error_window=8)
        try:
            service.execute(MDRQ)
            with pytest.raises(SemanticError):
                service.execute(BAD_SQL)
            service.execute(MDRQ)
            gauge = session.metrics.gauge("service_availability")
            assert gauge.value() == pytest.approx(2 / 3)
            assert service.status().availability == pytest.approx(2 / 3)
        finally:
            service.close()

    def test_degradation_config_validated(self):
        session = _dgf_session()
        with pytest.raises(ValueError):
            QueryService(session, degraded_error_window=0)
        with pytest.raises(ValueError):
            QueryService(session, degraded_error_threshold=0.0)
        with pytest.raises(ValueError):
            QueryService(session, degraded_error_threshold=1.5)
