"""Tests for repro.common: units, deterministic RNG, table rendering."""

from repro.common.rng import DeterministicRNG
from repro.common.tables import render_table
from repro.common.units import GiB, KiB, MiB, human_bytes, human_seconds


class TestHumanBytes:
    def test_zero(self):
        assert human_bytes(0) == "0B"

    def test_bytes(self):
        assert human_bytes(512) == "512B"

    def test_kib(self):
        assert human_bytes(2048) == "2.0KiB"

    def test_mib(self):
        assert human_bytes(3 * MiB) == "3.0MiB"

    def test_gib(self):
        assert human_bytes(int(1.5 * GiB)) == "1.5GiB"

    def test_negative(self):
        assert human_bytes(-2 * KiB) == "-2.0KiB"


class TestHumanSeconds:
    def test_sub_minute(self):
        assert human_seconds(0.5) == "0.50s"

    def test_minutes(self):
        assert human_seconds(90) == "1m30s"

    def test_hours(self):
        assert human_seconds(3700) == "1h01m"


class TestDeterministicRNG:
    def test_same_seed_same_stream(self):
        a = DeterministicRNG(7).random()
        b = DeterministicRNG(7).random()
        assert a == b

    def test_children_reproducible(self):
        a = DeterministicRNG(7).child("x").randint(0, 1000)
        b = DeterministicRNG(7).child("x").randint(0, 1000)
        assert a == b

    def test_children_independent_of_draw_order(self):
        rng = DeterministicRNG(7)
        rng.random()  # consuming the parent must not shift the child
        shifted = rng.child("x").random()
        fresh = DeterministicRNG(7).child("x").random()
        assert shifted == fresh

    def test_different_children_differ(self):
        rng = DeterministicRNG(7)
        assert rng.child("x").random() != rng.child("y").random()

    def test_uniform_bounds(self):
        rng = DeterministicRNG(1)
        for _ in range(100):
            value = rng.uniform(2.0, 3.0)
            assert 2.0 <= value <= 3.0

    def test_choice_and_sample(self):
        rng = DeterministicRNG(1)
        options = ["a", "b", "c"]
        assert rng.choice(options) in options
        assert set(rng.sample(options, 2)) <= set(options)

    def test_shuffle_is_permutation(self):
        rng = DeterministicRNG(3)
        values = list(range(20))
        shuffled = list(values)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == values


class TestRenderTable:
    def test_basic(self):
        text = render_table(["a", "b"], [[1, "x"]])
        assert "| a | b |" in text
        assert "| 1 | x |" in text

    def test_title(self):
        text = render_table(["a"], [[1]], title="T")
        assert text.startswith("**T**")

    def test_number_formatting(self):
        text = render_table(["n", "f"], [[1234567, 3.14159]])
        assert "1,234,567" in text
        assert "3.14" in text

    def test_column_alignment(self):
        text = render_table(["col"], [["x"], ["longer-value"]])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1
