"""Tests for interval extraction — the contract index handlers rely on."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hiveql import parse_expression
from repro.hiveql.predicates import Interval, extract_ranges


def ranges_of(text):
    return extract_ranges(parse_expression(text))


class TestInterval:
    def test_contains_half_open(self):
        interval = Interval(low=1, high=5)
        assert interval.contains(1)
        assert interval.contains(4)
        assert not interval.contains(5)

    def test_contains_inclusive_high(self):
        assert Interval(low=1, high=5, high_inclusive=True).contains(5)

    def test_exclusive_low(self):
        assert not Interval(low=1, low_inclusive=False).contains(1)

    def test_point(self):
        point = Interval.point(3)
        assert point.is_point
        assert point.contains(3)
        assert not point.contains(4)

    def test_unbounded(self):
        assert Interval().contains(-999)
        assert Interval().contains(10**12)

    def test_none_never_contained(self):
        assert not Interval(low=0).contains(None)

    def test_empty_detection(self):
        assert Interval(low=5, high=3).is_empty
        assert Interval(low=5, high=5).is_empty  # open at high
        assert not Interval.point(5).is_empty

    def test_intersect_narrows(self):
        merged = Interval(low=1).intersect(Interval(high=5))
        assert merged.low == 1 and merged.high == 5

    def test_intersect_conflicting(self):
        merged = Interval(low=10).intersect(Interval(high=5))
        assert merged.is_empty

    def test_intersect_inclusiveness(self):
        a = Interval(low=1, high=5, high_inclusive=True)
        b = Interval(low=1, high=5, high_inclusive=False)
        assert not a.intersect(b).high_inclusive

    def test_overlaps_range(self):
        interval = Interval(low=10, high=20)
        assert interval.overlaps_range(15, 25)
        assert interval.overlaps_range(5, 11)
        assert not interval.overlaps_range(20, 30)
        assert not interval.overlaps_range(0, 10)

    def test_covers_range(self):
        interval = Interval(low=10, high=20)
        assert interval.covers_range(10, 20)
        assert interval.covers_range(12, 18)
        assert not interval.covers_range(9, 15)
        assert not interval.covers_range(15, 21)

    def test_string_intervals_for_dates(self):
        interval = Interval(low="2012-12-01", high="2012-12-31")
        assert interval.contains("2012-12-15")
        assert not interval.contains("2013-01-01")


class TestExtraction:
    def test_single_comparison(self):
        extraction = ranges_of("userid >= 100")
        interval = extraction.interval_for("userid")
        assert interval.low == 100 and interval.low_inclusive
        assert extraction.exact

    def test_flipped_literal(self):
        interval = ranges_of("100 < userid").interval_for("userid")
        assert interval.low == 100 and not interval.low_inclusive

    def test_conjunction_intersects(self):
        interval = ranges_of("a > 1 AND a < 10 AND a < 7").interval_for("a")
        assert interval.low == 1 and interval.high == 7
        assert not interval.low_inclusive and not interval.high_inclusive

    def test_multi_column(self):
        extraction = ranges_of("a > 1 AND b = 5 AND c <= 'x'")
        assert extraction.interval_for("a").low == 1
        assert extraction.interval_for("b").is_point
        assert extraction.interval_for("c").high == "x"
        assert extraction.exact

    def test_between(self):
        interval = ranges_of("a BETWEEN 3 AND 9").interval_for("a")
        assert interval.contains(3) and interval.contains(9)
        assert not interval.contains(10)

    def test_qualifier_dropped(self):
        assert ranges_of("t1.userid > 5").interval_for("userid") is not None

    def test_residual_marks_inexact(self):
        extraction = ranges_of("a > 1 AND b IN (1, 2)")
        assert extraction.interval_for("a") is not None
        assert not extraction.exact
        assert len(extraction.residual) == 1

    def test_or_is_residual(self):
        extraction = ranges_of("a > 1 OR a < 0")
        assert extraction.intervals == {}
        assert not extraction.exact

    def test_column_to_column_is_residual(self):
        extraction = ranges_of("a > b")
        assert extraction.intervals == {}
        assert not extraction.exact

    def test_null_comparison_residual(self):
        assert not ranges_of("a = NULL").exact

    def test_none_where(self):
        extraction = extract_ranges(None)
        assert extraction.exact and extraction.intervals == {}

    def test_paper_listing_2_predicate(self):
        extraction = ranges_of("A>=5 AND A<12 AND B>=12 AND B<16")
        a = extraction.interval_for("a")
        b = extraction.interval_for("b")
        assert (a.low, a.high) == (5, 12)
        assert (b.low, b.high) == (12, 16)
        assert extraction.exact


@settings(max_examples=80, deadline=None)
@given(low=st.integers(-50, 50), high=st.integers(-50, 50),
       low_inc=st.booleans(), high_inc=st.booleans(),
       value=st.integers(-60, 60))
def test_property_extraction_matches_evaluation(low, high, low_inc,
                                                high_inc, value):
    """interval.contains(v) agrees with evaluating the predicate on v."""
    low_op = ">=" if low_inc else ">"
    high_op = "<=" if high_inc else "<"
    text = f"x {low_op} {low} AND x {high_op} {high}"
    extraction = ranges_of(text)
    interval = extraction.interval_for("x")
    expected = ((value >= low if low_inc else value > low)
                and (value <= high if high_inc else value < high))
    assert interval.contains(value) == expected
