"""Tests for DGFIndex construction: reorganization, slices, headers,
metadata, and the no-rebuild append path."""

import pytest

from repro.core.dgf.builder import (append_with_dgf, parse_precompute_spec,
                                    compile_precompute)
from repro.core.dgf.store import DgfStore
from repro.errors import DGFError
from repro.hive import formats
from repro.hive.session import QueryOptions
from tests.conftest import SCAN, make_session, meter_rows


class TestPrecomputeSpec:
    def test_parse_multiple(self):
        calls = parse_precompute_spec("sum(powerConsumed), count(*)")
        assert [c.name for c in calls] == ["sum", "count"]

    def test_parse_expression_argument(self):
        calls = parse_precompute_spec("sum(num * price)")
        assert len(calls) == 1

    def test_empty_spec(self):
        assert parse_precompute_spec("") == []

    def test_non_aggregate_rejected(self):
        with pytest.raises(DGFError):
            parse_precompute_spec("powerconsumed + 1")

    def test_non_additive_rejected(self, meter_session):
        table = meter_session.metastore.get_table("meterdata")
        calls = parse_precompute_spec("count(DISTINCT userid)")
        with pytest.raises(DGFError):
            compile_precompute(table, calls)


class TestBuild:
    def test_build_report_details(self, dgf_session):
        report = dgf_session.build_report("meterdata", "dgf_idx")
        assert report.handler == "dgf"
        assert report.details["gfus"] > 0
        assert report.details["slices"] >= report.details["gfus"]
        assert report.index_size_bytes > 0
        assert "sum(powerconsumed)" in report.details["precompute"]

    def test_table_reorganized(self, dgf_session):
        table = dgf_session.metastore.get_table("meterdata")
        assert table.data_location.endswith("__dgf")
        assert dgf_session.fs.exists(table.data_location)
        # original files were moved out
        assert dgf_session.fs.list_files(table.location) == []

    def test_no_rows_lost_by_reorganization(self, dgf_session):
        assert dgf_session.table_row_count("meterdata") == 1200

    def test_slices_tile_files_without_overlap(self, dgf_session):
        """Every byte of every reorganized file belongs to exactly one
        slice."""
        store = DgfStore(dgf_session.kvstore, "meterdata", "dgf_idx")
        by_file = {}
        for _key, value in store.iter_entries():
            for location in value.locations:
                by_file.setdefault(location.file, []).append(
                    (location.start, location.end))
        assert by_file
        for path, ranges in by_file.items():
            ranges.sort()
            assert ranges[0][0] == 0
            for (s1, e1), (s2, e2) in zip(ranges, ranges[1:]):
                assert e1 == s2, f"gap or overlap in {path}"
            assert ranges[-1][1] == dgf_session.fs.file_length(path)

    def test_records_in_slice_belong_to_gfu(self, dgf_session):
        """All records in a slice standardize to the slice's GFUKey."""
        store = DgfStore(dgf_session.kvstore, "meterdata", "dgf_idx")
        policy = store.load_policy()
        table = dgf_session.metastore.get_table("meterdata")
        from repro.storage.textfile import TextFileReader
        checked = 0
        for key, value in store.iter_entries():
            location = value.locations[0]
            with dgf_session.fs.open(location.file) as stream:
                reader = TextFileReader(stream, table.schema)
                for _off, row in reader.iter_rows(location.start,
                                                  location.end):
                    assert policy.key_of_row(row[:3]) == key
                    checked += 1
            if checked > 300:
                break
        assert checked > 0

    def test_headers_match_recomputation(self, dgf_session):
        """Pre-computed sum/count per GFU equal recomputing from the slice
        contents — the core header-correctness invariant."""
        store = DgfStore(dgf_session.kvstore, "meterdata", "dgf_idx")
        table = dgf_session.metastore.get_table("meterdata")
        from repro.storage.textfile import TextFileReader
        for key, value in list(store.iter_entries())[:50]:
            rows = []
            for location in value.locations:
                with dgf_session.fs.open(location.file) as stream:
                    reader = TextFileReader(stream, table.schema)
                    rows.extend(r for _, r in reader.iter_rows(
                        location.start, location.end))
            assert value.header["count(*)"] == len(rows)
            assert value.header["sum(powerconsumed)"] \
                == pytest.approx(sum(r[3] for r in rows))
            assert value.records == len(rows)

    def test_bounds_cover_data(self, dgf_session):
        store = DgfStore(dgf_session.kvstore, "meterdata", "dgf_idx")
        bounds = store.load_bounds()
        policy = store.load_policy()
        assert bounds["userid"] == (0, 199 // 25)
        assert bounds["ts"][0] == 0
        assert policy.dimension("ts").cell_start(bounds["ts"][1]) \
            <= "2012-12-06"

    def test_missing_policy_property(self, meter_session):
        with pytest.raises(DGFError):
            meter_session.execute(
                "CREATE INDEX bad ON TABLE meterdata(userid, regionid) "
                "AS 'dgf' IDXPROPERTIES ('userid'='0_25')")

    def test_rebuild_after_build(self, dgf_session):
        """Rebuilding an already-reorganized table works (alt directory)."""
        before = dgf_session.table_row_count("meterdata")
        report = dgf_session.rebuild_index("meterdata", "dgf_idx")
        assert dgf_session.table_row_count("meterdata") == before
        assert report.details["gfus"] > 0

    def test_drop_clears_store(self, dgf_session):
        dgf_session.execute("DROP INDEX dgf_idx ON meterdata")
        store = DgfStore(dgf_session.kvstore, "meterdata", "dgf_idx")
        assert store.count_entries() == 0


class TestAppend:
    def test_append_extends_time_dimension(self, dgf_session):
        new_rows = [(u, u % 5, "2012-12-08", 1.5) for u in range(200)]
        report = append_with_dgf(dgf_session, "meterdata", "dgf_idx",
                                 new_rows)
        assert report.details["appended_rows"] == 200
        assert dgf_session.table_row_count("meterdata") == 1400
        store = DgfStore(dgf_session.kvstore, "meterdata", "dgf_idx")
        bounds = store.load_bounds()
        policy = store.load_policy()
        top_cell = policy.dimension("ts").cell_of("2012-12-08")
        assert bounds["ts"][1] == top_cell

    def test_append_never_rewrites_existing_files(self, dgf_session):
        table = dgf_session.metastore.get_table("meterdata")
        before = {path: dgf_session.fs.read_bytes(path)
                  for path in dgf_session.fs.list_files(
                      table.data_location)}
        append_with_dgf(dgf_session, "meterdata", "dgf_idx",
                        [(1, 1, "2012-12-09", 2.0)])
        for path, content in before.items():
            assert dgf_session.fs.read_bytes(path) == content

    def test_append_queryable_without_rebuild(self, dgf_session):
        append_with_dgf(dgf_session, "meterdata", "dgf_idx",
                        [(7, 2, "2012-12-09", 10.0),
                         (8, 2, "2012-12-09", 20.0)])
        result = dgf_session.execute(
            "SELECT sum(powerconsumed) FROM meterdata "
            "WHERE ts = '2012-12-09'")
        assert result.scalar() == pytest.approx(30.0)
        scan = dgf_session.execute(
            "SELECT sum(powerconsumed) FROM meterdata "
            "WHERE ts = '2012-12-09'", SCAN)
        assert scan.scalar() == pytest.approx(30.0)

    def test_append_merges_headers_for_existing_cells(self, dgf_session):
        """Appending into an existing day's cell merges headers additively
        and appends a second slice location."""
        sql = ("SELECT sum(powerconsumed), count(*) FROM meterdata "
               "WHERE ts = '2012-12-03'")
        before = dgf_session.execute(sql, SCAN).rows[0]
        append_with_dgf(dgf_session, "meterdata", "dgf_idx",
                        [(3, 0, "2012-12-03", 5.0)])
        after = dgf_session.execute(sql)
        assert after.rows[0][1] == before[1] + 1
        assert after.rows[0][0] == pytest.approx(before[0] + 5.0)

    def test_empty_append_is_a_noop(self, dgf_session):
        """Zero rows: no job, no new files, no generation bump."""
        table = dgf_session.metastore.get_table("meterdata")
        store = DgfStore(dgf_session.kvstore, "meterdata", "dgf_idx")
        files = sorted(dgf_session.fs.list_files(table.data_location))
        generation = store.get_meta("generation")
        jobs = dgf_session.engine.jobs_run
        report = append_with_dgf(dgf_session, "meterdata", "dgf_idx", [])
        assert report.details["appended_rows"] == 0
        assert sorted(dgf_session.fs.list_files(table.data_location)) \
            == files
        assert store.get_meta("generation") == generation
        assert dgf_session.engine.jobs_run == jobs
        assert dgf_session.table_row_count("meterdata") == 1200

    def test_append_creates_brand_new_gfu_cell(self, dgf_session):
        """Rows standardizing to a cell no existing GFU covers create a
        fresh entry (header, one slice, records) and extend the bounds."""
        store = DgfStore(dgf_session.kvstore, "meterdata", "dgf_idx")
        policy = store.load_policy()
        row = (250, 9, "2012-12-20", 4.5)
        cell = policy.key_of_row(row[:3])
        assert store.get_value(cell) is None
        append_with_dgf(dgf_session, "meterdata", "dgf_idx", [row])
        value = store.get_value(cell)
        assert value is not None
        assert value.records == 1
        assert value.header["count(*)"] == 1
        assert value.header["sum(powerconsumed)"] == pytest.approx(4.5)
        bounds = store.load_bounds()
        assert bounds["userid"][1] >= policy.dimension("userid").cell_of(250)
        result = dgf_session.execute(
            "SELECT sum(powerconsumed) FROM meterdata "
            "WHERE userid >= 250 AND userid < 251")
        assert result.scalar() == pytest.approx(4.5)

    def test_two_appends_into_same_boundary_gfu(self, dgf_session):
        """Two consecutive appends into one cell stack a third and fourth
        slice location while headers stay additive — and a boundary query
        (exact predicate over the slices) agrees with a full scan."""
        store = DgfStore(dgf_session.kvstore, "meterdata", "dgf_idx")
        policy = store.load_policy()
        cell = policy.key_of_row((3, 0, "2012-12-03"))
        before = store.get_value(cell)
        # snapshot plain values: the store hands back live objects that
        # merge_value mutates in place
        locations, records = len(before.locations), before.records
        count, total = (before.header["count(*)"],
                        before.header["sum(powerconsumed)"])
        append_with_dgf(dgf_session, "meterdata", "dgf_idx",
                        [(3, 0, "2012-12-03", 5.0)])
        append_with_dgf(dgf_session, "meterdata", "dgf_idx",
                        [(3, 0, "2012-12-03", 7.0)])
        value = store.get_value(cell)
        assert len(value.locations) == locations + 2
        assert value.records == records + 2
        assert value.header["count(*)"] == count + 2
        assert value.header["sum(powerconsumed)"] == pytest.approx(
            total + 12.0)
        # generation advanced once per append
        assert store.get_meta("generation") >= 2
        sql = ("SELECT sum(powerconsumed), count(*) FROM meterdata "
               "WHERE userid >= 3 AND userid < 4 AND regionid >= 0 "
               "AND regionid < 1 AND ts >= '2012-12-03' "
               "AND ts < '2012-12-04'")
        indexed = dgf_session.execute(sql)
        scan = dgf_session.execute(sql, SCAN)
        assert indexed.rows == scan.rows

    def test_append_requires_built_index(self, meter_session):
        meter_session.execute(
            "CREATE INDEX d ON TABLE meterdata(userid) AS 'dgf' "
            "WITH DEFERRED REBUILD "
            "IDXPROPERTIES ('userid'='0_25')")
        with pytest.raises(DGFError):
            append_with_dgf(meter_session, "meterdata", "d", [(1, 1,
                            "2012-12-01", 1.0)])


class TestAllBaseFormats:
    """DGFIndex works over TextFile, RCFile and SequenceFile base tables
    (the paper ships TextFile only and calls the rest 'easy to extend')."""

    @pytest.mark.parametrize("stored_as", ["TEXTFILE", "RCFILE",
                                           "SEQUENCEFILE"])
    def test_build_and_query(self, stored_as):
        session = make_session()
        session.execute(
            "CREATE TABLE meterdata (userid bigint, regionid int, "
            f"ts date, powerconsumed double) STORED AS {stored_as}")
        session.load_rows("meterdata", meter_rows(num_users=80,
                                                  num_days=4))
        session.execute(
            "CREATE INDEX d ON TABLE meterdata(userid, regionid, ts) "
            "AS 'dgf' IDXPROPERTIES ('userid'='0_10', 'regionid'='0_1', "
            "'ts'='2012-12-01_1d', 'precompute'='sum(powerconsumed)')")
        sql = ("SELECT sum(powerconsumed) FROM meterdata "
               "WHERE userid >= 12 AND userid < 47 "
               "AND ts >= '2012-12-02' AND ts < '2012-12-04'")
        scan = session.execute(sql, SCAN)
        indexed = session.execute(sql)
        assert indexed.scalar() == pytest.approx(scan.scalar())
        assert indexed.stats.records_read < scan.stats.records_read
        assert "dgf" in indexed.stats.index_used
