"""Query-lifecycle tracing: span API, JSON schema, EXPLAIN ANALYZE,
cross-worker determinism, sim-time reconciliation, and overhead."""

import json
import time

import pytest

from repro.mapreduce.cluster import ExecutionConfig
from repro.mapreduce.cost import TimeBreakdown
from repro.obs.trace import (NULL_SPAN, NULL_TRACER, Span, Trace, Tracer,
                             TRACE_SCHEMA, TRACE_VERSION, validate_trace)
from tests.conftest import METER_DDL, SCAN, make_session, meter_rows

MDRQ = ("SELECT sum(powerconsumed) FROM meterdata "
        "WHERE userid >= 30 AND userid < 170 "
        "AND ts >= '2012-12-02' AND ts < '2012-12-05'")

DGF_INDEX = ("CREATE INDEX dgf_idx ON TABLE meterdata"
             "(userid, regionid, ts) AS 'dgf' IDXPROPERTIES ("
             "'userid'='0_25', 'regionid'='0_1', 'ts'='2012-12-01_2d', "
             "'precompute'='sum(powerconsumed),count(*)')")


def dgf_meter_session(execution=None):
    session = make_session(execution=execution)
    session.execute(METER_DDL)
    rows = meter_rows()
    half = len(rows) // 2
    session.load_rows("meterdata", rows[:half])
    session.load_rows("meterdata", rows[half:])
    session.execute(DGF_INDEX)
    return session


# ------------------------------------------------------------------ span API
class TestSpanApi:
    def test_attrs_counters_children(self):
        span = Span("root")
        span.set("k", "v")
        span.add("n", 2)
        span.add("n", 3)
        child = span.child("missing")
        assert child is None
        span.attach(Span("child"))
        assert span.attrs == {"k": "v"}
        assert span.counters == {"n": 5}
        assert span.child("child").name == "child"

    def test_walk_find_total(self):
        root = Span("root", counters={"x": 1})
        a = Span("a", counters={"x": 2})
        b = Span("b", counters={"x": 4})
        a.attach(b)
        root.attach(a)
        assert [s.name for s in root.walk()] == ["root", "a", "b"]
        assert root.find("b") is b
        assert root.total_counter("x") == 7

    def test_children_sim_sum_matches_accumulation_order(self):
        root = Span("root")
        values = [0.1, 0.2, 0.30000000000000004, 7.7]
        acc = TimeBreakdown()
        for index, value in enumerate(values):
            child = Span(f"c{index}",
                         sim=TimeBreakdown(read_data_and_process=value))
            root.attach(child)
            acc = acc + child.sim
        root.attach(Span("no-sim"))  # spans without sim are skipped
        assert root.children_sim_sum() == acc

    def test_tracer_nests_on_one_thread(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            assert tracer.current() is outer
            with tracer.span("inner", k=1) as inner:
                tracer.add("ops", 2)
            assert inner.attrs == {"k": 1}
        assert outer.children == [inner]
        assert inner.counters == {"ops": 2}
        assert tracer.current() is None

    def test_task_span_stays_detached(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.task_span("task") as task:
                tracer.add("ops")
        assert outer.children == []  # caller attaches at the barrier
        assert task.counters == {"ops": 1}

    def test_disabled_tracer_yields_null_span(self):
        with NULL_TRACER.span("anything") as span:
            span.set("k", "v")
            span.add("n")
            span.attach(Span("child"))
        assert span is NULL_SPAN
        assert NULL_SPAN.attrs == {}
        assert NULL_SPAN.counters == {}
        assert NULL_SPAN.children == []

    def test_add_without_open_span_is_noop(self):
        Tracer().add("orphan")  # must not raise


# --------------------------------------------------------------- JSON schema
class TestTraceJson:
    def make_trace(self):
        root = Span("query", attrs={"table": "t"}, counters={"rows": 3},
                    sim=TimeBreakdown(read_index_and_other=1.5,
                                      read_data_and_process=2.5),
                    wall_seconds=0.01)
        root.attach(Span("analyze"))
        return Trace(root)

    def test_round_trip_is_identity(self):
        trace = self.make_trace()
        text = trace.to_json()
        again = Trace.from_json(text)
        assert again.to_json() == text
        assert again.root.sim == trace.root.sim

    def test_document_layout(self):
        doc = self.make_trace().to_dict()
        validate_trace(doc)
        assert doc["schema"] == TRACE_SCHEMA
        assert doc["version"] == TRACE_VERSION
        assert set(doc) == {"schema", "version", "root"}
        assert set(doc["root"]) == {"name", "attrs", "counters",
                                    "sim_seconds", "wall_seconds",
                                    "children"}
        assert set(doc["root"]["sim_seconds"]) == {
            "read_index_and_other", "read_data_and_process", "total"}

    @pytest.mark.parametrize("mutate, message", [
        (lambda d: d.pop("schema"), "schema"),
        (lambda d: d.__setitem__("version", 99), "version"),
        (lambda d: d.__setitem__("extra", 1), "schema, version, root"),
        (lambda d: d["root"].pop("counters"), "missing"),
        (lambda d: d["root"].__setitem__("surprise", 1), "unknown"),
        (lambda d: d["root"].__setitem__("name", ""), "name"),
        (lambda d: d["root"]["counters"].__setitem__("bad", "text"),
         "number"),
        (lambda d: d["root"]["sim_seconds"].pop("total"), "sim_seconds"),
        (lambda d: d["root"]["children"].append({"name": "x"}), "children"),
    ])
    def test_validate_rejects_malformed(self, mutate, message):
        doc = self.make_trace().to_dict()
        mutate(doc)
        with pytest.raises(ValueError, match=message):
            validate_trace(doc)

    def test_normalized_zeroes_wall_everywhere(self):
        trace = self.make_trace()
        trace.root.children[0].wall_seconds = 5.0
        doc = trace.normalized()
        assert doc["root"]["wall_seconds"] == 0.0
        assert doc["root"]["children"][0]["wall_seconds"] == 0.0
        validate_trace(doc)

    def test_to_json_is_stable(self):
        trace = self.make_trace()
        assert trace.to_json() == trace.to_json()
        # sorted keys: serialization does not depend on insertion order
        shuffled = Span("query", sim=trace.root.sim,
                        wall_seconds=trace.root.wall_seconds)
        shuffled.counters["rows"] = 3
        shuffled.attrs["table"] = "t"
        shuffled.attach(Span("analyze"))
        assert Trace(shuffled).to_json() == trace.to_json()


# ------------------------------------------------------------ session traces
class TestSessionTraces:
    def test_query_trace_shape(self):
        session = dgf_meter_session()
        result = session.execute(MDRQ)
        root = result.trace.root
        assert root.name == "query"
        assert root.attrs["table"] == "meterdata"
        names = [child.name for child in root.children]
        assert names[0] == "analyze"
        assert names[1] == "plan_access"
        assert "finalize" in names
        plan = root.find("plan_access")
        assert plan.attrs["handler"] == "dgf"
        assert plan.attrs["inner_gfus"] >= 0
        assert plan.attrs["boundary_gfus"] > 0
        assert root.find("plan:dgf").attrs["selected"] is True
        assert root.find("dgf.search_grid") is not None

    def test_root_sim_reconciles_exactly(self):
        session = dgf_meter_session()
        for options in (None, SCAN):
            result = session.execute(MDRQ, options)
            root = result.trace.root
            assert root.sim == result.stats.time
            assert root.sim == root.children_sim_sum()

    def test_mr_job_phases_reconcile_exactly(self):
        session = dgf_meter_session()
        result = session.execute(MDRQ, SCAN)
        job = result.trace.root.find("mr_job")
        assert job is not None
        assert job.sim == job.children_sim_sum()
        assert job.child("job_launch") is not None
        assert job.child("map_phase") is not None

    def test_task_spans_carry_io_counters(self):
        session = dgf_meter_session()
        result = session.execute(MDRQ, SCAN)
        maps = result.trace.root.find("map_phase").children
        assert maps, "expected per-task map spans"
        assert all(span.name == "map" for span in maps)
        read = sum(span.counters.get("hdfs.bytes_read", 0) for span in maps)
        assert read == result.stats.bytes_read

    def test_kv_ops_counted_under_planning(self):
        session = dgf_meter_session()
        result = session.execute(MDRQ)
        plan = result.trace.root.find("plan:dgf")
        assert plan.total_counter("kv.gets") > 0

    def test_trace_validates_and_round_trips(self):
        session = dgf_meter_session()
        trace = session.execute(MDRQ).trace
        doc = json.loads(trace.to_json())
        validate_trace(doc)
        assert Trace.from_json(trace.to_json()).to_json() == trace.to_json()

    def test_normalized_trace_identical_across_workers(self):
        baseline = None
        for workers in (1, 8):
            session = dgf_meter_session(
                execution=ExecutionConfig(max_workers=workers))
            normalized = session.execute(MDRQ, SCAN).trace.normalized_json()
            if baseline is None:
                baseline = normalized
            else:
                assert normalized == baseline

    def test_disabled_tracer_gives_no_trace_and_same_answer(self):
        traced = dgf_meter_session()
        untraced = dgf_meter_session()
        untraced.tracer.enabled = False
        with_trace = traced.execute(MDRQ)
        without = untraced.execute(MDRQ)
        assert without.trace is None
        assert without.rows == with_trace.rows
        assert without.stats.time == with_trace.stats.time


# ------------------------------------------------------------ EXPLAIN ANALYZE
class TestExplainAnalyze:
    def test_plain_explain_shows_plan_details(self):
        session = dgf_meter_session()
        result = session.execute("EXPLAIN " + MDRQ)
        text = result.description
        assert "handler: dgf" in text
        assert "gfus: inner=" in text
        assert "splits kept:" in text and "pruned" in text
        # planning-only: the query did not run
        assert session.engine.jobs_run == 1  # only the index build job

    def test_explain_analyze_executes_and_renders_tree(self):
        session = dgf_meter_session()
        jobs_before = session.engine.jobs_run
        result = session.execute("EXPLAIN ANALYZE " + MDRQ)
        assert session.engine.jobs_run > jobs_before
        lines = [row[0] for row in result.rows]
        assert any(line.startswith("query ") for line in lines)
        assert any("plan_access" in line for line in lines)
        assert result.trace is not None
        assert result.stats.time == result.trace.root.sim

    def test_explain_analyze_reports_gfu_counts(self):
        session = dgf_meter_session()
        result = session.execute("EXPLAIN ANALYZE " + MDRQ)
        plan = result.trace.root.find("plan_access")
        text = result.description
        assert f"inner_gfus={plan.attrs['inner_gfus']}" in text
        assert f"boundary_gfus={plan.attrs['boundary_gfus']}" in text


# ------------------------------------------------------------------ overhead
def _timed_queries(enabled: bool) -> float:
    session = dgf_meter_session()
    session.tracer.enabled = enabled
    best = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        for _ in range(4):
            session.execute(MDRQ, SCAN)
        best = min(best, time.perf_counter() - started)
    return best


def test_tracing_overhead():
    """Tracing must stay cheap in sequential mode.

    The acceptance budget is ~5%; to keep CI deterministic this regression
    test asserts a generous 40% ceiling on best-of-three timings — an
    accidental per-record or per-byte span would blow past it by orders of
    magnitude, which is the failure mode being guarded.
    """
    with_tracing = _timed_queries(True)
    without = _timed_queries(False)
    assert with_tracing <= without * 1.4 + 0.05
