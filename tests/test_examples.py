"""Smoke tests: the example scripts must run end to end.

The two heaviest examples (tpch_q6, policy_tuning) are exercised at their
native scale only here, so this module dominates suite wall-time; each
test simply requires a clean exit.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=600)


@pytest.mark.parametrize("script", [
    "quickstart.py",
    "smart_grid_analytics.py",
    "workflow_migration.py",
])
def test_fast_examples(script):
    result = run_example(script)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout  # they all narrate what they do


def test_quickstart_outputs_answer(capsys):
    result = run_example("quickstart.py")
    assert "records read: 0" in result.stdout  # header-path answer
    assert "EXPLAIN" in result.stdout or "access path" in result.stdout


def test_workflow_example_exports_statistics():
    result = run_example("workflow_migration.py")
    assert "exported statistics file" in result.stdout
