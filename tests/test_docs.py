"""Documentation health: intra-repo markdown links resolve, and the
executable examples in docs/observability.md pass under doctest."""

import doctest
import pathlib
import re

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: inline markdown link — [text](target)
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def markdown_files():
    return sorted(
        path for path in REPO_ROOT.rglob("*.md")
        if ".git" not in path.parts)


def _iter_links(path: pathlib.Path):
    """Inline links outside fenced code blocks, with line numbers."""
    in_fence = False
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK.finditer(line):
            yield number, match.group(1)


def test_docs_index_lists_every_docs_page():
    """docs/index.md is the TOC: every docs/*.md page (except itself)
    must be linked from it, so a new page cannot ship unindexed."""
    index = REPO_ROOT / "docs" / "index.md"
    linked = {target.split("#", 1)[0]
              for _num, target in _iter_links(index)}
    missing = [path.name
               for path in sorted((REPO_ROOT / "docs").glob("*.md"))
               if path.name != "index.md" and path.name not in linked]
    assert not missing, f"docs/index.md does not link: {missing}"


@pytest.mark.parametrize("path", markdown_files(),
                         ids=lambda p: str(p.relative_to(REPO_ROOT)))
def test_intra_repo_markdown_links_resolve(path):
    broken = []
    for number, target in _iter_links(path):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        local = target.split("#", 1)[0]
        if not local:
            continue
        resolved = (path.parent / local).resolve()
        if not resolved.exists():
            broken.append(f"{path.name}:{number}: {target}")
    assert not broken, "broken intra-repo links:\n" + "\n".join(broken)


def test_observability_doctests():
    """Every ``>>>`` example in docs/observability.md must run verbatim."""
    results = doctest.testfile(
        str(REPO_ROOT / "docs" / "observability.md"),
        module_relative=False, verbose=False)
    assert results.attempted > 20, "doctest examples went missing"
    assert results.failed == 0


def test_api_doctests():
    """Every ``>>>`` example in docs/api.md must run verbatim."""
    results = doctest.testfile(
        str(REPO_ROOT / "docs" / "api.md"),
        module_relative=False, verbose=False)
    assert results.attempted > 25, "doctest examples went missing"
    assert results.failed == 0


def test_streaming_doctests():
    """Every ``>>>`` example in docs/streaming.md must run verbatim."""
    results = doctest.testfile(
        str(REPO_ROOT / "docs" / "streaming.md"),
        module_relative=False, verbose=False)
    assert results.attempted > 25, "doctest examples went missing"
    assert results.failed == 0


def test_replicas_doctests():
    """Every ``>>>`` example in docs/replicas.md must run verbatim."""
    results = doctest.testfile(
        str(REPO_ROOT / "docs" / "replicas.md"),
        module_relative=False, verbose=False)
    assert results.attempted > 40, "doctest examples went missing"
    assert results.failed == 0


def test_advisor_doctests():
    """Every ``>>>`` example in docs/advisor.md must run verbatim."""
    results = doctest.testfile(
        str(REPO_ROOT / "docs" / "advisor.md"),
        module_relative=False, verbose=False)
    assert results.attempted > 50, "doctest examples went missing"
    assert results.failed == 0


def test_pyramid_doctests():
    """Every ``>>>`` example in docs/pyramid.md must run verbatim."""
    results = doctest.testfile(
        str(REPO_ROOT / "docs" / "pyramid.md"),
        module_relative=False, verbose=False)
    assert results.attempted > 25, "doctest examples went missing"
    assert results.failed == 0


def test_vectorized_doctests():
    """Every ``>>>`` example in docs/vectorized.md must run verbatim.

    The examples assert vectorization actually engages, so they need
    NumPy and a clean ``REPRO_VECTOR_DISABLE`` (the doc flips and
    restores it itself)."""
    pytest.importorskip("numpy")
    import os
    if os.environ.get("REPRO_VECTOR_DISABLE"):
        pytest.skip("REPRO_VECTOR_DISABLE is set for this run")
    results = doctest.testfile(
        str(REPO_ROOT / "docs" / "vectorized.md"),
        module_relative=False, verbose=False)
    assert results.attempted > 20, "doctest examples went missing"
    assert results.failed == 0
