"""Tests for the MapReduce engine, splits, counters and cost model."""

import os

import pytest

from repro.errors import MapReduceError
from repro.hdfs.filesystem import HDFS
from repro.mapreduce.cluster import (PAPER_CLUSTER, SEQUENTIAL,
                                     ClusterConfig, ExecutionConfig)
from repro.mapreduce.cost import (CostModel, JobStats, KVStats, TaskStats,
                                  TimeBreakdown)
from repro.mapreduce.counters import Counters
from repro.mapreduce.engine import MapReduceEngine, estimate_size, stable_hash
from repro.mapreduce.job import Job
from repro.mapreduce.splits import FileSplit, TextRowInputFormat
from repro.storage.schema import DataType, Schema
from repro.storage.textfile import TextFileWriter


@pytest.fixture
def loaded_fs():
    fs = HDFS(num_datanodes=3, block_size=600)
    schema = Schema.of(("k", DataType.INT), ("v", DataType.INT))
    with fs.create("/in/part-0") as stream:
        writer = TextFileWriter(stream, schema)
        for i in range(200):
            writer.write_row((i % 10, i))
    return fs, schema


class TestCounters:
    def test_inc_and_get(self):
        c = Counters()
        c.inc("g", "n", 3)
        c.inc("g", "n")
        assert c.get("g", "n") == 4

    def test_missing_is_zero(self):
        assert Counters().get("x", "y") == 0

    def test_merge(self):
        a, b = Counters(), Counters()
        a.inc("g", "n", 1)
        b.inc("g", "n", 2)
        b.inc("g", "m", 5)
        a.merge(b)
        assert a.get("g", "n") == 3
        assert a.get("g", "m") == 5

    def test_items_sorted(self):
        c = Counters()
        c.inc("b", "y")
        c.inc("a", "x")
        assert [g for g, _, _ in c.items()] == ["a", "b"]

    def test_merge_order_independent(self):
        """Per-task counters merged at the barrier must not depend on the
        order tasks were merged in (integer addition commutes)."""
        parts = []
        for i in range(4):
            c = Counters()
            c.inc("g", "n", i + 1)
            c.inc(f"g{i}", "only", 7)
            parts.append(c)
        forward, backward = Counters(), Counters()
        for c in parts:
            forward.merge(c)
        for c in reversed(parts):
            backward.merge(c)
        assert forward.as_dict() == backward.as_dict()
        assert forward.get("g", "n") == 10

    def test_merge_empty_is_identity(self):
        c = Counters()
        c.inc("g", "n", 5)
        before = c.as_dict()
        c.merge(Counters())
        assert c.as_dict() == before


class TestSplits:
    def test_block_aligned_splits(self, loaded_fs):
        fs, schema = loaded_fs
        fmt = TextRowInputFormat(schema)
        splits = fmt.get_splits(fs, ["/in"])
        assert len(splits) == len(fs.status("/in/part-0").blocks)
        assert splits[0].start == 0
        total = sum(s.length for s in splits)
        assert total == fs.file_length("/in/part-0")

    def test_splits_cover_all_rows_exactly_once(self, loaded_fs):
        fs, schema = loaded_fs
        fmt = TextRowInputFormat(schema)
        rows = []
        for split in fmt.get_splits(fs, ["/in"]):
            rows.extend(r for _, r in fmt.read_split(fs, split))
        assert len(rows) == 200
        assert sorted(v for _, v in rows) == list(range(200))

    def test_directory_and_file_paths(self, loaded_fs):
        fs, schema = loaded_fs
        fmt = TextRowInputFormat(schema)
        by_dir = fmt.get_splits(fs, ["/in"])
        by_file = fmt.get_splits(fs, ["/in/part-0"])
        assert [(s.path, s.start) for s in by_dir] \
            == [(s.path, s.start) for s in by_file]

    def test_empty_file_has_no_splits(self):
        fs = HDFS(num_datanodes=1)
        fs.write_bytes("/empty", b"")
        assert TextRowInputFormat(
            Schema.of(("a", DataType.INT))).get_splits(fs, ["/empty"]) == []


class TestEngine:
    def test_map_only(self, loaded_fs):
        fs, schema = loaded_fs
        fmt = TextRowInputFormat(schema)

        def mapper(key, row, ctx):
            if row[1] < 5:
                ctx.emit(row[0], row[1])

        engine = MapReduceEngine(fs)
        result = engine.run(Job(name="m", input_format=fmt, mapper=mapper,
                                input_paths=["/in"], num_reducers=0))
        assert sorted(v for _, v in result.output) == [0, 1, 2, 3, 4]
        assert result.stats.map_input_records == 200
        assert result.stats.reduce_tasks == 0

    def test_full_job_with_combiner(self, loaded_fs):
        fs, schema = loaded_fs
        fmt = TextRowInputFormat(schema)

        def mapper(key, row, ctx):
            ctx.emit(row[0], 1)

        def reduce_fn(key, values, ctx):
            ctx.emit(key, sum(values))

        engine = MapReduceEngine(fs)
        with_combiner = engine.run(Job(
            name="c", input_format=fmt, mapper=mapper, combiner=reduce_fn,
            reducer=reduce_fn, input_paths=["/in"], num_reducers=3))
        without = engine.run(Job(
            name="nc", input_format=fmt, mapper=mapper,
            reducer=reduce_fn, input_paths=["/in"], num_reducers=3))
        assert sorted(with_combiner.output) == sorted(without.output)
        assert dict(with_combiner.output) == {k: 20 for k in range(10)}
        # the combiner shrinks shuffle volume
        assert with_combiner.stats.shuffle_bytes < without.stats.shuffle_bytes

    def test_partitioning_keeps_key_together(self, loaded_fs):
        fs, schema = loaded_fs
        fmt = TextRowInputFormat(schema)

        def mapper(key, row, ctx):
            ctx.emit(row[0], row[1])

        seen_keys = []

        def reducer(key, values, ctx):
            seen_keys.append(key)
            ctx.emit(key, len(values))

        engine = MapReduceEngine(fs)
        result = engine.run(Job(name="p", input_format=fmt, mapper=mapper,
                                reducer=reducer, input_paths=["/in"],
                                num_reducers=4))
        assert sorted(seen_keys) == list(range(10))  # each key reduced once
        assert result.stats.reduce_tasks <= 4

    def test_reduce_hooks(self, loaded_fs):
        fs, schema = loaded_fs
        fmt = TextRowInputFormat(schema)
        events = []

        def mapper(key, row, ctx):
            ctx.emit(0, 1)

        def reducer(key, values, ctx):
            assert ctx.state["open"]

        engine = MapReduceEngine(fs)
        engine.run(Job(
            name="h", input_format=fmt, mapper=mapper, reducer=reducer,
            input_paths=["/in"], num_reducers=1,
            reduce_setup=lambda ctx: (events.append("setup"),
                                      ctx.state.__setitem__("open", True)),
            reduce_cleanup=lambda ctx: events.append("cleanup")))
        assert events == ["setup", "cleanup"]

    def test_mapper_sees_split(self, loaded_fs):
        fs, schema = loaded_fs
        fmt = TextRowInputFormat(schema)
        paths = set()

        def mapper(key, row, ctx):
            paths.add(ctx.split.path)

        MapReduceEngine(fs).run(Job(name="s", input_format=fmt,
                                    mapper=mapper, input_paths=["/in"],
                                    num_reducers=0))
        assert paths == {"/in/part-0"}

    def test_presupplied_splits(self, loaded_fs):
        fs, schema = loaded_fs
        fmt = TextRowInputFormat(schema)
        splits = fmt.get_splits(fs, ["/in"])[:1]

        def mapper(key, row, ctx):
            ctx.emit(None, row)

        result = MapReduceEngine(fs).run(Job(
            name="ps", input_format=fmt, mapper=mapper, splits=splits,
            num_reducers=0))
        assert result.stats.map_tasks == 1
        assert 0 < result.stats.map_input_records < 200

    def test_validation_errors(self, loaded_fs):
        fs, schema = loaded_fs
        fmt = TextRowInputFormat(schema)
        with pytest.raises(MapReduceError):
            MapReduceEngine(fs).run(Job(name="bad", input_format=fmt,
                                        mapper=lambda k, v, c: None))
        with pytest.raises(MapReduceError):
            MapReduceEngine(fs).run(Job(
                name="bad2", input_format=fmt,
                mapper=lambda k, v, c: None, input_paths=["/in"],
                reduce_setup=lambda ctx: None))

    def test_stable_hash_deterministic(self):
        assert stable_hash(("a", 1)) == stable_hash(("a", 1))
        assert stable_hash("x") != stable_hash("y")

    def test_estimate_size_shapes(self):
        assert estimate_size("abcd") == 4
        assert estimate_size(7) == 8
        assert estimate_size((1, "ab")) == 4 + 8 + 2
        assert estimate_size({1: "a"}) == 4 + 8 + 1
        assert estimate_size(None) == 1
        assert estimate_size({1, 2}) == 4 + 16

    def test_estimate_size_ignores_insertion_order(self):
        """Shuffle-byte accounting must be identical however a dict or set
        was populated — regression for stable counters across engines."""
        forward = {}
        backward = {}
        items = [("alpha", 1), ("b", 22.5), ("ccc", None), ("dd", "xyz")]
        for k, v in items:
            forward[k] = v
        for k, v in reversed(items):
            backward[k] = v
        assert estimate_size(forward) == estimate_size(backward)

        grow, shrink = set(), set()
        for token in ["a", "bb", "ccc", "dddd"]:
            grow.add(token)
        for token in ["dddd", "ccc", "bb", "a"]:
            shrink.add(token)
        assert estimate_size(grow) == estimate_size(shrink)

    def test_parallel_engine_matches_sequential(self, loaded_fs):
        """The same job run at several worker counts returns identical
        output, counters, stats and per-task stats."""
        fs, schema = loaded_fs
        fmt = TextRowInputFormat(schema)

        def mapper(key, row, ctx):
            ctx.counter("t", "mapped")
            ctx.emit(row[0], row[1])

        def reducer(key, values, ctx):
            ctx.emit(key, sum(values))

        def run(execution):
            engine = MapReduceEngine(fs, execution=execution)
            return engine.run(Job(name="eq", input_format=fmt,
                                  mapper=mapper, reducer=reducer,
                                  input_paths=["/in"], num_reducers=3))

        baseline = run(None)
        for workers in (2, 4, 8):
            result = run(ExecutionConfig(max_workers=workers))
            assert result.output == baseline.output
            assert result.counters.as_dict() == baseline.counters.as_dict()
            assert result.stats == baseline.stats
            assert result.task_stats == baseline.task_stats

    def test_job_execution_overrides_engine(self, loaded_fs):
        """Job.execution wins over the engine's ExecutionConfig."""
        fs, schema = loaded_fs
        fmt = TextRowInputFormat(schema)

        def mapper(key, row, ctx):
            ctx.emit(row[0], 1)

        def reducer(key, values, ctx):
            ctx.emit(key, sum(values))

        sequential_engine = MapReduceEngine(fs)
        overridden = sequential_engine.run(Job(
            name="ov", input_format=fmt, mapper=mapper, reducer=reducer,
            input_paths=["/in"], num_reducers=2,
            execution=ExecutionConfig(max_workers=4)))
        plain = sequential_engine.run(Job(
            name="ov", input_format=fmt, mapper=mapper, reducer=reducer,
            input_paths=["/in"], num_reducers=2))
        assert overridden.output == plain.output
        assert overridden.stats == plain.stats


class TestExecutionConfig:
    def test_default_is_sequential(self):
        config = ExecutionConfig()
        assert config.max_workers == 1
        assert config.worker_count() == 1
        assert not config.is_parallel
        assert SEQUENTIAL.worker_count() == 1

    def test_zero_means_one_per_core(self):
        config = ExecutionConfig(max_workers=0)
        assert config.worker_count() == (os.cpu_count() or 1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ExecutionConfig(max_workers=-1)

    def test_engine_defaults_to_sequential(self):
        engine = MapReduceEngine(HDFS(num_datanodes=1))
        assert engine.execution == SEQUENTIAL


class TestCostModel:
    def test_full_scan_lands_near_paper(self):
        """A 1 TB scan over the paper's cluster should land in the vicinity
        of the paper's ~1950 s ScanTable time (calibration anchor)."""
        model = CostModel(PAPER_CLUSTER, data_scale=137500.0)
        stats = JobStats(map_tasks=24, map_input_records=80000,
                         map_input_bytes=8_000_000, reduce_tasks=1)
        seconds = model.job_seconds(stats).total
        assert 1200 < seconds < 3000

    def test_time_scales_with_data(self):
        model_small = CostModel(PAPER_CLUSTER, data_scale=1000)
        model_big = CostModel(PAPER_CLUSTER, data_scale=100000)
        stats = JobStats(map_tasks=4, map_input_records=10000,
                         map_input_bytes=1_000_000)
        assert model_big.job_seconds(stats).total \
            > model_small.job_seconds(stats).total

    def test_launch_overhead_togglable(self):
        model = CostModel(PAPER_CLUSTER)
        stats = JobStats(map_tasks=1, map_input_records=10,
                         map_input_bytes=1000)
        with_launch = model.job_seconds(stats, include_launch=True)
        without = model.job_seconds(stats, include_launch=False)
        assert with_launch.read_index_and_other \
            == PAPER_CLUSTER.job_launch_seconds
        assert without.read_index_and_other == 0.0

    def test_kv_seconds(self):
        model = CostModel(PAPER_CLUSTER)
        time = model.kv_seconds(KVStats(gets=1000))
        assert time.read_index_and_other \
            == pytest.approx(1000 * PAPER_CLUSTER.kv_get_seconds)

    def test_kv_seconds_scaled_ops(self):
        model = CostModel(PAPER_CLUSTER, data_scale=10)
        unscaled = model.kv_seconds(KVStats(puts=100)).total
        scaled = model.kv_seconds(KVStats(puts=100), scale_ops=True).total
        assert scaled == pytest.approx(10 * unscaled)

    def test_breakdown_addition(self):
        total = (TimeBreakdown(1.0, 2.0) + TimeBreakdown(0.5, 0.25))
        assert total.read_index_and_other == 1.5
        assert total.read_data_and_process == 2.25
        assert total.total == 3.75

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            CostModel(PAPER_CLUSTER, data_scale=0)

    def test_cluster_slots(self):
        cluster = ClusterConfig(num_workers=28, map_slots_per_worker=5,
                                reduce_slots_per_worker=3)
        assert cluster.total_map_slots == 140
        assert cluster.total_reduce_slots == 84


class TestMeasuredCostModel:
    """CostModel.job_seconds_measured: per-task counters in, seconds out."""

    @staticmethod
    def _stats(map_tasks, total_bytes, total_records):
        return JobStats(map_tasks=map_tasks, map_input_bytes=total_bytes,
                        map_input_records=total_records)

    @staticmethod
    def _even_tasks(count, total_bytes, total_records):
        return [TaskStats(task_id=i, kind="map",
                          input_bytes=total_bytes // count,
                          input_records=total_records // count)
                for i in range(count)]

    def test_balanced_tasks_match_aggregate_model(self):
        """When every task did the same work, the measured model agrees
        with job_seconds' even-split assumption."""
        model = CostModel(PAPER_CLUSTER)
        stats = self._stats(4, 4_000_000, 40_000)
        tasks = self._even_tasks(4, 4_000_000, 40_000)
        balanced = model.job_seconds(stats).total
        measured = model.job_seconds_measured(stats, tasks).total
        assert measured == pytest.approx(balanced)

    def test_skew_costs_more_than_balance(self):
        """One straggler task holding most of the input must make the
        measured job slower than the balanced estimate."""
        model = CostModel(PAPER_CLUSTER)
        stats = self._stats(4, 4_000_000, 40_000)
        skewed = [TaskStats(task_id=0, kind="map",
                            input_bytes=3_700_000, input_records=37_000)]
        skewed += [TaskStats(task_id=i, kind="map",
                             input_bytes=100_000, input_records=1_000)
                   for i in range(1, 4)]
        assert model.job_seconds_measured(stats, skewed).total \
            > model.job_seconds(stats).total

    def test_no_map_tasks_falls_back(self):
        model = CostModel(PAPER_CLUSTER)
        stats = self._stats(3, 1_000_000, 10_000)
        fallback = model.job_seconds_measured(stats, [])
        direct = model.job_seconds(stats)
        assert fallback.total == direct.total
        assert fallback.read_index_and_other == direct.read_index_and_other

    def test_reduce_tasks_ignored_for_map_phase(self):
        """Reduce TaskStats must not be mistaken for map work."""
        model = CostModel(PAPER_CLUSTER)
        stats = self._stats(2, 2_000_000, 20_000)
        tasks = self._even_tasks(2, 2_000_000, 20_000)
        with_reduce = tasks + [TaskStats(task_id=0, kind="reduce",
                                         input_bytes=10**9,
                                         input_records=10**6)]
        assert model.job_seconds_measured(stats, with_reduce).total \
            == pytest.approx(model.job_seconds_measured(stats, tasks).total)

    def test_engine_task_stats_feed_the_model(self, loaded_fs):
        """End to end: real task stats from a job run plug straight in."""
        fs, schema = loaded_fs
        fmt = TextRowInputFormat(schema)

        def mapper(key, row, ctx):
            ctx.emit(row[0], row[1])

        def reducer(key, values, ctx):
            ctx.emit(key, sum(values))

        result = MapReduceEngine(fs).run(Job(
            name="mc", input_format=fmt, mapper=mapper, reducer=reducer,
            input_paths=["/in"], num_reducers=2))
        map_stats = [t for t in result.task_stats if t.kind == "map"]
        assert len(map_stats) == result.stats.map_tasks
        assert sum(t.input_records for t in map_stats) \
            == result.stats.map_input_records
        assert sum(t.input_bytes for t in map_stats) \
            == result.stats.map_input_bytes
        model = CostModel(PAPER_CLUSTER, data_scale=100.0)
        seconds = model.job_seconds_measured(result.stats,
                                             result.task_stats)
        assert seconds.total > 0.0
