"""Tests for the MapReduce engine, splits, counters and cost model."""

import pytest

from repro.errors import MapReduceError
from repro.hdfs.filesystem import HDFS
from repro.mapreduce.cluster import PAPER_CLUSTER, ClusterConfig
from repro.mapreduce.cost import CostModel, JobStats, KVStats, TimeBreakdown
from repro.mapreduce.counters import Counters
from repro.mapreduce.engine import MapReduceEngine, estimate_size, stable_hash
from repro.mapreduce.job import Job
from repro.mapreduce.splits import FileSplit, TextRowInputFormat
from repro.storage.schema import DataType, Schema
from repro.storage.textfile import TextFileWriter


@pytest.fixture
def loaded_fs():
    fs = HDFS(num_datanodes=3, block_size=600)
    schema = Schema.of(("k", DataType.INT), ("v", DataType.INT))
    with fs.create("/in/part-0") as stream:
        writer = TextFileWriter(stream, schema)
        for i in range(200):
            writer.write_row((i % 10, i))
    return fs, schema


class TestCounters:
    def test_inc_and_get(self):
        c = Counters()
        c.inc("g", "n", 3)
        c.inc("g", "n")
        assert c.get("g", "n") == 4

    def test_missing_is_zero(self):
        assert Counters().get("x", "y") == 0

    def test_merge(self):
        a, b = Counters(), Counters()
        a.inc("g", "n", 1)
        b.inc("g", "n", 2)
        b.inc("g", "m", 5)
        a.merge(b)
        assert a.get("g", "n") == 3
        assert a.get("g", "m") == 5

    def test_items_sorted(self):
        c = Counters()
        c.inc("b", "y")
        c.inc("a", "x")
        assert [g for g, _, _ in c.items()] == ["a", "b"]


class TestSplits:
    def test_block_aligned_splits(self, loaded_fs):
        fs, schema = loaded_fs
        fmt = TextRowInputFormat(schema)
        splits = fmt.get_splits(fs, ["/in"])
        assert len(splits) == len(fs.status("/in/part-0").blocks)
        assert splits[0].start == 0
        total = sum(s.length for s in splits)
        assert total == fs.file_length("/in/part-0")

    def test_splits_cover_all_rows_exactly_once(self, loaded_fs):
        fs, schema = loaded_fs
        fmt = TextRowInputFormat(schema)
        rows = []
        for split in fmt.get_splits(fs, ["/in"]):
            rows.extend(r for _, r in fmt.read_split(fs, split))
        assert len(rows) == 200
        assert sorted(v for _, v in rows) == list(range(200))

    def test_directory_and_file_paths(self, loaded_fs):
        fs, schema = loaded_fs
        fmt = TextRowInputFormat(schema)
        by_dir = fmt.get_splits(fs, ["/in"])
        by_file = fmt.get_splits(fs, ["/in/part-0"])
        assert [(s.path, s.start) for s in by_dir] \
            == [(s.path, s.start) for s in by_file]

    def test_empty_file_has_no_splits(self):
        fs = HDFS(num_datanodes=1)
        fs.write_bytes("/empty", b"")
        assert TextRowInputFormat(
            Schema.of(("a", DataType.INT))).get_splits(fs, ["/empty"]) == []


class TestEngine:
    def test_map_only(self, loaded_fs):
        fs, schema = loaded_fs
        fmt = TextRowInputFormat(schema)

        def mapper(key, row, ctx):
            if row[1] < 5:
                ctx.emit(row[0], row[1])

        engine = MapReduceEngine(fs)
        result = engine.run(Job(name="m", input_format=fmt, mapper=mapper,
                                input_paths=["/in"], num_reducers=0))
        assert sorted(v for _, v in result.output) == [0, 1, 2, 3, 4]
        assert result.stats.map_input_records == 200
        assert result.stats.reduce_tasks == 0

    def test_full_job_with_combiner(self, loaded_fs):
        fs, schema = loaded_fs
        fmt = TextRowInputFormat(schema)

        def mapper(key, row, ctx):
            ctx.emit(row[0], 1)

        def reduce_fn(key, values, ctx):
            ctx.emit(key, sum(values))

        engine = MapReduceEngine(fs)
        with_combiner = engine.run(Job(
            name="c", input_format=fmt, mapper=mapper, combiner=reduce_fn,
            reducer=reduce_fn, input_paths=["/in"], num_reducers=3))
        without = engine.run(Job(
            name="nc", input_format=fmt, mapper=mapper,
            reducer=reduce_fn, input_paths=["/in"], num_reducers=3))
        assert sorted(with_combiner.output) == sorted(without.output)
        assert dict(with_combiner.output) == {k: 20 for k in range(10)}
        # the combiner shrinks shuffle volume
        assert with_combiner.stats.shuffle_bytes < without.stats.shuffle_bytes

    def test_partitioning_keeps_key_together(self, loaded_fs):
        fs, schema = loaded_fs
        fmt = TextRowInputFormat(schema)

        def mapper(key, row, ctx):
            ctx.emit(row[0], row[1])

        seen_keys = []

        def reducer(key, values, ctx):
            seen_keys.append(key)
            ctx.emit(key, len(values))

        engine = MapReduceEngine(fs)
        result = engine.run(Job(name="p", input_format=fmt, mapper=mapper,
                                reducer=reducer, input_paths=["/in"],
                                num_reducers=4))
        assert sorted(seen_keys) == list(range(10))  # each key reduced once
        assert result.stats.reduce_tasks <= 4

    def test_reduce_hooks(self, loaded_fs):
        fs, schema = loaded_fs
        fmt = TextRowInputFormat(schema)
        events = []

        def mapper(key, row, ctx):
            ctx.emit(0, 1)

        def reducer(key, values, ctx):
            assert ctx.state["open"]

        engine = MapReduceEngine(fs)
        engine.run(Job(
            name="h", input_format=fmt, mapper=mapper, reducer=reducer,
            input_paths=["/in"], num_reducers=1,
            reduce_setup=lambda ctx: (events.append("setup"),
                                      ctx.state.__setitem__("open", True)),
            reduce_cleanup=lambda ctx: events.append("cleanup")))
        assert events == ["setup", "cleanup"]

    def test_mapper_sees_split(self, loaded_fs):
        fs, schema = loaded_fs
        fmt = TextRowInputFormat(schema)
        paths = set()

        def mapper(key, row, ctx):
            paths.add(ctx.split.path)

        MapReduceEngine(fs).run(Job(name="s", input_format=fmt,
                                    mapper=mapper, input_paths=["/in"],
                                    num_reducers=0))
        assert paths == {"/in/part-0"}

    def test_presupplied_splits(self, loaded_fs):
        fs, schema = loaded_fs
        fmt = TextRowInputFormat(schema)
        splits = fmt.get_splits(fs, ["/in"])[:1]

        def mapper(key, row, ctx):
            ctx.emit(None, row)

        result = MapReduceEngine(fs).run(Job(
            name="ps", input_format=fmt, mapper=mapper, splits=splits,
            num_reducers=0))
        assert result.stats.map_tasks == 1
        assert 0 < result.stats.map_input_records < 200

    def test_validation_errors(self, loaded_fs):
        fs, schema = loaded_fs
        fmt = TextRowInputFormat(schema)
        with pytest.raises(MapReduceError):
            MapReduceEngine(fs).run(Job(name="bad", input_format=fmt,
                                        mapper=lambda k, v, c: None))
        with pytest.raises(MapReduceError):
            MapReduceEngine(fs).run(Job(
                name="bad2", input_format=fmt,
                mapper=lambda k, v, c: None, input_paths=["/in"],
                reduce_setup=lambda ctx: None))

    def test_stable_hash_deterministic(self):
        assert stable_hash(("a", 1)) == stable_hash(("a", 1))
        assert stable_hash("x") != stable_hash("y")

    def test_estimate_size_shapes(self):
        assert estimate_size("abcd") == 4
        assert estimate_size(7) == 8
        assert estimate_size((1, "ab")) == 4 + 8 + 2
        assert estimate_size({1: "a"}) == 4 + 8 + 1
        assert estimate_size(None) == 1
        assert estimate_size({1, 2}) == 4 + 16


class TestCostModel:
    def test_full_scan_lands_near_paper(self):
        """A 1 TB scan over the paper's cluster should land in the vicinity
        of the paper's ~1950 s ScanTable time (calibration anchor)."""
        model = CostModel(PAPER_CLUSTER, data_scale=137500.0)
        stats = JobStats(map_tasks=24, map_input_records=80000,
                         map_input_bytes=8_000_000, reduce_tasks=1)
        seconds = model.job_seconds(stats).total
        assert 1200 < seconds < 3000

    def test_time_scales_with_data(self):
        model_small = CostModel(PAPER_CLUSTER, data_scale=1000)
        model_big = CostModel(PAPER_CLUSTER, data_scale=100000)
        stats = JobStats(map_tasks=4, map_input_records=10000,
                         map_input_bytes=1_000_000)
        assert model_big.job_seconds(stats).total \
            > model_small.job_seconds(stats).total

    def test_launch_overhead_togglable(self):
        model = CostModel(PAPER_CLUSTER)
        stats = JobStats(map_tasks=1, map_input_records=10,
                         map_input_bytes=1000)
        with_launch = model.job_seconds(stats, include_launch=True)
        without = model.job_seconds(stats, include_launch=False)
        assert with_launch.read_index_and_other \
            == PAPER_CLUSTER.job_launch_seconds
        assert without.read_index_and_other == 0.0

    def test_kv_seconds(self):
        model = CostModel(PAPER_CLUSTER)
        time = model.kv_seconds(KVStats(gets=1000))
        assert time.read_index_and_other \
            == pytest.approx(1000 * PAPER_CLUSTER.kv_get_seconds)

    def test_kv_seconds_scaled_ops(self):
        model = CostModel(PAPER_CLUSTER, data_scale=10)
        unscaled = model.kv_seconds(KVStats(puts=100)).total
        scaled = model.kv_seconds(KVStats(puts=100), scale_ops=True).total
        assert scaled == pytest.approx(10 * unscaled)

    def test_breakdown_addition(self):
        total = (TimeBreakdown(1.0, 2.0) + TimeBreakdown(0.5, 0.25))
        assert total.read_index_and_other == 1.5
        assert total.read_data_and_process == 2.25
        assert total.total == 3.75

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            CostModel(PAPER_CLUSTER, data_scale=0)

    def test_cluster_slots(self):
        cluster = ClusterConfig(num_workers=28, map_slots_per_worker=5,
                                reduce_slots_per_worker=3)
        assert cluster.total_map_slots == 140
        assert cluster.total_reduce_slots == 84
