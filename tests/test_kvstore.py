"""Tests for the HBase-like key-value store."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KVStoreError
from repro.kvstore.hbase import KVStore


class TestBasicOps:
    def test_put_get(self):
        kv = KVStore()
        kv.put("k1", {"v": 1})
        assert kv.get("k1") == {"v": 1}

    def test_get_missing(self):
        assert KVStore().get("nope") is None

    def test_overwrite(self):
        kv = KVStore()
        kv.put("k", 1)
        kv.put("k", 2)
        assert kv.get("k") == 2
        assert kv.count() == 1

    def test_non_string_key_rejected(self):
        with pytest.raises(KVStoreError):
            KVStore().put(42, "x")

    def test_delete(self):
        kv = KVStore()
        kv.put("k", 1)
        assert kv.delete("k")
        assert kv.get("k") is None
        assert not kv.delete("k")

    def test_contains(self):
        kv = KVStore()
        kv.put("k", 1)
        assert kv.contains("k")
        assert not kv.contains("other")

    def test_multi_get_skips_missing(self):
        kv = KVStore()
        kv.put("a", 1)
        kv.put("c", 3)
        assert kv.multi_get(["a", "b", "c"]) == {"a": 1, "c": 3}

    def test_put_all(self):
        kv = KVStore()
        kv.put_all({"a": 1, "b": 2})
        assert kv.count() == 2


class TestScan:
    def test_ordered_scan(self):
        kv = KVStore()
        for key in ["b", "a", "d", "c"]:
            kv.put(key, key.upper())
        assert [k for k, _ in kv.scan()] == ["a", "b", "c", "d"]

    def test_range_scan_half_open(self):
        kv = KVStore()
        for i in range(10):
            kv.put(f"k{i}", i)
        got = dict(kv.scan("k3", "k7"))
        assert sorted(got) == ["k3", "k4", "k5", "k6"]

    def test_prefix_style_scan(self):
        kv = KVStore()
        kv.put("dgf:t:a", 1)
        kv.put("dgf:t:b", 2)
        kv.put("other", 3)
        got = [k for k, _ in kv.scan("dgf:t:", "dgf:t:\U0010ffff")]
        assert got == ["dgf:t:a", "dgf:t:b"]


class TestRegions:
    def test_split_on_growth(self):
        kv = KVStore(max_region_keys=8)
        for i in range(100):
            kv.put(f"k{i:04d}", i)
        assert len(kv.regions) > 1
        assert kv.count() == 100

    def test_region_boundaries_ordered(self):
        kv = KVStore(max_region_keys=4)
        for i in range(50):
            kv.put(f"{i:03d}", i)
        starts = [r.start_key for r in kv.regions]
        assert starts == sorted(starts)

    def test_reads_after_splits(self):
        kv = KVStore(max_region_keys=4)
        for i in range(50):
            kv.put(f"{i:03d}", i)
        for i in range(50):
            assert kv.get(f"{i:03d}") == i

    def test_min_region_size(self):
        with pytest.raises(KVStoreError):
            KVStore(max_region_keys=1)


class TestStats:
    def test_op_accounting(self):
        kv = KVStore()
        kv.put("a", 1)
        kv.get("a")
        kv.get("b")
        list(kv.scan())
        assert kv.stats.puts == 1
        assert kv.stats.gets == 2
        assert kv.stats.rows_scanned == 1

    def test_stats_delta(self):
        kv = KVStore()
        kv.put("a", 1)
        before = kv.snapshot_stats()
        kv.get("a")
        delta = kv.stats_delta(before)
        assert delta.gets == 1
        assert delta.puts == 0


@settings(max_examples=50, deadline=None)
@given(items=st.dictionaries(
    st.text(alphabet="abcdef0123456789", min_size=1, max_size=8),
    st.integers(), max_size=60),
    region_size=st.integers(min_value=2, max_value=10))
def test_property_scan_equals_sorted_dict(items, region_size):
    """However regions split, a full scan equals the sorted dict."""
    kv = KVStore(max_region_keys=region_size)
    for key, value in items.items():
        kv.put(key, value)
    assert list(kv.scan()) == sorted(items.items())
    assert kv.count() == len(items)
