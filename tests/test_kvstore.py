"""Tests for the HBase-like key-value store."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KVStoreError
from repro.kvstore.hbase import KVStore


class TestBasicOps:
    def test_put_get(self):
        kv = KVStore()
        kv.put("k1", {"v": 1})
        assert kv.get("k1") == {"v": 1}

    def test_get_missing(self):
        assert KVStore().get("nope") is None

    def test_overwrite(self):
        kv = KVStore()
        kv.put("k", 1)
        kv.put("k", 2)
        assert kv.get("k") == 2
        assert kv.count() == 1

    def test_non_string_key_rejected(self):
        with pytest.raises(KVStoreError):
            KVStore().put(42, "x")

    def test_delete(self):
        kv = KVStore()
        kv.put("k", 1)
        assert kv.delete("k")
        assert kv.get("k") is None
        assert not kv.delete("k")

    def test_contains(self):
        kv = KVStore()
        kv.put("k", 1)
        assert kv.contains("k")
        assert not kv.contains("other")

    def test_multi_get_skips_missing(self):
        kv = KVStore()
        kv.put("a", 1)
        kv.put("c", 3)
        assert kv.multi_get(["a", "b", "c"]) == {"a": 1, "c": 3}

    def test_put_all(self):
        kv = KVStore()
        kv.put_all({"a": 1, "b": 2})
        assert kv.count() == 2


class TestScan:
    def test_ordered_scan(self):
        kv = KVStore()
        for key in ["b", "a", "d", "c"]:
            kv.put(key, key.upper())
        assert [k for k, _ in kv.scan()] == ["a", "b", "c", "d"]

    def test_range_scan_half_open(self):
        kv = KVStore()
        for i in range(10):
            kv.put(f"k{i}", i)
        got = dict(kv.scan("k3", "k7"))
        assert sorted(got) == ["k3", "k4", "k5", "k6"]

    def test_prefix_style_scan(self):
        kv = KVStore()
        kv.put("dgf:t:a", 1)
        kv.put("dgf:t:b", 2)
        kv.put("other", 3)
        got = [k for k, _ in kv.scan("dgf:t:", "dgf:t:\U0010ffff")]
        assert got == ["dgf:t:a", "dgf:t:b"]


class TestBatchedScan:
    def test_scan_resumes_across_batches(self):
        kv = KVStore()
        for i in range(30):
            kv.put(f"k{i:03d}", i)
        got = list(kv.scan(batch_size=7))
        assert got == sorted((f"k{i:03d}", i) for i in range(30))

    def test_invalid_batch_size_rejected(self):
        kv = KVStore()
        kv.put("a", 1)
        with pytest.raises(KVStoreError):
            list(kv.scan(batch_size=0))

    def test_scan_during_split_neither_skips_nor_duplicates(self):
        """Regression: a region split between scan batches must not skip
        or duplicate rows.  The scan resumes *by key*, so new region
        boundaries (and keys inserted behind the cursor) are invisible."""
        kv = KVStore(max_region_keys=8)
        for i in range(0, 40, 2):  # even keys only
            kv.put(f"{i:04d}", i)
        seen = []
        scan = kv.scan(batch_size=4)
        for position, (key, value) in enumerate(scan):
            seen.append((key, value))
            if position == 5:
                # grow the store mid-scan: odd keys force several splits
                for i in range(1, 40, 2):
                    kv.put(f"{i:04d}", i)
                assert len(kv.regions) > 1
        # every originally-present key exactly once, in order; keys
        # inserted *ahead* of the cursor may legitimately appear too.
        evens = [(f"{i:04d}", i) for i in range(0, 40, 2)]
        assert [kv_pair for kv_pair in seen if kv_pair in evens] == evens
        assert len(seen) == len(set(seen)), "duplicated rows"

    def test_scan_during_split_sees_consistent_prefix(self):
        """Keys behind the resume point never reappear even when the
        region holding them splits."""
        kv = KVStore(max_region_keys=4)
        for i in range(20):
            kv.put(f"{i:04d}", i)
        scan = kv.scan(batch_size=3)
        first_batch = [next(scan) for _ in range(3)]
        for i in range(100, 140):  # splits beyond the cursor
            kv.put(f"{i:04d}", i)
        rest = list(scan)
        keys = [k for k, _ in first_batch + rest]
        assert keys == sorted(keys)
        assert len(keys) == len(set(keys))


class TestRegions:
    def test_split_on_growth(self):
        kv = KVStore(max_region_keys=8)
        for i in range(100):
            kv.put(f"k{i:04d}", i)
        assert len(kv.regions) > 1
        assert kv.count() == 100

    def test_region_boundaries_ordered(self):
        kv = KVStore(max_region_keys=4)
        for i in range(50):
            kv.put(f"{i:03d}", i)
        starts = [r.start_key for r in kv.regions]
        assert starts == sorted(starts)

    def test_reads_after_splits(self):
        kv = KVStore(max_region_keys=4)
        for i in range(50):
            kv.put(f"{i:03d}", i)
        for i in range(50):
            assert kv.get(f"{i:03d}") == i

    def test_min_region_size(self):
        with pytest.raises(KVStoreError):
            KVStore(max_region_keys=1)


class TestStats:
    def test_op_accounting(self):
        kv = KVStore()
        kv.put("a", 1)
        kv.get("a")
        kv.get("b")
        list(kv.scan())
        assert kv.stats.puts == 1
        assert kv.stats.gets == 2
        assert kv.stats.rows_scanned == 1

    def test_stats_delta(self):
        kv = KVStore()
        kv.put("a", 1)
        before = kv.snapshot_stats()
        kv.get("a")
        delta = kv.stats_delta(before)
        assert delta.gets == 1
        assert delta.puts == 0

    def test_multi_get_counts_every_probed_key(self):
        kv = KVStore()
        kv.put("a", 1)
        kv.multi_get(["a", "b", "c"])
        assert kv.stats.gets == 3

    def test_note_cached_gets_is_logical_only(self):
        """Cache hits replay the trace counter without physical ops."""
        kv = KVStore()
        before = kv.snapshot_stats()
        kv.note_cached_gets(5)
        assert kv.stats_delta(before).gets == 0


class TestWriteListeners:
    def test_listener_fires_on_put_and_delete(self):
        kv = KVStore()
        events = []
        kv.add_write_listener(events.append)
        kv.put("a", 1)
        kv.put_all({"b": 2, "c": 3})
        kv.delete("a")
        kv.delete("missing")  # no-op deletes do not notify
        assert events == ["a", "b", "c", "a"]

    def test_listener_may_touch_the_store(self):
        """Listeners run after the store lock is released, so re-entrant
        reads (what the cache's invalidation bookkeeping could do) are
        safe."""
        kv = KVStore()
        seen = []
        kv.add_write_listener(lambda key: seen.append(kv.get(key)))
        kv.put("a", 41)
        assert seen == [41]


@settings(max_examples=50, deadline=None)
@given(items=st.dictionaries(
    st.text(alphabet="abcdef0123456789", min_size=1, max_size=8),
    st.integers(), max_size=60),
    region_size=st.integers(min_value=2, max_value=10))
def test_property_scan_equals_sorted_dict(items, region_size):
    """However regions split, a full scan equals the sorted dict."""
    kv = KVStore(max_region_keys=region_size)
    for key, value in items.items():
        kv.put(key, value)
    assert list(kv.scan()) == sorted(items.items())
    assert kv.count() == len(items)
