"""Tests for the HiveQL lexer and parser."""

import pytest

from repro.errors import HiveQLSyntaxError
from repro.hiveql import ast, parse, parse_expression, tokenize


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select FROM Where")
        assert [t.text for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]

    def test_identifiers_preserve_case(self):
        tokens = tokenize("powerConsumed")
        assert tokens[0].kind == "IDENT"
        assert tokens[0].text == "powerConsumed"

    def test_numbers(self):
        tokens = tokenize("42 3.14 0.5")
        assert [t.text for t in tokens[:-1]] == ["42", "3.14", "0.5"]

    def test_strings_both_quotes(self):
        tokens = tokenize("'abc' \"xy z\"")
        assert [t.text for t in tokens[:-1]] == ["abc", "xy z"]

    def test_unterminated_string(self):
        with pytest.raises(HiveQLSyntaxError):
            tokenize("'oops")

    def test_comments_skipped(self):
        tokens = tokenize("SELECT -- a comment\n1")
        assert [t.text for t in tokens[:-1]] == ["SELECT", "1"]

    def test_two_char_operators(self):
        tokens = tokenize("a >= b <= c <> d != e")
        ops = [t.text for t in tokens if t.kind == "SYMBOL"]
        assert ops == [">=", "<=", "<>", "!="]

    def test_unknown_character(self):
        with pytest.raises(HiveQLSyntaxError):
            tokenize("a @ b")

    def test_error_carries_position(self):
        try:
            tokenize("abc @")
        except HiveQLSyntaxError as error:
            assert error.position == 4


class TestExpressions:
    def test_precedence_and_over_or(self):
        expr = parse_expression("a OR b AND c")
        assert isinstance(expr, ast.BinaryOp) and expr.op == "OR"
        assert isinstance(expr.right, ast.BinaryOp)
        assert expr.right.op == "AND"

    def test_arithmetic_precedence(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parentheses(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.op == "*"

    def test_comparison(self):
        expr = parse_expression("userid >= 100")
        assert expr.op == ">="
        assert isinstance(expr.left, ast.ColumnRef)
        assert expr.left.name == "userid"
        assert expr.right.value == 100

    def test_between(self):
        expr = parse_expression("x BETWEEN 1 AND 5")
        assert isinstance(expr, ast.Between)
        assert expr.low.value == 1 and expr.high.value == 5

    def test_in_list(self):
        expr = parse_expression("r IN (1, 2, 3)")
        assert isinstance(expr, ast.InList)
        assert len(expr.options) == 3

    def test_not(self):
        expr = parse_expression("NOT a = 1")
        assert isinstance(expr, ast.UnaryOp) and expr.op == "NOT"

    def test_unary_minus_folds_literals(self):
        expr = parse_expression("-5")
        assert isinstance(expr, ast.Literal) and expr.value == -5

    def test_unary_minus_on_column(self):
        expr = parse_expression("-a")
        assert isinstance(expr, ast.UnaryOp) and expr.op == "-"

    def test_function_call(self):
        expr = parse_expression("sum(powerConsumed)")
        assert isinstance(expr, ast.FuncCall)
        assert expr.name == "sum"

    def test_count_star(self):
        expr = parse_expression("count(*)")
        assert isinstance(expr.args[0], ast.Star)

    def test_count_distinct(self):
        expr = parse_expression("count(DISTINCT userid)")
        assert expr.distinct

    def test_qualified_column(self):
        expr = parse_expression("t1.userid")
        assert expr.table == "t1" and expr.name == "userid"

    def test_null_true_false(self):
        assert parse_expression("NULL").value is None
        assert parse_expression("TRUE").value is True
        assert parse_expression("FALSE").value is False

    def test_neq_normalized(self):
        assert parse_expression("a <> 1").op == "!="

    def test_trailing_garbage(self):
        with pytest.raises(HiveQLSyntaxError):
            parse_expression("1 + 2 extra junk (")


class TestSelect:
    def test_simple(self):
        stmt = parse("SELECT a, b FROM t")
        assert isinstance(stmt, ast.SelectStmt)
        assert len(stmt.items) == 2
        assert stmt.table.name == "t"

    def test_star(self):
        stmt = parse("SELECT * FROM t")
        assert isinstance(stmt.items[0].expr, ast.Star)

    def test_alias(self):
        stmt = parse("SELECT sum(c) AS total FROM t")
        assert stmt.items[0].alias == "total"
        assert stmt.items[0].output_name() == "total"

    def test_where(self):
        stmt = parse("SELECT a FROM t WHERE a > 1 AND b < 2")
        assert stmt.where.op == "AND"

    def test_group_by(self):
        stmt = parse("SELECT ts, sum(p) FROM t GROUP BY ts")
        assert len(stmt.group_by) == 1

    def test_order_by_desc_limit(self):
        stmt = parse("SELECT a FROM t ORDER BY a DESC LIMIT 5")
        assert not stmt.order_by[0].ascending
        assert stmt.limit == 5

    def test_join(self):
        stmt = parse("SELECT t2.n FROM md t1 JOIN ui t2 "
                     "ON t1.uid = t2.uid WHERE t1.uid > 3")
        assert len(stmt.joins) == 1
        assert stmt.joins[0].table.alias == "t2"
        assert stmt.joins[0].condition.op == "="

    def test_insert_overwrite_directory(self):
        stmt = parse("INSERT OVERWRITE DIRECTORY '/tmp/out' "
                     "SELECT a FROM t")
        assert stmt.insert_directory == "/tmp/out"

    def test_paper_listing_2(self):
        """The paper's running example parses."""
        stmt = parse("SELECT SUM(C) FROM Table1 WHERE A>=5 AND A<12 "
                     "AND B>=12 AND B<16;")
        assert stmt.is_plain_aggregation

    def test_is_plain_aggregation_flags(self):
        assert parse("SELECT sum(a) FROM t").is_plain_aggregation
        assert not parse("SELECT a, sum(b) FROM t "
                         "GROUP BY a").is_plain_aggregation
        assert not parse("SELECT a FROM t").is_plain_aggregation

    def test_has_aggregates(self):
        assert parse("SELECT sum(a) FROM t").has_aggregates
        assert not parse("SELECT a FROM t").has_aggregates


class TestDDL:
    def test_create_table(self):
        stmt = parse("CREATE TABLE t (a int, b double, c string) "
                     "STORED AS RCFILE")
        assert stmt.name == "t"
        assert [c.type_name for c in stmt.columns] \
            == ["int", "double", "string"]
        assert stmt.stored_as == "RCFILE"

    def test_create_table_default_format(self):
        assert parse("CREATE TABLE t (a int)").stored_as == "TEXTFILE"

    def test_create_table_partitioned(self):
        stmt = parse("CREATE TABLE t (a int) PARTITIONED BY (dt date)")
        assert stmt.partitioned_by[0].name == "dt"

    def test_create_table_if_not_exists(self):
        assert parse("CREATE TABLE IF NOT EXISTS t (a int)").if_not_exists

    def test_create_index_listing_3(self):
        """The paper's Listing 3 syntax parses completely."""
        stmt = parse("CREATE INDEX idx_a_b ON TABLE Table1(A,B) "
                     "AS 'org.apache.dgf.DgfIndexHandler' "
                     "IDXPROPERTIES ('A'='1_3', 'B'='11_2', "
                     "'precompute'='sum(C)')")
        assert stmt.columns == ("A", "B")
        assert stmt.properties["A"] == "1_3"
        assert stmt.properties["precompute"] == "sum(C)"

    def test_create_index_deferred(self):
        stmt = parse("CREATE INDEX i ON TABLE t(a) AS 'compact' "
                     "WITH DEFERRED REBUILD")
        assert stmt.deferred_rebuild

    def test_drop_statements(self):
        assert parse("DROP TABLE t").name == "t"
        assert parse("DROP TABLE IF EXISTS t").if_exists
        drop_index = parse("DROP INDEX i ON t")
        assert drop_index.name == "i" and drop_index.table == "t"

    def test_show_and_describe(self):
        assert isinstance(parse("SHOW TABLES"), ast.ShowTablesStmt)
        assert parse("SHOW INDEXES ON t").table == "t"
        assert parse("DESCRIBE t").table == "t"

    def test_explain(self):
        stmt = parse("EXPLAIN SELECT a FROM t")
        assert isinstance(stmt, ast.ExplainStmt)

    def test_explain_non_select_rejected(self):
        with pytest.raises(HiveQLSyntaxError):
            parse("EXPLAIN DROP TABLE t")

    def test_unknown_statement(self):
        with pytest.raises(HiveQLSyntaxError):
            parse("UPDATE t SET a = 1")


class TestAstHelpers:
    def test_collect_column_refs(self):
        expr = parse_expression("a > 1 AND t.b < c + 2")
        names = [r.render() for r in ast.collect_column_refs(expr)]
        assert names == ["a", "t.b", "c"]

    def test_render_roundtrips_through_parser(self):
        text = "((a >= 5) AND (sum((b * c)) > 2.5))"
        expr = parse_expression(text)
        again = parse_expression(expr.render())
        assert expr.render() == again.render()

    def test_contains_aggregate_nested(self):
        assert ast.contains_aggregate(parse_expression("1 + sum(a)"))
        assert not ast.contains_aggregate(parse_expression("1 + a"))
