"""Tests for dynamically adding pre-computed UDFs to a deployed DGFIndex
(paper Section 4.1: "users can still add more UDFs dynamically")."""

import pytest

from repro.core.dgf.builder import add_precompute, append_with_dgf
from repro.core.dgf.store import DgfStore
from repro.errors import DGFError
from repro.hive.session import QueryOptions
from tests.conftest import SCAN


MDRQ_MIN = ("SELECT min(powerconsumed) FROM meterdata "
            "WHERE userid >= 25 AND userid < 75")


class TestAddPrecompute:
    def test_new_aggregate_becomes_header_path(self, dgf_session):
        before = dgf_session.execute(MDRQ_MIN)
        assert "mode=slices" in before.stats.index_used  # not precomputed

        report = add_precompute(dgf_session, "meterdata", "dgf_idx",
                                "min(powerconsumed)")
        assert report.details["added"] == ["min(powerconsumed)"]

        after = dgf_session.execute(MDRQ_MIN)
        scan = dgf_session.execute(MDRQ_MIN, SCAN)
        assert "mode=agg-headers" in after.stats.index_used
        assert after.scalar() == scan.scalar()
        assert after.stats.records_read < before.stats.records_read

    def test_headers_match_recomputation(self, dgf_session):
        add_precompute(dgf_session, "meterdata", "dgf_idx",
                       "max(powerconsumed)")
        store = DgfStore(dgf_session.kvstore, "meterdata", "dgf_idx")
        table = dgf_session.metastore.get_table("meterdata")
        from repro.storage.textfile import TextFileReader
        for _key, value in list(store.iter_entries())[:20]:
            rows = []
            for location in value.locations:
                with dgf_session.fs.open(location.file) as stream:
                    reader = TextFileReader(stream, table.schema)
                    rows.extend(r for _, r in reader.iter_rows(
                        location.start, location.end))
            assert value.header["max(powerconsumed)"] \
                == pytest.approx(max(r[3] for r in rows))

    def test_existing_headers_untouched(self, dgf_session):
        store = DgfStore(dgf_session.kvstore, "meterdata", "dgf_idx")
        before = {k: dict(v.header) for k, v in store.iter_entries()}
        add_precompute(dgf_session, "meterdata", "dgf_idx",
                       "min(powerconsumed)")
        for key, value in store.iter_entries():
            for header_key, state in before[key].items():
                assert value.header[header_key] == state

    def test_duplicate_spec_is_noop(self, dgf_session):
        report = add_precompute(dgf_session, "meterdata", "dgf_idx",
                                "sum(powerconsumed)")
        assert report.details["added"] == []
        assert report.build_time.total == 0.0

    def test_appends_after_add_include_new_udf(self, dgf_session):
        add_precompute(dgf_session, "meterdata", "dgf_idx",
                       "min(powerconsumed)")
        append_with_dgf(dgf_session, "meterdata", "dgf_idx",
                        [(5, 1, "2012-12-09", 0.01)])
        result = dgf_session.execute(
            "SELECT min(powerconsumed) FROM meterdata "
            "WHERE userid >= 0 AND userid < 200")
        assert "mode=agg-headers" in result.stats.index_used
        assert result.scalar() == pytest.approx(0.01)

    def test_requires_built_index(self, meter_session):
        meter_session.execute(
            "CREATE INDEX d ON TABLE meterdata(userid) AS 'dgf' "
            "WITH DEFERRED REBUILD IDXPROPERTIES ('userid'='0_25')")
        with pytest.raises(DGFError):
            add_precompute(meter_session, "meterdata", "d", "count(*)")

    def test_non_additive_rejected(self, dgf_session):
        with pytest.raises(DGFError):
            add_precompute(dgf_session, "meterdata", "dgf_idx",
                           "count(DISTINCT userid)")

    def test_build_cost_accounted(self, dgf_session):
        report = add_precompute(dgf_session, "meterdata", "dgf_idx",
                                "min(powerconsumed)")
        assert report.job_stats.map_input_records == 1200  # full pass
        assert report.build_time.total > 0
