"""Tests for the Oozie-like workflow DAG and coordinator."""

import pytest

from repro.workflow.dag import (ActionStatus, Workflow, WorkflowError,
                                WorkflowRun)
from repro.workflow.coordinator import Coordinator
from tests.conftest import METER_DDL, make_session, meter_rows


class TestWorkflowDefinition:
    def test_dependencies_must_exist_first(self):
        workflow = Workflow("w")
        with pytest.raises(WorkflowError):
            workflow.add("b", lambda ctx: 1, after=["a"])

    def test_duplicate_action(self):
        workflow = Workflow("w").add("a", lambda ctx: 1)
        with pytest.raises(WorkflowError):
            workflow.add("a", lambda ctx: 2)

    def test_topological_order_respects_deps(self):
        workflow = (Workflow("w")
                    .add("a", lambda ctx: 1)
                    .add("b", lambda ctx: 2, after=["a"])
                    .add("c", lambda ctx: 3, after=["a"])
                    .add("d", lambda ctx: 4, after=["b", "c"]))
        order = workflow.topological_order()
        assert order.index("a") < order.index("b") < order.index("d")
        assert order.index("c") < order.index("d")

    def test_hiveql_must_be_text(self):
        with pytest.raises(WorkflowError):
            Workflow("w").add_hiveql("a", 42)


class TestWorkflowExecution:
    def test_callable_actions_share_context(self):
        workflow = (Workflow("w")
                    .add("produce", lambda ctx: 21)
                    .add("consume",
                         lambda ctx: ctx["results"]["produce"] * 2,
                         after=["produce"]))
        run = workflow.run()
        assert run.succeeded
        assert run.result_of("consume") == 42

    def test_failure_skips_downstream_but_not_siblings(self):
        def boom(ctx):
            raise ValueError("nope")

        workflow = (Workflow("w")
                    .add("bad", boom)
                    .add("child", lambda ctx: 1, after=["bad"])
                    .add("independent", lambda ctx: 2))
        run = workflow.run()
        assert not run.succeeded
        assert run.status_of("bad") is ActionStatus.FAILED
        assert "ValueError" in run.results["bad"].error
        assert run.status_of("child") is ActionStatus.SKIPPED
        assert run.status_of("independent") is ActionStatus.SUCCEEDED

    def test_hiveql_without_session_fails_cleanly(self):
        run = Workflow("w").add_hiveql("q", "SHOW TABLES").run()
        assert run.status_of("q") is ActionStatus.FAILED

    def test_hiveql_actions_run_against_session(self):
        session = make_session()
        workflow = (Workflow("stats")
                    .add_hiveql("ddl", METER_DDL)
                    .add("load", lambda ctx: ctx["session"].load_rows(
                        "meterdata", meter_rows(num_users=20,
                                                num_days=2)),
                        after=["ddl"])
                    .add_hiveql("count",
                                "SELECT count(*) FROM meterdata",
                                after=["load"]))
        run = workflow.run(session, context={"session": session})
        assert run.succeeded
        assert run.result_of("count").scalar() == 40


class TestCoordinator:
    def test_fires_at_fixed_frequency(self):
        fired_times = []
        workflow = Workflow("tick").add(
            "record", lambda ctx: fired_times.append(ctx["t"]))
        coordinator = Coordinator()
        coordinator.schedule(workflow, period=10.0,
                             context_factory=lambda t: {"t": t})
        coordinator.advance_to(35.0)
        assert fired_times == [0.0, 10.0, 20.0, 30.0]
        assert coordinator.now == 35.0

    def test_start_offset(self):
        workflow = Workflow("w").add("a", lambda ctx: 1)
        coordinator = Coordinator()
        coordinator.schedule(workflow, period=5.0, start=7.0)
        assert coordinator.advance_to(6.9) == []
        assert len(coordinator.advance_to(12.0)) == 2  # t=7, t=12

    def test_multiple_workflows_in_time_order(self):
        log = []
        fast = Workflow("fast").add("a", lambda ctx: log.append("fast"))
        slow = Workflow("slow").add("a", lambda ctx: log.append("slow"))
        coordinator = Coordinator()
        coordinator.schedule(slow, period=20.0)
        coordinator.schedule(fast, period=10.0)
        coordinator.advance_to(20.0)
        # t=0: slow then fast (registration order); t=10: fast; t=20: both
        assert log == ["slow", "fast", "fast", "slow", "fast"]

    def test_history_query(self):
        workflow = Workflow("w").add("a", lambda ctx: 1)
        coordinator = Coordinator()
        coordinator.schedule(workflow, period=1.0)
        coordinator.advance_to(2.5)
        assert len(coordinator.runs_of("w")) == 3
        assert coordinator.runs_of("other") == []

    def test_cannot_rewind(self):
        coordinator = Coordinator()
        coordinator.advance_to(5.0)
        with pytest.raises(WorkflowError):
            coordinator.advance_to(1.0)

    def test_invalid_period(self):
        with pytest.raises(WorkflowError):
            Coordinator().schedule(Workflow("w").add("a", lambda c: 1),
                                   period=0)

    def test_daily_statistics_scenario(self):
        """A mini Zhejiang flow: every 'day' new data is appended and a
        statistics workflow recomputes per-region totals."""
        session = make_session()
        session.execute(METER_DDL)
        state = {"day": 0}

        def ingest(ctx):
            day = state["day"]
            state["day"] += 1
            rows = [(u, u % 3, f"2012-12-{day + 1:02d}", 1.0)
                    for u in range(30)]
            session.load_rows("meterdata", rows)
            return len(rows)

        workflow = (Workflow("daily-stats")
                    .add("ingest", ingest)
                    .add_hiveql("totals",
                                "SELECT regionid, sum(powerconsumed) "
                                "FROM meterdata GROUP BY regionid",
                                after=["ingest"]))
        coordinator = Coordinator(session=session)
        coordinator.schedule(workflow, period=86400.0)
        coordinator.advance_to(2 * 86400.0)  # three fires: t=0, 1d, 2d
        runs = coordinator.runs_of("daily-stats")
        assert len(runs) == 3
        assert all(record.run.succeeded for record in runs)
        final = runs[-1].run.result_of("totals")
        assert sum(v for _r, v in final.rows) == 90.0


class TestWorkflowFailureRecovery:
    """Failure paths: bounded retries, mid-DAG crashes, coordinator
    resilience (the workflow side of the fault-tolerance subsystem)."""

    def test_retry_recovers_a_transient_action(self):
        calls = []

        def flaky(ctx):
            calls.append(len(calls))
            if len(calls) < 3:
                raise TimeoutError("transient")
            return "ok"

        workflow = (Workflow("w")
                    .add("flaky", flaky, max_attempts=3)
                    .add("child", lambda ctx: ctx["results"]["flaky"],
                         after=["flaky"]))
        run = workflow.run()
        assert run.succeeded
        # exactly one execution per attempt, no extra re-runs
        assert calls == [0, 1, 2]
        assert run.results["flaky"].attempts == 3
        assert run.result_of("child") == "ok"

    def test_retry_exhaustion_records_attempts_and_last_error(self):
        calls = []

        def doomed(ctx):
            calls.append(len(calls))
            raise ValueError(f"boom {len(calls)}")

        workflow = (Workflow("w")
                    .add("doomed", doomed, max_attempts=2)
                    .add("child", lambda ctx: 1, after=["doomed"])
                    .add("independent", lambda ctx: 2))
        run = workflow.run()
        assert not run.succeeded
        assert calls == [0, 1]
        result = run.results["doomed"]
        assert result.status is ActionStatus.FAILED
        assert result.attempts == 2
        assert "boom 2" in result.error  # the *last* attempt's error
        # the failure skips downstream but never strands the rest of the DAG
        assert run.status_of("child") is ActionStatus.SKIPPED
        assert run.status_of("independent") is ActionStatus.SUCCEEDED

    def test_skipped_actions_report_zero_attempts(self):
        def boom(ctx):
            raise RuntimeError("nope")

        workflow = (Workflow("w")
                    .add("bad", boom)
                    .add("child", lambda ctx: 1, after=["bad"]))
        run = workflow.run()
        assert run.results["bad"].attempts == 1
        assert run.results["child"].attempts == 0

    def test_single_attempt_actions_never_retry(self):
        calls = []

        def boom(ctx):
            calls.append(1)
            raise RuntimeError("nope")

        run = Workflow("w").add("bad", boom).run()
        assert len(calls) == 1
        assert run.results["bad"].attempts == 1

    def test_mid_dag_failure_does_not_strand_later_fires(self):
        """A workflow whose action raises on one fire must leave the
        coordinator able to fire the same workflow again on schedule."""
        state = {"fires": 0}

        def sometimes(ctx):
            state["fires"] += 1
            if state["fires"] == 2:
                raise ValueError("bad day")
            return state["fires"]

        workflow = (Workflow("daily")
                    .add("etl", sometimes)
                    .add("report",
                         lambda ctx: ctx["results"]["etl"] * 10,
                         after=["etl"]))
        coordinator = Coordinator()
        coordinator.schedule(workflow, period=10.0)
        coordinator.advance_to(30.0)  # fires at t=0, 10, 20, 30
        runs = coordinator.runs_of("daily")
        assert len(runs) == 4
        assert state["fires"] == 4
        statuses = [record.run.status_of("report") for record in runs]
        assert statuses == [ActionStatus.SUCCEEDED, ActionStatus.SKIPPED,
                            ActionStatus.SUCCEEDED, ActionStatus.SUCCEEDED]
        assert runs[1].run.status_of("etl") is ActionStatus.FAILED

    def test_retried_hiveql_action_runs_once_per_attempt(self):
        session = make_session()
        session.execute(METER_DDL)
        session.load_rows("meterdata", meter_rows(num_users=5, num_days=1))
        # a bad statement first (parse error), retried -> still fails, but
        # the failure is contained and the count query still runs
        workflow = (Workflow("w")
                    .add_hiveql("bad", "SELEKT broken")
                    .add_hiveql("count", "SELECT count(*) FROM meterdata"))
        workflow._actions["bad"].max_attempts = 2
        run = workflow.run(session)
        assert run.results["bad"].status is ActionStatus.FAILED
        assert run.results["bad"].attempts == 2
        assert run.result_of("count").scalar() == 5
