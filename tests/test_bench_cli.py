"""Test the ``python -m repro.bench`` CLI end to end at a tiny scale."""

import pathlib

from repro.bench.__main__ import main


def test_cli_writes_report(tmp_path):
    output = tmp_path / "report.md"
    code = main(["--output", str(output), "--users", "500", "--days", "6",
                 "--readings", "4", "--tpch-orders", "1500", "--quiet"])
    assert code == 0
    text = output.read_text()
    assert text.startswith("# EXPERIMENTS")
    # one section per paper artifact + the appendix
    for heading in ("## Figure 3", "## Table 2", "## Figures 8-10",
                    "## Figures 11-13", "## Figures 14-16", "## Figure 17",
                    "## Tables 5-6 + Figure 18", "## Ablation",
                    "## Partition explosion",
                    "## Appendix: paper-vs-measured checklist"):
        assert heading in text, f"missing section {heading!r}"
    # the report embeds the scale it ran at (500 users x 6 days x 4)
    assert "12,000" in text
