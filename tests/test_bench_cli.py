"""Test the ``python -m repro.bench`` CLI end to end at a tiny scale."""

import json
import pathlib

from repro.bench.__main__ import main
from repro.obs.trace import validate_trace


def test_cli_writes_report(tmp_path):
    output = tmp_path / "report.md"
    traces = tmp_path / "traces.json"
    code = main(["--output", str(output), "--traces", str(traces),
                 "--users", "500", "--days", "6",
                 "--readings", "4", "--tpch-orders", "1500", "--quiet"])
    assert code == 0
    document = json.loads(traces.read_text())
    assert [t["label"] for t in document["traces"]] == [
        "agg-5pct", "agg-point", "groupby-5pct"]
    for entry in document["traces"]:
        validate_trace(entry["trace"])
        assert entry["trace"]["root"]["wall_seconds"] == 0.0
    assert "queries_total" in document["metrics"]
    text = output.read_text()
    assert text.startswith("# EXPERIMENTS")
    # one section per paper artifact + the appendix
    for heading in ("## Figure 3", "## Table 2", "## Figures 8-10",
                    "## Figures 11-13", "## Figures 14-16", "## Figure 17",
                    "## Tables 5-6 + Figure 18", "## Ablation",
                    "## Partition explosion",
                    "## Appendix: paper-vs-measured checklist"):
        assert heading in text, f"missing section {heading!r}"
    # the report embeds the scale it ran at (500 users x 6 days x 4)
    assert "12,000" in text
