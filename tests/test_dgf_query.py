"""Tests for DGFIndex query processing: both paths of Algorithm 3,
split/slice filtering, and the partial-specified behaviour."""

import pytest

from repro.hive.session import QueryOptions
from tests.conftest import SCAN, make_session, meter_rows

MDRQ = ("SELECT sum(powerconsumed) FROM meterdata "
        "WHERE userid >= 30 AND userid < 90 "
        "AND regionid >= 1 AND regionid <= 3 "
        "AND ts >= '2012-12-02' AND ts < '2012-12-05'")


class TestAggregationPath:
    def test_equivalence_with_scan(self, dgf_session):
        scan = dgf_session.execute(MDRQ, SCAN)
        indexed = dgf_session.execute(MDRQ)
        assert indexed.scalar() == pytest.approx(scan.scalar())
        assert "mode=agg-headers" in indexed.stats.index_used

    def test_reads_only_boundary(self, dgf_session):
        indexed = dgf_session.execute(MDRQ)
        scan = dgf_session.execute(MDRQ, SCAN)
        assert indexed.stats.records_read < scan.stats.records_read

    def test_cell_aligned_query_reads_nothing(self, dgf_session):
        """userid [25, 50) aligns with the 25-wide grid; region/ts are
        discrete-covered: the whole answer comes from headers."""
        sql = ("SELECT sum(powerconsumed), count(*) FROM meterdata "
               "WHERE userid >= 25 AND userid < 50 "
               "AND regionid >= 0 AND regionid <= 4 "
               "AND ts >= '2012-12-01' AND ts < '2012-12-03'")
        scan = dgf_session.execute(sql, SCAN)
        indexed = dgf_session.execute(sql)
        assert indexed.rows[0] == pytest.approx(scan.rows[0])
        assert indexed.stats.records_read == 0
        assert indexed.stats.records_matched == 0

    def test_count_and_avg_derivation(self, dgf_session):
        sql = ("SELECT count(*), avg(powerconsumed) FROM meterdata "
               "WHERE userid >= 10 AND userid < 180")
        scan = dgf_session.execute(sql, SCAN)
        indexed = dgf_session.execute(sql)
        assert indexed.rows[0][0] == scan.rows[0][0]
        assert indexed.rows[0][1] == pytest.approx(scan.rows[0][1])

    def test_unprecomputed_aggregate_uses_slice_path(self, dgf_session):
        sql = ("SELECT max(powerconsumed) FROM meterdata "
               "WHERE userid >= 30 AND userid < 90")
        scan = dgf_session.execute(sql, SCAN)
        indexed = dgf_session.execute(sql)
        assert indexed.scalar() == scan.scalar()
        assert "mode=slices" in indexed.stats.index_used

    def test_residual_predicate_disables_headers(self, dgf_session):
        """A predicate on a non-index column must force re-checking every
        record — headers would silently include non-matching rows."""
        sql = ("SELECT sum(powerconsumed) FROM meterdata "
               "WHERE userid >= 30 AND userid < 90 "
               "AND powerconsumed > 25.0")
        scan = dgf_session.execute(sql, SCAN)
        indexed = dgf_session.execute(sql)
        assert indexed.scalar() == pytest.approx(scan.scalar())
        assert "mode=slices" in indexed.stats.index_used

    def test_empty_region(self, dgf_session):
        sql = ("SELECT sum(powerconsumed), count(*) FROM meterdata "
               "WHERE userid >= 5000 AND userid < 6000")
        indexed = dgf_session.execute(sql)
        assert indexed.rows == [(None, 0)]
        assert indexed.stats.records_read == 0

    def test_point_query_reads_covering_cell(self, dgf_session):
        sql = ("SELECT sum(powerconsumed) FROM meterdata "
               "WHERE userid = 42 AND ts = '2012-12-03'")
        scan = dgf_session.execute(sql, SCAN)
        indexed = dgf_session.execute(sql)
        assert indexed.scalar() == pytest.approx(scan.scalar())
        # no inner GFU for a point: it reads the covering cell's slice,
        # i.e. more than the matching record but far less than the table
        assert 1 <= indexed.stats.records_matched
        assert indexed.stats.records_matched \
            <= indexed.stats.records_read < 1200


class TestSlicePath:
    def test_group_by(self, dgf_session):
        sql = ("SELECT ts, sum(powerconsumed) FROM meterdata "
               "WHERE userid >= 30 AND userid < 90 GROUP BY ts")
        scan = dgf_session.execute(sql, SCAN)
        indexed = dgf_session.execute(sql)
        assert [(t, pytest.approx(v)) for t, v in scan.rows] \
            == [(t, v) for t, v in indexed.rows]
        assert indexed.stats.records_read < scan.stats.records_read

    def test_projection_query(self, dgf_session):
        sql = ("SELECT userid, powerconsumed FROM meterdata "
               "WHERE userid >= 30 AND userid < 35 AND ts = '2012-12-02'")
        scan = dgf_session.execute(sql, SCAN)
        indexed = dgf_session.execute(sql)
        assert sorted(indexed.rows) == sorted(scan.rows)

    def test_join_through_index(self, dgf_session):
        dgf_session.execute(
            "CREATE TABLE userinfo (userid bigint, username string)")
        dgf_session.load_rows("userinfo",
                              [(u, f"user{u}") for u in range(200)])
        sql = ("SELECT t2.username, t1.powerconsumed FROM meterdata t1 "
               "JOIN userinfo t2 ON t1.userid = t2.userid "
               "WHERE t1.userid >= 30 AND t1.userid < 33 "
               "AND t1.ts = '2012-12-02'")
        scan = dgf_session.execute(sql, SCAN)
        indexed = dgf_session.execute(sql)
        assert sorted(indexed.rows) == sorted(scan.rows)

    def test_noprecompute_option(self, dgf_session):
        scan = dgf_session.execute(MDRQ, SCAN)
        nopre = dgf_session.execute(
            MDRQ, QueryOptions(dgf_use_precompute=False))
        pre = dgf_session.execute(MDRQ)
        assert nopre.scalar() == pytest.approx(scan.scalar())
        assert "mode=slices" in nopre.stats.index_used
        assert pre.stats.records_read <= nopre.stats.records_read

    def test_slice_skipping_reads_less_than_chosen_splits(self, dgf_session):
        """The record reader skips unrelated slices inside chosen splits:
        it parses only the slice records, and reads fewer bytes than the
        whole table (at this tiny scale per-range read slack dominates, so
        the record count is the sharp assertion)."""
        indexed = dgf_session.execute(
            MDRQ, QueryOptions(dgf_use_precompute=False))
        table = dgf_session.metastore.get_table("meterdata")
        total = dgf_session.fs.total_size(table.data_location)
        assert 0 < indexed.stats.bytes_read < total
        assert indexed.stats.records_read < 1200 / 4


class TestPartialSpecified:
    def test_missing_dimension_completed_from_bounds(self, dgf_session):
        sql = ("SELECT sum(powerconsumed) FROM meterdata "
               "WHERE regionid = 2 AND ts = '2012-12-04'")
        scan = dgf_session.execute(sql, SCAN)
        indexed = dgf_session.execute(sql)
        assert indexed.scalar() == pytest.approx(scan.scalar())
        assert "dgf" in indexed.stats.index_used

    def test_precompute_helps_partial_query(self, dgf_session):
        """A predicate that covers whole cells (regionid equality with
        interval 1, a full 2-day ts cell) is answered from headers with no
        data I/O (Figure 17's mechanism)."""
        sql = ("SELECT sum(powerconsumed) FROM meterdata "
               "WHERE regionid = 2 AND ts >= '2012-12-03' "
               "AND ts < '2012-12-05'")
        pre = dgf_session.execute(sql)
        nopre = dgf_session.execute(sql,
                                    QueryOptions(dgf_use_precompute=False))
        assert pre.scalar() == pytest.approx(nopre.scalar())
        assert pre.stats.records_read == 0
        assert nopre.stats.records_read > 0

    def test_sub_cell_equality_stays_boundary(self, dgf_session):
        """ts equality on one day inside a 2-day cell cannot use the
        header (the cell is not covered) but still answers correctly from
        the boundary slice."""
        sql = ("SELECT sum(powerconsumed) FROM meterdata "
               "WHERE regionid = 2 AND ts = '2012-12-04'")
        scan = dgf_session.execute(sql, SCAN)
        pre = dgf_session.execute(sql)
        assert pre.scalar() == pytest.approx(scan.scalar())
        assert pre.stats.records_read > 0

    def test_extra_nonindexed_dimension(self, dgf_session):
        sql = ("SELECT count(*) FROM meterdata "
               "WHERE userid >= 30 AND userid < 90 "
               "AND powerconsumed >= 0.0")
        scan = dgf_session.execute(sql, SCAN)
        indexed = dgf_session.execute(sql)
        assert indexed.scalar() == scan.scalar()

    def test_no_indexed_predicate_falls_back_to_scan(self, dgf_session):
        result = dgf_session.execute(
            "SELECT count(*) FROM meterdata WHERE powerconsumed > 25")
        assert result.stats.index_used is None


class TestStatsAndKV:
    def test_kv_gets_accounted(self, dgf_session):
        result = dgf_session.execute(MDRQ)
        assert result.stats.index_kv_gets > 0
        assert result.stats.time.read_index_and_other \
            > dgf_session.cluster.job_launch_seconds

    def test_more_cells_more_gets(self, meter_session):
        """A finer grid needs more key-value gets for the same query —
        the paper's Figure 12/13 'read index' growth."""
        meter_session.execute(
            "CREATE INDEX dgf_idx ON TABLE meterdata"
            "(userid, regionid, ts) AS 'dgf' IDXPROPERTIES ("
            "'userid'='0_5', 'regionid'='0_1', 'ts'='2012-12-01_1d', "
            "'precompute'='sum(powerconsumed)')")
        fine = meter_session.execute(MDRQ)
        coarse_session = make_session()
        coarse_session.execute(
            "CREATE TABLE meterdata (userid bigint, regionid int, "
            "ts date, powerconsumed double)")
        coarse_session.load_rows("meterdata", meter_rows())
        coarse_session.execute(
            "CREATE INDEX dgf_idx ON TABLE meterdata"
            "(userid, regionid, ts) AS 'dgf' IDXPROPERTIES ("
            "'userid'='0_50', 'regionid'='0_2', 'ts'='2012-12-01_3d', "
            "'precompute'='sum(powerconsumed)')")
        coarse = coarse_session.execute(MDRQ)
        assert fine.stats.index_kv_gets > coarse.stats.index_kv_gets
        assert fine.scalar() == pytest.approx(coarse.scalar())
