"""GFU-metadata cache behaviour: hits, eviction, strict invalidation.

The accounting contract under test: ``KVStore.stats`` counts *physical*
operations only (what the cache eliminates), while the per-query trace
counters stay *logical* and byte-identical cache on/off (covered by
``tests/test_service_differential.py``).
"""

from __future__ import annotations

import datetime

import pytest

from repro.core.dgf import append_with_dgf
from repro.hive.session import HiveSession
from repro.service import MISSING, GfuMetadataCache

from tests.conftest import METER_DDL, make_session, meter_rows

MDRQ = ("SELECT sum(powerconsumed) FROM meterdata "
        "WHERE userid >= 20 AND userid < 120 "
        "AND ts >= '2012-12-01' AND ts < '2012-12-05'")

INDEX_SQL = ("CREATE INDEX dgf_idx ON TABLE meterdata"
             "(userid, regionid, ts) AS 'dgf' IDXPROPERTIES "
             "('userid'='0_25', 'regionid'='0_1', 'ts'='2012-12-01_2d', "
             "'precompute'='sum(powerconsumed),count(*)')")


def _physical_gets(session: HiveSession, sql: str = MDRQ) -> int:
    """Physical KV get count of running ``sql`` once."""
    before = session.kvstore.snapshot_stats()
    session.execute(sql)
    return session.kvstore.stats_delta(before).gets


def _append_rows(num_users: int = 40):
    start = datetime.date(2012, 12, 7)
    return [(user, user % 5, start.isoformat(), 1.0)
            for user in range(num_users)]


# --------------------------------------------------------------- warm vs cold
class TestWarmCold:
    def test_warm_queries_issue_no_physical_kv_reads(self, dgf_session):
        cold = _physical_gets(dgf_session)
        assert cold > 0
        warm = _physical_gets(dgf_session)
        assert warm == 0
        stats = dgf_session.metadata_cache.stats
        assert stats.hits > 0
        assert stats.hit_rate > 0.0

    def test_cache_off_pays_physical_reads_every_time(self):
        session = HiveSession(num_datanodes=4, cache=False)
        session.fs.block_size = 64 * 1024
        session.execute(METER_DDL)
        rows = meter_rows()
        session.load_rows("meterdata", rows[: len(rows) // 2])
        session.load_rows("meterdata", rows[len(rows) // 2:])
        session.execute(INDEX_SQL)
        assert session.metadata_cache is None
        first = _physical_gets(session)
        second = _physical_gets(session)
        assert first > 0
        assert second == first

    def test_logical_trace_identical_cold_and_warm(self, dgf_session):
        cold = dgf_session.execute(MDRQ)
        warm = dgf_session.execute(MDRQ)
        assert warm.rows == cold.rows
        assert (warm.trace.normalized_json()
                == cold.trace.normalized_json())
        assert warm.stats.index_kv_gets == cold.stats.index_kv_gets

    def test_hit_and_miss_metrics_published(self, dgf_session):
        dgf_session.execute(MDRQ)
        dgf_session.execute(MDRQ)
        metrics = dgf_session.metrics
        assert metrics.counter("gfu_cache_misses_total").value(
            kind="gfu") > 0
        assert metrics.counter("gfu_cache_hits_total").value(
            kind="gfu") > 0
        assert metrics.gauge("gfu_cache_entries").value() == len(
            dgf_session.metadata_cache)

    def test_negative_entries_cached_for_empty_cells(self):
        # Correlated dimensions guarantee empty grid cells: users < 100
        # live in region 0, the rest in region 1, so (userid cell, region
        # 1) combos below user 100 are probed by Algorithm 3 but absent.
        session = HiveSession(num_datanodes=4)
        session.execute(METER_DDL)
        session.load_rows("meterdata",
                          [(u, 0 if u < 100 else 1, "2012-12-01", 1.0)
                           for u in range(200)])
        session.execute(INDEX_SQL)
        sparse = ("SELECT count(*) FROM meterdata "
                  "WHERE userid >= 0 AND userid < 50 "
                  "AND regionid >= 1 AND regionid < 2")
        assert session.execute(sparse).scalar() == 0
        cache = session.metadata_cache
        negatives = [key for key in list(cache._entries)
                     if cache._entries[key][0] is MISSING]
        assert negatives, "expected at least one negative entry"
        # re-running must not re-probe the store for those cells
        assert _physical_gets(session, sparse) == 0


# --------------------------------------------------------------- invalidation
class TestInvalidation:
    def test_append_invalidates_and_refetches_changed_headers(
            self, dgf_session):
        before_rows = dgf_session.execute(MDRQ).rows
        assert _physical_gets(dgf_session) == 0  # warm
        extra = _append_rows()
        append_with_dgf(dgf_session, "meterdata", "dgf_idx", extra)
        # the append's merge wrote through the KV store; the cache must
        # re-fetch, not serve stale headers
        refetch = _physical_gets(dgf_session)
        assert refetch > 0
        after = dgf_session.execute(MDRQ)
        # 100 appended users fall in [20, 120) at 1.0 power each, but on
        # 2012-12-07 — outside this query's ts range: sum unchanged.
        assert after.rows == before_rows
        wide = ("SELECT sum(powerconsumed) FROM meterdata "
                "WHERE userid >= 20 AND userid < 40 "
                "AND ts >= '2012-12-07' AND ts < '2012-12-08'")
        assert dgf_session.execute(wide).scalar() == pytest.approx(20.0)

    def test_append_result_matches_cache_off_session(self):
        def build(cache):
            session = HiveSession(num_datanodes=4, cache=cache)
            session.fs.block_size = 64 * 1024
            session.execute(METER_DDL)
            rows = meter_rows()
            session.load_rows("meterdata", rows[: len(rows) // 2])
            session.load_rows("meterdata", rows[len(rows) // 2:])
            session.execute(INDEX_SQL)
            session.execute(MDRQ)  # warm (or not) before the append
            append_with_dgf(session, "meterdata", "dgf_idx",
                            _append_rows())
            return session.execute(MDRQ)

        cached, uncached = build(True), build(False)
        assert cached.rows == uncached.rows
        assert (cached.trace.normalized_json()
                == uncached.trace.normalized_json())

    def test_append_into_existing_gfus_keeps_byte_identity(self):
        """Mixed hit/miss lookups must fold headers in probe order.

        Appending into *existing* cells evicts only the merged GFU keys,
        so the next query is the first with partial cache hits; a
        hits-then-misses result dict would change float summation order
        and break the cached-vs-uncached byte identity.
        """
        def build(cache):
            session = HiveSession(num_datanodes=4, cache=cache)
            session.fs.block_size = 64 * 1024
            session.execute(METER_DDL)
            session.load_rows("meterdata", meter_rows())
            session.execute(INDEX_SQL)
            session.execute(MDRQ)  # warm (or not) before the append
            # same users/ts range as the warm query: merges into cells
            # the cache already holds, leaving the rest as hits
            extra = [(user, user % 5, "2012-12-02", 1.0)
                     for user in range(40, 60)]
            append_with_dgf(session, "meterdata", "dgf_idx", extra)
            return session.execute(MDRQ)

        cached, uncached = build(True), build(False)
        assert cached.rows == uncached.rows
        assert (cached.trace.normalized_json()
                == uncached.trace.normalized_json())

    def test_rebuild_index_fully_invalidates(self, dgf_session):
        dgf_session.execute(MDRQ)
        cache = dgf_session.metadata_cache
        assert len(cache) > 0
        dgf_session.rebuild_index("meterdata", "dgf_idx")
        assert len(cache) == 0
        assert cache.stats.invalidations > 0
        assert _physical_gets(dgf_session) > 0  # cold again

    def test_drop_index_clears_namespace_including_negatives(
            self, dgf_session):
        sparse = ("SELECT count(*) FROM meterdata "
                  "WHERE userid >= 0 AND userid < 200 "
                  "AND ts >= '2012-12-05' AND ts < '2012-12-06'")
        dgf_session.execute(sparse)
        cache = dgf_session.metadata_cache
        assert len(cache) > 0
        dgf_session.execute("DROP INDEX dgf_idx ON meterdata")
        assert len(cache) == 0

    def test_drop_table_clears_namespace(self, dgf_session):
        dgf_session.execute(MDRQ)
        cache = dgf_session.metadata_cache
        assert len(cache) > 0
        dgf_session.execute("DROP TABLE meterdata")
        assert len(cache) == 0

    def test_load_rows_invalidates_table_namespace(self, dgf_session):
        dgf_session.execute(MDRQ)
        cache = dgf_session.metadata_cache
        assert len(cache) > 0
        dgf_session.load_rows("meterdata", _append_rows(5))
        assert len(cache) == 0

    def test_kv_write_listener_evicts_single_entry(self, dgf_session):
        dgf_session.execute(MDRQ)
        cache = dgf_session.metadata_cache
        key = next(iter(cache._entries))
        assert key in cache
        value = dgf_session.kvstore.get(key)
        dgf_session.kvstore.put(key, value)  # write-through → evict
        assert key not in cache


# ------------------------------------------------------------------ the cache
class TestCacheUnit:
    def test_lru_eviction_by_entry_count(self):
        cache = GfuMetadataCache(max_entries=4)
        keys = [f"dgf:t:i:{n}" for n in range(6)]
        cache.fill(keys, {k: ("v", n) for n, k in enumerate(keys)})
        assert len(cache) == 4
        assert cache.stats.evictions == 2
        # oldest two evicted, newest four resident
        assert keys[0] not in cache and keys[1] not in cache
        assert all(k in cache for k in keys[2:])

    def test_lru_order_updated_by_lookup(self):
        cache = GfuMetadataCache(max_entries=2)
        cache.fill(["dgf:t:i:a"], {"dgf:t:i:a": "A"})
        cache.fill(["dgf:t:i:b"], {"dgf:t:i:b": "B"})
        cache.lookup(["dgf:t:i:a"])  # touch A → B becomes LRU
        cache.fill(["dgf:t:i:c"], {"dgf:t:i:c": "C"})
        assert "dgf:t:i:a" in cache
        assert "dgf:t:i:b" not in cache

    def test_byte_budget_eviction(self):
        cache = GfuMetadataCache(max_entries=1000, max_bytes=200)
        for n in range(10):
            key = f"dgf:t:i:{n}"
            cache.fill([key], {key: "x" * 50})
        assert cache.size_bytes <= 200
        assert cache.stats.evictions > 0

    def test_lookup_returns_hits_and_missing_in_probe_order(self):
        cache = GfuMetadataCache()
        cache.fill(["dgf:t:i:a", "dgf:t:i:b"], {"dgf:t:i:a": "A"})
        hits, missing = cache.lookup(
            ["dgf:t:i:a", "dgf:t:i:b", "dgf:t:i:c", "dgf:t:i:d"])
        assert hits["dgf:t:i:a"] == "A"
        assert hits["dgf:t:i:b"] is MISSING  # negative entry is a *hit*
        assert missing == ["dgf:t:i:c", "dgf:t:i:d"]

    def test_invalidate_index_is_namespace_scoped(self):
        cache = GfuMetadataCache()
        cache.fill(["dgf:t:one:k", "dgfmeta:t:one:m", "dgf:t:two:k"],
                   {"dgf:t:one:k": 1, "dgfmeta:t:one:m": 2,
                    "dgf:t:two:k": 3})
        dropped = cache.invalidate_index("T", "ONE")  # case-insensitive
        assert dropped == 2
        assert "dgf:t:two:k" in cache
        assert len(cache) == 1

    def test_snapshot_shape(self):
        cache = GfuMetadataCache()
        cache.fill(["dgf:t:i:a"], {})
        cache.lookup(["dgf:t:i:a"])
        snap = cache.snapshot()
        assert snap["hits"] == 1 and snap["entries"] == 1
        assert set(snap) >= {"hits", "misses", "fills", "evictions",
                             "invalidations", "hit_rate", "entries",
                             "bytes"}

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            GfuMetadataCache(max_entries=0)
        with pytest.raises(ValueError):
            GfuMetadataCache(max_bytes=0)

    def test_session_accepts_shared_cache_instance(self):
        shared = GfuMetadataCache()
        session = HiveSession(num_datanodes=4, cache=shared)
        session.execute(METER_DDL)
        session.load_rows("meterdata", meter_rows(num_users=40, num_days=2))
        session.execute(INDEX_SQL)
        session.execute("SELECT count(*) FROM meterdata "
                        "WHERE userid >= 0 AND userid < 40 "
                        "AND ts >= '2012-12-01' AND ts < '2012-12-02'")
        assert session.metadata_cache is shared
        assert len(shared) > 0


# --------------------------------------------------------- streaming deltas
STREAM_MDRQ = ("SELECT sum(powerconsumed), count(*) FROM meterstream "
               "WHERE userid >= 10 AND userid < 30 "
               "AND ts >= 100 AND ts < 104")


class TestStreamingInvalidation:
    """The over-invalidation regression (ISSUE 7): a high-rate ingest
    stream writes ``delta:``/``deltameta:`` keys constantly; those writes
    must evict only their own entries, never the base GFU headers and
    bounds that keep concurrent query planning warm."""

    def _stream_session(self):
        from tests.harness.streaming import make_session
        return make_session(cache=True)

    def test_delta_ingest_keeps_base_entries_warm(self):
        from tests.harness.streaming import INDEX, KEY_COLUMNS, TABLE
        session = self._stream_session()
        cache = session.metadata_cache
        session.execute(STREAM_MDRQ)  # warm the base GFU namespace
        base_keys = [key for key in list(cache._entries)
                     if key.startswith(("dgf:", "dgfmeta:"))]
        assert base_keys
        binding = session.attach_delta(TABLE, INDEX,
                                       key_columns=list(KEY_COLUMNS))
        binding.ingest([("insert", (12, 0, 102, 1.0)),
                        ("upsert", (20, 0, 101, 2.0)),
                        ("delete", (22, 103))])
        for key in base_keys:
            assert key in cache, f"ingest over-invalidated base entry {key}"
        # the next query only re-fetches the delta cells it now overlaps;
        # once those are cached too, the whole plan is physically free
        assert _physical_gets(session, STREAM_MDRQ) > 0
        assert _physical_gets(session, STREAM_MDRQ) == 0

    def test_delta_entries_get_the_delta_metric_label(self):
        from tests.harness.streaming import INDEX, KEY_COLUMNS, TABLE
        session = self._stream_session()
        binding = session.attach_delta(TABLE, INDEX,
                                       key_columns=list(KEY_COLUMNS))
        binding.ingest([("insert", (12, 0, 102, 1.0))])
        session.execute(STREAM_MDRQ)
        misses = session.metrics.counter("gfu_cache_misses_total")
        assert misses.value(kind="delta") > 0

    def test_delta_write_evicts_exactly_its_own_key(self):
        from tests.harness.streaming import INDEX, KEY_COLUMNS, TABLE
        session = self._stream_session()
        cache = session.metadata_cache
        binding = session.attach_delta(TABLE, INDEX,
                                       key_columns=list(KEY_COLUMNS))
        binding.ingest([("insert", (12, 0, 102, 1.0))])
        session.execute(STREAM_MDRQ)  # caches base + the resident cell
        cached_delta = [key for key in list(cache._entries)
                        if key.startswith("delta:")]
        assert cached_delta
        before = set(cache._entries)
        binding.ingest([("insert", (12, 0, 103, 2.0))])  # same cell
        gone = before - set(cache._entries)
        assert gone == {key for key in before
                        if key.startswith(("delta:", "deltameta:"))}

    def test_invalidate_cells_is_exact(self):
        cache = GfuMetadataCache()
        cache.fill(["dgf:t:i:0_0", "delta:t:i:0_0",
                    "dgf:t:i:0_1", "delta:t:i:0_1", "dgfmeta:t:i:bounds"],
                   {"dgf:t:i:0_0": 1, "delta:t:i:0_0": 2,
                    "dgf:t:i:0_1": 3, "delta:t:i:0_1": 4,
                    "dgfmeta:t:i:bounds": 5})
        dropped = cache.invalidate_cells("T", "I", ["0_0"])
        assert dropped == 2
        assert "dgf:t:i:0_0" not in cache
        assert "delta:t:i:0_0" not in cache
        assert "dgf:t:i:0_1" in cache and "delta:t:i:0_1" in cache
        assert "dgfmeta:t:i:bounds" in cache

    def test_invalidate_streaming_spares_base_namespace(self):
        cache = GfuMetadataCache()
        cache.fill(["delta:t:i:0_0", "deltameta:t:i:state",
                    "dgf:t:i:0_0", "delta:u:i:0_0"],
                   {"delta:t:i:0_0": 1, "deltameta:t:i:state": 2,
                    "dgf:t:i:0_0": 3, "delta:u:i:0_0": 4})
        dropped = cache.invalidate_streaming("T")
        assert dropped == 2
        assert "dgf:t:i:0_0" in cache
        assert "delta:u:i:0_0" in cache

    def test_invalidate_table_spares_streaming_namespace(self):
        """The converse guarantee: base-table invalidation (load_rows,
        new files) must not flush resident delta op lists — they are
        keyed by stream sequence, not by base layout."""
        cache = GfuMetadataCache()
        cache.fill(["dgf:t:i:0_0", "dgfmeta:t:i:bounds", "delta:t:i:0_0"],
                   {"dgf:t:i:0_0": 1, "dgfmeta:t:i:bounds": 2,
                    "delta:t:i:0_0": 3})
        cache.invalidate_table("t")
        assert "dgf:t:i:0_0" not in cache
        assert "dgfmeta:t:i:bounds" not in cache
        assert "delta:t:i:0_0" in cache
