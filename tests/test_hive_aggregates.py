"""Tests for the aggregate framework, including the additivity property
DGFIndex headers depend on."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SemanticError
from repro.hive.aggregates import (AvgAgg, CompiledAggregate, CountAgg,
                                   CountDistinctAgg, MaxAgg, MinAgg, SumAgg,
                                   canonical_key, resolve_aggregate)
from repro.hiveql import parse_expression
from repro.hiveql.evaluator import ColumnResolver
from repro.storage.schema import DataType, Schema


def run_aggregate(function, values):
    state = function.initial()
    for value in values:
        state = function.accumulate(state, value)
    return function.finalize(state)


class TestFunctions:
    def test_sum(self):
        assert run_aggregate(SumAgg(), [1, 2, 3]) == 6

    def test_sum_empty_is_null(self):
        assert run_aggregate(SumAgg(), []) is None

    def test_sum_skips_nulls(self):
        assert run_aggregate(SumAgg(), [1, None, 2]) == 3

    def test_count(self):
        assert run_aggregate(CountAgg(), ["a", "b"]) == 2

    def test_min_max(self):
        assert run_aggregate(MinAgg(), [3, 1, 2]) == 1
        assert run_aggregate(MaxAgg(), [3, 1, 2]) == 3
        assert run_aggregate(MinAgg(), []) is None

    def test_avg(self):
        assert run_aggregate(AvgAgg(), [1.0, 2.0, 3.0]) == 2.0
        assert run_aggregate(AvgAgg(), []) is None

    def test_count_distinct(self):
        assert run_aggregate(CountDistinctAgg(), [1, 1, 2, None, 2]) == 2

    def test_additivity_flags(self):
        assert SumAgg().additive and CountAgg().additive
        assert AvgAgg().additive  # as a (sum, count) pair
        assert not CountDistinctAgg().additive


@settings(max_examples=60, deadline=None)
@given(values=st.lists(st.integers(-100, 100), min_size=1, max_size=30),
       cut=st.integers(min_value=0, max_value=30))
@pytest.mark.parametrize("function_cls", [SumAgg, CountAgg, MinAgg, MaxAgg,
                                          AvgAgg])
def test_property_merge_equals_single_pass(function_cls, values, cut):
    """merge(accumulate(left), accumulate(right)) == accumulate(all):
    the additivity property DGF headers require."""
    function = function_cls()
    cut = cut % (len(values) + 1)

    def fold(chunk):
        state = function.initial()
        for value in chunk:
            state = function.accumulate(state, value)
        return state

    merged = function.merge(fold(values[:cut]), fold(values[cut:]))
    assert function.finalize(merged) == function.finalize(fold(values))


class TestResolveAndKeys:
    def test_resolve_names(self):
        assert isinstance(resolve_aggregate(parse_expression("sum(a)")),
                          SumAgg)
        assert isinstance(
            resolve_aggregate(parse_expression("count(DISTINCT a)")),
            CountDistinctAgg)

    def test_unknown_aggregate(self):
        with pytest.raises(SemanticError):
            resolve_aggregate(parse_expression("median(a)"))

    def test_wrong_arity(self):
        with pytest.raises(SemanticError):
            resolve_aggregate(parse_expression("sum(a, b)"))

    def test_canonical_key_normalizes(self):
        assert canonical_key(parse_expression("SUM( powerConsumed )")) \
            == "sum(powerconsumed)"
        assert canonical_key(parse_expression("count(*)")) == "count(*)"
        assert canonical_key(parse_expression("count(DISTINCT u)")) \
            == "count_distinct(u)"

    def test_canonical_key_of_expression(self):
        key = canonical_key(parse_expression("sum(price * qty)"))
        assert key == "sum((price*qty))"


class TestCompiledAggregate:
    @pytest.fixture
    def resolver(self):
        return ColumnResolver.for_schema(
            Schema.of(("v", DataType.DOUBLE), ("w", DataType.INT)), "t")

    def test_accumulates_rows(self, resolver):
        agg = CompiledAggregate.compile(parse_expression("sum(v)"),
                                        resolver)
        state = agg.function.initial()
        for row in [(1.0, 1), (2.5, 2)]:
            state = agg.accumulate_row(state, row)
        assert agg.function.finalize(state) == 3.5

    def test_count_star(self, resolver):
        agg = CompiledAggregate.compile(parse_expression("count(*)"),
                                        resolver)
        state = agg.function.initial()
        for row in [(None, 1), (2.0, 2)]:
            state = agg.accumulate_row(state, row)
        assert state == 2  # count(*) counts NULL rows too

    def test_count_column_skips_nulls(self, resolver):
        agg = CompiledAggregate.compile(parse_expression("count(v)"),
                                        resolver)
        state = agg.function.initial()
        for row in [(None, 1), (2.0, 2)]:
            state = agg.accumulate_row(state, row)
        assert state == 1

    def test_expression_argument(self, resolver):
        agg = CompiledAggregate.compile(parse_expression("sum(v * w)"),
                                        resolver)
        state = agg.function.initial()
        for row in [(2.0, 3), (1.0, 4)]:
            state = agg.accumulate_row(state, row)
        assert state == 10.0
