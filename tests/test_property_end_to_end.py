"""End-to-end property tests: every indexed plan must return exactly the
full-scan answer, for arbitrary generated data and arbitrary range
predicates.  This is the reproduction's master invariant — the paper's
performance claims are only meaningful because the index is exact.
"""

import datetime

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.hive.session import HiveSession, QueryOptions
from tests.conftest import SCAN, make_session

DAYS = [(datetime.date(2012, 12, 1)
         + datetime.timedelta(days=d)).isoformat() for d in range(8)]

row_strategy = st.tuples(
    st.integers(min_value=0, max_value=60),            # userid
    st.integers(min_value=0, max_value=4),             # regionid
    st.sampled_from(DAYS),                             # ts
    st.floats(min_value=0.0, max_value=100.0,
              allow_nan=False, width=32).map(lambda f: round(f, 2)),
)

dataset_strategy = st.lists(row_strategy, min_size=1, max_size=120)

predicate_strategy = st.fixed_dictionaries({
    "u_lo": st.integers(-5, 60),
    "u_width": st.integers(0, 40),
    "r_lo": st.integers(0, 4),
    "r_width": st.integers(0, 4),
    "d_lo": st.integers(0, 7),
    "d_width": st.integers(0, 7),
})


def build_sql(agg, predicate):
    day_lo = DAYS[predicate["d_lo"]]
    day_hi_index = min(predicate["d_lo"] + predicate["d_width"], 7)
    day_hi = DAYS[day_hi_index]
    return (
        f"SELECT {agg} FROM meterdata "
        f"WHERE userid >= {predicate['u_lo']} "
        f"AND userid < {predicate['u_lo'] + predicate['u_width']} "
        f"AND regionid >= {predicate['r_lo']} "
        f"AND regionid <= {predicate['r_lo'] + predicate['r_width']} "
        f"AND ts >= '{day_lo}' AND ts <= '{day_hi}'")


def load_session(rows, stored_as="TEXTFILE"):
    session = make_session(block_size=2048)
    session.execute(
        "CREATE TABLE meterdata (userid bigint, regionid int, ts date, "
        f"powerconsumed double) STORED AS {stored_as}")
    # rows arrive time-sorted, like real meter data
    session.load_rows("meterdata", sorted(rows, key=lambda r: r[2]))
    return session


def assert_rows_match(expected, actual):
    assert len(expected) == len(actual)
    for left, right in zip(sorted(expected), sorted(actual)):
        assert left == pytest.approx(right)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(rows=dataset_strategy, predicate=predicate_strategy,
       interval=st.sampled_from([3, 10, 25]))
def test_dgf_equals_scan(rows, predicate, interval):
    """DGF header path, slice path and no-precompute path all equal the
    full scan, on arbitrary data and predicates."""
    session = load_session(rows)
    session.execute(
        "CREATE INDEX d ON TABLE meterdata(userid, regionid, ts) "
        f"AS 'dgf' IDXPROPERTIES ('userid'='0_{interval}', "
        "'regionid'='0_1', 'ts'='2012-12-01_2d', "
        "'precompute'='sum(powerconsumed),count(*)')")

    agg_sql = build_sql("sum(powerconsumed), count(*)", predicate)
    scan = session.execute(agg_sql, SCAN)
    headers = session.execute(agg_sql)
    noprecompute = session.execute(
        agg_sql, QueryOptions(dgf_use_precompute=False))
    assert headers.rows[0][1] == scan.rows[0][1]
    assert noprecompute.rows[0][1] == scan.rows[0][1]
    if scan.rows[0][0] is None:
        assert headers.rows[0][0] is None
        assert noprecompute.rows[0][0] is None
    else:
        assert headers.rows[0][0] == pytest.approx(scan.rows[0][0])
        assert noprecompute.rows[0][0] == pytest.approx(scan.rows[0][0])

    group_sql = build_sql("ts, sum(powerconsumed)", predicate) \
        + " GROUP BY ts"
    scan_group = session.execute(group_sql, SCAN)
    indexed_group = session.execute(group_sql)
    assert [k for k, _ in scan_group.rows] \
        == [k for k, _ in indexed_group.rows]
    for (_, left), (_, right) in zip(scan_group.rows, indexed_group.rows):
        assert left == pytest.approx(right)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(rows=dataset_strategy, predicate=predicate_strategy)
def test_compact_and_bitmap_equal_scan(rows, predicate):
    session = load_session(rows, stored_as="RCFILE")
    session.execute("CREATE INDEX c ON TABLE meterdata"
                    "(regionid, ts) AS 'compact'")
    sql = build_sql("sum(powerconsumed), count(*)", predicate)
    scan = session.execute(sql, SCAN)
    compact = session.execute(sql, QueryOptions(index_name="c"))
    assert_rows_match(scan.rows, compact.rows)

    session.execute("DROP INDEX c ON meterdata")
    session.execute("CREATE INDEX b ON TABLE meterdata"
                    "(regionid, ts) AS 'bitmap'")
    bitmap = session.execute(sql, QueryOptions(index_name="b"))
    assert_rows_match(scan.rows, bitmap.rows)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(rows=dataset_strategy, predicate=predicate_strategy)
def test_hadoopdb_equals_scan(rows, predicate):
    from repro.hadoopdb.engine import HadoopDB, HadoopDBConfig
    from repro.hiveql.parser import parse_expression
    from repro.hiveql.predicates import extract_ranges
    from repro.storage.schema import DataType, Schema

    schema = Schema.of(("userid", DataType.BIGINT),
                       ("regionid", DataType.INT),
                       ("ts", DataType.DATE),
                       ("powerconsumed", DataType.DOUBLE))
    db = HadoopDB(schema, ["userid", "regionid", "ts"],
                  partition_column="userid",
                  config=HadoopDBConfig(num_nodes=3, chunks_per_node=2))
    db.load(sorted(rows, key=lambda r: r[2]))

    sql = build_sql("sum(powerconsumed)", predicate)
    where = sql.split("WHERE", 1)[1]
    intervals = extract_ranges(parse_expression(where)).intervals
    result = db.aggregate(intervals, value_position=3)

    session = load_session(rows)
    scan = session.execute(sql, SCAN)
    if scan.rows[0][0] is None:
        assert result.rows[0][0] is None
    else:
        assert result.rows[0][0] == pytest.approx(scan.rows[0][0])


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(rows=dataset_strategy,
       append_rows=st.lists(row_strategy, min_size=1, max_size=30),
       predicate=predicate_strategy)
def test_dgf_append_preserves_equivalence(rows, append_rows, predicate):
    """After appends through the no-rebuild path, indexed answers still
    equal a scan over the combined data."""
    from repro.core.dgf.builder import append_with_dgf
    session = load_session(rows)
    session.execute(
        "CREATE INDEX d ON TABLE meterdata(userid, regionid, ts) "
        "AS 'dgf' IDXPROPERTIES ('userid'='0_10', 'regionid'='0_1', "
        "'ts'='2012-12-01_2d', 'precompute'='sum(powerconsumed)')")
    append_with_dgf(session, "meterdata", "d",
                    sorted(append_rows, key=lambda r: r[2]))
    sql = build_sql("sum(powerconsumed)", predicate)
    scan = session.execute(sql, SCAN)
    indexed = session.execute(sql)
    if scan.rows[0][0] is None:
        assert indexed.rows[0][0] is None
    else:
        assert indexed.rows[0][0] == pytest.approx(scan.rows[0][0])
