"""Row-vs-vector differential suite (ISSUE 6 acceptance).

Generated MDRQ sessions and fixed stress workloads are replayed with
``ExecutionConfig(vectorized=True)`` at ``max_workers`` 1, 4 and 8 and
must be byte-identical to the row engine: result rows and row order,
folded float aggregates, QueryStats, simulated cost-model seconds,
global ``fs_io``/``kv_ops`` totals, and normalized traces modulo the
strippable ``vector.*`` observability layer (tests.harness.vector).

The suite also proves:

* **fallback, not failure** — every unsupported-expression class (LIKE,
  ``%``, scalar functions, mixed-type comparisons, huge integer
  literals) silently runs that expression on the row engine inside the
  vectorized scan, counts ``vector.fallback_rows``, and still
  fingerprints identically end to end;
* **chaos overlap** — a seeded :class:`~repro.faults.FaultPlan` under
  the vectorized engine matches the row engine under the same plan
  (crashed attempts replay per-record on the row path);
* **clean degradation** — with NumPy unavailable
  (``REPRO_VECTOR_DISABLE=1``), a ``vectorized=True`` session is the
  row engine, *raw*-fingerprint-identical, no vector markers anywhere.

The whole suite runs with or without NumPy installed; only assertions
that vectorization *actually happened* are gated on availability.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.faults import TASK_CRASH, FaultPlan, FaultSpec
from repro.mapreduce.cluster import ExecutionConfig
from repro.vector import runtime

from tests.conftest import SCAN
from tests.harness.differential import Workload, _assert_same, run_workload
from tests.harness.vector import (VECTOR_WORKERS, assert_vector_equivalent,
                                  assert_vector_chaos_equivalent)
from tests.test_engine_equivalence import (DAYS, METER_DDL,
                                           TestDgfStressParallel, index_sql,
                                           mdrq_workloads, stress_rows)

HAVE_NUMPY = runtime.numpy_available()

RCFILE_DDL = METER_DDL.replace("STORED AS TEXTFILE", "STORED AS RCFILE")
SEQUENCE_DDL = METER_DDL.replace("STORED AS TEXTFILE",
                                 "STORED AS SEQUENCEFILE")


def trace_counter_total(fingerprint, name):
    """Sum a counter over every span of every query trace."""

    def walk(node):
        total = node["counters"].get(name, 0)
        for child in node["children"]:
            total += walk(child)
        return total

    return sum(walk(value["trace"]["root"])
               for key, value in fingerprint.items()
               if key.startswith("query:") and value.get("trace"))


# ------------------------------------------------------ generated workloads
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(workload=mdrq_workloads())
def test_mdrq_sessions_vectorized(workload):
    """Generated MDRQ sessions — load, DGF build, every planner path —
    fingerprint identically between the row and vector engines."""
    baseline = assert_vector_equivalent(workload, VECTOR_WORKERS)
    assert baseline["query:0"]["index_used"]
    assert not baseline["query:1"]["index_used"]


# ---------------------------------------------------------- fixed workloads
def test_stress_queries_vectorized():
    """The full DGF stress battery — headers, slices, GROUP BY, joins,
    ORDER BY/LIMIT, INSERT DIRECTORY — row-vs-vector identical.  Joins
    are not vectorizable and must transparently stay on the row path."""
    workload = Workload(
        table="meterdata", ddl=METER_DDL, rows=stress_rows(),
        queries=TestDgfStressParallel.QUERIES, index_sql=index_sql(10),
        index_name="d", block_size=2048, load_files=3,
        extra_tables=(
            ("userinfo",
             "CREATE TABLE userinfo (userid bigint, username string)",
             tuple((u, f"user{u}") for u in range(80))),))
    baseline = assert_vector_equivalent(workload, VECTOR_WORKERS)
    assert baseline["query:6"]["rows"] == [(480,)]


def test_rcfile_sessions_vectorized():
    """RCFile storage: row-group batches (including column pruning and the
    DGF slice path over row groups) fingerprint identically."""
    queries = (
        ("SELECT sum(powerconsumed), count(*) FROM meterdata "
         "WHERE userid >= 3 AND userid < 47 AND regionid >= 1 "
         f"AND regionid <= 3 AND ts >= '{DAYS[1]}' AND ts <= '{DAYS[4]}'",
         None),
        ("SELECT regionid, avg(powerconsumed), min(powerconsumed) "
         "FROM meterdata GROUP BY regionid", SCAN),
        ("SELECT userid, powerconsumed FROM meterdata "
         "WHERE powerconsumed > 25.0", SCAN),
    )
    workload = Workload(table="meterdata", ddl=RCFILE_DDL,
                        rows=stress_rows(), queries=queries,
                        index_sql=index_sql(10), index_name="d",
                        block_size=2048, load_files=2)
    assert_vector_equivalent(workload, VECTOR_WORKERS)


def test_sequencefile_stays_on_row_engine():
    """No batch decoder for sequence files: a vectorized session is the
    row session, raw-fingerprint identical (no vector markers at all)."""
    queries = (("SELECT sum(powerconsumed), count(*) FROM meterdata "
                "WHERE userid >= 10 AND userid < 50", SCAN),)
    workload = Workload(table="meterdata", ddl=SEQUENCE_DDL,
                        rows=stress_rows()[:200], queries=queries,
                        index_sql=None)
    baseline = run_workload(workload)
    candidate = run_workload(
        workload, ExecutionConfig(max_workers=4, vectorized=True))
    _assert_same(baseline, candidate, "sequencefile vectorized=True")
    assert "vectorized" not in candidate["query:0"]["description"]


# ------------------------------------------------------- fallback coverage
#: one query per unsupported-expression class; each must fall back to the
#: row engine (never error) while the rest of the scan stays vectorized.
FALLBACK_QUERIES = (
    ("modulo", "SELECT count(*) FROM meterdata WHERE userid % 7 = 1"),
    ("like", "SELECT count(*) FROM meterdata WHERE ts LIKE '2012-12-0%'"),
    ("scalar-function",
     "SELECT count(*) FROM meterdata WHERE abs(powerconsumed - 50.0) < 10.0"),
    ("scalar-projection",
     "SELECT userid, round(powerconsumed) FROM meterdata "
     "WHERE regionid = 2"),
    ("mixed-type-comparison",
     "SELECT count(*) FROM meterdata WHERE ts = 3"),
    ("huge-int-literal",
     "SELECT count(*) FROM meterdata "
     f"WHERE userid * 1 < {2**70}"),
    ("group-by-function",
     "SELECT length(ts), sum(powerconsumed) FROM meterdata "
     "WHERE userid < 40 GROUP BY length(ts)"),
    ("aggregate-of-function",
     "SELECT sum(abs(powerconsumed)), count(*) FROM meterdata "
     "WHERE userid < 40"),
)


@pytest.mark.parametrize("label,sql",
                         FALLBACK_QUERIES, ids=[q[0] for q in FALLBACK_QUERIES])
def test_fallback_classes_byte_identical(label, sql):
    """Each unsupported class: byte-identical results, and (with NumPy)
    the scan still ran vectorized with ``vector.fallback_rows`` counted."""
    workload = Workload(table="meterdata", ddl=METER_DDL,
                        rows=stress_rows()[:240], queries=((sql, SCAN),),
                        index_sql=None)
    assert_vector_equivalent(workload, (1, 4))
    if HAVE_NUMPY:
        fingerprint = run_workload(
            workload, ExecutionConfig(vectorized=True))
        assert "vectorized: true" in fingerprint["query:0"]["description"]
        assert trace_counter_total(fingerprint, "vector.batches") > 0
        assert trace_counter_total(fingerprint, "vector.fallback_rows") > 0


def test_mixed_plan_partial_fallback():
    """A query mixing kernel-supported and unsupported expressions in one
    plan: the filter runs vectorized and only the unsupported group key
    falls back — over matched rows only, so fallback_rows < rows read."""
    sql = ("SELECT length(ts), sum(powerconsumed), count(*) FROM meterdata "
           "WHERE userid >= 5 AND userid < 45 "
           "GROUP BY length(ts)")
    workload = Workload(table="meterdata", ddl=METER_DDL,
                        rows=stress_rows(), queries=((sql, SCAN),),
                        index_sql=None)
    assert_vector_equivalent(workload, (1, 8))
    if HAVE_NUMPY:
        fingerprint = run_workload(
            workload, ExecutionConfig(vectorized=True))
        fallback = trace_counter_total(fingerprint, "vector.fallback_rows")
        read = fingerprint["query:0"]["records_read"]
        matched = fingerprint["query:0"]["records_matched"]
        # Only the group-key stage fell back, and only over matched rows.
        assert matched < read
        assert 0 < fallback == matched


# ----------------------------------------------------------- chaos overlap
def test_vectorized_under_chaos_matches_row_engine():
    """Vector + faults == row + faults, same seeded plan: identical chaos
    views and identical injection/recovery registries."""
    queries = (
        ("SELECT sum(powerconsumed), count(*) FROM meterdata "
         "WHERE userid >= 5 AND userid < 40 AND regionid >= 0 "
         f"AND regionid <= 3 AND ts >= '{DAYS[0]}' AND ts <= '{DAYS[4]}'",
         None),
        ("SELECT ts, sum(powerconsumed) FROM meterdata "
         "WHERE userid < 60 GROUP BY ts", SCAN),
    )
    workload = Workload(table="meterdata", ddl=METER_DDL,
                        rows=stress_rows(), queries=queries,
                        index_sql=index_sql(10), index_name="d",
                        block_size=2048, load_files=3)
    plan = FaultPlan(seed=7, task_crash_rate=0.25, task_straggler_rate=0.2,
                     kv_timeout_rate=0.15, dead_datanodes=(2,),
                     scheduled=(FaultSpec(kind=TASK_CRASH, task_kind="map",
                                          task_id=0, attempt=0),))
    _baseline, registry = assert_vector_chaos_equivalent(
        workload, plan, VECTOR_WORKERS)
    assert sum(registry.injected_counts().values()) > 0


# --------------------------------------------------------- numpy-less mode
def test_disable_env_is_full_row_fallback(monkeypatch):
    """``REPRO_VECTOR_DISABLE=1`` (simulating a NumPy-less install): a
    ``vectorized=True`` session degrades to the row engine with *raw*
    fingerprint identity — no vector spans, counters or plan flags."""
    queries = (
        ("SELECT sum(powerconsumed), count(*) FROM meterdata "
         "WHERE userid >= 5 AND userid < 40", SCAN),
        ("SELECT ts, count(*) FROM meterdata GROUP BY ts", SCAN),
    )
    workload = Workload(table="meterdata", ddl=METER_DDL,
                        rows=stress_rows()[:240], queries=queries,
                        index_sql=None)
    baseline = run_workload(workload)
    monkeypatch.setenv(runtime.DISABLE_ENV, "1")
    assert not runtime.numpy_available()
    for workers in (1, 4):
        candidate = run_workload(
            workload, ExecutionConfig(max_workers=workers, vectorized=True))
        _assert_same(baseline, candidate,
                     f"REPRO_VECTOR_DISABLE max_workers={workers}")
        assert "vectorized" not in candidate["query:0"]["description"]
