"""Unit tests for DgfIndexHandler internals: header merging, avg
derivation, and the aggregation-path applicability rules."""

import pytest

from repro.core.dgf.gfu import GFUValue
from repro.core.dgf.handler import (DgfIndexHandler, _avg_components,
                                    merge_function_for)
from repro.core.dgf.policy import DimensionPolicy, SplittingPolicy
from repro.errors import DGFError
from repro.hive.indexhandler import QueryIndexContext
from repro.hiveql.predicates import Interval, RangeExtraction
from repro.storage.schema import DataType


class TestMergeFunctions:
    def test_known_prefixes(self):
        assert merge_function_for("sum(v)").name == "sum"
        assert merge_function_for("count(*)").name == "count"
        assert merge_function_for("min(v)").name == "min"
        assert merge_function_for("max(v)").name == "max"

    def test_unknown(self):
        with pytest.raises(DGFError):
            merge_function_for("median(v)")

    def test_avg_components(self):
        assert _avg_components("avg(power)") == ("sum(power)", "count(*)")
        assert _avg_components("sum(power)") is None


def context(intervals, exact=True, agg_keys=("sum(v)",),
            plain=True, precompute=True):
    ranges = RangeExtraction(intervals=intervals, exact=exact,
                             residual=[] if exact else ["x"])
    return QueryIndexContext(ranges=ranges, agg_keys=list(agg_keys),
                             is_plain_aggregation=plain,
                             use_precompute=precompute)


@pytest.fixture
def policy():
    return SplittingPolicy([
        DimensionPolicy(name="a", dtype=DataType.BIGINT, origin=0,
                        interval=10)])


class TestAggregationPathRules:
    def test_applies(self, policy):
        handler = DgfIndexHandler()
        ctx = context({"a": Interval(low=0, high=100)})
        assert handler._aggregation_path_applies(ctx, policy, {"sum(v)"})

    def test_requires_plain_aggregation(self, policy):
        handler = DgfIndexHandler()
        ctx = context({"a": Interval(low=0)}, plain=False)
        assert not handler._aggregation_path_applies(ctx, policy,
                                                     {"sum(v)"})

    def test_requires_precompute_enabled(self, policy):
        handler = DgfIndexHandler()
        ctx = context({"a": Interval(low=0)}, precompute=False)
        assert not handler._aggregation_path_applies(ctx, policy,
                                                     {"sum(v)"})

    def test_requires_exact_ranges(self, policy):
        handler = DgfIndexHandler()
        ctx = context({"a": Interval(low=0)}, exact=False)
        assert not handler._aggregation_path_applies(ctx, policy,
                                                     {"sum(v)"})

    def test_rejects_interval_on_non_index_column(self, policy):
        handler = DgfIndexHandler()
        ctx = context({"a": Interval(low=0), "other": Interval(low=1)})
        assert not handler._aggregation_path_applies(ctx, policy,
                                                     {"sum(v)"})

    def test_rejects_unprecomputed_aggregate(self, policy):
        handler = DgfIndexHandler()
        ctx = context({"a": Interval(low=0)}, agg_keys=["max(v)"])
        assert not handler._aggregation_path_applies(ctx, policy,
                                                     {"sum(v)"})

    def test_avg_derivable(self, policy):
        handler = DgfIndexHandler()
        ctx = context({"a": Interval(low=0)}, agg_keys=["avg(v)"])
        assert handler._aggregation_path_applies(
            ctx, policy, {"sum(v)", "count(*)"})
        assert not handler._aggregation_path_applies(
            ctx, policy, {"sum(v)"})  # missing count(*)


class TestHeaderMerging:
    def test_merges_across_cells(self):
        handler = DgfIndexHandler()
        values = [GFUValue(header={"sum(v)": 1.5, "count(*)": 2}),
                  GFUValue(header={"sum(v)": 2.5, "count(*)": 3})]
        merged = handler._merge_headers(["sum(v)", "count(*)"], values)
        assert merged["sum(v)"] == 4.0
        assert merged["count(*)"] == 5

    def test_missing_headers_skipped(self):
        handler = DgfIndexHandler()
        values = [GFUValue(header={"sum(v)": 1.0}),
                  GFUValue(header={})]
        merged = handler._merge_headers(["sum(v)"], values)
        assert merged["sum(v)"] == 1.0

    def test_empty_values_yield_empty(self):
        handler = DgfIndexHandler()
        assert handler._merge_headers(["sum(v)"], []) == {}

    def test_avg_state_construction(self):
        handler = DgfIndexHandler()
        values = [GFUValue(header={"sum(v)": 6.0, "count(*)": 2}),
                  GFUValue(header={"sum(v)": 4.0, "count(*)": 2})]
        merged = handler._merge_headers(["avg(v)"], values)
        total, count = merged["avg(v)"]
        assert total == 10.0 and count == 4  # finalizes to 2.5
