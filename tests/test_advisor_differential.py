"""Advisor acceptance: tuning must never change answers.

Three differential proofs over :mod:`tests.harness.advisor`, each swept
across ``max_workers`` {1, 4, 8}:

* attaching the query log changes **nothing** — full fingerprint
  identity, including global I/O and KV accounting;
* an *applied* advisor report with every query pinned to the primary
  layout equals the fleetless baseline modulo exactly the layout
  bookkeeping (:func:`~tests.harness.advisor.advisor_view`);
* cost-based routing over the advisor-built fleet returns byte-identical
  logical results (:func:`~tests.harness.replicas.logical_view`), routes
  at least one query onto an advisor-built specialist, and always routes
  clustered queries to the specialist the report names.
"""

from __future__ import annotations

from repro.hdfs.layout import PRIMARY_LAYOUT
from repro.mapreduce.cluster import ExecutionConfig

from tests.harness.advisor import (ADVISOR_WORKERS, advisor_view,
                                   run_advised_workload)
from tests.harness.differential import Workload, _assert_same
from tests.harness.replicas import (chosen_layout, dyadic_rows, forced,
                                    logical_view)

METER_DDL = ("CREATE TABLE meterdata (userid bigint, regionid int, "
             "ts date, powerconsumed double)")
INDEX_SQL = ("CREATE INDEX dgf_idx ON TABLE meterdata"
             "(userid, regionid, ts) AS 'dgf' IDXPROPERTIES ("
             "'userid'='0_25', 'regionid'='0_1', 'ts'='2012-12-01_2d', "
             "'precompute'='sum(powerconsumed),count(*)')")


def point_sql(user: int, day: str) -> str:
    return (f"SELECT sum(powerconsumed), count(*) FROM meterdata "
            f"WHERE userid = {user} AND ts = '{day}'")


def wide_sql(lo: int = 0, hi: int = 79) -> str:
    return (f"SELECT sum(powerconsumed), count(*) FROM meterdata "
            f"WHERE userid >= {lo} AND userid <= {hi} "
            f"AND ts >= '2012-12-01' AND ts <= '2012-12-04'")


#: the workload the advisor learns from: a point-lookup cluster and a
#: broad-sweep cluster, deliberately wanting opposite grids.
PROLOGUE = tuple((sql, None) for sql in (
    point_sql(5, "2012-12-01"),
    point_sql(33, "2012-12-03"),
    point_sql(61, "2012-12-02"),
    wide_sql(0, 79),
    wide_sql(2, 79),
    wide_sql(0, 77),
))

#: post-advice queries: the first four repeat the learned shapes (the
#: specialist-routing assertions cover them); the last is an ordered
#: scan exercising the non-aggregation path.
MAIN = tuple((sql, None) for sql in (
    point_sql(17, "2012-12-02"),
    wide_sql(0, 79),
    point_sql(49, "2012-12-04"),
    wide_sql(1, 78),
    "SELECT userid, ts, powerconsumed FROM meterdata "
    "WHERE userid >= 30 AND userid <= 34 AND regionid >= 0 "
    "AND regionid <= 4 ORDER BY userid, ts, powerconsumed",
))
#: MAIN positions whose shapes the advisor clustered (not the scan)
CLUSTERED = (0, 1, 2, 3)


def advised_workload() -> Workload:
    return Workload(table="meterdata", ddl=METER_DDL,
                    rows=dyadic_rows(num_users=80, num_days=4),
                    queries=MAIN, index_sql=INDEX_SQL,
                    index_name="dgf_idx")


def test_observation_is_free():
    """Attaching the query log changes no observable of any query — the
    full fingerprint (rows, stats, plans, traces, global I/O and KV op
    counts) is byte-identical, at every worker count."""
    workload = advised_workload()
    baseline, _, _ = run_advised_workload(workload, PROLOGUE,
                                          observe=False)
    for workers in ADVISOR_WORKERS:
        candidate, advisor, _ = run_advised_workload(
            workload, PROLOGUE, ExecutionConfig(max_workers=workers),
            observe=True)
        _assert_same(baseline, candidate,
                     f"query log attached, max_workers={workers}")
        # the log demonstrably captured the whole run
        assert len(advisor.entries()) == len(PROLOGUE) + len(MAIN)


def test_applied_advice_is_inert_until_routed():
    """Building the advised fleet while pinning every query to the
    primary equals the fleetless run under ``advisor_view`` — advice
    only ever *adds* organizations; it cannot disturb the primary."""
    workload = advised_workload()
    pinned = forced(workload, PRIMARY_LAYOUT)
    baseline, _, _ = run_advised_workload(pinned, PROLOGUE, observe=True)
    for workers in ADVISOR_WORKERS:
        fingerprint, _, report = run_advised_workload(
            pinned, PROLOGUE, ExecutionConfig(max_workers=workers),
            observe=True, apply=True)
        assert report.layout_names(), (
            "the advisor built nothing; the comparison is vacuous")
        _assert_same(advisor_view(baseline), advisor_view(fingerprint),
                     f"advice applied, pinned primary, "
                     f"max_workers={workers}")


def test_routed_fleet_logically_identical_and_specialist_routed():
    """Cost-routing over the advisor-built fleet: byte-identical across
    worker counts, logically identical to the pinned primary, with every
    clustered query landing on its report-named specialist."""
    workload = advised_workload()
    routed, advisor, report = run_advised_workload(
        workload, PROLOGUE, observe=True, apply=True)
    for workers in ADVISOR_WORKERS:
        candidate, _, _ = run_advised_workload(
            workload, PROLOGUE, ExecutionConfig(max_workers=workers),
            observe=True, apply=True)
        _assert_same(routed, candidate,
                     f"routed advised fleet, max_workers={workers}")

    pinned, _, _ = run_advised_workload(
        forced(workload, PRIMARY_LAYOUT), PROLOGUE,
        observe=True, apply=True)
    _assert_same(logical_view(pinned), logical_view(routed),
                 "routed advised fleet vs pinned primary")

    # Routing engaged, and at least one query left the primary for an
    # advisor-built specialist.
    built = set(report.layout_names())
    routed_to = [chosen_layout(routed, position)
                 for position in range(len(MAIN))]
    assert any(choice in built for choice in routed_to), (
        f"no query ever routed to an advised layout: {routed_to}")

    # Every clustered query went exactly where the report said it
    # should: the router's cost formula IS the advisor's what-if
    # formula, so the specialists it built are the choices it makes.
    entries = advisor.entries()[len(PROLOGUE):]
    signatures = advisor._signatures(entries)
    for position in CLUSTERED:
        specialist = report.specialist_for(signatures[position])
        assert routed_to[position] == specialist, (
            f"query {position} routed to {routed_to[position]!r} but its "
            f"specialist is {specialist!r}")
