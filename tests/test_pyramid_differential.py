"""Pyramid differential suite (ISSUE 10 acceptance, satellite 3).

The aggregation pyramid is a *physical* accelerator: it replaces the
O(inner-region) header probes of the DGF aggregation path with an
O(log)-node cover, and must change **nothing else**.  This suite proves
it, via :mod:`tests.harness.pyramid`:

* a meterdata workload spanning every planner path (inner-region
  aggregation, derived avg, GROUP BY slices, ordered projection,
  partial-specification) is byte-identical pyramid on vs. off at
  ``max_workers`` {1, 4, 8}, vectorized on and off, with the GFU cache
  on and off — rows, row order, folded float aggregates, per-query
  stats including the *logical* KV accounting, plans and traces modulo
  the stripped ``pyramid:*`` observability layer;
* an appending workload keeps the identity while the incremental
  ancestor refresh runs between query windows;
* the streaming scenario keeps the identity with deltas resident
  (pre), after a partial compaction demoted cells linger (mid), and
  after full compaction repairs the pyramid (post);
* chaos composes: the streamed scenario under a seeded fault plan with
  the pyramid on equals the fault-free pyramid-less baseline modulo
  the fault + pyramid observability layers;
* the pyramid demonstrably engaged wherever the identity is claimed
  (non-vacuity guards on plans and physical op counts).
"""

import os
from dataclasses import replace

from repro.faults import FaultInjector, FaultPlan, FaultSpec, TASK_CRASH
from repro.hive.session import QueryOptions
from repro.mapreduce.cluster import ExecutionConfig

from tests.harness.differential import Workload, _assert_same, run_workload
from tests.harness.pyramid import (PYRAMID_WORKERS, assert_pyramid_equivalent,
                                   pyramid_view)
from tests.harness.streaming import (STREAM_WORKERS, run_streaming_workload,
                                     phase_rows, streaming_chaos_view)

FAULT_SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))

METER_DDL = ("CREATE TABLE meterdata (userid bigint, regionid int, "
             "ts date, powerconsumed double)")
INDEX_SQL = ("CREATE INDEX pyr_idx ON TABLE meterdata(userid, ts) "
             "AS 'dgf' IDXPROPERTIES ('userid'='0_2', "
             "'ts'='2012-12-01_1d', "
             "'precompute'='sum(powerconsumed),count(powerconsumed),"
             "count(*)')")


def dyadic_rows(num_users=64, num_days=16):
    """One row per grid cell, exact binary fractions (16-bit dyadics),
    so float folds are bit-identical however the cover associates them."""
    return [(u, u % 3, f"2012-12-{t + 1:02d}", ((u * 7 + t) % 640) / 64.0)
            for u in range(num_users) for t in range(num_days)]


#: the query battery — every planner path the pyramid could disturb.
QUERIES = tuple((sql, None) for sql in (
    # big misaligned inner region: the pyramid's home turf
    "SELECT sum(powerconsumed), count(powerconsumed) FROM meterdata "
    "WHERE userid >= 2 AND userid < 60 "
    "AND ts >= '2012-12-02' AND ts < '2012-12-15'",
    # aligned region that collapses to very few nodes
    "SELECT sum(powerconsumed), count(*) FROM meterdata "
    "WHERE userid >= 0 AND userid < 64 "
    "AND ts >= '2012-12-01' AND ts < '2012-12-09'",
    # avg derived from sum/count header components
    "SELECT avg(powerconsumed) FROM meterdata "
    "WHERE userid >= 4 AND userid < 50 "
    "AND ts >= '2012-12-03' AND ts < '2012-12-13'",
    # tiny region: all-boundary, no inner cells at all
    "SELECT sum(powerconsumed) FROM meterdata "
    "WHERE userid = 7 AND ts = '2012-12-05'",
    # partial specification: only one dimension constrained
    "SELECT count(*), sum(powerconsumed) FROM meterdata "
    "WHERE userid >= 10 AND userid < 40",
    # GROUP BY on a non-dimension column: the slices path
    "SELECT regionid, count(*), sum(powerconsumed) FROM meterdata "
    "WHERE userid >= 5 AND userid < 35 GROUP BY regionid",
    # ordered projection: no headers involved at all
    "SELECT userid, ts, powerconsumed FROM meterdata "
    "WHERE userid >= 30 AND userid < 34 "
    "AND ts >= '2012-12-04' AND ts < '2012-12-08' "
    "ORDER BY userid, ts",
))


def pyramid_workload(**overrides) -> Workload:
    spec = dict(table="meterdata", ddl=METER_DDL, rows=dyadic_rows(),
                queries=QUERIES, index_sql=INDEX_SQL,
                index_name="pyr_idx", pyramid_fanout=2)
    spec.update(overrides)
    return Workload(**spec)


def test_pyramid_on_off_byte_identical():
    """The core contract, plus non-vacuity: the pyramid demonstrably
    covered inner regions and demonstrably saved physical KV gets."""
    workload = pyramid_workload()
    flat = assert_pyramid_equivalent(workload)
    # Non-vacuity: rerun once on-pyramid and inspect the raw fingerprint.
    on = run_workload(workload)
    covered = [position for position in range(len(QUERIES))
               if on[f"query:{position}"]["plan"]["index"]
               .get("pyramid_nodes")]
    assert covered, "no query ever used a pyramid node"
    assert 0 in covered and 1 in covered
    assert on["kv_ops"]["gets"] < flat["kv_ops"]["gets"], (
        "pyramid run did not reduce physical KV gets")


def test_pyramid_with_appends():
    """Appends between query windows exercise the incremental ancestor
    refresh; the identity must survive it."""
    extra = [(200, 1, "2012-12-07", 80 / 64.0),   # beyond the built extent
             (7, 2, "2012-12-03", 0.5),           # inside an inner cell
             (33, 0, "2012-12-20", 1.25)]         # new ts label
    assert_pyramid_equivalent(pyramid_workload(append_rows=tuple(extra)))


def test_pyramid_streaming_phases():
    """Streaming deltas pre / mid (partial compaction) / post (full):
    the pyramid run equals the pyramid-less run in every phase, at every
    worker count, with demotion active while cells are resident."""
    baseline = pyramid_view(run_streaming_workload())
    for workers in STREAM_WORKERS:
        candidate = run_streaming_workload(
            ExecutionConfig(max_workers=workers), pyramid=True)
        _assert_same(baseline, pyramid_view(candidate),
                     f"streaming pyramid max_workers={workers}")
    cached = run_streaming_workload(cache=True, pyramid=True)
    _assert_same(baseline, pyramid_view(cached),
                 "streaming pyramid cache=True")
    # Row content is stable across the three physical states too.
    pyramid_run = run_streaming_workload(pyramid=True)
    for phase in ("mid", "post"):
        assert phase_rows(pyramid_run, phase) == \
            phase_rows(pyramid_run, "pre")


def test_pyramid_streaming_chaos():
    """Mid-query faults compose: chaos + streaming + pyramid equals the
    fault-free pyramid-less baseline modulo the fault and pyramid
    observability layers; injections agree across worker counts."""
    plan = FaultPlan(seed=FAULT_SEED,
                     task_crash_rate=0.25,
                     task_straggler_rate=0.2,
                     kv_timeout_rate=0.15,
                     dead_datanodes=(2,),
                     scheduled=(FaultSpec(kind=TASK_CRASH, task_kind="map",
                                          task_id=0, attempt=0),))
    baseline = pyramid_view(streaming_chaos_view(run_streaming_workload()))
    registries = []
    for workers in STREAM_WORKERS:
        injector = FaultInjector(plan)
        fingerprint = run_streaming_workload(
            ExecutionConfig(max_workers=workers), faults=injector,
            pyramid=True)
        _assert_same(baseline,
                     pyramid_view(streaming_chaos_view(fingerprint)),
                     f"streaming chaos pyramid max_workers={workers}")
        registries.append(injector.registry)
    first = registries[0]
    assert sum(first.injected_counts().values()) > 0, (
        "chaos runs injected nothing; the comparison is vacuous")
    for registry in registries[1:]:
        assert registry.injected_counts() == first.injected_counts()
        assert registry.recovery_counts() == first.recovery_counts()


def test_pyramid_workload_chaos():
    """Chaos over the batch workload with the pyramid on: byte-identical
    to the fault-free pyramid-less run modulo fault spans, ``fs_io``
    (re-executed attempts re-read bytes) and the pyramid layer."""
    from tests.harness.chaos import chaos_view
    workload = pyramid_workload()
    flat = run_workload(replace(workload, pyramid_fanout=None))
    baseline = pyramid_view(chaos_view(flat))
    plan = FaultPlan(seed=FAULT_SEED + 1, task_crash_rate=0.2,
                     task_straggler_rate=0.15, kv_timeout_rate=0.1,
                     dead_datanodes=(1,))
    for workers in (1, 8):
        injector = FaultInjector(plan)
        fingerprint = run_workload(
            workload, ExecutionConfig(max_workers=workers),
            faults=injector)
        _assert_same(baseline, pyramid_view(chaos_view(fingerprint)),
                     f"pyramid chaos max_workers={workers}")


def test_forced_off_option_composes_with_mixed_batteries():
    """A battery mixing per-query pyramid on/off options still matches
    the flat baseline — the knob is per-query, not per-session."""
    mixed = tuple(
        (sql, QueryOptions(dgf_pyramid=(position % 2 == 0)))
        for position, (sql, _options) in enumerate(QUERIES))
    workload = pyramid_workload(queries=mixed)
    flat = run_workload(replace(workload, pyramid_fanout=None))
    for workers in PYRAMID_WORKERS:
        candidate = run_workload(workload,
                                 ExecutionConfig(max_workers=workers))
        _assert_same(pyramid_view(flat), pyramid_view(candidate),
                     f"mixed on/off battery max_workers={workers}")
        for position in range(len(QUERIES)):
            nodes = candidate[f"query:{position}"]["plan"]["index"] \
                .get("pyramid_nodes", 0)
            if position % 2 == 1:
                assert nodes == 0, (
                    f"query {position} forced off but used the pyramid")
