"""Tests for slice->split mapping and the slice-skipping record reader."""

import pytest

from repro.core.dgf.gfu import GFUValue, SliceLocation
from repro.core.dgf.inputformat import (DgfSliceInputFormat, merge_ranges,
                                        slices_to_splits)
from repro.hdfs.filesystem import HDFS
from repro.hive.metastore import TableInfo
from repro.storage.schema import DataType, Schema
from repro.storage.textfile import TextFileWriter


class TestMergeRanges:
    def test_disjoint_sorted(self):
        assert merge_ranges([(10, 20), (0, 5)]) == [(0, 5), (10, 20)]

    def test_adjacent_coalesce(self):
        assert merge_ranges([(0, 5), (5, 9)]) == [(0, 9)]

    def test_overlapping(self):
        assert merge_ranges([(0, 7), (3, 10)]) == [(0, 10)]

    def test_empty_ranges_dropped(self):
        assert merge_ranges([(5, 5), (1, 2)]) == [(1, 2)]


class TestSliceLocation:
    def test_overlap_and_clip(self):
        location = SliceLocation(file="/f", start=10, end=30)
        assert location.overlaps(20, 40)
        assert not location.overlaps(30, 40)
        clipped = location.clip(20, 25)
        assert (clipped.start, clipped.end) == (20, 25)
        assert location.length == 20

    def test_gfu_value_merge(self):
        from repro.hive.aggregates import SumAgg
        a = GFUValue(header={"sum(v)": 1.0},
                     locations=[SliceLocation("/f", 0, 10)], records=2)
        b = GFUValue(header={"sum(v)": 2.5},
                     locations=[SliceLocation("/g", 0, 4)], records=1)
        a.merge(b, {"sum(v)": SumAgg()})
        assert a.header["sum(v)"] == 3.5
        assert len(a.locations) == 2
        assert a.records == 3


@pytest.fixture
def sliced_table():
    """A text table whose file has three known slices."""
    fs = HDFS(num_datanodes=2, block_size=300)
    schema = Schema.of(("k", DataType.INT), ("v", DataType.STRING))
    table = TableInfo(name="t", schema=schema)
    fs.mkdirs(table.location)
    path = f"{table.location}/g000-00000_0"
    slices = []
    with fs.create(path) as stream:
        writer = TextFileWriter(stream, schema)
        for gfu in range(3):
            start = writer.pos
            for i in range(12):
                writer.write_row((gfu * 100 + i, f"row-{gfu}-{i}"))
            slices.append(SliceLocation(path, start, writer.pos))
    return fs, table, slices


class TestSlicesToSplits:
    def test_chosen_splits_carry_clipped_ranges(self, sliced_table):
        fs, table, slices = sliced_table
        chosen, total = slices_to_splits(fs, table, [slices[0], slices[2]])
        assert total == len(fs.status(slices[0].file).blocks)
        assert 0 < len(chosen) <= total
        covered = merge_ranges(
            [r for split in chosen
             for r in split.meta["slices"]])
        expected = merge_ranges([(slices[0].start, slices[0].end),
                                 (slices[2].start, slices[2].end)])
        assert covered == expected
        for split in chosen:
            for start, end in split.meta["slices"]:
                assert split.start <= start < end <= split.end

    def test_no_slices_no_splits(self, sliced_table):
        fs, table, _ = sliced_table
        assert slices_to_splits(fs, table, []) == ([], 0) \
            or slices_to_splits(fs, table, [])[0] == []

    def test_slice_spanning_splits_is_divided(self, sliced_table):
        """A slice crossing a block boundary is split between mappers with
        no row lost or duplicated."""
        fs, table, slices = sliced_table
        spanning = [s for s in slices
                    if s.start // fs.block_size != (s.end - 1)
                    // fs.block_size]
        assert spanning, "fixture should produce a block-spanning slice"
        target = spanning[0]
        chosen, _ = slices_to_splits(fs, table, [target])
        assert len(chosen) >= 2
        fmt = DgfSliceInputFormat(table)
        rows = []
        for split in chosen:
            rows.extend(r for _, r in fmt.read_split(fs, split))
        assert len(rows) == 12
        assert len(set(rows)) == 12


class TestSliceReader:
    def test_reads_exactly_slice_rows(self, sliced_table):
        fs, table, slices = sliced_table
        chosen, _ = slices_to_splits(fs, table, [slices[1]])
        fmt = DgfSliceInputFormat(table)
        rows = [r for split in chosen
                for _, r in fmt.read_split(fs, split)]
        assert sorted(k for k, _ in rows) \
            == [100 + i for i in range(12)]

    def test_skips_margins_between_slices(self, sliced_table):
        fs, table, slices = sliced_table
        chosen, _ = slices_to_splits(fs, table, [slices[0], slices[2]])
        fmt = DgfSliceInputFormat(table)
        keys = sorted(k for split in chosen
                      for _, (k, _v) in fmt.read_split(fs, split))
        assert keys == [i for i in range(12)] \
            + [200 + i for i in range(12)]

    def test_empty_meta_reads_nothing(self, sliced_table):
        fs, table, slices = sliced_table
        chosen, _ = slices_to_splits(fs, table, [slices[0]])
        split = chosen[0]
        split.meta.pop("slices")
        fmt = DgfSliceInputFormat(table)
        assert list(fmt.read_split(fs, split)) == []

    def test_rcfile_slices(self):
        """Slices over an RCFile table align with row groups."""
        from repro.hive import formats
        fs = HDFS(num_datanodes=2, block_size=4096)
        schema = Schema.of(("k", DataType.INT), ("v", DataType.STRING))
        table = TableInfo(name="rc", schema=schema, stored_as="RCFILE")
        fs.mkdirs(table.location)
        path = f"{table.location}/f0"
        from repro.storage.rcfile import RCFileWriter
        slices = []
        with fs.create(path) as stream:
            writer = RCFileWriter(stream, schema, row_group_size=1000)
            for gfu in range(3):
                writer.flush()
                start = writer.pos
                for i in range(5):
                    writer.write_row((gfu * 10 + i, "x"))
                writer.flush()
                slices.append(SliceLocation(path, start, writer.pos))
        chosen, _ = slices_to_splits(fs, table, [slices[1]])
        fmt = DgfSliceInputFormat(table)
        keys = [k for split in chosen
                for _, (k, _v) in fmt.read_split(fs, split)]
        assert sorted(keys) == [10, 11, 12, 13, 14]


class TestConcurrentGetSplits:
    """Two sessions filtering splits for the same table at once (the
    parallel engine's getSplits path) must interfere with neither each
    other nor a sequential caller."""

    def test_concurrent_slices_to_splits_match_sequential(self,
                                                          sliced_table):
        from concurrent.futures import ThreadPoolExecutor

        fs, table, slices = sliced_table
        requests = [[slices[0], slices[2]], [slices[1]]] * 4

        def fingerprint(request):
            chosen, total = slices_to_splits(fs, table, request)
            return total, [(s.path, s.start, s.length,
                            tuple(s.meta["slices"])) for s in chosen]

        sequential = [fingerprint(request) for request in requests]
        with ThreadPoolExecutor(max_workers=2) as pool:
            concurrent = list(pool.map(fingerprint, requests))
        assert concurrent == sequential

    def test_concurrent_readers_share_splits(self, sliced_table):
        """Splits computed once can be read by two threads concurrently
        (fresh reader state per read_split call)."""
        from concurrent.futures import ThreadPoolExecutor

        fs, table, slices = sliced_table
        chosen, _ = slices_to_splits(fs, table, list(slices))
        fmt = DgfSliceInputFormat(table)

        def read_all():
            return sorted(k for split in chosen
                          for _, (k, _v) in fmt.read_split(fs, split))

        expected = read_all()
        with ThreadPoolExecutor(max_workers=2) as pool:
            results = [pool.submit(read_all) for _ in range(4)]
            assert all(f.result() == expected for f in results)

    def test_two_sessions_same_table_parallel_queries(self):
        """Full-stack version: two HiveSessions over identical data run
        indexed queries concurrently; answers match the sequential run."""
        from concurrent.futures import ThreadPoolExecutor

        from repro.mapreduce.cluster import ExecutionConfig
        from tests.conftest import METER_DDL, make_session, meter_rows

        sql = ("SELECT sum(powerconsumed), count(*) FROM meterdata "
               "WHERE userid >= 10 AND userid < 40 AND regionid >= 0 "
               "AND regionid <= 2 AND ts >= '2012-12-01' "
               "AND ts <= '2012-12-04'")

        def build_session():
            session = make_session(
                block_size=2048,
                execution=ExecutionConfig(max_workers=4))
            session.execute(METER_DDL)
            session.load_rows("meterdata", meter_rows())
            session.execute(
                "CREATE INDEX d ON TABLE meterdata(userid, regionid, ts) "
                "AS 'dgf' IDXPROPERTIES ('userid'='0_25', "
                "'regionid'='0_1', 'ts'='2012-12-01_2d', "
                "'precompute'='sum(powerconsumed),count(*)')")
            return session

        baseline = build_session().execute(sql).rows
        sessions = [build_session(), build_session()]
        with ThreadPoolExecutor(max_workers=2) as pool:
            futures = [pool.submit(s.execute, sql) for s in sessions]
            for future in futures:
                assert future.result().rows == baseline
