"""Tests for the inner/boundary grid decomposition (Algorithm 3's core)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dgf.grid import estimate_cells, search_grid
from repro.core.dgf.policy import DimensionPolicy, SplittingPolicy
from repro.hiveql.predicates import Interval
from repro.storage.schema import DataType


@pytest.fixture
def policy():
    return SplittingPolicy([
        DimensionPolicy(name="A", dtype=DataType.BIGINT, origin=1,
                        interval=3),
        DimensionPolicy(name="B", dtype=DataType.BIGINT, origin=11,
                        interval=2),
    ])


#: bounds matching the paper's Figure 5 data space (A in 1..13, B in 11..19)
PAPER_BOUNDS = {"a": (0, 3), "b": (0, 3)}


class TestPaperExample:
    def test_listing2_query_region(self, policy):
        """Listing 2 / Figure 7: A in [5, 12), B in [12, 16).  The inner
        region is {7 <= A < 10, 13 <= B < 15} = GFU '7_13'; everything else
        overlapping is boundary."""
        intervals = {"a": Interval(low=5, high=12),
                     "b": Interval(low=12, high=16)}
        result = search_grid(policy, intervals, PAPER_BOUNDS)
        assert result.inner_keys == ["7_13"]
        assert set(result.boundary_keys) == {
            "4_11", "4_13", "4_15", "7_11", "7_15",
            "10_11", "10_13", "10_15"}

    def test_point_query_has_no_inner(self, policy):
        """Paper: 'In point query case, there is no inner GFU'."""
        intervals = {"a": Interval.point(8), "b": Interval.point(14)}
        result = search_grid(policy, intervals, PAPER_BOUNDS)
        assert result.inner_keys == []
        assert result.boundary_keys == ["7_13"]

    def test_cell_aligned_query_is_all_inner(self, policy):
        intervals = {"a": Interval(low=4, high=10),
                     "b": Interval(low=13, high=15)}
        result = search_grid(policy, intervals, PAPER_BOUNDS)
        assert sorted(result.inner_keys) == ["4_13", "7_13"]
        assert result.boundary_keys == []


class TestMissingDimensions:
    def test_unconstrained_dimension_spans_bounds(self, policy):
        intervals = {"a": Interval(low=4, high=10), "b": None}
        result = search_grid(policy, intervals, PAPER_BOUNDS)
        # a-cells 1..2 fully covered; b unconstrained -> covered everywhere
        assert len(result.inner_keys) == 2 * 4
        assert result.boundary_keys == []

    def test_bounds_clamp_the_search(self, policy):
        intervals = {"a": Interval(low=-100, high=100), "b": None}
        result = search_grid(policy, intervals, {"a": (1, 2), "b": (0, 0)})
        assert result.num_cells == 2


class TestEdgeCases:
    def test_empty_interval(self, policy):
        intervals = {"a": Interval(low=9, high=5), "b": None}
        result = search_grid(policy, intervals, PAPER_BOUNDS)
        assert result.empty
        assert result.all_keys == []

    def test_region_outside_bounds(self, policy):
        intervals = {"a": Interval(low=1000), "b": None}
        assert search_grid(policy, intervals, PAPER_BOUNDS).empty

    def test_force_all_boundary(self, policy):
        """Non-aggregation queries treat every query cell as boundary."""
        intervals = {"a": Interval(low=4, high=10),
                     "b": Interval(low=13, high=15)}
        result = search_grid(policy, intervals, PAPER_BOUNDS,
                             force_all_boundary=True)
        assert result.inner_keys == []
        assert sorted(result.boundary_keys) == ["4_13", "7_13"]

    def test_estimate_cells(self, policy):
        intervals = {"a": Interval(low=5, high=12),
                     "b": Interval(low=12, high=16)}
        assert estimate_cells(policy, intervals, PAPER_BOUNDS) == 9
        assert estimate_cells(policy, {"a": Interval(low=99, high=1),
                                       "b": None}, PAPER_BOUNDS) == 0


@settings(max_examples=80, deadline=None)
@given(a_lo=st.integers(0, 30), a_width=st.integers(0, 20),
       b_lo=st.integers(0, 30), b_width=st.integers(0, 20),
       value_a=st.integers(0, 40), value_b=st.integers(0, 40))
def test_property_decomposition_is_sound(a_lo, a_width, b_lo,
                                         b_width, value_a, value_b):
    policy = SplittingPolicy([
        DimensionPolicy(name="A", dtype=DataType.BIGINT, origin=1,
                        interval=3),
        DimensionPolicy(name="B", dtype=DataType.BIGINT, origin=11,
                        interval=2),
    ])
    """For any query box and any point: if the point matches the predicate
    its cell is inner or boundary; if its cell is inner, the point matches.
    This is exactly the invariant that makes answering the inner region
    from pre-computed headers correct."""
    intervals = {
        "a": Interval(low=a_lo, high=a_lo + a_width),
        "b": Interval(low=b_lo, high=b_lo + b_width),
    }
    bounds = {"a": (-5, 20), "b": (-10, 20)}
    result = search_grid(policy, intervals, bounds)
    key = policy.key_of_row((value_a, value_b))
    matches = (intervals["a"].contains(value_a)
               and intervals["b"].contains(value_b))
    in_bounds = all(
        lo <= dim.cell_of(v) <= hi
        for dim, v, (lo, hi) in zip(
            policy.dimensions, (value_a, value_b),
            (bounds["a"], bounds["b"])))
    if matches and in_bounds:
        assert key in result.inner_keys or key in result.boundary_keys
    if key in result.inner_keys:
        assert matches
