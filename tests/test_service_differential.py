"""Service-level differential tests (ISSUE acceptance).

Every workload here is replayed through :func:`assert_service_equivalent`:
the direct cache-off session is the baseline, and the candidates are the
direct cached session plus the concurrent :class:`QueryService` at
concurrency 1/4/8, cache off and on.  All per-query observables — rows,
stats, simulated seconds, normalized traces, structured plans — must be
byte-identical; only *physical* KV op counts may differ (that is the
cache working).
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings

from tests.conftest import SCAN
from tests.harness.differential import (Workload, assert_service_equivalent,
                                        run_service_workload, run_workload,
                                        _query_view)
from tests.test_engine_equivalence import (METER_DDL, index_sql, mdrq_sql,
                                           mdrq_workloads, stress_rows)

AGG = ("SELECT sum(powerconsumed), count(*) FROM meterdata "
       "WHERE userid >= 10 AND userid < 60 "
       "AND ts >= '2012-12-02' AND ts <= '2012-12-05'")


def _stress_workload(queries) -> Workload:
    return Workload(table="meterdata", ddl=METER_DDL, rows=stress_rows(),
                    queries=tuple(queries), index_sql=index_sql(10),
                    index_name="d")


def test_repeated_mdrq_equivalent_across_service_and_cache():
    """The warm-cache path (same MDRQ over and over — the service's hot
    case) must be observably identical to the cold path."""
    predicate = {"u_lo": 5, "u_width": 30, "r_lo": 0, "r_width": 4,
                 "d_lo": 1, "d_width": 3}
    agg = mdrq_sql("sum(powerconsumed), count(*)", predicate)
    assert_service_equivalent(
        _stress_workload([(agg, None)] * 6 + [(agg, SCAN)]))


def test_mixed_planner_paths_equivalent_under_service():
    """Header path, slice path, scan and group-by interleaving on the
    worker pool must not disturb each other's observables."""
    predicate = {"u_lo": 0, "u_width": 45, "r_lo": 0, "r_width": 2,
                 "d_lo": 0, "d_width": 5}
    agg = mdrq_sql("sum(powerconsumed), count(*)", predicate)
    grouped = (mdrq_sql("ts, sum(powerconsumed)", predicate)
               + " GROUP BY ts")
    projection = mdrq_sql("userid, powerconsumed", predicate)
    baseline = assert_service_equivalent(_stress_workload(
        [(agg, None), (grouped, None), (projection, None), (agg, SCAN),
         (AGG, None), (agg, None)]))
    assert baseline["query:0"]["index_used"]
    assert not baseline["query:3"]["index_used"]


def test_append_workload_equivalent_under_service():
    """Appends run before the fan-out; the merged headers the queries see
    must be identical with the cache invalidation path in play."""
    append = tuple((userid, userid % 5, "2012-12-07", 1.5)
                   for userid in range(25))
    predicate = {"u_lo": 0, "u_width": 40, "r_lo": 0, "r_width": 4,
                 "d_lo": 2, "d_width": 5}
    agg = mdrq_sql("sum(powerconsumed), count(*)", predicate)
    workload = Workload(
        table="meterdata", ddl=METER_DDL, rows=stress_rows(),
        queries=((agg, None), (agg, None), (agg, SCAN)),
        index_sql=index_sql(10, precompute="sum(powerconsumed)"),
        index_name="d", append_rows=append)
    baseline = assert_service_equivalent(workload)
    assert (baseline["query:0"]["rows"][0][1]
            == baseline["query:2"]["rows"][0][1])


def test_warm_cache_eliminates_physical_reads_but_not_observables():
    """Direct evidence the comparison is meaningful: the cached service
    run really did fewer physical KV reads than the uncached baseline,
    while the compared views matched exactly."""
    predicate = {"u_lo": 5, "u_width": 30, "r_lo": 0, "r_width": 4,
                 "d_lo": 1, "d_width": 3}
    agg = mdrq_sql("sum(powerconsumed), count(*)", predicate)
    workload = _stress_workload([(agg, None)] * 8)
    baseline = run_workload(workload, cache=False)
    cached = run_workload(workload, cache=True)
    assert _query_view(cached) == _query_view(baseline)
    assert cached["kv_ops"]["gets"] < baseline["kv_ops"]["gets"]
    # the logical per-query trace still reports the same kv.gets
    assert (cached["query:7"]["trace"] == baseline["query:7"]["trace"])


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(workload=mdrq_workloads())
def test_generated_workloads_equivalent_under_service(workload):
    """Generated MDRQ workloads (every planner path) through the service
    at concurrency 1/4/8, cache on and off."""
    assert_service_equivalent(workload, concurrency_levels=(1, 4))


def test_service_workload_runs_at_high_concurrency():
    """More workers than statements is fine (idle workers just exit)."""
    fingerprint = run_service_workload(
        _stress_workload([(AGG, None)]), concurrency=8, cache=True)
    assert fingerprint["query:0"]["rows"]
