"""Tests for expression compilation and NULL semantics."""

import pytest

from repro.errors import SemanticError
from repro.hiveql import parse_expression
from repro.hiveql.evaluator import (ColumnResolver, compile_expr,
                                    predicate_fn)
from repro.storage.schema import DataType, Schema


@pytest.fixture
def resolver(simple_schema):
    return ColumnResolver.for_schema(simple_schema, "t")


def ev(text, resolver, row):
    return compile_expr(parse_expression(text), resolver)(row)


class TestBasics:
    def test_literal(self, resolver):
        assert ev("42", resolver, ()) == 42

    def test_column(self, resolver):
        assert ev("b", resolver, (1, 2.5, "x")) == 2.5

    def test_qualified_column(self, resolver):
        assert ev("t.c", resolver, (1, 2.5, "x")) == "x"

    def test_unknown_column(self, resolver):
        with pytest.raises(SemanticError):
            compile_expr(parse_expression("zz"), resolver)

    def test_arithmetic(self, resolver):
        assert ev("a * 2 + b", resolver, (3, 0.5, "")) == 6.5

    def test_division_by_zero_is_null(self, resolver):
        assert ev("a / 0", resolver, (3, 0.0, "")) is None

    def test_modulo(self, resolver):
        assert ev("a % 3", resolver, (7, 0.0, "")) == 1

    def test_unary_minus(self, resolver):
        assert ev("-a", resolver, (3, 0.0, "")) == -3


class TestComparisons:
    def test_numeric(self, resolver):
        assert ev("a >= 3", resolver, (3, 0.0, "")) is True
        assert ev("a > 3", resolver, (3, 0.0, "")) is False

    def test_string_dates_compare_chronologically(self, resolver):
        row = (1, 0.0, "2012-12-05")
        assert ev("c > '2012-12-01'", resolver, row) is True
        assert ev("c < '2012-12-31'", resolver, row) is True

    def test_between_inclusive(self, resolver):
        assert ev("a BETWEEN 1 AND 5", resolver, (5, 0.0, "")) is True
        assert ev("a BETWEEN 1 AND 5", resolver, (6, 0.0, "")) is False

    def test_in_list(self, resolver):
        assert ev("a IN (1, 3, 5)", resolver, (3, 0.0, "")) is True
        assert ev("a IN (1, 3, 5)", resolver, (2, 0.0, "")) is False


class TestNullSemantics:
    def test_comparison_with_null(self, resolver):
        assert ev("a > 1", resolver, (None, 0.0, "")) is None

    def test_and_short_circuit(self, resolver):
        # NULL AND FALSE = FALSE, NULL AND TRUE = NULL (three-valued)
        assert ev("a > 1 AND b > 100", resolver, (None, 0.0, "")) is False
        assert ev("a > 1 AND b < 100", resolver, (None, 0.0, "")) is None

    def test_or_short_circuit(self, resolver):
        assert ev("a > 1 OR b < 100", resolver, (None, 0.0, "")) is True
        assert ev("a > 1 OR b > 100", resolver, (None, 0.0, "")) is None

    def test_not_null(self, resolver):
        assert ev("NOT a > 1", resolver, (None, 0.0, "")) is None

    def test_predicate_fn_treats_null_as_false(self, resolver):
        predicate = predicate_fn(parse_expression("a > 1"), resolver)
        assert predicate((None, 0.0, "")) is False
        assert predicate((2, 0.0, "")) is True

    def test_predicate_fn_none_clause(self, resolver):
        assert predicate_fn(None, resolver)((1, 1.0, "x")) is True


class TestScalarFunctions:
    def test_abs_round(self, resolver):
        assert ev("abs(-3)", resolver, ()) == 3
        assert ev("round(b)", resolver, (0, 2.6, "")) == 3

    def test_string_functions(self, resolver):
        row = (0, 0.0, "AbC")
        assert ev("lower(c)", resolver, row) == "abc"
        assert ev("upper(c)", resolver, row) == "ABC"
        assert ev("length(c)", resolver, row) == 3

    def test_date_parts(self, resolver):
        row = (0, 0.0, "2012-12-30")
        assert ev("year(c)", resolver, row) == 2012
        assert ev("month(c)", resolver, row) == 12
        assert ev("day(c)", resolver, row) == 30

    def test_unknown_function(self, resolver):
        with pytest.raises(SemanticError):
            compile_expr(parse_expression("frobnicate(a)"), resolver)

    def test_aggregate_in_scalar_context_rejected(self, resolver):
        with pytest.raises(SemanticError):
            compile_expr(parse_expression("sum(a)"), resolver)


class TestResolver:
    def test_ambiguous_bare_name(self):
        left = Schema.of(("id", DataType.INT), ("v", DataType.INT))
        right = Schema.of(("id", DataType.INT), ("w", DataType.INT))
        resolver = ColumnResolver.for_schema(left, "l")
        resolver.add_schema(right, "r", offset=2)
        with pytest.raises(SemanticError):
            compile_expr(parse_expression("id"), resolver)
        # qualified access still works
        assert ev("l.id", resolver, (1, 2, 3, 4)) == 1
        assert ev("r.id", resolver, (1, 2, 3, 4)) == 3

    def test_try_resolve(self, resolver):
        from repro.hiveql import ast
        assert resolver.try_resolve(ast.ColumnRef(name="a")) == 0
        assert resolver.try_resolve(ast.ColumnRef(name="zz")) is None


class TestLike:
    def test_percent_wildcard(self, resolver):
        row = (0, 0.0, "user_0042")
        assert ev("c LIKE 'user%'", resolver, row) is True
        assert ev("c LIKE '%42'", resolver, row) is True
        assert ev("c LIKE 'admin%'", resolver, row) is False

    def test_underscore_wildcard(self, resolver):
        row = (0, 0.0, "abc")
        assert ev("c LIKE 'a_c'", resolver, row) is True
        assert ev("c LIKE 'a_d'", resolver, row) is False

    def test_regex_metacharacters_are_literal(self, resolver):
        row = (0, 0.0, "a.c")
        assert ev("c LIKE 'a.c'", resolver, row) is True
        row2 = (0, 0.0, "abc")
        assert ev("c LIKE 'a.c'", resolver, row2) is False

    def test_null_semantics(self, resolver):
        assert ev("c LIKE 'x%'", resolver, (0, 0.0, None)) is None

    def test_like_in_where_clause(self, meter_session):
        """LIKE works end to end through the session (residual filter)."""
        from repro.hive.session import QueryOptions
        result = meter_session.execute(
            "SELECT count(*) FROM meterdata WHERE ts LIKE '2012-12-0_'",
            QueryOptions(use_index=False))
        assert result.scalar() == 1200  # all six days match 2012-12-0_
