"""Unit tests for the fault-injection subsystem (repro.faults)."""

import pytest

from repro.errors import KVStoreTimeout, TransientError
from repro.faults import (DATANODE_DEAD, KV_RETRY, KV_TIMEOUT,
                          REPLICA_FAILOVER, SPECULATIVE_WIN, TASK_CRASH,
                          TASK_RETRY, TASK_STRAGGLER, FaultInjector,
                          FaultPlan, FaultRegistry, FaultSpec, RetryPolicy)
from repro.mapreduce.cluster import PAPER_CLUSTER
from repro.obs.metrics import MetricsRegistry


class TestRetryPolicy:
    def test_defaults(self):
        policy = RetryPolicy()
        assert policy.max_task_attempts == 4
        assert policy.max_kv_attempts == 3
        assert policy.speculative_execution

    def test_backoff_is_exponential(self):
        policy = RetryPolicy(backoff_base_seconds=1.0, backoff_factor=2.0)
        assert policy.backoff_seconds(1) == 1.0
        assert policy.backoff_seconds(2) == 2.0
        assert policy.backoff_seconds(3) == 4.0
        assert policy.backoff_seconds(0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_task_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(max_kv_attempts=0)


class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(task_crash_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(kv_timeout_rate=-0.1)

    def test_decisions_are_deterministic(self):
        plan = FaultPlan(seed=3, task_crash_rate=0.5,
                         task_straggler_rate=0.5, kv_timeout_rate=0.5)
        for _ in range(3):
            crashes = [plan.task_crash_point("job", "map", t, 0)
                       for t in range(50)]
            assert crashes == [plan.task_crash_point("job", "map", t, 0)
                               for t in range(50)]
            stragglers = [plan.is_straggler("job", "map", t)
                          for t in range(50)]
            assert stragglers == [plan.is_straggler("job", "map", t)
                                  for t in range(50)]
            timeouts = [plan.kv_times_out("get", f"k{i}", 0)
                        for i in range(50)]
            assert timeouts == [plan.kv_times_out("get", f"k{i}", 0)
                                for i in range(50)]
        # rates around 0.5 must actually produce both outcomes
        assert any(c is not None for c in crashes)
        assert any(c is None for c in crashes)
        assert any(stragglers) and not all(stragglers)
        assert any(timeouts) and not all(timeouts)

    def test_seed_changes_decisions(self):
        base = FaultPlan(seed=0, task_crash_rate=0.5)
        other = base.with_seed(99)
        decisions = lambda plan: [  # noqa: E731 - tiny local helper
            plan.task_crash_point("job", "map", t, 0) for t in range(64)]
        assert decisions(base) == decisions(base)
        assert decisions(base) != decisions(other)

    def test_probabilistic_faults_hit_first_attempt_only(self):
        plan = FaultPlan(seed=1, task_crash_rate=1.0, kv_timeout_rate=1.0)
        assert plan.task_crash_point("j", "map", 0, 0) is not None
        assert plan.task_crash_point("j", "map", 0, 1) is None
        assert plan.kv_times_out("get", "k", 0)
        assert not plan.kv_times_out("get", "k", 1)

    def test_reduce_crashes_only_at_startup(self):
        plan = FaultPlan(seed=2, task_crash_rate=1.0)
        for task in range(20):
            assert plan.task_crash_point("j", "reduce", task, 0) == 0

    def test_stragglers_are_map_only(self):
        plan = FaultPlan(seed=2, task_straggler_rate=1.0)
        assert plan.is_straggler("j", "map", 0)
        assert not plan.is_straggler("j", "reduce", 0)

    def test_scheduled_spec_matching(self):
        spec = FaultSpec(kind=TASK_CRASH, job="build", task_kind="map",
                        task_id=1, attempt=0, times=2)
        assert spec.matches_task(TASK_CRASH, "dgf-build", "map", 1, 0)
        assert spec.matches_task(TASK_CRASH, "dgf-build", "map", 1, 1)
        assert not spec.matches_task(TASK_CRASH, "dgf-build", "map", 1, 2)
        assert not spec.matches_task(TASK_CRASH, "dgf-build", "map", 2, 0)
        assert not spec.matches_task(TASK_CRASH, "other", "map", 1, 0)
        assert not spec.matches_task(TASK_STRAGGLER, "dgf-build", "map", 1, 0)

    def test_scheduled_kv_spec(self):
        spec = FaultSpec(kind=KV_TIMEOUT, op="get", key="k1")
        plan = FaultPlan(scheduled=(spec,))
        assert plan.kv_times_out("get", "k1", 0)
        assert not plan.kv_times_out("get", "k2", 0)
        assert not plan.kv_times_out("put", "k1", 0)

    def test_spec_kind_validated(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="meteor_strike")


class TestFaultRegistry:
    def test_counts_and_events(self):
        registry = FaultRegistry()
        registry.record_fault(TASK_CRASH, "j/map[0]", attempt=0)
        registry.record_fault(KV_TIMEOUT, "get:k")
        registry.record_recovery(TASK_RETRY, "j/map[0]", attempt=1)
        assert registry.injected_counts() == {TASK_CRASH: 1, KV_TIMEOUT: 1}
        assert registry.recovery_counts() == {TASK_RETRY: 1}
        assert registry.total_injected() == 2
        assert registry.total_recovered() == 1
        assert len(registry.events_of(TASK_CRASH)) == 1
        assert registry.summary() == {
            "injected": {TASK_CRASH: 1, KV_TIMEOUT: 1},
            "recovered": {TASK_RETRY: 1}}

    def test_metrics_mirroring(self):
        metrics = MetricsRegistry()
        registry = FaultRegistry(metrics=metrics)
        registry.record_fault(DATANODE_DEAD, "datanode-1")
        registry.record_recovery(REPLICA_FAILOVER, "block-0")
        assert metrics.counter("faults_injected_total", "").value(
            kind=DATANODE_DEAD) == 1
        assert metrics.counter("fault_recoveries_total", "").value(
            kind=REPLICA_FAILOVER) == 1

    def test_recovery_overhead_ledger(self):
        registry = FaultRegistry()
        registry.add_backoff(3.0)
        registry.record_recovery(TASK_RETRY, "j/map[0]", attempt=1)
        registry.record_recovery(SPECULATIVE_WIN, "j/map[1]", attempt=1)
        registry.record_recovery(KV_RETRY, "get:k", attempt=1)
        assert registry.reexecuted_tasks == 2
        overhead = registry.recovery_overhead_seconds(PAPER_CLUSTER)
        expected = (3.0 + 2 * PAPER_CLUSTER.task_startup_seconds
                    + PAPER_CLUSTER.kv_get_seconds)
        assert overhead == pytest.approx(expected)


class TestFaultInjector:
    def test_kv_gate_recovers_within_budget(self):
        plan = FaultPlan(scheduled=(
            FaultSpec(kind=KV_TIMEOUT, op="get", key="k", times=2),),
            policy=RetryPolicy(max_kv_attempts=3))
        injector = FaultInjector(plan)
        assert injector.kv_gate("get", "k") == 2
        counts = injector.registry.injected_counts()
        assert counts[KV_TIMEOUT] == 2
        assert injector.registry.recovery_counts()[KV_RETRY] == 1
        # backoff for retries 1 and 2: 1s + 2s
        assert injector.registry.backoff_seconds == pytest.approx(3.0)

    def test_kv_gate_exhaustion_raises_transient(self):
        plan = FaultPlan(scheduled=(
            FaultSpec(kind=KV_TIMEOUT, op="get", key="k", times=5),),
            policy=RetryPolicy(max_kv_attempts=3))
        injector = FaultInjector(plan)
        with pytest.raises(KVStoreTimeout) as excinfo:
            injector.kv_gate("get", "k")
        assert isinstance(excinfo.value, TransientError)
        assert injector.registry.injected_counts()[KV_TIMEOUT] == 3
        assert KV_RETRY not in injector.registry.recovery_counts()

    def test_speculation_respects_policy_switch(self):
        plan = FaultPlan(seed=0, task_straggler_rate=1.0,
                         policy=RetryPolicy(speculative_execution=False))
        injector = FaultInjector(plan)
        assert not injector.is_straggler("j", "map", 0)
