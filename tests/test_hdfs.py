"""Tests for the simulated HDFS: namespace, blocks, I/O accounting."""

import warnings

import pytest

from repro.errors import (FileAlreadyExists, FileNotFoundInHDFS,
                          HDFSError, IsADirectory, NotADirectory)
from repro.hdfs.filesystem import HDFS, ReplicationClampWarning
from repro.hdfs.namenode import METADATA_BYTES_PER_OBJECT, NameNode


class TestNameNode:
    def test_mkdirs_creates_parents(self):
        nn = NameNode()
        nn.mkdirs("/a/b/c")
        assert nn.exists("/a")
        assert nn.exists("/a/b/c")
        assert nn.num_dirs == 4  # root + a + b + c

    def test_mkdirs_idempotent(self):
        nn = NameNode()
        nn.mkdirs("/a/b")
        nn.mkdirs("/a/b")
        assert nn.num_dirs == 3

    def test_create_file(self):
        nn = NameNode()
        nn.create_file("/dir/file")
        assert nn.exists("/dir/file")
        assert nn.num_files == 1

    def test_create_existing_fails(self):
        nn = NameNode()
        nn.create_file("/f")
        with pytest.raises(FileAlreadyExists):
            nn.create_file("/f")

    def test_create_overwrite(self):
        nn = NameNode()
        nn.create_file("/f")
        nn.create_file("/f", overwrite=True)
        assert nn.num_files == 1

    def test_create_over_directory_fails(self):
        nn = NameNode()
        nn.mkdirs("/d")
        with pytest.raises(IsADirectory):
            nn.create_file("/d")

    def test_file_as_parent_fails(self):
        nn = NameNode()
        nn.create_file("/f")
        with pytest.raises(NotADirectory):
            nn.mkdirs("/f/sub")

    def test_relative_path_rejected(self):
        nn = NameNode()
        with pytest.raises(FileNotFoundInHDFS):
            nn.mkdirs("relative/path")

    def test_get_missing_raises(self):
        nn = NameNode()
        with pytest.raises(FileNotFoundInHDFS):
            nn.get("/nope")

    def test_delete_file(self):
        nn = NameNode()
        nn.create_file("/f")
        nn.delete("/f")
        assert not nn.exists("/f")
        assert nn.num_files == 0

    def test_delete_nonempty_dir_needs_recursive(self):
        nn = NameNode()
        nn.create_file("/d/f")
        with pytest.raises(NotADirectory):
            nn.delete("/d")
        nn.delete("/d", recursive=True)
        assert not nn.exists("/d")
        assert nn.num_files == 0

    def test_list_dir_sorted(self):
        nn = NameNode()
        nn.create_file("/d/b")
        nn.create_file("/d/a")
        assert nn.list_dir("/d") == ["a", "b"]

    def test_walk_files(self):
        nn = NameNode()
        nn.create_file("/d/x/1")
        nn.create_file("/d/2")
        assert list(nn.walk_files("/d")) == ["/d/2", "/d/x/1"]

    def test_metadata_memory_rule(self):
        nn = NameNode()
        for i in range(10):
            nn.mkdirs(f"/p/dir{i}")
        objects = nn.num_dirs + nn.num_files + nn.num_blocks
        assert nn.metadata_memory_bytes() == \
            objects * METADATA_BYTES_PER_OBJECT

    def test_partition_explosion_projection(self):
        """The paper's example: 1M directories -> ~143 MB of heap."""
        assert 1_000_000 * METADATA_BYTES_PER_OBJECT \
            == pytest.approx(143 * 1024 * 1024, rel=0.05)


class TestHDFS:
    def test_roundtrip(self, fs):
        fs.write_bytes("/f", b"hello world")
        assert fs.read_bytes("/f") == b"hello world"

    def test_multi_block_file(self, fs):
        data = bytes(range(256)) * 20  # 5120 bytes > 5 blocks of 1024
        fs.write_bytes("/big", data)
        status = fs.status("/big")
        assert status.length == len(data)
        assert len(status.blocks) == 5
        assert fs.read_bytes("/big") == data

    def test_pread_within_and_across_blocks(self, fs):
        data = b"".join(bytes([i % 251]) * 1 for i in range(4000))
        fs.write_bytes("/f", data)
        with fs.open("/f") as reader:
            assert reader.pread(100, 50) == data[100:150]
            assert reader.pread(1000, 100) == data[1000:1100]  # crosses
            assert reader.pread(3990, 100) == data[3990:]  # clipped at EOF
            assert reader.pread(9999, 10) == b""

    def test_sequential_read_and_seek(self, fs):
        fs.write_bytes("/f", b"0123456789")
        with fs.open("/f") as reader:
            assert reader.read(4) == b"0123"
            assert reader.tell() == 4
            reader.seek(8)
            assert reader.read() == b"89"

    def test_replication_places_copies(self, fs):
        fs.write_bytes("/f", b"x" * 3000)
        status = fs.status("/f")
        for block in status.blocks:
            assert len(block.datanodes) == fs.replication
            for node in block.datanodes:
                assert fs.datanodes[node].has_block(block.block_id)

    def test_delete_frees_datanode_space(self, fs):
        fs.write_bytes("/f", b"x" * 3000)
        used_before = sum(dn.used_bytes for dn in fs.datanodes)
        assert used_before > 0
        fs.delete("/f")
        assert sum(dn.used_bytes for dn in fs.datanodes) == 0

    def test_io_stats_reads(self, fs):
        fs.write_bytes("/f", b"x" * 2048)
        before = fs.io.snapshot()
        fs.read_bytes("/f")
        delta = fs.io.delta(before)
        assert delta.bytes_read == 2048

    def test_io_stats_seek_accounting(self, fs):
        fs.write_bytes("/f", b"x" * 2048)
        with fs.open("/f") as reader:
            reader.pread(0, 10)
            before = fs.io.seeks
            reader.pread(1000, 10)  # non-contiguous -> seek
            assert fs.io.seeks == before + 1
            after = fs.io.seeks
            reader.pread(1010, 10)  # contiguous -> no seek
            assert fs.io.seeks == after

    def test_open_directory_fails(self, fs):
        fs.mkdirs("/d")
        with pytest.raises(IsADirectory):
            fs.open("/d")

    def test_write_to_closed_writer_fails(self, fs):
        writer = fs.create("/f")
        writer.close()
        with pytest.raises(HDFSError):
            writer.write(b"x")

    def test_list_files_recursive(self, fs):
        fs.write_bytes("/t/a/f1", b"1")
        fs.write_bytes("/t/f2", b"2")
        assert fs.list_files("/t") == ["/t/a/f1", "/t/f2"]

    def test_total_size(self, fs):
        fs.write_bytes("/t/f1", b"123")
        fs.write_bytes("/t/f2", b"4567")
        assert fs.total_size("/t") == 7

    def test_writer_pos_tracks_offsets(self, fs):
        with fs.create("/f") as writer:
            assert writer.pos == 0
            writer.write(b"abc")
            assert writer.pos == 3
            writer.write(b"x" * 2000)
            assert writer.pos == 2003

    def test_needs_at_least_one_datanode(self):
        with pytest.raises(HDFSError):
            HDFS(num_datanodes=0)

    def test_replication_capped_by_datanodes(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ReplicationClampWarning)
            fs = HDFS(num_datanodes=1, replication=3)
        assert fs.replication == 1
        assert fs.replication_requested == 3


class TestIOStatsTaskScopes:
    """IOStats merging and the task-local capture scopes the parallel
    MapReduce engine relies on for race-free accounting."""

    def test_merge_adds_every_field(self):
        from repro.hdfs.metrics import IOStats
        total = IOStats(bytes_read=1, bytes_written=2, read_ops=3,
                        write_ops=4, seeks=5)
        total.merge(IOStats(bytes_read=10, bytes_written=20, read_ops=30,
                            write_ops=40, seeks=50))
        assert total == IOStats(bytes_read=11, bytes_written=22,
                                read_ops=33, write_ops=44, seeks=55)

    def test_merge_order_independent(self):
        from repro.hdfs.metrics import IOStats
        parts = [IOStats(bytes_read=i, read_ops=1) for i in (3, 7, 11)]
        forward, backward = IOStats(), IOStats()
        for part in parts:
            forward.merge(part)
        for part in reversed(parts):
            backward.merge(part)
        assert forward == backward

    def test_scope_buffers_until_exit(self, fs):
        """Inside a scope, updates are captured task-locally and only
        reach the shared instance when the scope exits."""
        from repro.hdfs.metrics import task_io_scope
        fs.write_bytes("/f", b"x" * 1000)
        outside = fs.io.snapshot()
        with task_io_scope() as scope:
            fs.read_bytes("/f")
            captured = scope.captured(fs.io)
            assert captured.bytes_read == 1000
            # shared totals not yet touched
            assert fs.io.snapshot().bytes_read == outside.bytes_read
        assert fs.io.bytes_read == outside.bytes_read + 1000

    def test_scope_captures_writes(self, fs):
        from repro.hdfs.metrics import task_io_scope
        with task_io_scope() as scope:
            fs.write_bytes("/w", b"y" * 512)
            assert scope.captured(fs.io).bytes_written == 512
        assert fs.io.bytes_written >= 512

    def test_untouched_stats_capture_zero(self, fs):
        from repro.hdfs.metrics import IOStats, task_io_scope
        with task_io_scope() as scope:
            assert scope.captured(fs.io) == IOStats()

    def test_nested_scope_flushes_to_parent(self, fs):
        from repro.hdfs.metrics import task_io_scope
        fs.write_bytes("/f", b"x" * 300)
        before = fs.io.snapshot()
        with task_io_scope() as outer:
            with task_io_scope() as inner:
                fs.read_bytes("/f")
                assert inner.captured(fs.io).bytes_read == 300
            # the inner task's I/O now belongs to the outer scope ...
            assert outer.captured(fs.io).bytes_read == 300
            # ... and still hasn't hit the shared instance
            assert fs.io.snapshot().bytes_read == before.bytes_read
        assert fs.io.bytes_read == before.bytes_read + 300

    def test_threads_capture_independently(self, fs):
        """Two threads reading different volumes under their own scopes
        each see exactly their own bytes; the shared total sees the sum."""
        import threading

        from repro.hdfs.metrics import task_io_scope
        fs.write_bytes("/a", b"a" * 1000)
        fs.write_bytes("/b", b"b" * 3000)
        before = fs.io.snapshot()
        captured = {}
        barrier = threading.Barrier(2)

        def worker(name, path):
            with task_io_scope() as scope:
                barrier.wait()
                fs.read_bytes(path)
                captured[name] = scope.captured(fs.io).bytes_read

        threads = [threading.Thread(target=worker, args=("a", "/a")),
                   threading.Thread(target=worker, args=("b", "/b"))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert captured == {"a": 1000, "b": 3000}
        assert fs.io.bytes_read == before.bytes_read + 4000



class TestReplicationClamp:
    """Regression tests for the once-silent replication clamp: the
    requested factor is now recorded, reported, and warned about once."""

    @pytest.fixture(autouse=True)
    def _fresh_warning_state(self):
        from repro.hdfs import filesystem
        saved = filesystem._clamp_warned
        filesystem._clamp_warned = False
        yield
        filesystem._clamp_warned = saved

    @staticmethod
    def _clamp_warnings(records):
        from repro.hdfs.filesystem import ReplicationClampWarning
        return [w for w in records
                if issubclass(w.category, ReplicationClampWarning)]

    def test_clamp_records_requested_vs_effective(self):
        from repro.hdfs.filesystem import ReplicationClampWarning
        with pytest.warns(ReplicationClampWarning, match="clamped to 1"):
            fs = HDFS(num_datanodes=1, replication=2)
        assert fs.replication_requested == 2
        assert fs.replication == 1
        report = fs.replication_report()
        assert report["requested"] == 2
        assert report["effective"] == 1

    def test_clamp_warns_only_once_per_process(self):
        import warnings as warnings_module
        from repro.hdfs.filesystem import ReplicationClampWarning
        with pytest.warns(ReplicationClampWarning):
            HDFS(num_datanodes=1, replication=2)
        with warnings_module.catch_warnings(record=True) as caught:
            warnings_module.simplefilter("always")
            fs = HDFS(num_datanodes=2, replication=5)  # clamped, silent
        assert self._clamp_warnings(caught) == []
        # ...but the clamp is still recorded on the instance
        assert fs.replication_requested == 5
        assert fs.replication == 2

    def test_unclamped_replication_never_warns(self):
        import warnings as warnings_module
        with warnings_module.catch_warnings(record=True) as caught:
            warnings_module.simplefilter("always")
            fs = HDFS(num_datanodes=3, replication=2)
        assert self._clamp_warnings(caught) == []
        assert fs.replication_requested == fs.replication == 2

    def test_replication_report_counts_block_health(self):
        fs = HDFS(num_datanodes=3, replication=2, block_size=256)
        fs.write_bytes("/f", b"x" * 1000)  # 4 blocks, 2 replicas each
        report = fs.replication_report()
        assert report == {"requested": 2, "effective": 2, "blocks": 4,
                          "under_replicated": 0, "unavailable": 0}
        fs.kill_datanode(0)
        degraded = fs.replication_report()
        assert degraded["blocks"] == 4
        assert degraded["under_replicated"] > 0
        assert degraded["unavailable"] == 0  # the second replica is live
        assert fs.read_bytes("/f") == b"x" * 1000  # reads fail over


class TestDataNodeFailover:
    """Dead datanodes: reads fail over to live replicas; a block with no
    live replica surfaces the transient DataNodeUnavailable."""

    def test_read_fails_over_past_dead_primary(self):
        fs = HDFS(num_datanodes=3, replication=2, block_size=256)
        fs.write_bytes("/f", b"y" * 600)
        primary = fs.status("/f").blocks[0].datanodes[0]
        fs.kill_datanode(primary)
        assert fs.read_bytes("/f") == b"y" * 600
        assert primary not in fs.live_datanodes()

    def test_all_replicas_dead_raises_transient(self):
        from repro.errors import DataNodeUnavailable, TransientError
        fs = HDFS(num_datanodes=2, replication=1)
        fs.write_bytes("/f", b"z" * 100)
        for node_id in fs.status("/f").blocks[0].datanodes:
            fs.kill_datanode(node_id)
        with pytest.raises(DataNodeUnavailable) as excinfo:
            fs.read_bytes("/f")
        assert isinstance(excinfo.value, TransientError)

    def test_revive_restores_reads(self):
        fs = HDFS(num_datanodes=2, replication=1)
        fs.write_bytes("/f", b"w" * 100)
        node = fs.status("/f").blocks[0].datanodes[0]
        fs.kill_datanode(node)
        fs.revive_datanode(node)
        assert fs.read_bytes("/f") == b"w" * 100
        assert sorted(fs.live_datanodes()) == [0, 1]

    def test_writes_avoid_dead_datanodes(self):
        fs = HDFS(num_datanodes=3, replication=2, block_size=256)
        fs.kill_datanode(1)
        fs.write_bytes("/f", b"q" * 600)
        for block in fs.status("/f").blocks:
            assert 1 not in block.datanodes
            assert len(block.datanodes) == 2

    def test_no_live_datanode_fails_writes(self):
        from repro.errors import DataNodeUnavailable
        fs = HDFS(num_datanodes=1, replication=1)
        fs.kill_datanode(0)
        with pytest.raises(DataNodeUnavailable):
            fs.write_bytes("/f", b"a")
