"""Tests for the simulated HDFS: namespace, blocks, I/O accounting."""

import pytest

from repro.errors import (FileAlreadyExists, FileNotFoundInHDFS,
                          HDFSError, IsADirectory, NotADirectory)
from repro.hdfs.filesystem import HDFS
from repro.hdfs.namenode import METADATA_BYTES_PER_OBJECT, NameNode


class TestNameNode:
    def test_mkdirs_creates_parents(self):
        nn = NameNode()
        nn.mkdirs("/a/b/c")
        assert nn.exists("/a")
        assert nn.exists("/a/b/c")
        assert nn.num_dirs == 4  # root + a + b + c

    def test_mkdirs_idempotent(self):
        nn = NameNode()
        nn.mkdirs("/a/b")
        nn.mkdirs("/a/b")
        assert nn.num_dirs == 3

    def test_create_file(self):
        nn = NameNode()
        nn.create_file("/dir/file")
        assert nn.exists("/dir/file")
        assert nn.num_files == 1

    def test_create_existing_fails(self):
        nn = NameNode()
        nn.create_file("/f")
        with pytest.raises(FileAlreadyExists):
            nn.create_file("/f")

    def test_create_overwrite(self):
        nn = NameNode()
        nn.create_file("/f")
        nn.create_file("/f", overwrite=True)
        assert nn.num_files == 1

    def test_create_over_directory_fails(self):
        nn = NameNode()
        nn.mkdirs("/d")
        with pytest.raises(IsADirectory):
            nn.create_file("/d")

    def test_file_as_parent_fails(self):
        nn = NameNode()
        nn.create_file("/f")
        with pytest.raises(NotADirectory):
            nn.mkdirs("/f/sub")

    def test_relative_path_rejected(self):
        nn = NameNode()
        with pytest.raises(FileNotFoundInHDFS):
            nn.mkdirs("relative/path")

    def test_get_missing_raises(self):
        nn = NameNode()
        with pytest.raises(FileNotFoundInHDFS):
            nn.get("/nope")

    def test_delete_file(self):
        nn = NameNode()
        nn.create_file("/f")
        nn.delete("/f")
        assert not nn.exists("/f")
        assert nn.num_files == 0

    def test_delete_nonempty_dir_needs_recursive(self):
        nn = NameNode()
        nn.create_file("/d/f")
        with pytest.raises(NotADirectory):
            nn.delete("/d")
        nn.delete("/d", recursive=True)
        assert not nn.exists("/d")
        assert nn.num_files == 0

    def test_list_dir_sorted(self):
        nn = NameNode()
        nn.create_file("/d/b")
        nn.create_file("/d/a")
        assert nn.list_dir("/d") == ["a", "b"]

    def test_walk_files(self):
        nn = NameNode()
        nn.create_file("/d/x/1")
        nn.create_file("/d/2")
        assert list(nn.walk_files("/d")) == ["/d/2", "/d/x/1"]

    def test_metadata_memory_rule(self):
        nn = NameNode()
        for i in range(10):
            nn.mkdirs(f"/p/dir{i}")
        objects = nn.num_dirs + nn.num_files + nn.num_blocks
        assert nn.metadata_memory_bytes() == \
            objects * METADATA_BYTES_PER_OBJECT

    def test_partition_explosion_projection(self):
        """The paper's example: 1M directories -> ~143 MB of heap."""
        assert 1_000_000 * METADATA_BYTES_PER_OBJECT \
            == pytest.approx(143 * 1024 * 1024, rel=0.05)


class TestHDFS:
    def test_roundtrip(self, fs):
        fs.write_bytes("/f", b"hello world")
        assert fs.read_bytes("/f") == b"hello world"

    def test_multi_block_file(self, fs):
        data = bytes(range(256)) * 20  # 5120 bytes > 5 blocks of 1024
        fs.write_bytes("/big", data)
        status = fs.status("/big")
        assert status.length == len(data)
        assert len(status.blocks) == 5
        assert fs.read_bytes("/big") == data

    def test_pread_within_and_across_blocks(self, fs):
        data = b"".join(bytes([i % 251]) * 1 for i in range(4000))
        fs.write_bytes("/f", data)
        with fs.open("/f") as reader:
            assert reader.pread(100, 50) == data[100:150]
            assert reader.pread(1000, 100) == data[1000:1100]  # crosses
            assert reader.pread(3990, 100) == data[3990:]  # clipped at EOF
            assert reader.pread(9999, 10) == b""

    def test_sequential_read_and_seek(self, fs):
        fs.write_bytes("/f", b"0123456789")
        with fs.open("/f") as reader:
            assert reader.read(4) == b"0123"
            assert reader.tell() == 4
            reader.seek(8)
            assert reader.read() == b"89"

    def test_replication_places_copies(self, fs):
        fs.write_bytes("/f", b"x" * 3000)
        status = fs.status("/f")
        for block in status.blocks:
            assert len(block.datanodes) == fs.replication
            for node in block.datanodes:
                assert fs.datanodes[node].has_block(block.block_id)

    def test_delete_frees_datanode_space(self, fs):
        fs.write_bytes("/f", b"x" * 3000)
        used_before = sum(dn.used_bytes for dn in fs.datanodes)
        assert used_before > 0
        fs.delete("/f")
        assert sum(dn.used_bytes for dn in fs.datanodes) == 0

    def test_io_stats_reads(self, fs):
        fs.write_bytes("/f", b"x" * 2048)
        before = fs.io.snapshot()
        fs.read_bytes("/f")
        delta = fs.io.delta(before)
        assert delta.bytes_read == 2048

    def test_io_stats_seek_accounting(self, fs):
        fs.write_bytes("/f", b"x" * 2048)
        with fs.open("/f") as reader:
            reader.pread(0, 10)
            before = fs.io.seeks
            reader.pread(1000, 10)  # non-contiguous -> seek
            assert fs.io.seeks == before + 1
            after = fs.io.seeks
            reader.pread(1010, 10)  # contiguous -> no seek
            assert fs.io.seeks == after

    def test_open_directory_fails(self, fs):
        fs.mkdirs("/d")
        with pytest.raises(IsADirectory):
            fs.open("/d")

    def test_write_to_closed_writer_fails(self, fs):
        writer = fs.create("/f")
        writer.close()
        with pytest.raises(HDFSError):
            writer.write(b"x")

    def test_list_files_recursive(self, fs):
        fs.write_bytes("/t/a/f1", b"1")
        fs.write_bytes("/t/f2", b"2")
        assert fs.list_files("/t") == ["/t/a/f1", "/t/f2"]

    def test_total_size(self, fs):
        fs.write_bytes("/t/f1", b"123")
        fs.write_bytes("/t/f2", b"4567")
        assert fs.total_size("/t") == 7

    def test_writer_pos_tracks_offsets(self, fs):
        with fs.create("/f") as writer:
            assert writer.pos == 0
            writer.write(b"abc")
            assert writer.pos == 3
            writer.write(b"x" * 2000)
            assert writer.pos == 2003

    def test_needs_at_least_one_datanode(self):
        with pytest.raises(HDFSError):
            HDFS(num_datanodes=0)

    def test_replication_capped_by_datanodes(self):
        fs = HDFS(num_datanodes=1, replication=3)
        assert fs.replication == 1
