"""Property tests for GFU header additivity (ISSUE 10, satellite 2).

The pyramid's correctness rests on one algebraic fact: folding header
states with the canonical merge functions is associative and (for the
order-insensitive aggregates) commutative, so a fold over any grouping
of cells — flat, left-to-right, or hierarchically through pyramid
levels — produces the same state.  These Hypothesis properties pin that
contract on ``merge_function_for``, ``GFUValue.merge``,
``DgfIndexHandler._merge_headers`` and the pyramid's ``fold_children``.

Float strategies draw only dyadic rationals (``k / 64``): additive folds
over them are exact in binary floating point, so associativity checks
are equality checks, not approximations — matching the differential
harness's byte-identity standard.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.core.dgf.gfu import GFUValue
from repro.core.dgf.handler import DgfIndexHandler, merge_function_for
from repro.errors import DGFError
from repro.pyramid import PyramidNode, fold_children

AGG_KEYS = ("sum(powerconsumed)", "count(powerconsumed)",
            "min(powerconsumed)", "max(powerconsumed)")

#: exact binary fractions in [-8, 8): folds are bit-identical however
#: they are associated.
dyadic = st.integers(min_value=-512, max_value=511).map(lambda k: k / 64.0)


def states_for(key):
    if key.startswith("count("):
        return st.integers(min_value=0, max_value=10_000)
    return dyadic


@st.composite
def headers(draw):
    """A header dict with a random subset of the canonical keys —
    missing keys model cells whose precompute set differs."""
    keys = draw(st.sets(st.sampled_from(AGG_KEYS), min_size=0, max_size=4))
    return {key: draw(states_for(key)) for key in keys}


def fold_flat(key, parts):
    fn = merge_function_for(key)
    state = None
    for part in parts:
        state = part if state is None else fn.merge(state, part)
    return state


@settings(max_examples=200)
@given(key=st.sampled_from(AGG_KEYS),
       parts=st.lists(dyadic, min_size=1, max_size=12),
       split=st.integers(min_value=0, max_value=12))
def test_merge_fold_is_associative(key, parts, split):
    """fold(a ++ b) == merge(fold(a), fold(b)) for every split point."""
    if key.startswith("count("):
        parts = [abs(int(p * 64)) for p in parts]
    split = min(split, len(parts))
    left, right = parts[:split], parts[split:]
    whole = fold_flat(key, parts)
    fn = merge_function_for(key)
    lf, rf = fold_flat(key, left), fold_flat(key, right)
    if lf is None:
        assert whole == rf
    elif rf is None:
        assert whole == lf
    else:
        assert fn.merge(lf, rf) == whole


@settings(max_examples=200)
@given(key=st.sampled_from(("count(powerconsumed)", "min(powerconsumed)",
                            "max(powerconsumed)")),
       parts=st.lists(dyadic, min_size=1, max_size=12),
       seed=st.randoms(use_true_random=False))
def test_merge_fold_is_commutative_for_order_free_aggs(key, parts, seed):
    """count/min/max folds ignore order entirely.  (sum is commutative
    over dyadics too, but only because they are exact; the system never
    relies on it — folds always run in canonical key order.)"""
    if key.startswith("count("):
        parts = [abs(int(p * 64)) for p in parts]
    shuffled = list(parts)
    seed.shuffle(shuffled)
    assert fold_flat(key, shuffled) == fold_flat(key, parts)


@settings(max_examples=100)
@given(parts=st.lists(dyadic, min_size=1, max_size=12),
       seed=st.randoms(use_true_random=False))
def test_sum_fold_is_exact_over_dyadics(parts, seed):
    shuffled = list(parts)
    seed.shuffle(shuffled)
    assert fold_flat("sum(x)", shuffled) == fold_flat("sum(x)", parts)


def test_merge_function_for_rejects_non_additive():
    with pytest.raises(DGFError):
        merge_function_for("avg(powerconsumed)")
    with pytest.raises(DGFError):
        merge_function_for("median(powerconsumed)")


@settings(max_examples=150)
@given(hs=st.lists(headers(), min_size=1, max_size=10),
       split=st.integers(min_value=0, max_value=10))
def test_gfuvalue_merge_matches_flat_fold(hs, split):
    """Folding GFUValues pairwise in order equals the flat per-key fold,
    and keys missing from some headers are carried through unchanged."""
    fns = {key: merge_function_for(key) for key in AGG_KEYS}
    acc = GFUValue(header=dict(hs[0]), records=1)
    for h in hs[1:]:
        acc.merge(GFUValue(header=dict(h), records=1), fns)
    for key in AGG_KEYS:
        parts = [h[key] for h in hs if key in h]
        if parts:
            assert acc.header[key] == fold_flat(key, parts)
        else:
            assert key not in acc.header
    assert acc.records == len(hs)


@settings(max_examples=150)
@given(hs=st.lists(headers(), min_size=1, max_size=12),
       split=st.integers(min_value=0, max_value=12))
def test_merge_headers_agrees_with_pyramid_fold(hs, split):
    """The handler's inner-header fold over cells equals the same fold
    over {left-subtree node, right-subtree node} — the exact situation
    a pyramid cover produces, for every possible split."""
    handler = DgfIndexHandler()
    values = [GFUValue(header=dict(h), records=1) for h in hs]
    flat = handler._merge_headers(list(AGG_KEYS), values)
    split = min(split, len(hs))
    groups = [g for g in (values[:split], values[split:]) if g]
    nodes = [fold_children(g) for g in groups]
    via_pyramid = handler._merge_headers(list(AGG_KEYS), nodes)
    assert via_pyramid == flat


@settings(max_examples=100)
@given(hs=st.lists(headers(), min_size=1, max_size=16))
def test_fold_of_folds_equals_single_fold(hs):
    """fold_children is associative over arbitrary binary groupings:
    fold(fold(pairs)) == fold(all) — the pyramid's level-on-level
    invariant."""
    values = [GFUValue(header=dict(h), records=2) for h in hs]
    single = fold_children(values)
    pairs = [fold_children(values[i:i + 2])
             for i in range(0, len(values), 2)]
    nested = fold_children(pairs)
    assert nested.header == single.header
    assert nested.cells == single.cells == len(values)
    assert nested.records == single.records == 2 * len(values)


@settings(max_examples=100)
@given(sums=st.lists(dyadic, min_size=1, max_size=10),
       counts=st.lists(st.integers(min_value=0, max_value=100),
                       min_size=1, max_size=10))
def test_avg_derivation_survives_hierarchical_fold(sums, counts):
    """avg(x) is answered from sum(x)/count(*) components; folding the
    components hierarchically leaves the derived average unchanged."""
    n = min(len(sums), len(counts))
    handler = DgfIndexHandler()
    values = [GFUValue(header={"sum(x)": s, "count(*)": c}, records=c)
              for s, c in zip(sums[:n], counts[:n])]
    flat = handler._merge_headers(["avg(x)"], values)
    node = fold_children(values)
    nested = handler._merge_headers(["avg(x)"], [node])
    assert nested == flat
    if sum(counts[:n]):
        total, count = flat["avg(x)"]
        assert total == sum(sums[:n])
        assert count == sum(counts[:n])
