"""Tests for the DGF key-value store wrapper and the policy advisor."""

import pytest

from repro.core.dgf.advisor import PolicyAdvisor
from repro.core.dgf.gfu import GFUValue, SliceLocation
from repro.core.dgf.policy import DimensionPolicy, SplittingPolicy
from repro.core.dgf.store import DgfStore
from repro.errors import DGFError
from repro.hiveql.predicates import Interval
from repro.kvstore.hbase import KVStore
from repro.storage.schema import DataType, Schema


def value(start=0, end=10):
    return GFUValue(header={"count(*)": 1},
                    locations=[SliceLocation("/f", start, end)], records=1)


class TestDgfStore:
    def test_put_get_namespaced(self):
        kv = KVStore()
        store_a = DgfStore(kv, "t1", "i")
        store_b = DgfStore(kv, "t2", "i")
        store_a.put_value("5_10", value())
        assert store_a.get_value("5_10") is not None
        assert store_b.get_value("5_10") is None

    def test_iter_entries_only_own_namespace(self):
        kv = KVStore()
        store = DgfStore(kv, "t", "i")
        other = DgfStore(kv, "t", "other")
        store.put_value("1_1", value())
        other.put_value("2_2", value())
        assert [k for k, _ in store.iter_entries()] == ["1_1"]

    def test_meta_roundtrip(self):
        store = DgfStore(KVStore(), "t", "i")
        store.put_meta("bounds", {"a": (0, 3)})
        assert store.load_bounds() == {"a": (0, 3)}

    def test_missing_meta(self):
        with pytest.raises(DGFError):
            DgfStore(KVStore(), "t", "i").get_meta("policy")

    def test_clear(self):
        store = DgfStore(KVStore(), "t", "i")
        store.put_value("1_1", value())
        store.put_meta("x", 1)
        store.clear()
        assert store.count_entries() == 0
        with pytest.raises(DGFError):
            store.get_meta("x")

    def test_merge_value_creates_or_merges(self):
        from repro.hive.aggregates import CountAgg
        store = DgfStore(KVStore(), "t", "i")
        store.merge_value("1_1", value(), {"count(*)": CountAgg()})
        store.merge_value("1_1", value(20, 30), {"count(*)": CountAgg()})
        merged = store.get_value("1_1")
        assert merged.header["count(*)"] == 2
        assert len(merged.locations) == 2

    def test_size_bytes_grows_with_entries(self):
        store = DgfStore(KVStore(), "t", "i")
        store.put_value("1_1", value())
        small = store.size_bytes()
        store.put_value("2_2", value())
        assert store.size_bytes() > small > 0


class TestAdvisor:
    @pytest.fixture
    def schema(self):
        return Schema.of(("u", DataType.BIGINT), ("r", DataType.INT),
                         ("d", DataType.DATE))

    @pytest.fixture
    def rows(self):
        import datetime
        out = []
        for day in range(10):
            date = (datetime.date(2012, 12, 1)
                    + datetime.timedelta(days=day)).isoformat()
            for u in range(0, 1000, 7):
                out.append((u, u % 11, date))
        return out

    def test_profile_data(self, schema, rows):
        advisor = PolicyAdvisor(schema, ["u", "r", "d"])
        stats = advisor.profile_data(rows)
        assert stats["u"].low == 0
        assert stats["u"].high == 994
        assert stats["d"].span == 9

    def test_profile_empty_rejected(self, schema):
        with pytest.raises(DGFError):
            PolicyAdvisor(schema, ["u"]).profile_data([])

    def test_advise_produces_valid_policy(self, schema, rows):
        advisor = PolicyAdvisor(schema, ["u", "r", "d"],
                                records_per_unit_volume=1e9)
        history = [{"u": Interval(low=100, high=200),
                    "d": Interval(low="2012-12-02", high="2012-12-05")}]
        policy = advisor.advise(rows, history).policy
        assert isinstance(policy, SplittingPolicy)
        assert policy.names == ["u", "r", "d"]
        # discrete dims get integer intervals
        assert policy.dimension("r").interval == int(
            policy.dimension("r").interval)

    def test_advise_needs_history(self, schema, rows):
        with pytest.raises(DGFError):
            PolicyAdvisor(schema, ["u"]).advise(rows, [])

    def test_recommend_shim_warns_and_matches_advise(self, schema, rows):
        advisor = PolicyAdvisor(schema, ["u", "d"],
                                records_per_unit_volume=1e9)
        history = [{"u": Interval(low=100, high=200)}]
        with pytest.warns(DeprecationWarning, match="recommend"):
            legacy = advisor.recommend(rows, history)
        assert legacy.to_dict() == advisor.advise(rows, history) \
            .policy.to_dict()

    def test_cost_tradeoff_visible(self, schema, rows):
        """More cells -> more gets; fewer cells -> more boundary read.
        The advisor's cost must reflect both directions."""
        advisor = PolicyAdvisor(schema, ["u", "r", "d"],
                                records_per_unit_volume=1e10)
        stats = advisor.profile_data(rows)
        profiles = advisor.profile_queries(
            [{"u": Interval(low=100, high=200)}], stats)
        tiny_cells = advisor.expected_query_cost(
            {"u": 1024, "r": 1024, "d": 1024}, stats, profiles)
        one_cell = advisor.expected_query_cost(
            {"u": 1, "r": 1, "d": 1}, stats, profiles)
        chosen = advisor.advise(
            rows, [{"u": Interval(low=100, high=200)}]).policy
        counts = {}
        for dim in chosen.dimensions:
            span = stats[dim.name.lower()].span
            counts[dim.name.lower()] = max(1, round(span / dim.interval))
        best = advisor.expected_query_cost(counts, stats, profiles)
        assert best <= tiny_cells
        assert best <= one_cell

    def test_properties_for_roundtrip(self, schema, rows):
        advisor = PolicyAdvisor(schema, ["u", "d"],
                                records_per_unit_volume=1e9)
        policy = advisor.advise(
            rows, [{"u": Interval(low=0, high=500)}]).policy
        properties = PolicyAdvisor.properties_for(policy)
        rebuilt = SplittingPolicy.from_properties(schema, ["u", "d"],
                                                  properties)
        assert rebuilt.dimension("u").interval \
            == policy.dimension("u").interval
