"""Advisor differential harness: tuning must never change answers.

The extension of :mod:`tests.harness.differential` for the workload-driven
divergent advisor (``repro.service.advisor``).  Three guarantees, each
proven byte-identically across ``max_workers`` {1, 4, 8}:

* **Observation is free.**  Attaching a :class:`~repro.service.querylog
  .QueryLog` to a session changes *no* observable of any query — rows,
  ``QueryStats`` (including simulated seconds), structured plans,
  normalized traces, global filesystem I/O and KV op counts are all
  byte-identical with and without the log.  Capture is pure bookkeeping:
  the region is computed from numbers the planner already has.

* **Advice is inert until routed.**  A session whose advisor has
  *applied* a report (replica layouts built) but whose queries are all
  pinned to the primary layout equals the fleetless baseline under
  :func:`advisor_view` — the projection that removes exactly the layout
  bookkeeping a fleet necessarily adds (the ``layout=`` plan annotations,
  the ``dgf.route`` span, and any ``advisor:*`` spans) plus global I/O
  (building replicas legitimately reads and writes bytes).  Everything
  else — rows, stats, simulated seconds, the rest of the trace — must
  match byte-for-byte.

* **Routing only relocates reads.**  The advised fleet with cost-based
  routing equals the pinned-primary run under
  :func:`~tests.harness.replicas.logical_view` — result columns/rows and
  output counts — because a specialist layout holds the same rows in a
  different organization (the replica-fleet guarantee of ISSUE 8, now
  reached through advisor-built layouts).
"""

from __future__ import annotations

import re
from dataclasses import asdict
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.hive.session import HiveSession
from repro.mapreduce.cluster import ExecutionConfig
from repro.service.advisor import Advisor

from tests.harness.differential import Workload, query_fingerprint

#: worker counts every advisor check covers (acceptance: {1, 4, 8}).
ADVISOR_WORKERS = (1, 4, 8)

#: span names that exist only because a fleet / an advisor does
ROUTE_SPAN = "dgf.route"
ADVISOR_SPAN_PREFIX = "advisor:"

_LAYOUT_SUFFIX = re.compile(r" layout=\S+")
_LAYOUT_LINE = re.compile(r"^\s*layout: .*$\n?", re.MULTILINE)


def _scrub_layout_text(value: Any) -> Any:
    """Remove the ``layout=...`` annotations a fleet adds to plan text."""
    if not isinstance(value, str):
        return value
    return _LAYOUT_LINE.sub("", _LAYOUT_SUFFIX.sub("", value))


def strip_route_data(node: Dict[str, Any]) -> Dict[str, Any]:
    """A copy of a span-document subtree without routing observability.

    Drops every child span named ``dgf.route`` or starting with
    ``advisor:``, recursively — the only spans the fleet/advisor layer
    adds to a query trace.  Applied to an advised run pinned to the
    primary, this recovers the byte-identical fleetless document.
    """
    node = dict(node)
    node["children"] = [strip_route_data(child)
                        for child in node["children"]
                        if child["name"] != ROUTE_SPAN
                        and not child["name"].startswith(
                            ADVISOR_SPAN_PREFIX)]
    return node


def advisor_view(fingerprint: Dict[str, Any]) -> Dict[str, Any]:
    """The advised-vs-fleetless-comparable projection of a fingerprint.

    Keeps only the ``query:*`` entries (layout builds and the advisor's
    stats refresh legitimately change global I/O, KV op counts and job
    counts), scrubs the ``layout=`` text annotations from descriptions
    and structured plans, drops the plan's ``layout`` field, and strips
    ``dgf.route`` / ``advisor:*`` spans from traces.  Everything that
    survives — rows, every per-query stat, simulated seconds, the whole
    remaining trace — must be byte-identical.
    """
    view: Dict[str, Any] = {}
    for key, value in fingerprint.items():
        if not key.startswith("query:"):
            continue
        value = dict(value)
        value["description"] = _scrub_layout_text(value["description"])
        value["index_used"] = _scrub_layout_text(value["index_used"])
        plan = value.get("plan")
        if plan is not None:
            plan = dict(plan)
            index = plan.get("index")
            if index is not None:
                plan["index"] = {k: _scrub_layout_text(v)
                                 for k, v in index.items()
                                 if k != "layout"}
            value["plan"] = plan
        trace = value.get("trace")
        if trace is not None:
            trace = dict(trace)
            trace["root"] = strip_route_data(trace["root"])
            value["trace"] = trace
        view[key] = value
    return view


# --------------------------------------------------------------------- runner
def run_advised_workload(
        workload: Workload,
        prologue: Sequence[Tuple[str, Any]],
        execution: Optional[ExecutionConfig] = None, *,
        observe: bool = True,
        apply: bool = False,
        max_layouts: int = 2) -> Tuple[Dict[str, Any], Advisor, Any]:
    """Replay one advised scenario in a fresh session.

    Build the workload's table and index, create an :class:`Advisor` for
    it, optionally attach the query log (``observe``), run the
    ``prologue`` queries (the workload the advisor learns from — run in
    *every* arm so the comparison isolates the advisor, not the
    prologue), optionally ``report()`` + ``apply()`` the divergent
    layouts, then run ``workload.queries`` and fingerprint them exactly
    like :func:`~tests.harness.differential.run_workload`.

    Returns ``(fingerprint, advisor, report)`` — ``report`` is None
    unless ``apply`` was requested.
    """
    if apply and not observe:
        raise ValueError("apply requires observe (the report needs a log)")
    session = HiveSession(num_datanodes=4, execution=execution)
    session.fs.block_size = workload.block_size
    session.execute(workload.ddl)
    rows = list(workload.rows)
    if rows:
        files = max(1, min(workload.load_files, len(rows)))
        chunk = -(-len(rows) // files)
        for start in range(0, len(rows), chunk):
            session.load_rows(workload.table, rows[start:start + chunk])
    if workload.index_sql:
        session.execute(workload.index_sql)

    advisor = Advisor(session, workload.table, workload.index_name,
                      max_layouts=max_layouts)
    if observe:
        advisor.observe()
    for sql, options in prologue:
        session.execute(sql, options)
    report = None
    if apply:
        report = advisor.report()
        advisor.apply(report)

    fingerprint: Dict[str, Any] = {}
    for position, (sql, options) in enumerate(workload.queries):
        result = session.execute(sql, options)
        fingerprint[f"query:{position}"] = query_fingerprint(result)
    fingerprint["fs_io"] = asdict(session.fs.io)
    fingerprint["kv_ops"] = asdict(session.kvstore.stats)
    fingerprint["jobs_run"] = session.engine.jobs_run
    return fingerprint, advisor, report
