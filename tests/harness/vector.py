"""Row-vs-vector differential harness: columnar execution, byte-identical.

The extension of :mod:`tests.harness.differential` for the vectorized
engine: replay a workload with ``ExecutionConfig(vectorized=True)`` at
several worker counts and assert the observable outcome equals the row
engine's run *exactly* — result rows and row order, folded float
aggregates, per-query stats including simulated cost-model seconds,
structured plans, global ``fs_io`` / ``kv_ops`` totals, and traces
*modulo the vector observability layer* (the ``vectorized`` span
attribute, ``vector.*`` counters, the plan's ``vectorized`` flag and its
``vectorized: true`` text line are stripped before comparison, exactly
like ``fault:*`` data in the chaos harness; everything else must match
byte-for-byte).

Unlike the chaos harness, ``fs_io`` stays **included**: the batch
decoders are required to issue the row readers' exact pread sequences,
so even global byte/seek totals may not drift.

:func:`assert_vector_chaos_equivalent` composes both layers — a seeded
:class:`~repro.faults.FaultPlan` under the vectorized engine must match
the same plan under the row engine (crashed attempts always replay on
the row path, so per-record crash timing is preserved).
"""

from __future__ import annotations

from typing import Any, Dict, Sequence, Tuple

from repro.faults import FaultInjector, FaultPlan, FaultRegistry
from repro.mapreduce.cluster import ExecutionConfig
from repro.obs.trace import strip_vector_data

from tests.harness.chaos import chaos_view
from tests.harness.differential import (Workload, _assert_same,
                                        run_workload)

#: worker counts every vector check covers (ISSUE 6 acceptance: {1, 4, 8}).
VECTOR_WORKERS = (1, 4, 8)

#: the plan-text line the vector engine adds (stripped for comparison).
_PLAN_LINE = "\nvectorized: true"


def vector_view(fingerprint: Dict[str, Any]) -> Dict[str, Any]:
    """The vector-comparable projection of a workload fingerprint.

    Strips the vector observability layer out of every query entry:
    ``vector.*`` trace counters and the ``vectorized`` span attribute
    (:func:`~repro.obs.trace.strip_vector_data`), the structured plan's
    ``vectorized`` flag, and the ``vectorized: true`` description line.
    Everything else — including ``fs_io`` — is kept and must match.
    """
    view: Dict[str, Any] = {}
    for key, value in fingerprint.items():
        if key.startswith("query:"):
            value = dict(value)
            trace = value.get("trace")
            if trace is not None:
                trace = dict(trace)
                trace["root"] = strip_vector_data(trace["root"])
                value["trace"] = trace
            plan = value.get("plan")
            if plan is not None:
                plan = dict(plan)
                plan.pop("vectorized", None)
                value["plan"] = plan
            description = value.get("description")
            if isinstance(description, str):
                value["description"] = description.replace(_PLAN_LINE, "")
        view[key] = value
    return view


def assert_vector_equivalent(
        workload: Workload,
        worker_counts: Sequence[int] = VECTOR_WORKERS) -> Dict[str, Any]:
    """Replay ``workload`` on the row engine, then vectorized at each
    worker count; every vector view must equal the row baseline.

    Returns the row-engine baseline view.
    """
    baseline = vector_view(run_workload(workload))
    for workers in worker_counts:
        fingerprint = run_workload(
            workload,
            ExecutionConfig(max_workers=workers, vectorized=True))
        _assert_same(baseline, vector_view(fingerprint),
                     f"vectorized max_workers={workers}")
    return baseline


def assert_vector_chaos_equivalent(
        workload: Workload, plan: FaultPlan,
        worker_counts: Sequence[int] = VECTOR_WORKERS
        ) -> Tuple[Dict[str, Any], FaultRegistry]:
    """Chaos overlap: the vectorized engine under a seeded fault plan must
    match the row engine under the *same* plan.

    Both runs strip fault data (and drop ``fs_io`` — crashed attempts
    re-read input) exactly like the chaos harness, plus the vector layer;
    the injected-fault and recovery registries must also agree, proving
    vectorization changed neither what was injected nor how recovery ran.

    Returns ``(baseline_view, registry)`` of the row+faults run.
    """
    injector = FaultInjector(plan)
    baseline = chaos_view(vector_view(run_workload(
        workload, ExecutionConfig(), faults=injector)))
    base_registry = injector.registry
    for workers in worker_counts:
        injector = FaultInjector(plan)
        fingerprint = run_workload(
            workload,
            ExecutionConfig(max_workers=workers, vectorized=True),
            faults=injector)
        _assert_same(baseline, chaos_view(vector_view(fingerprint)),
                     f"vectorized+chaos max_workers={workers}")
        registry = injector.registry
        assert registry.injected_counts() == base_registry.injected_counts(), (
            f"vectorized max_workers={workers} changed fault injection: "
            f"{registry.injected_counts()} != "
            f"{base_registry.injected_counts()}")
        assert registry.recovery_counts() == base_registry.recovery_counts()
        assert registry.backoff_seconds == base_registry.backoff_seconds
    return baseline, base_registry
