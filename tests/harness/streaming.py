"""Streaming differential harness: merge-on-read, byte-identical.

The extension of :mod:`tests.harness.differential` for the streaming
subsystem (ISSUE 7): one session loads a base table, builds the DGF
index, streams a fixed op script (inserts into existing and brand-new
grid cells, upserts, deletes) into the KV delta store, and then runs the
same query battery in three physical states —

* ``pre``   — every op resident in the delta, nothing folded;
* ``mid``   — a *partial* compaction folded a deterministic subset of
  the resident cells between two query windows;
* ``post``  — a full compaction folded everything.

The phase fingerprints cover rows, stats, plans and normalized traces,
so :func:`assert_streaming_equivalent` proves each state is
byte-identical across worker counts, with the GFU cache on and off
(physical ``kv_ops`` dropped — the cache exists to change those), and on
the vectorized engine (modulo the stripped vector layer).  Row *content*
must additionally agree across the three states and with an eagerly
materialized baseline table — the DualTable contract that base+delta is
just a physical layout of the same logical table.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.delta import Compactor, StreamingWriter
from repro.hive.session import HiveSession
from repro.mapreduce.cluster import ExecutionConfig

from tests.harness.differential import (_assert_same, query_fingerprint)

#: worker counts every streaming check covers (ISSUE 7 acceptance).
STREAM_WORKERS = (1, 4, 8)

TABLE = "meterstream"
INDEX = "idxstream"
KEY_COLUMNS = ("userid", "ts")

DDL = (f"CREATE TABLE {TABLE} (userid bigint, regionid int, ts bigint, "
       "powerconsumed double) STORED AS {fmt}")

INDEX_SQL = (f"CREATE INDEX {INDEX} ON TABLE {TABLE}(userid, ts) AS 'dgf' "
             "IDXPROPERTIES ('userid'='0_10', 'ts'='100_2', "
             "'precompute'='sum(powerconsumed),count(*)')")

#: the query battery; every phase replays all of them.
QUERIES: Tuple[str, ...] = (
    # exact-range plain aggregation: header path + tombstone demotion
    "SELECT sum(powerconsumed), count(*) FROM {t} "
    "WHERE userid >= 10 AND userid < 30 AND ts >= 100 AND ts < 104",
    # avg derived from sum/count headers over the whole grid
    "SELECT avg(powerconsumed) FROM {t} "
    "WHERE userid >= 0 AND userid < 60 AND ts >= 100 AND ts < 106",
    # GROUP BY on a non-dimension column (slices path)
    "SELECT regionid, count(*), sum(powerconsumed) FROM {t} "
    "WHERE userid >= 5 AND userid < 35 GROUP BY regionid",
    # ordered projection across upserted/deleted/inserted rows
    "SELECT userid, ts, powerconsumed FROM {t} "
    "WHERE userid >= 18 AND userid < 52 ORDER BY userid, ts",
    # non-dimension predicate: the full-scan overlay path
    "SELECT count(*) FROM {t} WHERE regionid = 1",
)


def base_rows() -> List[Tuple]:
    """120 deterministic rows over userid 1..30, ts 100..103 (exact
    binary-fraction floats so aggregation folding is bit-stable)."""
    return [(u, u % 4, 100 + t, ((u * 7 + t) % 640) / 64.0)
            for u in range(1, 31) for t in range(4)]


#: the streamed op script: (kind, payload) in ingest order.  Inserts hit
#: existing cells AND brand-new cells beyond the built grid bounds
#: (userid 40.., ts 104..); upserts replace base rows in place; deletes
#: tombstone base rows.  Keys are (userid, ts) per KEY_COLUMNS.
STREAM_OPS: Tuple[Tuple[str, Tuple], ...] = (
    ("insert", (25, 1, 102, 640 / 64.0)),      # existing cell
    ("insert", (41, 1, 100, 100 / 64.0)),      # new cell, new userid label
    ("insert", (45, 1, 104, 104 / 64.0)),      # new cell in both dims
    ("insert", (12, 0, 104, 112 / 64.0)),      # new ts label, old userid
    ("upsert", (20, 0, 101, 256 / 64.0)),      # replace base row
    ("upsert", (11, 3, 100, 0.0)),             # replace base row
    ("upsert", (41, 1, 100, 96 / 64.0)),       # replace a pending insert
    ("delete", (22, 103)),                     # tombstone base row
    ("delete", (7, 100)),                      # tombstone base row
    ("delete", (45, 104)),                     # tombstone a pending insert
)


def materialized_rows() -> List[Tuple]:
    """The logical table after the op script, computed eagerly."""
    key_pos = (0, 2)
    rows: List[Tuple] = list(base_rows())
    for kind, payload in STREAM_OPS:
        if kind == "insert":
            rows.append(tuple(payload))
            continue
        key = tuple(payload) if kind == "delete" \
            else tuple(payload[p] for p in key_pos)
        rows = [r for r in rows if tuple(r[p] for p in key_pos) != key]
        if kind == "upsert":
            rows.append(tuple(payload))
    return rows


def make_session(execution: Optional[ExecutionConfig] = None,
                 cache: Any = None, faults: Any = None,
                 stored_as: str = "TEXTFILE",
                 pyramid: bool = False) -> HiveSession:
    session = HiveSession(num_datanodes=4, execution=execution,
                          cache=cache, faults=faults)
    session.fs.block_size = 2048
    session.execute(DDL.format(fmt=stored_as))
    rows = base_rows()
    half = len(rows) // 2
    session.load_rows(TABLE, rows[:half])
    session.load_rows(TABLE, rows[half:])
    session.execute(INDEX_SQL)
    if pyramid:
        # Built before ingest, so the streamed ops exercise demotion and
        # both compactions exercise the pyramid repair path.
        session.build_pyramid(TABLE, INDEX)
    return session


def apply_stream(session: HiveSession) -> StreamingWriter:
    binding = session.attach_delta(TABLE, INDEX,
                                   key_columns=list(KEY_COLUMNS))
    writer = StreamingWriter(binding, batch_size=4)
    for kind, payload in STREAM_OPS:
        getattr(writer, kind)([payload])
    writer.flush()
    return writer


def run_streaming_workload(execution: Optional[ExecutionConfig] = None,
                           cache: Any = None, faults: Any = None,
                           stored_as: str = "TEXTFILE",
                           pyramid: bool = False) -> Dict[str, Any]:
    """One full streaming scenario; returns the 3-phase fingerprint.

    With ``faults`` armed, the injector activates *before* ingest, so the
    stream, both compactions and every query window run under chaos.
    ``pyramid=True`` builds the aggregation pyramid before ingest.
    """
    session = make_session(execution=execution, cache=cache, faults=faults,
                           stored_as=stored_as, pyramid=pyramid)
    if session.fault_injector is not None:
        session.fault_injector.activate_datanode_faults(session.fs)
    apply_stream(session)
    binding = session.delta_binding(TABLE)
    # The mid state folds a deterministic subset of the resident cells
    # (partial compaction between two query windows).
    partial = list(binding.resident_cells)[:3]

    fingerprint: Dict[str, Any] = {}
    for phase, cells in (("pre", None), ("mid", partial), ("post", None)):
        if phase != "pre":
            Compactor(binding).run(cells)
        fingerprint[f"{phase}:resident"] = binding.resident_ops
        for position, sql in enumerate(QUERIES):
            result = session.execute(sql.format(t=TABLE))
            fingerprint[f"{phase}:query:{position}"] = \
                query_fingerprint(result)
    fingerprint["fs_io"] = asdict(session.fs.io)
    fingerprint["kv_ops"] = asdict(session.kvstore.stats)
    fingerprint["jobs_run"] = session.engine.jobs_run
    return fingerprint


def _drop_physical(fingerprint: Dict[str, Any]) -> Dict[str, Any]:
    view = dict(fingerprint)
    view.pop("kv_ops", None)
    return view


def _map_queries(fingerprint: Dict[str, Any], transform) -> Dict[str, Any]:
    """Apply ``transform`` to every phase-prefixed query entry.

    The base :func:`~tests.harness.chaos.chaos_view` /
    :func:`~tests.harness.vector.vector_view` match keys starting with
    ``query:``; the streaming fingerprint prefixes phases
    (``pre:query:0``), so the same normalizations are re-applied here
    keyed on the ``:query:`` infix.
    """
    return {key: transform(dict(value)) if ":query:" in key else value
            for key, value in fingerprint.items()}


def streaming_vector_view(fingerprint: Dict[str, Any]) -> Dict[str, Any]:
    """Strip the vector observability layer from every phase query
    (``vector.*`` counters, the ``vectorized`` span attr and plan flag,
    the ``vectorized: true`` plan line) — the streaming analogue of
    :func:`tests.harness.vector.vector_view`."""
    from repro.obs.trace import strip_vector_data
    from tests.harness.vector import _PLAN_LINE

    def strip(value: Dict[str, Any]) -> Dict[str, Any]:
        trace = value.get("trace")
        if trace is not None:
            trace = dict(trace)
            trace["root"] = strip_vector_data(trace["root"])
            value["trace"] = trace
        plan = value.get("plan")
        if plan is not None:
            plan = dict(plan)
            plan.pop("vectorized", None)
            value["plan"] = plan
        description = value.get("description")
        if isinstance(description, str):
            value["description"] = description.replace(_PLAN_LINE, "")
        return value

    return _map_queries(fingerprint, strip)


def streaming_chaos_view(fingerprint: Dict[str, Any]) -> Dict[str, Any]:
    """Drop ``fs_io`` and strip ``fault:*`` spans / ``fault.*`` counters
    from every phase query — the streaming analogue of
    :func:`tests.harness.chaos.chaos_view`; physical ``kv_ops`` stay."""
    from repro.obs.trace import strip_fault_data

    def strip(value: Dict[str, Any]) -> Dict[str, Any]:
        trace = value.get("trace")
        if trace is not None:
            trace = dict(trace)
            trace["root"] = strip_fault_data(trace["root"])
            value["trace"] = trace
        return value

    view = _map_queries(fingerprint, strip)
    view.pop("fs_io", None)
    return view


def phase_rows(fingerprint: Dict[str, Any], phase: str) -> List[Any]:
    return [fingerprint[f"{phase}:query:{i}"]["rows"]
            for i in range(len(QUERIES))]


def assert_streaming_equivalent(stored_as: str = "TEXTFILE"
                                ) -> Dict[str, Any]:
    """The ISSUE 7 differential contract, minus chaos (tested separately).

    Within each physical state the full fingerprint (rows, stats, plans,
    normalized traces) must be byte-identical across worker counts and
    with the GFU cache on (physical KV ops excluded); the vectorized
    engine must match modulo its stripped observability layer.  Across
    states, row content must be identical.  Returns the sequential
    baseline fingerprint.
    """
    baseline = run_streaming_workload(stored_as=stored_as)
    for workers in STREAM_WORKERS:
        candidate = run_streaming_workload(
            ExecutionConfig(max_workers=workers), stored_as=stored_as)
        _assert_same(baseline, candidate,
                     f"streaming max_workers={workers}")
    cached = run_streaming_workload(cache=True, stored_as=stored_as)
    _assert_same(_drop_physical(baseline), _drop_physical(cached),
                 "streaming cache=True")
    vec_base = streaming_vector_view(baseline)
    for workers in (1, 4):
        vec = run_streaming_workload(
            ExecutionConfig(max_workers=workers, vectorized=True),
            stored_as=stored_as)
        _assert_same(vec_base, streaming_vector_view(vec),
                     f"streaming vectorized max_workers={workers}")
    for phase in ("mid", "post"):
        assert phase_rows(baseline, phase) == phase_rows(baseline, "pre"), (
            f"row content changed between pre and {phase} compaction")
    return baseline


def assert_streaming_chaos_equivalent(plan: Any,
                                      worker_counts: Sequence[int] =
                                      STREAM_WORKERS) -> Dict[str, Any]:
    """Chaos overlap: ingest + partial/full compaction + queries under a
    seeded fault plan must match the fault-free run (modulo fault spans
    and ``fs_io``, exactly like the chaos harness)."""
    from repro.faults import FaultInjector
    baseline = streaming_chaos_view(run_streaming_workload())
    registries = []
    for workers in worker_counts:
        injector = FaultInjector(plan)
        fingerprint = run_streaming_workload(
            ExecutionConfig(max_workers=workers), faults=injector)
        _assert_same(baseline, streaming_chaos_view(fingerprint),
                     f"streaming chaos max_workers={workers}")
        registries.append(injector.registry)
    first = registries[0]
    for registry in registries[1:]:
        assert registry.injected_counts() == first.injected_counts()
        assert registry.recovery_counts() == first.recovery_counts()
    return baseline
