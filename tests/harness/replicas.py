"""Replica-fleet differential harness: every layout, byte-identical.

The extension of :mod:`tests.harness.differential` for ISSUE 8: a
workload whose DGF index carries a multi-layout replica fleet
(:mod:`repro.core.dgf.fleet`) is replayed once per *layout choice* —
``"primary"``, each registered layout forced via
``QueryOptions(dgf_layout=...)``, and ``None`` for cost-based routing —
and each choice is proven byte-identical across ``max_workers``
{1, 4, 8} and across the row and vectorized engines, exactly like the
earlier differential suites.

Across *different* layout choices, physical observables legitimately
diverge — that is the whole point of a fleet (a finer grid prunes more
splits, reads fewer bytes, probes more cells).  What must still agree is
everything the *query* can observe: :func:`logical_view` projects a
fingerprint down to result columns/rows and the logical match counters
(``records_matched``, ``output_records``), and the harness asserts those
byte-identical across every layout choice.  For float aggregates that
identity is honest, not approximate: workloads built with
:func:`dyadic_rows` draw ``powerconsumed`` from exact binary fractions
(k/64) whose sums stay well inside 2^53, so floating-point addition over
them is exact and therefore order-independent — no fold-order tolerance
is ever needed.  Scan queries canonicalize row order with ``ORDER BY``
over a unique key, since unordered physical row order is a property of
the layout being scanned (as in real Hive).

Chaos composes through :func:`assert_layout_chaos_equivalent`: a
:class:`~repro.faults.FaultSpec` kills a pinned datanode at the start of
a query's own MapReduce job (the deterministic mid-query point shared by
all worker counts), the session replans onto the surviving layouts, and
the run must equal — modulo ``fault:*`` spans/counters, ``fs_io``,
``kv_ops`` and ``jobs_run``, all of which the aborted attempt legitimately
touched — the same workload with that datanode dead before the first
query.
"""

from __future__ import annotations

import dataclasses
import datetime
import random
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.faults import FaultInjector, FaultPlan, FaultRegistry
from repro.hdfs.layout import PRIMARY_LAYOUT
from repro.hive.session import QueryOptions
from repro.mapreduce.cluster import ExecutionConfig

from tests.harness.chaos import chaos_view
from tests.harness.differential import (LayoutSpec, Workload, _assert_same,
                                        run_workload)
from tests.harness.vector import vector_view

#: worker counts every replica check covers (ISSUE 8 acceptance: {1, 4, 8}).
REPLICA_WORKERS = (1, 4, 8)


# ------------------------------------------------------------------ workloads
def dyadic_rows(num_users: int = 120, num_days: int = 6, seed: int = 11,
                num_regions: int = 5) -> Tuple[Tuple, ...]:
    """Meter-shaped rows whose float column is *exact* in binary.

    ``powerconsumed`` is k/64 with k < 3200: every value, every partial
    sum and every total is exactly representable, so float addition over
    them is associative and the fold order imposed by a layout's physical
    row order cannot perturb a single bit of any aggregate.
    """
    rng = random.Random(seed)
    regions = [rng.randrange(num_regions) for _ in range(num_users)]
    rows = []
    start = datetime.date(2012, 12, 1)
    for day in range(num_days):
        ts = (start + datetime.timedelta(days=day)).isoformat()
        for user in range(num_users):
            rows.append((user, regions[user], ts,
                         rng.randrange(0, 3200) / 64))
    return tuple(rows)


def forced(workload: Workload, layout: Optional[str]) -> Workload:
    """The workload with every query pinned to one layout choice.

    ``layout`` is a layout name, :data:`PRIMARY_LAYOUT`, or None to keep
    the router's cost-based choice.
    """
    if layout is None:
        return workload
    queries = tuple(
        (sql, dataclasses.replace(options or QueryOptions(),
                                  dgf_layout=layout))
        for sql, options in workload.queries)
    return dataclasses.replace(workload, queries=queries)


def layout_choices(workload: Workload) -> List[Optional[str]]:
    """Every choice the differential sweep covers: routed, primary, and
    each fleet member by name."""
    return [None, PRIMARY_LAYOUT] + [spec.name for spec in workload.layouts]


# ---------------------------------------------------------------- projections
def logical_view(fingerprint: Dict[str, Any]) -> Dict[str, Any]:
    """The cross-layout-comparable projection of a workload fingerprint.

    Keeps, per query, exactly what is independent of the physical
    organization being scanned: the result schema and rows, and the
    output row count.  Physical stats (bytes read, splits pruned, KV
    probes, simulated seconds — even ``records_matched``, which one
    layout may answer from pre-computed headers without scanning at all)
    and traces are *supposed* to differ between layouts — they are
    compared only within one layout choice, where full byte-identity
    holds.
    """
    view: Dict[str, Any] = {}
    for key, value in fingerprint.items():
        if key.startswith("query:"):
            view[key] = {
                "columns": value["columns"],
                "rows": value["rows"],
                "output_records": value["output_records"],
            }
    return view


def replica_chaos_view(fingerprint: Dict[str, Any]) -> Dict[str, Any]:
    """The layout-failover-comparable projection.

    :func:`~tests.harness.chaos.chaos_view` minus ``kv_ops`` and
    ``jobs_run``: a mid-query layout downgrade abandons one planned
    attempt wholesale, and that attempt already issued real KV probes and
    started a real job before dying — unlike PR 4's pre-op fault points,
    which fire before the physical operation.  Everything else, including
    every per-query stat and simulated second of the *surviving* attempt,
    must match the dead-from-the-start baseline byte-for-byte.
    """
    view = chaos_view(fingerprint)
    view.pop("kv_ops", None)
    view.pop("jobs_run", None)
    return view


def chosen_layout(fingerprint: Dict[str, Any], position: int) -> Optional[str]:
    """The layout the plan of query ``position`` records (None = no fleet
    or full scan)."""
    plan = fingerprint[f"query:{position}"].get("plan")
    if not plan:
        return None
    index = plan.get("index") or {}
    return index.get("layout")


# ----------------------------------------------------------------- assertions
def assert_replica_equivalent(
        workload: Workload,
        worker_counts: Sequence[int] = REPLICA_WORKERS,
        vectorized: bool = True) -> Dict[Optional[str], Dict[str, Any]]:
    """The full ISSUE 8 sweep for one workload.

    For every layout choice (routed + primary + each fleet member):
    sequential row-engine baseline, byte-identical at each worker count,
    and byte-identical to the vectorized engine modulo the vector
    observability layer.  Across choices: byte-identical
    :func:`logical_view`, and every forced query's plan must record the
    layout it was pinned to.  Returns the baseline fingerprint per
    choice (``None`` key = routed) for extra assertions by the caller.
    """
    baselines: Dict[Optional[str], Dict[str, Any]] = {}
    for choice in layout_choices(workload):
        pinned = forced(workload, choice)
        baseline = run_workload(pinned)
        baselines[choice] = baseline
        if choice is not None:
            for position in range(len(workload.queries)):
                recorded = chosen_layout(baseline, position)
                if recorded is not None:
                    assert recorded == choice, (
                        f"query {position} pinned to {choice!r} but the "
                        f"plan recorded layout {recorded!r}")
        for workers in worker_counts:
            candidate = run_workload(
                pinned, ExecutionConfig(max_workers=workers))
            _assert_same(baseline, candidate,
                         f"layout={choice} max_workers={workers}")
        if vectorized:
            for workers in worker_counts:
                candidate = run_workload(
                    pinned, ExecutionConfig(max_workers=workers,
                                            vectorized=True))
                _assert_same(vector_view(baseline), vector_view(candidate),
                             f"layout={choice} vectorized "
                             f"max_workers={workers}")

    routed = logical_view(baselines[None])
    for choice, baseline in baselines.items():
        if choice is None:
            continue
        _assert_same(routed, logical_view(baseline),
                     f"logical view of layout={choice}")
    return baselines


def assert_layout_chaos_equivalent(
        workload: Workload, plan: FaultPlan, dead_datanodes: Sequence[int],
        worker_counts: Sequence[int] = REPLICA_WORKERS
        ) -> Tuple[Dict[str, Any], FaultRegistry]:
    """Mid-query layout failover equals planned-around-the-outage.

    ``plan`` must schedule :data:`~repro.faults.plan.DATANODE_DEAD` specs
    that kill ``dead_datanodes`` at some query job's start; the baseline
    run kills the same datanodes after data/index/fleet placement but
    *before* the first query (via a plain ``dead_datanodes`` plan), so
    its router never sees the doomed layout alive.  Every chaos run's
    :func:`replica_chaos_view` must equal the baseline's, at every worker
    count.  Returns ``(baseline_view, registry)`` — the first chaos run's
    registry, so callers can assert the downgrade demonstrably fired.
    """
    baseline_plan = FaultPlan(seed=plan.seed,
                              dead_datanodes=tuple(dead_datanodes))
    baseline = replica_chaos_view(
        run_workload(workload, faults=FaultInjector(baseline_plan)))
    registries: List[FaultRegistry] = []
    for workers in worker_counts:
        injector = FaultInjector(plan)
        fingerprint = run_workload(
            workload, ExecutionConfig(max_workers=workers), faults=injector)
        _assert_same(baseline, replica_chaos_view(fingerprint),
                     f"layout chaos max_workers={workers}")
        registries.append(injector.registry)
    first = registries[0]
    for registry, workers in zip(registries[1:], worker_counts[1:]):
        assert registry.injected_counts() == first.injected_counts(), (
            f"max_workers={workers} injected different faults: "
            f"{registry.injected_counts()} != {first.injected_counts()}")
        assert registry.recovery_counts() == first.recovery_counts(), (
            f"max_workers={workers} recovered differently: "
            f"{registry.recovery_counts()} != {first.recovery_counts()}")
    return baseline, first
