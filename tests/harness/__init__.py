"""Test harnesses shared by the suite (differential engine equivalence)."""
