"""Pyramid differential harness: pyramid on vs. off, byte-identical.

The extension of :mod:`tests.harness.differential` for the aggregation
pyramid (:mod:`repro.pyramid`): replay a workload with the pyramid built
and enabled and assert the observable outcome equals the flat-header run
*exactly* — result rows and row order, folded float aggregates, per-query
stats including the logical ``index_kv_gets`` and simulated cost-model
seconds, structured plans, global ``fs_io`` totals and ``jobs_run``, and
traces *modulo the pyramid observability layer* (the ``dgf.pyramid`` and
``pyramid:*`` spans, ``pyramid.*`` counters, the plan's ``pyramid_*``
fields and its ``  pyramid: ...`` text line are stripped before
comparison, exactly like vector data in the vector harness).

Unlike the vector harness, physical ``kv_ops`` are **dropped**: replacing
O(inner) header gets with O(log) node gets is the pyramid's whole point,
so physical op counts legitimately differ.  The *logical* ``kv.gets``
trace counters and ``index_kv_gets`` stats stay included — the pyramid
must replay the flat path's logical accounting exactly.

Three run modes are compared:

* **flat** — the pyramid is never built (the pre-pyramid baseline);
* **on**  — built via ``Workload.pyramid_fanout`` and used by default;
* **off** — built, but every query sets ``QueryOptions(dgf_pyramid=
  False)``; this mode must match the flat baseline *without* any
  stripping (building the pyramid may not perturb the disabled path).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, Optional, Sequence

from repro.hive.session import QueryOptions
from repro.mapreduce.cluster import ExecutionConfig
from repro.obs.trace import strip_pyramid_data

from tests.harness.differential import (Workload, _assert_same,
                                        run_workload)

#: worker counts every pyramid check covers (ISSUE 10 acceptance: {1,4,8}).
PYRAMID_WORKERS = (1, 4, 8)

#: prefix of the plan-text line the pyramid path adds (stripped).
_PLAN_LINE_PREFIX = "  pyramid: "


def _strip_query(value: Dict[str, Any]) -> Dict[str, Any]:
    """One query fingerprint, minus the pyramid observability layer."""
    value = dict(value)
    trace = value.get("trace")
    if trace is not None:
        trace = dict(trace)
        trace["root"] = strip_pyramid_data(trace["root"])
        value["trace"] = trace
    plan = value.get("plan")
    if plan is not None:
        plan = dict(plan)
        index = plan.get("index")
        if index is not None:
            index = dict(index)
            for key in ("pyramid_levels", "pyramid_nodes",
                        "pyramid_leaves"):
                index.pop(key, None)
            plan["index"] = index
        value["plan"] = plan
    description = value.get("description")
    if isinstance(description, str):
        value["description"] = "\n".join(
            line for line in description.split("\n")
            if not line.startswith(_PLAN_LINE_PREFIX))
    return value


def pyramid_view(fingerprint: Dict[str, Any]) -> Dict[str, Any]:
    """The pyramid-comparable projection of a workload fingerprint.

    Drops physical ``kv_ops`` and the ``pyramid`` build summary, strips
    the pyramid layer out of every query entry (both the plain
    ``query:N`` keys and the streaming harness's ``phase:query:N``
    keys); everything else — including ``fs_io`` and the logical KV
    accounting — is kept and must match.
    """
    view: Dict[str, Any] = {}
    for key, value in fingerprint.items():
        if key in ("kv_ops", "pyramid"):
            continue
        if key.startswith("query:") or ":query:" in key:
            value = _strip_query(value)
        view[key] = value
    return view


def pyramid_off(workload: Workload) -> Workload:
    """The same workload with the pyramid built but disabled per query."""
    queries = tuple(
        (sql, replace(options, dgf_pyramid=False) if options is not None
         else QueryOptions(dgf_pyramid=False))
        for sql, options in workload.queries)
    return replace(workload, queries=queries)


def _flat_view(fingerprint: Dict[str, Any]) -> Dict[str, Any]:
    """Comparison view for runs that never touch the pyramid read path:
    only the physical KV ops and the build summary may differ (the
    pyramid build itself performs puts)."""
    return {key: value for key, value in fingerprint.items()
            if key not in ("kv_ops", "pyramid")}


def assert_pyramid_equivalent(
        workload: Workload,
        worker_counts: Sequence[int] = PYRAMID_WORKERS) -> Dict[str, Any]:
    """The ISSUE 10 differential contract for one workload.

    ``workload.pyramid_fanout`` must be set; the flat baseline is the
    same workload with it cleared.  Checks, in order:

    * pyramid **on** equals flat at every worker count (pyramid view);
    * pyramid **built-but-disabled** equals flat byte-for-byte modulo
      physical KV ops — no stripping, proving ``dgf_pyramid=False``
      really is the flat path;
    * pyramid on with the GFU cache equals the same run without it
      (pyramid nodes ride the cache coherently);
    * the vectorized engine composes (vector view over pyramid view).

    Returns the flat sequential baseline fingerprint (unprojected).
    """
    assert workload.pyramid_fanout, "workload must set pyramid_fanout"
    flat = run_workload(replace(workload, pyramid_fanout=None))
    baseline = pyramid_view(flat)
    for workers in worker_counts:
        candidate = run_workload(
            workload, ExecutionConfig(max_workers=workers))
        _assert_same(baseline, pyramid_view(candidate),
                     f"pyramid max_workers={workers}")
    disabled = run_workload(pyramid_off(workload))
    _assert_same(_flat_view(flat), _flat_view(disabled),
                 "pyramid built but dgf_pyramid=False")
    uncached = pyramid_view(run_workload(workload, cache=False))
    cached = pyramid_view(run_workload(workload, cache=True))
    _assert_same(uncached, cached, "pyramid cache=True")
    from tests.harness.vector import vector_view
    vec_base = vector_view(baseline)
    for workers in (1, 4):
        vec = run_workload(
            workload,
            ExecutionConfig(max_workers=workers, vectorized=True))
        _assert_same(vec_base, vector_view(pyramid_view(vec)),
                     f"pyramid vectorized max_workers={workers}")
    return flat
