"""Differential harness: proves the parallel engine equals the sequential one.

Two entry points, both asserting *byte-identical* results across
``max_workers`` settings:

* :func:`assert_job_equivalent` — runs one raw MapReduce job (rebuilt from
  scratch per run so no mutable state is shared) on the sequential engine
  and on thread-pool engines, comparing full :class:`JobResult`
  fingerprints: output records, every counter value, the ``JobStats``
  aggregate the cost model consumes, and the per-task ``TaskStats`` list.

* :func:`assert_session_equivalent` — replays a whole workload (DDL, rows,
  optional index build, queries) through independent :class:`HiveSession`s,
  comparing result rows, per-query ``QueryStats`` (including the simulated
  cost-model seconds, which are pure functions of the measured counters),
  normalized query traces (the full span tree with wall times zeroed —
  see docs/observability.md), index-build reports, global filesystem I/O
  totals and key-value-store op counts.

* :func:`assert_service_equivalent` — replays a workload's queries through
  the concurrent :class:`~repro.service.queryservice.QueryService` at
  several concurrency levels, with the GFU-metadata cache enabled and
  disabled, against the direct cache-off session baseline (ISSUE 4
  acceptance).  Physical KV-store op counts are excluded from *these*
  comparisons — eliminating physical reads is the cache's whole point and
  their count legitimately depends on admission interleaving — but every
  per-query observable, including the *logical* ``kv.gets`` trace counters
  and the simulated index time, must be byte-identical.

Fingerprints are plain dicts compared with ``==``; on mismatch the harness
reports exactly which entries diverged, which is what turns "the engines
disagree" into a debuggable ordering bug.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.hive.session import HiveSession, QueryOptions, QueryResult
from repro.mapreduce.cluster import ExecutionConfig
from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.job import Job, JobResult
from repro.service.cache import GfuMetadataCache
from repro.service.queryservice import QueryService

#: worker counts every differential check covers (ISSUE 1 acceptance).
WORKER_COUNTS = (1, 2, 4, 8)
#: query-service concurrency levels every service check covers (ISSUE 4).
SERVICE_CONCURRENCY = (1, 4, 8)


# ---------------------------------------------------------------- fingerprints
def job_fingerprint(result: JobResult) -> Dict[str, Any]:
    """Everything a JobResult exposes that downstream code can observe."""
    return {
        "output": list(result.output),
        "counters": result.counters.as_dict(),
        "stats": asdict(result.stats),
        "tasks": [asdict(t) for t in result.task_stats],
    }


def query_fingerprint(result: QueryResult) -> Dict[str, Any]:
    """Rows plus the measured/modelled stats of one executed query."""
    stats = result.stats
    return {
        "columns": list(result.columns),
        "rows": list(result.rows),
        "description": result.description,
        "jobs": stats.jobs,
        "splits_processed": stats.splits_processed,
        "records_read": stats.records_read,
        "bytes_read": stats.bytes_read,
        "records_matched": stats.records_matched,
        "output_records": stats.output_records,
        "index_used": stats.index_used,
        "index_records_scanned": stats.index_records_scanned,
        "index_kv_gets": stats.index_kv_gets,
        "time": (stats.time.read_index_and_other,
                 stats.time.read_data_and_process),
        # The whole span tree, wall times zeroed: trace shape, attrs,
        # counters and simulated times must not depend on worker count.
        "trace": (result.trace.normalized()
                  if result.trace is not None else None),
        # The structured plan (scalar summary) — the same object EXPLAIN
        # renders, so plan text and plan fields can never drift apart.
        "plan": (result.plan.to_dict()
                 if result.plan is not None else None),
    }


def diff_fingerprints(expected: Dict[str, Any], actual: Dict[str, Any],
                      prefix: str = "") -> List[str]:
    """Human-readable list of entries where two fingerprints diverge."""
    lines: List[str] = []
    for key in sorted(set(expected) | set(actual)):
        left, right = expected.get(key), actual.get(key)
        label = f"{prefix}{key}"
        if isinstance(left, dict) and isinstance(right, dict):
            lines.extend(diff_fingerprints(left, right, prefix=f"{label}."))
        elif left != right:
            lines.append(f"{label}: sequential={left!r} parallel={right!r}")
    return lines


def _assert_same(baseline: Dict[str, Any], candidate: Dict[str, Any],
                 context: str) -> None:
    if candidate != baseline:
        diverged = "\n  ".join(diff_fingerprints(baseline, candidate))
        raise AssertionError(
            f"{context} diverged from the sequential engine:\n  {diverged}")


# ------------------------------------------------------------------- job level
def assert_job_equivalent(
        make_fs_and_job: Callable[[], Tuple[Any, Job]],
        worker_counts: Sequence[int] = WORKER_COUNTS) -> Dict[str, Any]:
    """Run a job on the sequential engine and at each worker count.

    ``make_fs_and_job`` must build a *fresh* filesystem + job per call so
    runs can never observe each other's state.  Returns the sequential
    fingerprint (for extra assertions by the caller).
    """
    fs, job = make_fs_and_job()
    baseline = job_fingerprint(MapReduceEngine(fs).run(job))
    for workers in worker_counts:
        fs, job = make_fs_and_job()
        engine = MapReduceEngine(
            fs, execution=ExecutionConfig(max_workers=workers))
        candidate = job_fingerprint(engine.run(job))
        _assert_same(baseline, candidate, f"max_workers={workers}")
    return baseline


# --------------------------------------------------------------- session level
@dataclass(frozen=True)
class LayoutSpec:
    """One replica-fleet layout a workload builds after its index
    (ISSUE 8; see :mod:`repro.core.dgf.fleet`).  ``grid`` holds the
    granularity overrides as hashable ``(column, spec)`` pairs."""

    name: str
    grid: Tuple[Tuple[str, str], ...] = ()
    stored_as: Optional[str] = None
    placement: Optional[str] = None
    datanodes: Tuple[int, ...] = ()


@dataclass(frozen=True)
class Workload:
    """A replayable (table, index, queries) scenario.

    ``queries`` entries are ``(sql, options)`` pairs; ``options`` may be
    None for the default (index-transparent) behaviour.
    """

    table: str
    ddl: str
    rows: Tuple[Tuple, ...]
    queries: Tuple[Tuple[str, Optional[QueryOptions]], ...]
    index_sql: Optional[str] = None
    append_rows: Tuple[Tuple, ...] = ()
    index_name: Optional[str] = None  # required when append_rows is set
    block_size: int = 2048
    load_files: int = 2
    #: extra (name, ddl, rows) tables, e.g. the dimension side of a join
    extra_tables: Tuple[Tuple[str, str, Tuple[Tuple, ...]], ...] = ()
    #: replica-fleet layouts built after the index (needs ``index_name``)
    layouts: Tuple[LayoutSpec, ...] = ()
    #: build the aggregation pyramid (``session.build_pyramid``) with this
    #: fanout after the index and layouts, before appends — so appends
    #: exercise incremental pyramid maintenance.  None = no pyramid.
    pyramid_fanout: Optional[int] = None


def run_workload(workload: Workload,
                 execution: Optional[ExecutionConfig] = None,
                 cache: Union[None, bool, GfuMetadataCache] = None,
                 faults: Any = None) -> Dict[str, Any]:
    """Build a fresh session, replay the workload, return its fingerprint.

    ``faults`` (a :class:`repro.faults.FaultPlan` or prebuilt
    :class:`~repro.faults.FaultInjector`) arms fault injection for the
    whole replay; the plan's dead datanodes are killed *after* the data
    and index are in place — so their blocks carry replicas and the query
    phase genuinely exercises replica failover — and before the first
    query runs (a deterministic point, the same for every worker count).
    """
    session = HiveSession(num_datanodes=4, execution=execution, cache=cache,
                          faults=faults)
    session.fs.block_size = workload.block_size
    session.execute(workload.ddl)
    rows = list(workload.rows)
    if rows:
        files = max(1, min(workload.load_files, len(rows)))
        chunk = -(-len(rows) // files)
        for start in range(0, len(rows), chunk):
            session.load_rows(workload.table, rows[start:start + chunk])
    for name, ddl, extra_rows in workload.extra_tables:
        session.execute(ddl)
        if extra_rows:
            session.load_rows(name, list(extra_rows))

    fingerprint: Dict[str, Any] = {}
    if workload.index_sql:
        session.execute(workload.index_sql)
        for info in session.metastore.indexes_on(workload.table):
            report = info.state.get("build_report")
            if report is None:
                continue
            fingerprint[f"build:{info.name}"] = {
                "stats": asdict(report.job_stats),
                "index_size_bytes": report.index_size_bytes,
                "seconds": (report.build_time.read_index_and_other,
                            report.build_time.read_data_and_process),
                "details": dict(report.details),
            }
    # Fleet layouts build before appends so appends exercise the
    # every-layout ingest path (repro.core.dgf.fleet.append_to_layouts).
    for spec in workload.layouts:
        report = session.add_layout(
            workload.table, workload.index_name, spec.name,
            grid=dict(spec.grid), stored_as=spec.stored_as,
            placement=spec.placement, datanodes=spec.datanodes)
        fingerprint[f"layout:{spec.name}"] = {
            "stats": asdict(report.job_stats),
            "index_size_bytes": report.index_size_bytes,
            "details": dict(report.details),
        }
    if workload.pyramid_fanout:
        fingerprint["pyramid"] = session.build_pyramid(
            workload.table, workload.index_name,
            fanout=workload.pyramid_fanout)
    if workload.append_rows:
        from repro.core.dgf.builder import append_with_dgf
        report = append_with_dgf(session, workload.table,
                                 workload.index_name,
                                 list(workload.append_rows))
        fingerprint["append"] = {
            "stats": asdict(report.job_stats),
            "details": dict(report.details),
        }
    if session.fault_injector is not None:
        session.fault_injector.activate_datanode_faults(session.fs)
    for position, (sql, options) in enumerate(workload.queries):
        result = session.execute(sql, options)
        fingerprint[f"query:{position}"] = query_fingerprint(result)

    # Global accounting must agree too: every byte read or written and
    # every KV op, regardless of which thread performed it.
    fingerprint["fs_io"] = asdict(session.fs.io)
    fingerprint["kv_ops"] = asdict(session.kvstore.stats)
    fingerprint["jobs_run"] = session.engine.jobs_run
    return fingerprint


def assert_session_equivalent(
        workload: Workload,
        worker_counts: Sequence[int] = WORKER_COUNTS) -> Dict[str, Any]:
    """Replay ``workload`` sequentially and at each worker count; all
    fingerprints must be identical.  Returns the sequential fingerprint."""
    baseline = run_workload(workload)
    for workers in worker_counts:
        candidate = run_workload(
            workload, ExecutionConfig(max_workers=workers))
        _assert_same(baseline, candidate, f"max_workers={workers}")
    return baseline


# --------------------------------------------------------------- service level
def run_service_workload(workload: Workload, concurrency: int,
                         cache: Union[None, bool, GfuMetadataCache] = None
                         ) -> Dict[str, Any]:
    """Like :func:`run_workload`, but the queries go through a
    :class:`QueryService` with ``concurrency`` workers (submitted all at
    once, so they genuinely interleave), and results are collected in
    submission order."""
    session = HiveSession(num_datanodes=4, cache=cache)
    session.fs.block_size = workload.block_size
    session.execute(workload.ddl)
    rows = list(workload.rows)
    if rows:
        files = max(1, min(workload.load_files, len(rows)))
        chunk = -(-len(rows) // files)
        for start in range(0, len(rows), chunk):
            session.load_rows(workload.table, rows[start:start + chunk])
    for name, ddl, extra_rows in workload.extra_tables:
        session.execute(ddl)
        if extra_rows:
            session.load_rows(name, list(extra_rows))

    fingerprint: Dict[str, Any] = {}
    if workload.index_sql:
        session.execute(workload.index_sql)
    for spec in workload.layouts:
        session.add_layout(
            workload.table, workload.index_name, spec.name,
            grid=dict(spec.grid), stored_as=spec.stored_as,
            placement=spec.placement, datanodes=spec.datanodes)
    if workload.pyramid_fanout:
        session.build_pyramid(workload.table, workload.index_name,
                              fanout=workload.pyramid_fanout)
    if workload.append_rows:
        from repro.core.dgf.builder import append_with_dgf
        append_with_dgf(session, workload.table, workload.index_name,
                        list(workload.append_rows))
    with QueryService(session, max_workers=concurrency,
                      queue_depth=max(len(workload.queries), 1)) as service:
        results = service.run_all(workload.queries)
    for position, result in enumerate(results):
        fingerprint[f"query:{position}"] = query_fingerprint(result)
    fingerprint["fs_io"] = asdict(session.fs.io)
    fingerprint["jobs_run"] = session.engine.jobs_run
    return fingerprint


def _query_view(fingerprint: Dict[str, Any]) -> Dict[str, Any]:
    """The cache/service-comparable projection of a fingerprint.

    Drops physical KV op counts (the cache exists to change those) and the
    index-build/append entries (the service path replays them but does not
    re-fingerprint them; session-level equivalence covers those).
    """
    keep = {key: value for key, value in fingerprint.items()
            if key.startswith("query:") or key in ("fs_io", "jobs_run")}
    return keep


def assert_service_equivalent(
        workload: Workload,
        concurrency_levels: Sequence[int] = SERVICE_CONCURRENCY
        ) -> Dict[str, Any]:
    """ISSUE 4 acceptance: byte-identical queries across cache on/off and
    service concurrency levels.

    Baseline: the plain sequential session with the cache disabled.
    Candidates: the direct session with the cache enabled, then the query
    service at each concurrency level, cache off and on.  Returns the
    baseline fingerprint.
    """
    baseline = _query_view(run_workload(workload, cache=False))
    cached = _query_view(run_workload(workload, cache=True))
    _assert_same(baseline, cached, "cache=True (direct session)")
    for cache_on in (False, True):
        for concurrency in concurrency_levels:
            candidate = _query_view(
                run_service_workload(workload, concurrency, cache=cache_on))
            _assert_same(
                baseline, candidate,
                f"service concurrency={concurrency} cache={cache_on}")
    return baseline
