"""Chaos differential harness: faults on vs. faults off, byte-identical.

The extension of :mod:`tests.harness.differential` for ISSUE 5: replay a
workload under a seeded :class:`~repro.faults.FaultPlan` (task crashes,
stragglers, a dead datanode, KV timeouts) and assert the observable outcome
equals the fault-free run *exactly* — result rows and row order, folded
float aggregates, per-query stats including simulated cost-model seconds,
structured plans, and traces *modulo fault spans* (the ``fault:*`` event
spans and ``fault.*`` counters are stripped before comparison; everything
else in the trace must match byte-for-byte).

Two fingerprint deltas versus the plain differential harness:

* ``fs_io`` is excluded — crashed and speculative map attempts re-read
  their input, so global byte totals legitimately grow under faults.
* physical ``kv_ops`` stay **included** — injected timeouts fire *before*
  the physical operation and reduce attempts crash before their first put,
  so recovery never changes what the store actually performed.

The harness also returns the run's :class:`~repro.faults.FaultRegistry`
so tests can assert the faults demonstrably fired (nonzero injected and
recovery counts) and reconcile the simulated recovery overhead.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.faults import FaultInjector, FaultPlan, FaultRegistry
from repro.mapreduce.cluster import ExecutionConfig
from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.job import Job
from repro.obs.trace import strip_fault_data

from tests.harness.differential import (Workload, _assert_same,
                                        job_fingerprint, run_workload)

#: worker counts every chaos check covers (ISSUE 5 acceptance: {1, 4, 8}).
CHAOS_WORKERS = (1, 4, 8)


def chaos_view(fingerprint: Dict[str, Any]) -> Dict[str, Any]:
    """The chaos-comparable projection of a workload fingerprint.

    Drops ``fs_io`` (re-executed attempts re-read bytes) and strips the
    fault observability layer out of every query trace; all other entries
    — including physical KV op counts and simulated times — must match
    the fault-free baseline exactly.
    """
    view: Dict[str, Any] = {}
    for key, value in fingerprint.items():
        if key == "fs_io":
            continue
        if key.startswith("query:"):
            value = dict(value)
            trace = value.get("trace")
            if trace is not None:
                trace = dict(trace)
                trace["root"] = strip_fault_data(trace["root"])
                value["trace"] = trace
        view[key] = value
    return view


def assert_chaos_equivalent(
        workload: Workload, plan: FaultPlan,
        worker_counts: Sequence[int] = CHAOS_WORKERS
        ) -> Tuple[Dict[str, Any], FaultRegistry]:
    """Replay ``workload`` fault-free, then under ``plan`` at each worker
    count; every chaos view must equal the fault-free baseline, and the
    registries of all chaos runs must agree on what was injected.

    Returns ``(baseline_view, registry)`` — the registry of the first
    chaos run, for fault/recovery count assertions by the caller.
    """
    baseline = chaos_view(run_workload(workload))
    registries: List[FaultRegistry] = []
    for workers in worker_counts:
        injector = FaultInjector(plan)
        fingerprint = run_workload(
            workload, ExecutionConfig(max_workers=workers), faults=injector)
        _assert_same(baseline, chaos_view(fingerprint),
                     f"chaos max_workers={workers}")
        registries.append(injector.registry)
    first = registries[0]
    for registry, workers in zip(registries[1:], worker_counts[1:]):
        assert registry.injected_counts() == first.injected_counts(), (
            f"max_workers={workers} injected different faults: "
            f"{registry.injected_counts()} != {first.injected_counts()}")
        assert registry.recovery_counts() == first.recovery_counts(), (
            f"max_workers={workers} recovered differently: "
            f"{registry.recovery_counts()} != {first.recovery_counts()}")
        assert registry.backoff_seconds == first.backoff_seconds
    return baseline, first


def assert_job_chaos_equivalent(
        make_fs_and_job: Callable[[], Tuple[Any, Job]], plan: FaultPlan,
        worker_counts: Sequence[int] = CHAOS_WORKERS
        ) -> Tuple[Dict[str, Any], FaultRegistry]:
    """Raw-job analogue: one MapReduce job, faults on vs. off.

    ``make_fs_and_job`` must build a fresh filesystem + job per call.
    Job fingerprints carry no trace and no global ``fs_io``, so they are
    compared whole.  Returns ``(baseline_fingerprint, registry)``.
    """
    fs, job = make_fs_and_job()
    baseline = job_fingerprint(MapReduceEngine(fs).run(job))
    registries: List[FaultRegistry] = []
    for workers in worker_counts:
        fs, job = make_fs_and_job()
        injector = FaultInjector(plan)
        if plan.dead_datanodes:
            # Job inputs are written by make_fs_and_job before the engine
            # runs, so killing now still forces read-path failover.
            fs.faults = injector
            injector.activate_datanode_faults(fs)
        engine = MapReduceEngine(
            fs, execution=ExecutionConfig(max_workers=workers),
            faults=injector)
        candidate = job_fingerprint(engine.run(job))
        _assert_same(baseline, candidate, f"chaos max_workers={workers}")
        registries.append(injector.registry)
    first = registries[0]
    for registry in registries[1:]:
        assert registry.injected_counts() == first.injected_counts()
        assert registry.recovery_counts() == first.recovery_counts()
    return baseline, first
