"""Tests for the HadoopDB baseline: chunk databases, partitioning,
pushdown queries and the time model."""

import pytest

from repro.data.meter import METER_SCHEMA
from repro.errors import HadoopDBError
from repro.hadoopdb.engine import HadoopDB, HadoopDBConfig
from repro.hadoopdb.localdb import LocalDB
from repro.hiveql.predicates import Interval
from repro.storage.schema import DataType, Schema
from tests.conftest import meter_rows

SCHEMA = Schema.of(("userid", DataType.BIGINT), ("regionid", DataType.INT),
                   ("ts", DataType.DATE),
                   ("powerconsumed", DataType.DOUBLE))


def loaded_db(rows=None):
    db = LocalDB(SCHEMA, ["userid", "regionid", "ts"], row_bytes=100)
    db.bulk_load(rows if rows is not None else meter_rows(num_users=50,
                                                          num_days=4))
    db.build_index()
    return db


class TestLocalDB:
    def test_select_by_leading_column(self):
        db = loaded_db()
        rows, stats = db.select({"userid": Interval(low=10, high=12)})
        assert all(10 <= r[0] < 12 for r in rows)
        assert len(rows) == 2 * 4  # two users x four days
        assert stats.used_index and not stats.seq_scan
        assert stats.rows_matched == len(rows)

    def test_residual_columns_filtered(self):
        db = loaded_db()
        rows, _ = db.select({"userid": Interval(low=0, high=50),
                             "ts": Interval.point("2012-12-02")})
        assert all(r[2] == "2012-12-02" for r in rows)

    def test_no_leading_interval_seq_scans(self):
        db = loaded_db()
        _rows, stats = db.select({"ts": Interval.point("2012-12-01")})
        assert stats.seq_scan
        assert stats.pages_touched == db.num_pages

    def test_wide_range_prefers_seq_scan(self):
        db = loaded_db()
        _rows, stats = db.select({"userid": Interval(low=0, high=49)})
        assert stats.seq_scan  # > 75% of rows qualify

    def test_page_accounting_scattered(self):
        """UserId-selected rows are scattered over time-ordered pages, so
        touched pages are ~min(matches, pages)."""
        db = loaded_db()
        _rows, stats = db.select({"userid": Interval(low=5, high=7)})
        assert 1 <= stats.pages_touched <= min(stats.rows_matched + 1,
                                               db.num_pages)

    def test_query_before_index_build_fails(self):
        db = LocalDB(SCHEMA, ["userid"])
        db.bulk_load([(1, 1, "2012-12-01", 1.0)])
        with pytest.raises(HadoopDBError):
            db.select({"userid": Interval.point(1)})

    def test_index_range_inclusiveness(self):
        db = loaded_db()
        closed, _ = db.select({"userid": Interval(low=10, high=12,
                                                  high_inclusive=True)})
        half_open, _ = db.select({"userid": Interval(low=10, high=12)})
        assert len(closed) == len(half_open) + 4  # one extra user x 4 days


@pytest.fixture
def cluster():
    config = HadoopDBConfig(num_nodes=4, chunks_per_node=2)
    db = HadoopDB(SCHEMA, ["userid", "regionid", "ts"],
                  partition_column="userid", config=config,
                  data_scale=1e5)
    db.load(meter_rows(num_users=100, num_days=5))
    db.load_archive([(u, f"user{u}") for u in range(100)], key_position=0)
    return db


class TestEngine:
    def test_load_partitions_everything(self, cluster):
        assert cluster.total_rows == 500

    def test_same_user_same_chunk(self, cluster):
        """GlobalHasher/LocalHasher keep one user's rows together."""
        locations = {}
        for node, chunk_dbs in enumerate(cluster._chunks):
            for chunk, db in enumerate(chunk_dbs):
                for row in db._rows:
                    locations.setdefault(row[0], set()).add((node, chunk))
        assert all(len(spots) == 1 for spots in locations.values())

    def test_aggregate_matches_direct_sum(self, cluster):
        rows = meter_rows(num_users=100, num_days=5)
        expected = sum(r[3] for r in rows if 10 <= r[0] < 40)
        result = cluster.aggregate(
            {"userid": Interval(low=10, high=40)},
            value_position=3)
        assert result.rows[0][0] == pytest.approx(expected)

    def test_aggregate_empty(self, cluster):
        result = cluster.aggregate({"userid": Interval(low=10**6)},
                                   value_position=3)
        assert result.rows == [(None,)]

    def test_group_by(self, cluster):
        result = cluster.group_by(
            {"userid": Interval(low=0, high=100)},
            group_position=2, value_position=3)
        assert len(result.rows) == 5  # five days
        rows = meter_rows(num_users=100, num_days=5)
        expected = sum(r[3] for r in rows)
        assert sum(v for _k, v in result.rows) == pytest.approx(expected)

    def test_join_with_replicated_archive(self, cluster):
        result = cluster.join(
            {"userid": Interval(low=3, high=5),
             "ts": Interval.point("2012-12-02")},
            key_position=0,
            project=lambda fact, user: (user[1], fact[3]))
        assert sorted(name for name, _v in result.rows) \
            == ["user3", "user4"]

    def test_query_before_load_fails(self):
        db = HadoopDB(SCHEMA, ["userid"], partition_column="userid")
        with pytest.raises(HadoopDBError):
            db.aggregate({"userid": Interval.point(1)}, value_position=3)


class TestTimeModel:
    def test_time_grows_with_selectivity(self, cluster):
        point = cluster.aggregate({"userid": Interval.point(5)},
                                  value_position=3)
        narrow = cluster.aggregate({"userid": Interval(low=0, high=10)},
                                   value_position=3)
        wide = cluster.aggregate({"userid": Interval(low=0, high=30)},
                                 value_position=3)
        assert point.time.total <= narrow.time.total <= wide.time.total

    def test_collect_launch_in_index_component(self, cluster):
        result = cluster.aggregate({"userid": Interval.point(5)},
                                   value_position=3)
        assert result.time.read_index_and_other \
            == cluster.config.collect_launch_seconds

    def test_seq_scan_bounded_by_table_size(self, cluster):
        """Even a match-everything query never exceeds reading every page
        plus CPU over every row."""
        result = cluster.aggregate({"userid": Interval(low=0, high=1000)},
                                   value_position=3)
        config = cluster.config
        node_rows = max(s.rows_total for s in result.per_node_stats) \
            * cluster.data_scale
        ceiling = (node_rows / config.rows_per_page * 8192
                   / config.page_read_bandwidth
                   + node_rows * config.cpu_seconds_per_row
                   / config.cores_per_node
                   + config.paper_chunks_per_node
                   * config.chunk_overhead_seconds
                   + config.collect_launch_seconds)
        assert result.time.total <= ceiling * 1.01
