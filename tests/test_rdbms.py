"""Tests for the B+-tree, buffer pool, and the Figure 3 write models."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdbms.btree import BPlusTree, BufferPool
from repro.rdbms.writer import (RdbmsWriteConfig, measure_dbms_write,
                                measure_hdfs_write)


class TestBufferPool:
    def test_hit_after_touch(self):
        pool = BufferPool(capacity=2)
        pool.touch(1)
        pool.touch(1)
        assert pool.hits == 1 and pool.misses == 1

    def test_lru_eviction(self):
        pool = BufferPool(capacity=2)
        pool.touch(1, dirty=True)
        pool.touch(2)
        pool.touch(3)  # evicts 1 (dirty)
        assert pool.dirty_evictions == 1
        pool.touch(1)  # miss again
        assert pool.misses == 4

    def test_move_to_end_on_touch(self):
        pool = BufferPool(capacity=2)
        pool.touch(1)
        pool.touch(2)
        pool.touch(1)  # refresh 1
        pool.touch(3)  # should evict 2, not 1
        pool.touch(1)
        assert pool.hits == 2


class TestBPlusTree:
    def test_insert_search(self):
        tree = BPlusTree(order=8)
        for i in range(100):
            tree.insert(i * 3, f"v{i}")
        assert tree.search(30) == ["v10"]
        assert tree.search(31) == []
        assert tree.num_keys == 100

    def test_duplicates(self):
        tree = BPlusTree(order=8)
        for i in range(5):
            tree.insert(7, i)
        assert sorted(tree.search(7)) == [0, 1, 2, 3, 4]

    def test_range_scan(self):
        tree = BPlusTree(order=8)
        for i in range(50):
            tree.insert(i, i)
        got = tree.range_scan(10, 20)
        assert [k for k, _ in got] == list(range(10, 20))

    def test_items_sorted(self):
        tree = BPlusTree(order=6)
        keys = list(range(200))
        random.Random(3).shuffle(keys)
        for key in keys:
            tree.insert(key, key)
        assert [k for k, _ in tree.items()] == list(range(200))

    def test_height_grows_logarithmically(self):
        tree = BPlusTree(order=8)
        for i in range(1000):
            tree.insert(i, i)
        assert 3 <= tree.height <= 6
        assert tree.splits > 0

    def test_random_keys_miss_more_than_sequential(self):
        """The mechanism behind Figure 3: random keys thrash the pool."""
        def build(keys):
            tree = BPlusTree(order=16, pool=BufferPool(capacity=8))
            for key in keys:
                tree.insert(key, key)
            return tree.pool.misses

        sequential = build(list(range(3000)))
        shuffled = list(range(3000))
        random.Random(7).shuffle(shuffled)
        assert build(shuffled) > 3 * sequential

    def test_order_validation(self):
        with pytest.raises(ValueError):
            BPlusTree(order=2)


@settings(max_examples=40, deadline=None)
@given(keys=st.lists(st.integers(-1000, 1000), min_size=1, max_size=200),
       low=st.integers(-1000, 1000), width=st.integers(0, 500))
def test_property_btree_matches_sorted_reference(keys, low, width):
    tree = BPlusTree(order=6)
    for i, key in enumerate(keys):
        tree.insert(key, i)
    high = low + width
    expected = sorted((k, i) for i, k in enumerate(keys)
                      if low <= k < high)
    assert sorted(tree.range_scan(low, high)) == expected
    assert [k for k, _ in tree.items()] == sorted(keys)


def _rows(n, seed=1):
    """Meter-like records (~110 bytes, as in the paper's table); userIds
    shuffled so the index sees random keys while the heap stays
    arrival-ordered."""
    rng = random.Random(seed)
    users = list(range(n))
    rng.shuffle(users)
    return [(u, rng.randint(0, 10), "2012-12-01",
             round(rng.uniform(0, 50), 2),
             *[round(rng.uniform(0, 100), 2) for _ in range(10)])
            for u in users]


class TestWriteThroughput:
    def test_figure3_ordering(self):
        rows = _rows(20000)
        with_index = measure_dbms_write(rows, 0, with_index=True)
        without = measure_dbms_write(rows, 0, with_index=False)
        hdfs = measure_hdfs_write(rows)
        assert with_index.mb_per_second < without.mb_per_second \
            < hdfs.mb_per_second
        # the paper's rough bands (log2 axis, 1..64 MB/s)
        assert 1 <= with_index.mb_per_second <= 8
        assert 4 <= without.mb_per_second <= 20
        assert 16 <= hdfs.mb_per_second <= 80

    def test_index_stats_reported(self):
        result = measure_dbms_write(_rows(5000), 0, with_index=True)
        assert result.pool_misses > 0
        assert result.page_splits > 0
        without = measure_dbms_write(_rows(5000), 0, with_index=False)
        assert without.pool_misses == 0

    def test_hdfs_write_actually_writes(self):
        from repro.hdfs.filesystem import HDFS
        fs = HDFS(num_datanodes=4)
        result = measure_hdfs_write(_rows(1000), fs=fs,
                                    parallel_clients=2)
        assert result.rows == 1000
        assert fs.exists("/ingest/client-0")
        assert fs.total_size("/ingest") == result.bytes_written

    def test_config_sensitivity(self):
        rows = _rows(8000)
        slow = measure_dbms_write(
            rows, 0, with_index=True,
            config=RdbmsWriteConfig(random_io_seconds=500e-6))
        fast = measure_dbms_write(
            rows, 0, with_index=True,
            config=RdbmsWriteConfig(random_io_seconds=10e-6))
        assert slow.mb_per_second < fast.mb_per_second
