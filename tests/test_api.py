"""Tests for the stable public connection API (``repro.connect``)."""

from __future__ import annotations

import warnings

import pytest

import repro
from repro.api import Connection, Cursor, bind_parameters
from repro.errors import InterfaceError
from repro.hive.plan import Plan
from repro.hive.session import QueryOptions

from tests.conftest import METER_DDL, meter_rows

INDEX_SQL = ("CREATE INDEX dgf_idx ON TABLE meterdata"
             "(userid, regionid, ts) AS 'dgf' IDXPROPERTIES "
             "('userid'='0_25', 'regionid'='0_1', 'ts'='2012-12-01_2d', "
             "'precompute'='sum(powerconsumed),count(*)')")


@pytest.fixture
def conn():
    connection = repro.connect()
    connection.execute(METER_DDL)
    rows = meter_rows()
    connection.load_rows("meterdata", rows[: len(rows) // 2])
    connection.load_rows("meterdata", rows[len(rows) // 2:])
    connection.execute(INDEX_SQL)
    yield connection
    connection.close()


class TestModuleSurface:
    def test_pep249_module_globals(self):
        assert repro.apilevel == "2.0"
        assert repro.threadsafety == 2
        assert repro.paramstyle == "qmark"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                assert getattr(repro, name) is not None

    def test_hive_session_import_warns_but_works(self):
        with pytest.deprecated_call():
            cls = repro.HiveSession
        from repro.hive.session import HiveSession
        assert cls is HiveSession

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.no_such_name


class TestConnect:
    def test_connect_returns_open_connection(self):
        with repro.connect() as connection:
            assert isinstance(connection, Connection)
            assert not connection.closed
            assert connection.cache is not None  # cache defaults on
        assert connection.closed

    def test_connect_cache_off(self):
        with repro.connect(cache=False) as connection:
            assert connection.cache is None

    def test_execute_returns_query_result(self, conn):
        result = conn.execute("SELECT count(*) FROM meterdata")
        assert result.scalar() == 1200
        assert result.stats is not None

    def test_qmark_parameters_round_trip(self, conn):
        direct = conn.execute(
            "SELECT sum(powerconsumed) FROM meterdata "
            "WHERE userid >= 20 AND userid < 120 "
            "AND ts >= '2012-12-01' AND ts < '2012-12-05'")
        bound = conn.execute(
            "SELECT sum(powerconsumed) FROM meterdata "
            "WHERE userid >= ? AND userid < ? "
            "AND ts >= ? AND ts < ?",
            (20, 120, "2012-12-01", "2012-12-05"))
        assert bound.rows == direct.rows

    def test_executemany_returns_results_in_order(self, conn):
        results = conn.executemany(
            "SELECT count(*) FROM meterdata WHERE userid >= ? "
            "AND userid < ?", [(0, 50), (50, 100), (0, 200)])
        assert [r.scalar() for r in results] == [300, 300, 1200]

    def test_explain_returns_structured_plan(self, conn):
        plan = conn.explain("SELECT sum(powerconsumed) FROM meterdata "
                            "WHERE userid >= 20 AND userid < 120 "
                            "AND ts >= '2012-12-01' AND ts < '2012-12-05'")
        assert isinstance(plan, Plan)
        assert plan.uses_index
        assert plan.trace is None  # not executed
        analyzed = conn.explain(
            "SELECT sum(powerconsumed) FROM meterdata "
            "WHERE userid >= 20 AND userid < 120 "
            "AND ts >= '2012-12-01' AND ts < '2012-12-05'", analyze=True)
        assert analyzed.trace is not None
        assert "dgf" in analyzed.render()

    def test_service_property_runs_statements(self, conn):
        results = conn.service.run_all(
            ["SELECT count(*) FROM meterdata"] * 4)
        assert [r.scalar() for r in results] == [1200] * 4

    def test_multi_worker_connection_routes_via_service(self):
        with repro.connect(max_workers=4) as connection:
            connection.execute(
                "CREATE TABLE t (a bigint, b double)")
            connection.load_rows("t", [(n, float(n)) for n in range(10)])
            assert connection.execute(
                "SELECT sum(b) FROM t").scalar() == 45.0
            assert connection._service is not None

    def test_closed_connection_rejects_work(self, conn):
        conn.close()
        with pytest.raises(InterfaceError):
            conn.execute("SELECT count(*) FROM meterdata")
        with pytest.raises(InterfaceError):
            conn.cursor()

    def test_commit_is_a_noop(self, conn):
        conn.commit()


class TestCursor:
    def test_fetch_interfaces(self, conn):
        cur = conn.cursor()
        assert isinstance(cur, Cursor)
        cur.execute("SELECT userid, sum(powerconsumed) FROM meterdata "
                    "WHERE userid >= 0 AND userid < 5 GROUP BY userid")
        assert cur.rowcount == 5
        assert [d[0] for d in cur.description] == ["userid",
                                                   "sum(powerconsumed)"]
        first = cur.fetchone()
        assert first is not None
        two = cur.fetchmany(2)
        assert len(two) == 2
        rest = cur.fetchall()
        assert len(rest) == 2
        assert cur.fetchone() is None

    def test_cursor_iteration_and_chaining(self, conn):
        rows = list(conn.cursor().execute(
            "SELECT userid FROM meterdata WHERE userid >= 0 "
            "AND userid < 3 AND ts >= '2012-12-01' "
            "AND ts < '2012-12-02'", options=QueryOptions(use_index=False)))
        assert sorted(r[0] for r in rows) == [0, 1, 2]

    def test_scalar_convenience(self, conn):
        assert conn.cursor().execute(
            "SELECT count(*) FROM meterdata").scalar() == 1200

    def test_executemany_accumulates_rowcount(self, conn):
        cur = conn.cursor()
        cur.executemany(
            "SELECT userid FROM meterdata WHERE userid >= ? AND "
            "userid < ? AND ts >= '2012-12-01' AND ts < '2012-12-02'",
            [(0, 3), (3, 5)])
        assert cur.rowcount == 5
        assert len(cur.fetchall()) == 2  # last statement's rows

    def test_executemany_empty_sequence_is_a_noop(self, conn):
        cur = conn.cursor()
        cur.execute("SELECT count(*) FROM meterdata")
        cur.executemany("SELECT userid FROM meterdata WHERE userid = ?",
                        [])
        # no statement ran: the previous result, rowcount and rows stand
        assert cur.rowcount == 1
        assert cur.fetchone() == (1200,)
        fresh = conn.cursor()
        fresh.executemany("SELECT ?", [])
        assert fresh.rowcount == -1 and fresh.result is None

    def test_executemany_mismatch_mid_batch_stops_there(self, conn):
        cur = conn.cursor()
        with pytest.raises(InterfaceError):
            cur.executemany(
                "SELECT userid FROM meterdata WHERE userid >= ? AND "
                "userid < ? AND ts >= '2012-12-01' AND ts < '2012-12-02'",
                [(0, 3), (3,), (3, 5)])  # second set is short one value
        # the first set ran and installed its result; the third never ran
        assert cur.rowcount == 3
        assert [r[0] for r in cur.fetchall()] == [0, 1, 2]

    def test_plan_exposed_on_cursor(self, conn):
        cur = conn.cursor().execute(
            "SELECT sum(powerconsumed) FROM meterdata "
            "WHERE userid >= 20 AND userid < 120 "
            "AND ts >= '2012-12-01' AND ts < '2012-12-05'")
        assert isinstance(cur.plan, Plan)
        assert cur.plan.uses_index
        assert cur.result is not None

    def test_closed_cursor_rejects_fetches(self, conn):
        cur = conn.cursor()
        cur.close()
        with pytest.raises(InterfaceError):
            cur.fetchall()
        with conn.cursor() as scoped:
            scoped.execute("SELECT count(*) FROM meterdata")
        with pytest.raises(InterfaceError):
            scoped.fetchone()

    def test_scalar_before_execute_raises(self, conn):
        with pytest.raises(InterfaceError):
            conn.cursor().scalar()


class TestParameterBinding:
    def test_binding_skips_placeholders_inside_strings(self):
        sql = bind_parameters(
            "SELECT * FROM t WHERE c = 'what?' AND a >= ?", (3,))
        assert sql == "SELECT * FROM t WHERE c = 'what?' AND a >= 3"

    def test_binding_types(self):
        sql = bind_parameters("SELECT ?, ?, ?, ?",
                              (None, 42, 2.5, "text"))
        assert sql == "SELECT NULL, 42, 2.5, 'text'"

    def test_too_few_parameters_raises(self):
        with pytest.raises(InterfaceError):
            bind_parameters("SELECT ? + ?", (1,))

    def test_too_many_parameters_raises(self):
        with pytest.raises(InterfaceError):
            bind_parameters("SELECT ?", (1, 2))

    def test_quoted_string_parameter_rejected(self):
        # the HiveQL lexer has no escaping, so this cannot be bound safely
        with pytest.raises(InterfaceError):
            bind_parameters("SELECT ?", ("it's",))
        with pytest.raises(InterfaceError):
            bind_parameters("SELECT ?", ('say "hi"',))

    def test_bool_and_unbindable_types_rejected(self):
        with pytest.raises(InterfaceError):
            bind_parameters("SELECT ?", (True,))
        with pytest.raises(InterfaceError):
            bind_parameters("SELECT ?", (object(),))


class TestKnobOwnership:
    """Every tuning knob has exactly one home, and misplacement is loud."""

    def test_connect_rejects_unknown_keywords(self):
        with pytest.raises(TypeError, match="unknown keyword"):
            repro.connect(bogus=1)

    def test_connect_redirects_per_query_knobs(self):
        with pytest.raises(TypeError, match="QueryOptions"):
            repro.connect(use_index=False)
        with pytest.raises(TypeError, match="dgf_layout"):
            repro.connect(dgf_layout="primary")

    def test_connect_engine_shorthands(self):
        with repro.connect(vectorized=True, engine_workers=2) as connection:
            assert connection.session.execution.vectorized is True
            assert connection.session.execution.max_workers == 2

    def test_execute_accepts_dict_options(self, conn):
        indexed = conn.execute(
            "SELECT count(*) FROM meterdata WHERE userid >= 0")
        scanned = conn.execute(
            "SELECT count(*) FROM meterdata WHERE userid >= 0",
            options={"use_index": False})
        assert scanned.rows == indexed.rows
        assert scanned.stats.index_used is None

    def test_execute_rejects_unknown_option_keys(self, conn):
        with pytest.raises(TypeError, match="unknown query option"):
            conn.execute("SELECT count(*) FROM meterdata",
                         options={"nope": 1})

    def test_execute_redirects_session_knobs(self, conn):
        with pytest.raises(TypeError, match="connect"):
            conn.execute("SELECT count(*) FROM meterdata",
                         options={"vectorized": True})

    def test_execute_rejects_non_mapping_options(self, conn):
        with pytest.raises(TypeError, match="QueryOptions"):
            conn.execute("SELECT count(*) FROM meterdata", options=42)

    def test_executemany_accepts_dict_options(self, conn):
        cursor = conn.cursor()
        cursor.executemany(
            "SELECT count(*) FROM meterdata WHERE userid >= ?",
            [(0,), (100,)], options={"use_index": False})
        assert cursor.fetchone() is not None

    def test_connection_advisor_facade(self, conn):
        from repro.service.advisor import Advisor
        advisor = conn.advisor("meterdata", "dgf_idx")
        assert isinstance(advisor, Advisor)
        assert advisor.session is conn.session
        advisor.observe()
        conn.execute("SELECT sum(powerconsumed) FROM meterdata "
                     "WHERE userid >= 40 AND userid < 45")
        assert len(advisor.entries()) == 1
        report = advisor.report()
        assert report.layouts
