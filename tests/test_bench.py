"""Smoke tests of the experiment harness at a tiny scale.

Every experiment function must run end to end, produce the paper's
series, and pass its own built-in shape assertions; the report renderer
must produce valid markdown.  (The full-scale run is `python -m
repro.bench`; these tests keep the harness itself correct.)
"""

import pytest

from repro.bench import experiments as exps
from repro.bench.lab import (INTERVAL_CASES, MeterLab, MeterLabConfig,
                             TpchLab, TpchLabConfig)
from repro.hiveql.predicates import Interval

#: small but dense enough that per-GFU record counts (and hence the
#: paper's size relations checked inside table2) remain meaningful
TINY = MeterLabConfig(num_users=500, num_days=6, readings_per_day=4)
TINY_TPCH = TpchLabConfig(num_orders=2500)


@pytest.fixture(scope="module")
def lab():
    return MeterLab(TINY)


@pytest.fixture(scope="module")
def tpch():
    return TpchLab(TINY_TPCH)


class TestLabHelpers:
    def test_data_scale(self, lab):
        assert lab.data_scale == pytest.approx(11e9 / len(lab.rows))

    def test_predicate_point(self, lab):
        text = lab.predicate("point")
        assert "userid =" in text and "ts =" in text

    def test_predicate_selectivity_hits_target(self, lab):
        accurate = lab.accurate_records(0.05)
        assert accurate == pytest.approx(0.05 * len(lab.rows), rel=0.5)

    def test_intervals_match_predicate(self, lab):
        intervals = lab.intervals_for(0.05)
        assert isinstance(intervals["userid"], Interval)
        assert set(intervals) == {"userid", "regionid", "ts"}

    def test_query_sql_kinds(self, lab):
        assert "GROUP BY" in lab.query_sql("groupby", 0.05)
        assert "JOIN" in lab.query_sql("join", 0.05)
        with pytest.raises(ValueError):
            lab.query_sql("delete", 0.05)

    def test_interval_cases_ordered(self, lab):
        sizes = [lab.interval_size(c) for c in INTERVAL_CASES]
        assert sizes[0] > sizes[1] > sizes[2] >= 1

    def test_sessions_cached(self, lab):
        assert lab.dgf_session("large") is lab.dgf_session("large")
        assert lab.scan_session is lab.scan_session


class TestExperimentsRun:
    def test_fig3(self):
        result = exps.fig3_write_throughput(num_rows=8000)
        assert len(result.rows) == 3
        assert "MB/s" in result.headers

    def test_table2(self, lab):
        result = exps.table2_index_build(lab)
        assert len(result.rows) == 5  # compact x2 + dgf x3
        assert result.data["dgf-large"]["gfus"] > 0

    def test_aggregation(self, lab):
        result = exps.aggregation_queries(lab)
        # 3 selectivities x (scan + 3 dgf + compact + hadoopdb)
        assert len(result.rows) == 18
        assert result.data["5%/dgf-small"]["records_read"] >= 0

    def test_groupby(self, lab):
        result = exps.groupby_queries(lab)
        assert len(result.rows) == 18

    def test_join(self, lab):
        result = exps.join_queries(lab)
        assert len(result.rows) == 18

    def test_partial(self, lab):
        result = exps.partial_query(lab)
        assert len(result.rows) == 7  # 3 cases x 2 variants + compact

    def test_tpch(self, tpch):
        result = exps.tpch_q6(tpch)
        labels = [row[0] for row in result.rows]
        assert labels == ["DGFIndex", "Compact-2D", "Compact-3D",
                          "ScanTable", "ScanTable (RCFile)"]

    def test_ablation_formats(self, lab):
        result = exps.ablation_formats(lab)
        assert result.data["5%"]["text"] == result.data["5%"]["rcfile"]

    def test_ablation_advisor(self, lab):
        result = exps.ablation_advisor(lab)
        assert result.data["policy"]

    def test_partition_explosion(self):
        result = exps.partition_explosion()
        assert result.data["projected_bytes"] == 1_000_000 * 150


class TestRendering:
    def test_markdown_tables(self, lab):
        result = exps.table2_index_build(lab)
        text = result.markdown()
        assert text.startswith("**table2")
        assert text.count("|") > 10
        assert result.notes in text

    def test_sel_label(self):
        assert exps._sel_label("point") == "point"
        assert exps._sel_label(0.05) == "5%"

    def test_check_close_raises_on_divergence(self):
        from repro.errors import BenchmarkError
        exps._check_close(1.0, 1.0 + 1e-9, "ok")
        exps._check_close(None, None, "ok")
        with pytest.raises(BenchmarkError):
            exps._check_close(1.0, 2.0, "diverges")
        with pytest.raises(BenchmarkError):
            exps._check_close(None, 1.0, "null vs value")
