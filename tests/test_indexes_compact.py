"""Tests for the Compact Index (and its Aggregate/Bitmap derivatives)."""

import pytest

from repro.errors import IndexError_
from repro.hive.indexhandler import resolve_handler_name
from repro.hive.session import QueryOptions
from tests.conftest import SCAN, make_session, meter_rows

METER_DDL_RC = ("CREATE TABLE meterdata (userid bigint, regionid int, "
                "ts date, powerconsumed double) STORED AS RCFILE")

AGG_SQL = ("SELECT sum(powerconsumed) FROM meterdata "
           "WHERE regionid >= 1 AND regionid <= 2 "
           "AND ts >= '2012-12-02' AND ts < '2012-12-04'")


def rc_session(block_size=16 * 1024):
    session = make_session(block_size)
    session.execute(METER_DDL_RC)
    rows = meter_rows()
    half = len(rows) // 2
    session.load_rows("meterdata", rows[:half])
    session.load_rows("meterdata", rows[half:])
    return session


class TestHandlerResolution:
    def test_short_names(self):
        assert resolve_handler_name("dgf") == "dgf"
        assert resolve_handler_name("COMPACT") == "compact"

    def test_hive_class_names(self):
        assert resolve_handler_name(
            "org.apache.hadoop.hive.ql.index.compact."
            "CompactIndexHandler") == "compact"
        assert resolve_handler_name(
            "org.apache.hadoop.hive.ql.index.bitmap."
            "BitmapIndexHandler") == "bitmap"
        assert resolve_handler_name("org...dgf.DgfIndexHandler") == "dgf"

    def test_unknown(self):
        with pytest.raises(IndexError_):
            resolve_handler_name("mystery")


class TestCompactIndex:
    @pytest.fixture
    def session(self):
        session = rc_session()
        session.execute("CREATE INDEX cidx ON TABLE meterdata"
                        "(regionid, ts) AS 'compact'")
        return session

    def test_build_creates_index_table(self, session):
        index_table = session.metastore.get_table(
            "default__meterdata_cidx__")
        assert index_table.properties["is_index_table"]
        # rows = distinct (regionid, ts, file) combos; each day's rows
        # live in exactly one of the two load files: 5 regions x 6 days
        assert session.table_row_count("default__meterdata_cidx__") == 30

    def test_build_report(self, session):
        report = session.build_report("meterdata", "cidx")
        assert report.index_size_bytes \
            == session.fs.total_size("/warehouse/default__meterdata_cidx__")
        assert report.build_time.total > 0

    def test_query_equivalence(self, session):
        scan = session.execute(AGG_SQL, SCAN)
        indexed = session.execute(AGG_SQL)
        assert indexed.rows[0][0] == pytest.approx(scan.rows[0][0])
        assert "compact(cidx)" in indexed.stats.index_used

    def test_index_filters_splits_on_sorted_data(self, session):
        """Meter data is time-sorted, so a narrow ts range prunes splits."""
        indexed = session.execute(AGG_SQL)
        scan = session.execute(AGG_SQL, SCAN)
        assert indexed.stats.records_read < scan.stats.records_read

    def test_cannot_filter_within_split(self, session):
        """The Compact Index reads *whole* chosen splits: it always reads
        at least every record whose (regionid, ts) matched."""
        indexed = session.execute(AGG_SQL)
        assert indexed.stats.records_read > indexed.stats.records_matched

    def test_declines_without_indexed_predicate(self, session):
        result = session.execute(
            "SELECT sum(powerconsumed) FROM meterdata "
            "WHERE powerconsumed > 49.9")
        assert result.stats.index_used is None

    def test_scattered_data_filters_nothing(self):
        """The paper's TPC-H observation: on data with no physical order,
        the Compact Index keeps every split."""
        session = make_session(8 * 1024)
        session.execute("CREATE TABLE scattered (k int, v double) "
                        "STORED AS RCFILE")
        # every value of k appears across the whole file
        session.load_rows("scattered",
                          [(i % 7, float(i)) for i in range(2000)])
        session.execute("CREATE INDEX s ON TABLE scattered(k) "
                        "AS 'compact'")
        scan = session.execute("SELECT sum(v) FROM scattered "
                               "WHERE k = 3", SCAN)
        indexed = session.execute("SELECT sum(v) FROM scattered "
                                  "WHERE k = 3")
        assert indexed.rows == scan.rows
        assert indexed.stats.records_read == scan.stats.records_read
        # ... and it still pays for scanning the index table
        assert indexed.stats.time.read_index_and_other \
            > scan.stats.time.read_index_and_other

    def test_index_time_accounted(self, session):
        indexed = session.execute(AGG_SQL)
        assert indexed.stats.index_records_scanned == 30
        assert indexed.stats.time.read_index_and_other \
            > session.cluster.job_launch_seconds

    def test_drop_index_removes_table(self, session):
        session.execute("DROP INDEX cidx ON meterdata")
        assert not session.metastore.has_table("default__meterdata_cidx__")


class TestAggregateIndex:
    @pytest.fixture
    def session(self):
        session = rc_session()
        session.execute("CREATE INDEX aidx ON TABLE meterdata"
                        "(regionid, ts) AS 'aggregate'")
        return session

    def test_group_by_rewrite(self, session):
        sql = ("SELECT regionid, count(*) FROM meterdata "
               "WHERE ts >= '2012-12-02' AND ts < '2012-12-04' "
               "GROUP BY regionid")
        scan = session.execute(sql, SCAN)
        rewritten = session.execute(sql)
        assert sorted(rewritten.rows) == sorted(scan.rows)
        assert "rewrite" in rewritten.stats.index_used
        assert rewritten.stats.records_read == 0  # index-as-data

    def test_rewrite_requires_count_only(self, session):
        sql = ("SELECT regionid, sum(powerconsumed) FROM meterdata "
               "GROUP BY regionid")
        result = session.execute(sql)
        assert result.stats.index_used is None \
            or "rewrite" not in result.stats.index_used

    def test_rewrite_requires_indexed_group_columns(self, session):
        sql = "SELECT userid, count(*) FROM meterdata GROUP BY userid"
        result = session.execute(sql)
        assert result.stats.index_used is None \
            or "rewrite" not in result.stats.index_used

    def test_rewrite_rejects_residual_predicates(self, session):
        sql = ("SELECT regionid, count(*) FROM meterdata "
               "WHERE powerconsumed > 10 GROUP BY regionid")
        scan = session.execute(sql, SCAN)
        result = session.execute(sql)
        assert sorted(result.rows) == sorted(scan.rows)
        assert result.stats.index_used is None \
            or "rewrite" not in (result.stats.index_used or "")

    def test_falls_back_to_split_filtering(self, session):
        scan = session.execute(AGG_SQL, SCAN)
        result = session.execute(AGG_SQL)
        assert result.rows[0][0] == pytest.approx(scan.rows[0][0])
        assert "aggregate-as-compact" in result.stats.index_used


class TestBitmapIndex:
    @pytest.fixture
    def session(self):
        session = rc_session()
        session.execute("CREATE INDEX bidx ON TABLE meterdata"
                        "(regionid, ts) AS 'bitmap'")
        return session

    def test_requires_rcfile(self):
        session = make_session()
        session.execute("CREATE TABLE t (a int)")  # TextFile
        session.load_rows("t", [(1,)])
        with pytest.raises(IndexError_):
            session.execute("CREATE INDEX b ON TABLE t(a) AS 'bitmap'")

    def test_query_equivalence(self, session):
        scan = session.execute(AGG_SQL, SCAN)
        indexed = session.execute(AGG_SQL)
        assert indexed.rows[0][0] == pytest.approx(scan.rows[0][0])
        assert "bitmap(bidx)" in indexed.stats.index_used

    def test_filters_rows_within_groups(self, session):
        """Unlike Compact, Bitmap reads only matching rows of a group."""
        indexed = session.execute(AGG_SQL)
        compact_session = rc_session()
        compact_session.execute("CREATE INDEX cidx ON TABLE meterdata"
                                "(regionid, ts) AS 'compact'")
        compact = compact_session.execute(AGG_SQL)
        assert indexed.stats.records_read <= compact.stats.records_read
        assert indexed.stats.records_read \
            == indexed.stats.records_matched  # exact row filtering
