"""Figure 18: TPC-H Q6 query times (DGF vs Compact-2D/3D vs ScanTable)."""

from repro.hive.session import QueryOptions


def test_dgf_q6(tpch_lab, benchmark):
    result = benchmark.pedantic(
        lambda: tpch_lab.dgf_session.execute(
            tpch_lab.q6(), QueryOptions(index_name="dgf_q6")),
        rounds=3, iterations=1)
    assert "mode=agg-headers" in result.stats.index_used


def test_compact2_q6(tpch_lab, benchmark):
    result = benchmark.pedantic(
        lambda: tpch_lab.compact_session.execute(
            tpch_lab.q6(), QueryOptions(index_name="cmp2")),
        rounds=1, iterations=1)
    assert "compact" in result.stats.index_used


def test_scan_q6(tpch_lab, benchmark):
    result = benchmark.pedantic(
        lambda: tpch_lab.scan_session.execute(
            tpch_lab.q6(), QueryOptions(use_index=False)),
        rounds=1, iterations=1)
    assert result.stats.index_used is None


class TestFig18:
    def test_dgf_much_faster(self, tpch_experiment):
        """Paper: DGF ~25x faster than Compact on Q6."""
        data = tpch_experiment.data
        assert data["DGFIndex"]["seconds"] * 5 \
            < data["Compact-2D"]["seconds"]
        assert data["DGFIndex"]["seconds"] * 5 \
            < data["Compact-3D"]["seconds"]
        assert data["DGFIndex"]["seconds"] * 5 \
            < data["ScanTable"]["seconds"]

    def test_compact_no_better_than_scanning(self, tpch_experiment):
        """Paper: on scattered data the Compact indexes are slower than
        scanning the whole table (index-table scan is pure overhead)."""
        data = tpch_experiment.data
        rc_scan = data["ScanTable-RCFile"]["seconds"]
        assert data["Compact-2D"]["seconds"] >= rc_scan
        assert data["Compact-3D"]["seconds"] >= rc_scan

    def test_compact3d_overhead_dominates(self, tpch_experiment):
        data = tpch_experiment.data
        assert data["Compact-3D"]["seconds"] \
            > data["Compact-2D"]["seconds"]
