"""Figures 8-10: aggregation MDRQ times per system, per selectivity.

Benchmarks the actual query executions (DGF / Compact / HadoopDB / scan);
shape assertions use the cached full experiment.
"""

import pytest

from repro.data.meter import METER_SCHEMA
from repro.hive.session import QueryOptions

SELECTIVITIES = ("point", 0.05, 0.12)


@pytest.mark.parametrize("selectivity", SELECTIVITIES)
def test_dgf_aggregation(meter_lab, benchmark, selectivity):
    session = meter_lab.dgf_session("medium")
    sql = meter_lab.query_sql("agg", selectivity)
    result = benchmark.pedantic(
        lambda: session.execute(sql, QueryOptions(index_name="dgf_idx")),
        rounds=3, iterations=1)
    assert "dgf" in result.stats.index_used


@pytest.mark.parametrize("selectivity", SELECTIVITIES)
def test_compact_aggregation(meter_lab, benchmark, selectivity):
    session = meter_lab.compact_session
    sql = meter_lab.query_sql("agg", selectivity)
    result = benchmark.pedantic(
        lambda: session.execute(sql, QueryOptions(index_name="cmp_idx")),
        rounds=3, iterations=1)
    assert "compact" in result.stats.index_used


@pytest.mark.parametrize("selectivity", SELECTIVITIES)
def test_hadoopdb_aggregation(meter_lab, benchmark, selectivity):
    intervals = meter_lab.intervals_for(selectivity)
    value_pos = METER_SCHEMA.index_of("powerconsumed")
    result = benchmark.pedantic(
        lambda: meter_lab.hadoopdb.aggregate(intervals, value_pos),
        rounds=3, iterations=1)
    assert result.time.total > 0


def test_scan_aggregation(meter_lab, benchmark):
    sql = meter_lab.query_sql("agg", 0.05)
    result = benchmark.pedantic(
        lambda: meter_lab.scan_session.execute(
            sql, QueryOptions(use_index=False)),
        rounds=1, iterations=1)
    assert result.stats.index_used is None


class TestPaperShape:
    def test_dgf_beats_compact_and_hadoopdb(self, agg_experiment):
        """The headline claim: 2-50x faster for aggregation queries."""
        data = agg_experiment.data
        for selectivity in ("point", "5%", "12%"):
            dgf_best = min(data[f"{selectivity}/dgf-{c}"]["seconds"]
                           for c in ("large", "medium", "small"))
            assert dgf_best < data[f"{selectivity}/compact"]["seconds"]
            assert dgf_best < data[f"{selectivity}/hadoopdb"]["seconds"]
            assert dgf_best < data[f"{selectivity}/scan"]["seconds"]

    def test_dgf_nearly_flat_across_selectivity(self, agg_experiment):
        """Pre-computation makes DGF aggregation almost selectivity-
        independent (paper Section 5.3.2) while scan stays flat-high and
        the others grow."""
        data = agg_experiment.data
        for case in ("large", "medium", "small"):
            times = [data[f"{s}/dgf-{case}"]["seconds"]
                     for s in ("point", "5%", "12%")]
            assert max(times) < 10 * max(min(times), 1.0)
            assert max(times) < 0.6 * data["12%/scan"]["seconds"]

    def test_compact_degrades_with_selectivity(self, agg_experiment):
        data = agg_experiment.data
        assert data["point/compact"]["seconds"] \
            < data["5%/compact"]["seconds"] * 1.001
        assert data["5%/compact"]["seconds"] \
            <= data["12%/compact"]["seconds"] * 1.001

    def test_hadoopdb_degrades_with_selectivity(self, agg_experiment):
        data = agg_experiment.data
        assert data["point/hadoopdb"]["seconds"] \
            < data["5%/hadoopdb"]["seconds"] \
            < data["12%/hadoopdb"]["seconds"]

    def test_table3_records_read(self, agg_experiment):
        """Table 3: DGF reads shrink as the interval shrinks; Compact
        reads far more than the accurate count; DGF point queries read a
        whole covering cell (more than accurate)."""
        data = agg_experiment.data
        for selectivity in ("5%", "12%"):
            dgf = [data[f"{selectivity}/dgf-{c}"]["records_read"]
                   for c in ("large", "medium", "small")]
            assert dgf[0] >= dgf[1] >= dgf[2]
            accurate = data[f"{selectivity}/dgf-large"]["accurate"]
            assert data[f"{selectivity}/compact"]["records_read"] \
                > accurate
        point = data["point/dgf-large"]
        assert point["records_read"] >= point["accurate"]
