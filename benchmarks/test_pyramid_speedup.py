"""Benchmark: the aggregation pyramid's KV-probe win on a massive grid.

A 128x128 DGF grid (16384 cells, one exact-dyadic row per cell) is
queried over a deliberately misaligned 114x114 window, so the inner
region spans 12996 cells — past the ISSUE 10 floor of 10^4.  The flat
header path must probe every inner cell; the pyramid answers the same
region from a greedy cover of aligned nodes plus a thin fringe of
level-0 leaves.  Asserted, after proving the answers byte-identical:

* **>= 10x fewer physical KV gets** pyramid on vs. off (the paper-style
  cost driver: header probes are the aggregation path's I/O);
* the cover is logarithmic-class — node + leaf count under 1/10th of
  the inner-cell count (same bound seen from the plan, not the stats).

The measured trajectory is appended to ``BENCH_pyramid.json`` at the
repo root — one entry per day, so later PRs extend the series and must
defend the probe ratio.
"""

import json
import time
from pathlib import Path

import pytest

from repro.hive.session import HiveSession, QueryOptions

pytestmark = pytest.mark.slow

#: the ISSUE 10 acceptance floor.
PROBE_RATIO_FLOOR = 10.0

USERS = 128
TS_VALUES = 128

SQL = ("SELECT sum(powerconsumed), count(powerconsumed) FROM meterbig "
       "WHERE userid >= 3 AND userid < 117 "
       "AND ts >= 103 AND ts < 217")

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_pyramid.json"


@pytest.fixture(scope="module")
def measured():
    session = HiveSession(cache=False)
    session.execute("CREATE TABLE meterbig (userid bigint, regionid int, "
                    "ts bigint, powerconsumed double)")
    session.load_rows("meterbig",
                      [(u, u % 3, 100 + t, ((u * 13 + t) % 1024) / 64.0)
                       for u in range(USERS) for t in range(TS_VALUES)])
    session.execute("CREATE INDEX bigidx ON TABLE meterbig(userid, ts) "
                    "AS 'dgf' IDXPROPERTIES ('userid'='0_1', 'ts'='100_1', "
                    "'precompute'='sum(powerconsumed),"
                    "count(powerconsumed)')")
    summary = session.build_pyramid("meterbig", "bigidx")

    before = session.kvstore.snapshot_stats()
    start = time.perf_counter()
    on = session.execute(SQL)
    on_seconds = time.perf_counter() - start
    on_gets = session.kvstore.stats_delta(before).gets

    before = session.kvstore.snapshot_stats()
    start = time.perf_counter()
    off = session.execute(SQL, QueryOptions(dgf_pyramid=False))
    off_seconds = time.perf_counter() - start
    off_gets = session.kvstore.stats_delta(before).gets

    return {"summary": summary["primary"], "on": on, "off": off,
            "on_gets": on_gets, "off_gets": off_gets,
            "on_seconds": on_seconds, "off_seconds": off_seconds}


def test_answers_identical(measured):
    assert measured["on"].rows == measured["off"].rows
    assert measured["on"].stats.index_kv_gets == \
        measured["off"].stats.index_kv_gets, (
            "logical accounting must not depend on the pyramid")


def test_inner_region_is_massive(measured):
    access = measured["off"].plan.access
    assert access.inner_gfus >= 10_000, (
        f"inner region only {access.inner_gfus} cells; the benchmark "
        f"no longer exercises the massive-grid regime")


def test_physical_probe_ratio_at_least_10x(measured):
    ratio = measured["off_gets"] / max(1, measured["on_gets"])
    assert ratio >= PROBE_RATIO_FLOOR, (
        f"pyramid saved only {ratio:.1f}x physical KV gets "
        f"({measured['off_gets']} flat vs {measured['on_gets']} pyramid)")


def test_cover_is_logarithmic_class(measured):
    access = measured["on"].plan.access
    probes = access.pyramid_nodes + access.pyramid_leaves
    inner = measured["off"].plan.access.inner_gfus
    assert probes * PROBE_RATIO_FLOOR <= inner, (
        f"cover of {probes} probes over {inner} inner cells is not "
        f"10x-class")
    assert access.pyramid_levels >= 2, "cover never left level 1"


def test_writes_trajectory_file(measured):
    """Record the run in BENCH_pyramid.json (one entry per day — re-runs
    on the same day replace that day's entry, so the committed
    trajectory grows one point per revision, not per invocation)."""
    if BENCH_PATH.exists():
        document = json.loads(BENCH_PATH.read_text())
    else:
        document = {"bench": "pyramid", "schema_version": 1,
                    "unit": "physical KV gets per query (and seconds)",
                    "trajectory": []}
    access = measured["on"].plan.access
    entry = {
        "date": time.strftime("%Y-%m-%d"),
        "grid": f"{USERS}x{TS_VALUES}",
        "inner_cells": measured["off"].plan.access.inner_gfus,
        "pyramid": {"levels": access.pyramid_levels,
                    "nodes": access.pyramid_nodes,
                    "leaves": access.pyramid_leaves,
                    "built_nodes": measured["summary"]["nodes"]},
        "kv_gets": {"flat": measured["off_gets"],
                    "pyramid": measured["on_gets"],
                    "ratio": round(measured["off_gets"]
                                   / max(1, measured["on_gets"]), 2)},
        "seconds": {"flat": round(measured["off_seconds"], 4),
                    "pyramid": round(measured["on_seconds"], 4)},
    }
    trajectory = [e for e in document["trajectory"]
                  if e["date"] != entry["date"]]
    trajectory.append(entry)
    document["trajectory"] = trajectory
    BENCH_PATH.write_text(json.dumps(document, indent=2, sort_keys=True)
                          + "\n")
    assert json.loads(BENCH_PATH.read_text())["trajectory"][-1]["kv_gets"]
