"""Table 4: records read for GROUP BY / JOIN predicates (same predicate,
same numbers for both query kinds — asserted here)."""

import pytest

from repro.hive.session import QueryOptions


def test_slice_path_record_accounting(meter_lab, benchmark):
    session = meter_lab.dgf_session("small")
    sql = meter_lab.query_sql("groupby", 0.12)
    result = benchmark.pedantic(
        lambda: session.execute(sql, QueryOptions(index_name="dgf_idx")),
        rounds=3, iterations=1)
    assert result.stats.records_read > 0


class TestTable4:
    def test_same_predicate_same_reads_for_groupby_and_join(
            self, groupby_experiment, join_experiment):
        """The paper reports one table for both query kinds 'since their
        predicate is the same'.  The join reads additionally include the
        broadcast build side (userinfo), which is constant."""
        group = groupby_experiment.data
        join = join_experiment.data
        build_side_rows = None
        for selectivity in ("5%", "12%"):
            for case in ("large", "medium", "small"):
                key = f"{selectivity}/dgf-{case}"
                extra = join[key]["records_read"] \
                    - group[key]["records_read"]
                if build_side_rows is None:
                    build_side_rows = extra
                assert extra == build_side_rows
        assert build_side_rows > 0

    def test_accuracy_ordering(self, join_experiment):
        data = join_experiment.data
        for selectivity in ("5%", "12%"):
            accurate = data[f"{selectivity}/dgf-small"]["accurate"]
            small = data[f"{selectivity}/dgf-small"]["records_read"]
            compact = data[f"{selectivity}/compact"]["records_read"]
            assert accurate <= small <= compact
