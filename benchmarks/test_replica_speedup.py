"""Benchmark: the replica fleet's per-layout win, recorded as
``BENCH_replicas.json``.

Reruns the Fig. 8–10 aggregation, Fig. 11–13 GROUP BY and Fig. 14–16
join workloads at the lab's full default scale (80k meter readings) over
a three-layout fleet — the ``medium``-interval primary, a ``fine``
layout at the ``small`` interval, and a deliberately coarse layout
(400-user cells, 5-day buckets) — via
``repro.bench.experiments.replica_fleet``.  Asserted paper/HAIL-shape
claims:

* **best >= 2x worst** on at least one workload (ISSUE 8's floor; the
  observed spread is ~2–25x, largest on aggregations where the fine
  layout answers from pre-computed headers while the coarse layout drags
  in whole 400-user x 5-day cells).
* **no layout is best everywhere** — the fine grid wins point queries
  but pays more index probes than the primary on wide ones, which is
  exactly why a fleet (and a router) is worth its storage.
* **the router never picks the worst layout** on any workload, and its
  measured seconds land within the fleet's [best, worst) span.

Query results are cross-checked against a full table scan inside the
experiment before any timing is trusted.  The measured trajectory is
written to ``BENCH_replicas.json`` at the repo root — one entry per day,
so later PRs extend the series and must defend the baseline.
"""

import json
import time
from pathlib import Path

import pytest

from repro.bench import experiments as exps
from repro.bench.lab import MeterLab

pytestmark = pytest.mark.slow

# ISSUE 8 acceptance floor: best layout >= 2x the worst on >= 1 workload.
SPEEDUP_FLOOR = 2.0

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_replicas.json"


@pytest.fixture(scope="module")
def fleet_experiment():
    return exps.replica_fleet(MeterLab())


def test_best_layout_at_least_2x_worst(fleet_experiment):
    best = max(fleet_experiment.data["workloads"].items(),
               key=lambda kv: kv[1]["speedup_best_over_worst"])
    label, metrics = best
    assert metrics["speedup_best_over_worst"] >= SPEEDUP_FLOOR, (
        f"largest best-over-worst spread is only "
        f"{metrics['speedup_best_over_worst']:.2f}x ({label}); the fleet "
        f"is not earning its storage")
    assert fleet_experiment.data["max_speedup"] == \
        metrics["speedup_best_over_worst"]


def test_no_layout_wins_everywhere(fleet_experiment):
    winners = {metrics["best"]
               for metrics in fleet_experiment.data["workloads"].values()}
    assert len(winners) >= 2, (
        f"{winners} won every workload — a single layout would do, "
        f"no fleet needed")


def test_router_never_picks_the_worst_layout(fleet_experiment):
    for label, metrics in fleet_experiment.data["workloads"].items():
        assert metrics["routed"]["chosen"] != metrics["worst"], (
            f"{label}: router chose the worst layout "
            f"{metrics['worst']!r}")
        worst_seconds = \
            metrics["layouts"][metrics["worst"]]["seconds"]
        assert metrics["routed"]["seconds"] < worst_seconds, (
            f"{label}: routed run ({metrics['routed']['seconds']:.1f}s) "
            f"not faster than the worst layout ({worst_seconds:.1f}s)")


def test_recorded_in_report(fleet_experiment):
    assert fleet_experiment.exp_id == "replica-fleet"
    rendered = fleet_experiment.markdown()
    assert "routed choice" in rendered and "agg point" in rendered


def test_writes_trajectory_file(fleet_experiment):
    """Record the run in BENCH_replicas.json (one entry per day —
    re-runs on the same day replace that day's entry, so the committed
    trajectory grows one point per revision, not per invocation)."""
    if BENCH_PATH.exists():
        document = json.loads(BENCH_PATH.read_text())
    else:
        document = {"bench": "replicas", "schema_version": 1,
                    "unit": "simulated paper-scale seconds",
                    "trajectory": []}
    entry = {
        "date": time.strftime("%Y-%m-%d"),
        "layouts": fleet_experiment.data["layouts"],
        "max_speedup": fleet_experiment.data["max_speedup"],
        "workloads": fleet_experiment.data["workloads"],
    }
    trajectory = [e for e in document["trajectory"]
                  if e["date"] != entry["date"]]
    trajectory.append(entry)
    document["trajectory"] = trajectory
    BENCH_PATH.write_text(json.dumps(document, indent=2, sort_keys=True)
                          + "\n")
    assert json.loads(BENCH_PATH.read_text())["trajectory"][-1]["workloads"]
