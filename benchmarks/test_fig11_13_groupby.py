"""Figures 11-13 + Table 4: GROUP BY queries (no pre-compute help)."""

import pytest

from repro.data.meter import METER_SCHEMA
from repro.hive.session import QueryOptions

SELECTIVITIES = ("point", 0.05, 0.12)


@pytest.mark.parametrize("selectivity", SELECTIVITIES)
def test_dgf_groupby(meter_lab, benchmark, selectivity):
    session = meter_lab.dgf_session("medium")
    sql = meter_lab.query_sql("groupby", selectivity)
    result = benchmark.pedantic(
        lambda: session.execute(sql, QueryOptions(index_name="dgf_idx")),
        rounds=3, iterations=1)
    assert "mode=slices" in result.stats.index_used


@pytest.mark.parametrize("selectivity", SELECTIVITIES)
def test_compact_groupby(meter_lab, benchmark, selectivity):
    sql = meter_lab.query_sql("groupby", selectivity)
    result = benchmark.pedantic(
        lambda: meter_lab.compact_session.execute(
            sql, QueryOptions(index_name="cmp_idx")),
        rounds=3, iterations=1)
    assert result.rows


def test_hadoopdb_groupby(meter_lab, benchmark):
    intervals = meter_lab.intervals_for(0.05)
    result = benchmark.pedantic(
        lambda: meter_lab.hadoopdb.group_by(
            intervals, METER_SCHEMA.index_of("ts"),
            METER_SCHEMA.index_of("powerconsumed")),
        rounds=3, iterations=1)
    assert result.rows


class TestPaperShape:
    def test_dgf_2_to_5x_faster(self, groupby_experiment):
        """Paper: DGF is about 2-5x faster than Compact and HadoopDB on
        non-aggregation queries."""
        data = groupby_experiment.data
        for selectivity in ("5%", "12%"):
            dgf = data[f"{selectivity}/dgf-medium"]["seconds"]
            assert dgf < data[f"{selectivity}/compact"]["seconds"]
            assert dgf < data[f"{selectivity}/hadoopdb"]["seconds"]

    def test_table4_records_exceed_accurate(self, groupby_experiment):
        """Without headers DGF reads the whole query region (>= accurate),
        ordered by interval size: L >= M >= S >= accurate."""
        data = groupby_experiment.data
        for selectivity in ("5%", "12%"):
            reads = [data[f"{selectivity}/dgf-{c}"]["records_read"]
                     for c in ("large", "medium", "small")]
            accurate = data[f"{selectivity}/dgf-small"]["accurate"]
            assert reads[0] >= reads[1] >= reads[2] >= accurate

    def test_groupby_reads_more_than_aggregation(self, groupby_experiment,
                                                 agg_experiment):
        """Table 4 vs Table 3: the slice path must read the full query
        region while the header path reads only the boundary."""
        for selectivity in ("5%", "12%"):
            for case in ("large", "medium", "small"):
                key = f"{selectivity}/dgf-{case}"
                assert groupby_experiment.data[key]["records_read"] \
                    >= agg_experiment.data[key]["records_read"]

    def test_index_read_time_grows_as_interval_shrinks(
            self, groupby_experiment):
        """Figures 12/13: more GFUs in the query region -> more key-value
        gets -> larger 'read index' component."""
        data = groupby_experiment.data
        for selectivity in ("5%", "12%"):
            index_times = [data[f"{selectivity}/dgf-{c}"]["index_seconds"]
                           for c in ("large", "medium", "small")]
            assert index_times[0] <= index_times[1] <= index_times[2]
