"""Table 3: records needed to read after index filtering (aggregation).

The benchmark times the record-accounting path itself (a DGF boundary
read); the assertions reproduce Table 3's relations on the cached
experiment data.
"""

import pytest

from repro.hive.session import QueryOptions


def test_records_read_accounting(meter_lab, benchmark):
    session = meter_lab.dgf_session("large")
    sql = meter_lab.query_sql("agg", 0.05)
    result = benchmark.pedantic(
        lambda: session.execute(sql, QueryOptions(index_name="dgf_idx")),
        rounds=3, iterations=1)
    assert result.stats.records_read >= 0


class TestTable3:
    @pytest.mark.parametrize("selectivity", ["5%", "12%"])
    def test_interval_size_accuracy_tradeoff(self, agg_experiment,
                                             selectivity):
        """Smaller intervals -> more accurate index -> fewer records."""
        data = agg_experiment.data
        large = data[f"{selectivity}/dgf-large"]["records_read"]
        small = data[f"{selectivity}/dgf-small"]["records_read"]
        assert small <= large

    @pytest.mark.parametrize("selectivity", ["point", "5%", "12%"])
    def test_compact_reads_most(self, agg_experiment, selectivity):
        data = agg_experiment.data
        compact = data[f"{selectivity}/compact"]["records_read"]
        for case in ("large", "medium", "small"):
            assert data[f"{selectivity}/dgf-{case}"]["records_read"] \
                <= compact

    def test_point_query_reads_whole_gfu(self, agg_experiment):
        """Paper: 'In point query case, there is no inner GFU, so Hive
        needs to read all data located in the GFU' — reads exceed the
        accurate count."""
        data = agg_experiment.data
        point = data["point/dgf-large"]
        assert point["records_read"] >= point["accurate"]

    def test_aggregation_reads_less_than_accurate_when_inner_covers(
            self, agg_experiment):
        """At 5%/12% the inner region is answered from headers: at least
        one DGF configuration reads fewer records than match."""
        data = agg_experiment.data
        for selectivity in ("5%", "12%"):
            accurate = data[f"{selectivity}/dgf-small"]["accurate"]
            best = min(data[f"{selectivity}/dgf-{c}"]["records_read"]
                       for c in ("large", "medium", "small"))
            assert best < accurate
