"""Figure 17: partial-specified query (predicate on fewer dimensions than
the index; DGF completes missing dimensions from stored min/max)."""

import datetime

import pytest

from repro.hive.session import QueryOptions


def _partial_sql(meter_lab):
    start = meter_lab.generator.config.start_date
    day = (datetime.date.fromisoformat(start)
           + datetime.timedelta(days=meter_lab.config.num_days
                                // 2)).isoformat()
    return (f"SELECT sum(powerconsumed) FROM meterdata "
            f"WHERE regionid = 5 AND ts = '{day}'")


@pytest.mark.parametrize("case", ["large", "medium", "small"])
def test_dgf_partial_precompute(meter_lab, benchmark, case):
    session = meter_lab.dgf_session(case)
    sql = _partial_sql(meter_lab)
    result = benchmark.pedantic(
        lambda: session.execute(sql, QueryOptions(index_name="dgf_idx")),
        rounds=3, iterations=1)
    assert "dgf" in result.stats.index_used


def test_dgf_partial_noprecompute(meter_lab, benchmark):
    session = meter_lab.dgf_session("medium")
    sql = _partial_sql(meter_lab)
    result = benchmark.pedantic(
        lambda: session.execute(sql, QueryOptions(
            index_name="dgf_idx", dgf_use_precompute=False)),
        rounds=3, iterations=1)
    assert "mode=slices" in result.stats.index_used


def test_compact_partial(meter_lab, benchmark):
    sql = _partial_sql(meter_lab)
    result = benchmark.pedantic(
        lambda: meter_lab.compact_session.execute(
            sql, QueryOptions(index_name="cmp_idx")),
        rounds=3, iterations=1)
    assert "compact" in result.stats.index_used


class TestPaperShape:
    def test_dgf_beats_compact(self, partial_experiment):
        """Paper: DGF is 2-4.6x faster than Compact on this query."""
        data = partial_experiment.data
        compact = data["compact"]["seconds"]
        for case in ("large", "medium", "small"):
            assert data[f"{case}/pre"]["seconds"] < compact

    def test_precompute_reduces_reads(self, partial_experiment):
        data = partial_experiment.data
        for case in ("large", "medium", "small"):
            assert data[f"{case}/pre"]["records_read"] \
                <= data[f"{case}/nopre"]["records_read"]

    def test_equality_on_unit_cells_uses_headers(self, partial_experiment):
        """regionid interval 1 and daily ts cells make the equality
        predicate cell-covering: the precompute variant reads nothing."""
        data = partial_experiment.data
        assert data["medium/pre"]["records_read"] == 0
