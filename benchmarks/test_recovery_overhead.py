"""Recovery overhead: what chaos costs on the Fig. 8-10 aggregation MDRQs.

The differential harness (tests/test_chaos_differential.py) proves that
faults are *observably free*: rows, counters and per-query simulated
seconds are byte-identical to the fault-free run.  The real price of
recovery therefore lives entirely in the :class:`~repro.faults.registry.
FaultRegistry` ledger — simulated exponential backoff, re-executed task
startups and KV retry round trips — converted to paper-scale seconds by
``FaultRegistry.recovery_overhead_seconds(PAPER_CLUSTER)``.

This benchmark runs the aggregation workload twice on identically-loaded
DGF sessions (one fault-free, one under a chaos plan), asserts the
query-visible equivalence plus a strictly positive overhead ledger, and
prints the overhead next to the fault-free simulated time (visible with
``-s``, as the CI chaos job runs it).
"""

import pytest

from repro.faults import FaultPlan, FaultSpec, TASK_CRASH
from repro.hive.session import QueryOptions
from repro.mapreduce.cluster import PAPER_CLUSTER

pytestmark = pytest.mark.slow

SELECTIVITIES = ("point", 0.05, 0.12)

#: Probabilistic faults only ever hit attempt 0, so the default
#: RetryPolicy always recovers; the scheduled spec guarantees at least
#: one crash+retry even if every rate-draw misses.
CHAOS = FaultPlan(
    seed=0,
    task_crash_rate=0.2,
    task_straggler_rate=0.15,
    kv_timeout_rate=0.1,
    dead_datanodes=(2,),
    scheduled=(FaultSpec(kind=TASK_CRASH, task_kind="map",
                         task_id=0, attempt=0),))


@pytest.fixture(scope="module")
def overhead_pair(meter_lab):
    """(fault-free session, chaos session) with identical data + index.

    Built fresh so the chaos injector never touches the shared cached
    sessions other benchmarks measure; the index build on the chaos side
    already exercises crash/retry, speculation and replica failover.
    """
    baseline = meter_lab.fresh_dgf_session("medium")
    chaos = meter_lab.fresh_dgf_session("medium", faults=CHAOS)
    return baseline, chaos


def _run_workload(session, meter_lab):
    """Total simulated seconds of the aggregation MDRQs, plus results."""
    total = 0.0
    results = {}
    for selectivity in SELECTIVITIES:
        sql = meter_lab.query_sql("agg", selectivity)
        result = session.execute(sql, QueryOptions(index_name="dgf_idx"))
        assert "dgf" in result.stats.index_used
        total += result.stats.simulated_seconds
        results[selectivity] = result
    return total, results


def test_chaos_workload_matches_fault_free(overhead_pair, meter_lab):
    """Query-visible observables are untouched by injection + recovery."""
    baseline, chaos = overhead_pair
    want_total, want = _run_workload(baseline, meter_lab)
    got_total, got = _run_workload(chaos, meter_lab)
    assert got_total == want_total
    for selectivity in SELECTIVITIES:
        assert got[selectivity].rows == want[selectivity].rows
        assert (got[selectivity].stats.records_read
                == want[selectivity].stats.records_read)
        assert (got[selectivity].stats.time.total
                == want[selectivity].stats.time.total)


def test_recovery_overhead_is_positive_and_ledgered(overhead_pair,
                                                    meter_lab):
    """The ledger records real recovery work and prices it > 0 seconds."""
    baseline, chaos = overhead_pair
    fault_free_seconds, _ = _run_workload(baseline, meter_lab)
    _run_workload(chaos, meter_lab)

    registry = chaos.fault_injector.registry
    assert registry.total_injected() > 0
    assert registry.total_recovered() > 0
    assert registry.reexecuted_tasks >= 1    # the scheduled map-0 crash
    assert registry.backoff_seconds > 0.0

    overhead = registry.recovery_overhead_seconds(PAPER_CLUSTER)
    assert overhead > 0.0

    print("\nrecovery overhead (paper-scale simulated seconds)")
    print(f"  fault-free aggregation workload : {fault_free_seconds:10.2f} s")
    print(f"  recovery overhead (ledger)      : {overhead:10.2f} s")
    print(f"    backoff                       : "
          f"{registry.backoff_seconds:10.2f} s")
    print(f"    re-executed tasks             : "
          f"{registry.reexecuted_tasks:6d} x "
          f"{PAPER_CLUSTER.task_startup_seconds} s startup")
    print(f"  injected  : {dict(registry.injected_counts())}")
    print(f"  recovered : {dict(registry.recovery_counts())}")


@pytest.mark.parametrize("mode", ("fault-free", "chaos"))
def test_aggregation_wallclock_under_chaos(overhead_pair, meter_lab,
                                           benchmark, mode):
    """Wall-clock cost of the recovery machinery itself (re-run tasks,
    failover probes) on the 5% aggregation MDRQ — compare the two rows in
    the benchmark table."""
    session = overhead_pair[0] if mode == "fault-free" else overhead_pair[1]
    sql = meter_lab.query_sql("agg", 0.05)
    result = benchmark.pedantic(
        lambda: session.execute(sql, QueryOptions(index_name="dgf_idx")),
        rounds=3, iterations=1)
    assert "dgf" in result.stats.index_used
