"""Benchmark: the vectorized engine's wall-clock win, recorded as the
first ``BENCH_*.json`` perf-trajectory file.

Measures the Fig. 8–10 aggregation and TPC-H Q6 scan workloads at the
labs' full default scale (80k meter readings, 12k orders), row engine vs
``ExecutionConfig(vectorized=True)``, via
``repro.bench.experiments.vectorized_speedup``.  Two quantities per
workload:

* **scan pipeline** — the map-side filter+aggregate hot path on
  identical pre-decoded inputs (the per-record CPU cost HAIL identifies
  as dominant once split pruning has done its job; exactly what the
  batch kernels replace).  Asserted **>= 10x**.
* **end to end** — full ``session.execute`` wall-clock, which also pays
  parse/plan/decode/shuffle/trace costs common to both engines.
  Asserted >= the conservative ``E2E_FLOOR`` (observed 6–10x; a hard
  10x here would flake on loaded CI machines since decode is shared).

Rows and full ``QueryStats`` are asserted byte-identical inside the
experiment before any timing is trusted.  The measured trajectory is
written to ``BENCH_vectorized.json`` at the repo root — one entry per
day, so later PRs extend the series and must defend the baseline.
"""

import json
import time
from pathlib import Path

import pytest

np = pytest.importorskip("numpy")

from repro.bench import experiments as exps
from repro.bench.lab import MeterLab, TpchLab

pytestmark = pytest.mark.slow

# the tentpole claim: the per-record hot path is 10x-class
PIPELINE_SPEEDUP_FLOOR = 10.0
# end-to-end keeps decode + fixed engine costs on both sides; assert a
# regression-catching floor rather than a flake-prone point estimate
E2E_FLOOR = 3.0

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_vectorized.json"


@pytest.fixture(scope="module")
def speedup_experiment():
    return exps.vectorized_speedup(MeterLab(), TpchLab())


def test_scan_pipeline_speedup_at_least_10x(speedup_experiment):
    for label, metrics in speedup_experiment.data["workloads"].items():
        speedup = metrics["scan_pipeline"]["speedup"]
        assert speedup >= PIPELINE_SPEEDUP_FLOOR, (
            f"{label}: scan pipeline only {speedup:.1f}x "
            f"(row {metrics['scan_pipeline']['row_s']*1000:.1f} ms vs "
            f"vector {metrics['scan_pipeline']['vectorized_s']*1000:.2f} ms)")


def test_end_to_end_speedup_floor(speedup_experiment):
    for label, metrics in speedup_experiment.data["workloads"].items():
        speedup = metrics["end_to_end"]["speedup"]
        assert speedup >= E2E_FLOOR, (
            f"{label}: end-to-end only {speedup:.1f}x "
            f"(row {metrics['end_to_end']['row_s']*1000:.0f} ms vs "
            f"vector {metrics['end_to_end']['vectorized_s']*1000:.0f} ms)")


def test_recorded_in_report(speedup_experiment):
    assert speedup_experiment.exp_id == "vectorized-speedup"
    rendered = speedup_experiment.markdown()
    assert "tpch q6" in rendered and "meter agg" in rendered


def test_writes_trajectory_file(speedup_experiment):
    """Record the run in BENCH_vectorized.json (one entry per day —
    re-runs on the same day replace that day's entry, so the committed
    trajectory grows one point per revision, not per invocation)."""
    if BENCH_PATH.exists():
        document = json.loads(BENCH_PATH.read_text())
    else:
        document = {"bench": "vectorized", "schema_version": 1,
                    "unit": "seconds (wall-clock, best of rounds)",
                    "trajectory": []}
    entry = {
        "date": time.strftime("%Y-%m-%d"),
        "rounds": speedup_experiment.data["rounds"],
        "workloads": speedup_experiment.data["workloads"],
    }
    trajectory = [e for e in document["trajectory"]
                  if e["date"] != entry["date"]]
    trajectory.append(entry)
    document["trajectory"] = trajectory
    BENCH_PATH.write_text(json.dumps(document, indent=2, sort_keys=True)
                          + "\n")
    assert json.loads(BENCH_PATH.read_text())["trajectory"][-1]["workloads"]
