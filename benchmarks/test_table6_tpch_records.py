"""Table 6: records read for the TPC-H Q6 workload."""

from repro.hive.session import QueryOptions


def test_dgf_q6_records(tpch_lab, benchmark):
    result = benchmark.pedantic(
        lambda: tpch_lab.dgf_session.execute(
            tpch_lab.q6(), QueryOptions(index_name="dgf_q6")),
        rounds=3, iterations=1)
    assert result.stats.records_read > 0


class TestTable6:
    def test_compact_reads_whole_table(self, tpch_experiment):
        """Paper Table 6: both compact variants read all 4.095B records —
        evenly scattered values defeat split filtering."""
        data = tpch_experiment.data
        total = data["total_records"]
        assert data["Compact-2D"]["records_read"] == total
        assert data["Compact-3D"]["records_read"] == total

    def test_dgf_reads_near_accurate(self, tpch_experiment):
        """Paper: DGF reads 85M of 4B (~2%) vs 78M accurate.  The header
        path reads only boundary GFUs, so reads land in the accurate
        count's neighbourhood — possibly *below* it when inner cells are
        answered from headers — and never anywhere near the table size."""
        data = tpch_experiment.data
        accurate = data["accurate"]
        dgf = data["DGFIndex"]["records_read"]
        assert 0 < dgf < 10 * accurate
        assert dgf < 0.2 * data["total_records"]
