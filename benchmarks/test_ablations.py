"""Ablation benches beyond the paper's tables/figures:

* splitting-policy advisor vs the fixed L/M/S policies (the paper's stated
  future work, DESIGN.md extension);
* DGFIndex over RCFile base tables (the paper: "easy to extend");
* interval-size sweep exposing the index-size / boundary-read trade-off;
* the NameNode partition-explosion argument, quantified.
"""

import pytest

from repro.bench import experiments as exps
from repro.hive.session import QueryOptions


@pytest.fixture(scope="session")
def advisor_experiment(meter_lab):
    return exps.ablation_advisor(meter_lab)


@pytest.fixture(scope="session")
def formats_experiment(meter_lab):
    return exps.ablation_formats(meter_lab)


class TestAdvisor:
    def test_advisor_recommend(self, meter_lab, benchmark):
        from repro.core.dgf.advisor import PolicyAdvisor
        from repro.data.meter import METER_SCHEMA
        advisor = PolicyAdvisor(
            METER_SCHEMA, ["userid", "regionid", "ts"],
            records_per_unit_volume=len(meter_lab.rows)
            * meter_lab.data_scale)
        history = [meter_lab.intervals_for(s) for s in (0.05, 0.12)]
        sample = meter_lab.rows[::max(1, len(meter_lab.rows) // 1000)]
        policy = benchmark.pedantic(
            lambda: advisor.recommend(sample, history),
            rounds=3, iterations=1)
        assert len(policy) == 3

    def test_advisor_competitive_with_best_fixed(self, advisor_experiment):
        """The advisor's policy should land within 3x of the best fixed
        policy on the query history it optimized for."""
        data = advisor_experiment.data
        for selectivity in ("5%", "12%"):
            advised = data[f"{selectivity}/advisor"]["seconds"]
            best_fixed = min(data[f"{selectivity}/{c}"]["seconds"]
                             for c in ("large", "medium", "small"))
            assert advised < 3 * best_fixed


class TestFormats:
    def test_rcfile_base_table(self, formats_experiment, benchmark):
        benchmark.pedantic(lambda: formats_experiment, rounds=1,
                           iterations=1)
        for label in ("point", "5%"):
            data = formats_experiment.data[label]
            assert data["text"] == data["rcfile"]


class TestIntervalSweep:
    def test_tradeoff(self, meter_lab, benchmark):
        """Smaller intervals: larger index, fewer boundary records."""
        sizes = {}
        reads = {}
        sql = meter_lab.query_sql("groupby", 0.05)

        def run():
            for case in ("large", "medium", "small"):
                session = meter_lab.dgf_session(case)
                report = session.build_report("meterdata", "dgf_idx")
                sizes[case] = report.index_size_bytes
                result = session.execute(
                    sql, QueryOptions(index_name="dgf_idx"))
                reads[case] = result.stats.records_read
            return sizes, reads

        benchmark.pedantic(run, rounds=1, iterations=1)
        assert sizes["large"] < sizes["medium"] < sizes["small"]
        assert reads["large"] >= reads["medium"] >= reads["small"]


class TestPartitionExplosion:
    def test_namenode_memory(self, benchmark):
        result = benchmark.pedantic(
            lambda: exps.partition_explosion(dims=3, values_per_dim=100),
            rounds=1, iterations=1)
        projected = result.data["projected_bytes"]
        assert projected == pytest.approx(143 * 1024 * 1024, rel=0.05)


class TestSlicePlacement:
    """The paper's second future-work item: optimal Slice placement.
    Z-order placement clusters grid-adjacent slices into the same output
    files, shrinking the splits a range query must touch."""

    def test_zorder_vs_hash(self, benchmark):
        from repro.hive.session import QueryOptions
        from repro.bench.lab import MeterLab, MeterLabConfig

        config = MeterLabConfig(num_users=800, num_days=8,
                                readings_per_day=2)

        def build(placement):
            lab = MeterLab(config)
            session = lab._new_session()
            lab._load_meter(session, "TEXTFILE")
            session.execute(
                "CREATE INDEX d ON TABLE meterdata"
                "(userid, regionid, ts) AS 'dgf' IDXPROPERTIES ("
                "'userid'='0_20', 'regionid'='0_1', "
                f"'ts'='{lab.generator.config.start_date}_1d', "
                f"'placement'='{placement}', "
                "'precompute'='sum(powerconsumed)')")
            return lab, session

        hash_lab, hash_session = build("hash")
        zorder_lab, zorder_session = build("zorder")
        sql = hash_lab.query_sql("groupby", 0.05)

        zorder_result = benchmark.pedantic(
            lambda: zorder_session.execute(sql,
                                           QueryOptions(index_name="d")),
            rounds=3, iterations=1)
        hash_result = hash_session.execute(sql,
                                           QueryOptions(index_name="d"))
        assert zorder_result.stats.splits_processed \
            <= hash_result.stats.splits_processed
        # identical answers (up to float summation order)
        for (zk, zv), (hk, hv) in zip(sorted(zorder_result.rows),
                                      sorted(hash_result.rows)):
            assert zk == hk
            assert zv == pytest.approx(hv)
