"""Table 5: TPC-H index sizes and construction times."""

from repro.bench.lab import TpchLab, TpchLabConfig

SMALL_TPCH = TpchLabConfig(num_orders=3000)


def test_tpch_dgf_build(benchmark):
    def build():
        return TpchLab(SMALL_TPCH).dgf_session

    session = benchmark.pedantic(build, rounds=1, iterations=1)
    report = session.build_report("lineitem", "dgf_q6")
    assert report.details["gfus"] > 0


def test_tpch_compact_builds(benchmark):
    def build():
        return TpchLab(SMALL_TPCH).compact_session

    session = benchmark.pedantic(build, rounds=1, iterations=1)
    assert session.build_report("lineitem", "cmp2").index_size_bytes > 0
    assert session.build_report("lineitem", "cmp3").index_size_bytes > 0


class TestTable5:
    def test_size_relations(self, tpch_experiment, tpch_lab):
        """Paper Table 5: Compact-3D 189GB >> Compact-2D 637MB; DGF tiny
        (4.3MB).  The scale-stable relations: the 3-D compact index
        explodes versus the 2-D one, and the DGF index stays below the
        base table (its size is bounded by the *grid*, not the data —
        which is exactly why it wins at the paper's 4.1B-row scale while
        the margin compresses at laptop scale)."""
        data = tpch_experiment.data
        assert data["Compact-3D"]["size"] > 5 * data["Compact-2D"]["size"]
        base_size = tpch_lab.scan_session.fs.total_size(
            tpch_lab.scan_session.metastore.get_table(
                "lineitem").data_location)
        assert data["DGFIndex"]["size"] < base_size

    def test_build_time_relations(self, tpch_experiment):
        """DGF build (full reorganization) costs more than the 2-D compact
        build, as in the paper (10997s vs 991s)."""
        data = tpch_experiment.data
        assert data["DGFIndex"]["build_seconds"] \
            > data["Compact-2D"]["build_seconds"]
