"""Micro-benchmark: the parallel engine must not be slower than the
sequential one on a Fig. 8-sized aggregation workload.

This is about the reproduction's *own* wall-clock, not simulated paper
seconds (those are identical by the differential-harness guarantee).
Under CPython's GIL a thread pool cannot multiply CPU-bound throughput,
so the assertion is "no slower" with a small tolerance for pool
bookkeeping; the measured speedup is recorded in the bench report
(`parallel-speedup` section of EXPERIMENTS.md via
``repro.bench.experiments.parallel_speedup``).
"""

import pytest

from repro.bench import experiments as exps

pytestmark = pytest.mark.slow

# sequential must not beat parallel by more than this factor (GIL
# bookkeeping plus scheduler noise; min-of-rounds already smooths most)
TOLERANCE = 1.3


@pytest.fixture(scope="module")
def speedup_experiment(meter_lab):
    return exps.parallel_speedup(meter_lab, workers=4, rounds=5)


def test_parallel_not_slower(speedup_experiment):
    timings = speedup_experiment.data["timings"]
    sequential = timings["sequential"]
    parallel = timings["parallel(4)"]
    assert parallel <= sequential * TOLERANCE, (
        f"parallel engine {parallel:.3f}s vs sequential "
        f"{sequential:.3f}s exceeds the {TOLERANCE}x tolerance")


def test_speedup_recorded_in_report(speedup_experiment):
    assert speedup_experiment.exp_id == "parallel-speedup"
    assert speedup_experiment.data["speedup"] > 0
    assert speedup_experiment.data["timings"]["sequential"] > 0
    rendered = speedup_experiment.markdown()
    assert "sequential" in rendered and "parallel(4)" in rendered
