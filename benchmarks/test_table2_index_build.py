"""Table 2: index size and construction time.

Benchmarks the two build paths (Compact vs DGF reorganization) and checks
the paper's size relations: the 3-D Compact index table explodes, DGF
sizes are ordered Large < Medium < Small, and DGF construction costs more
simulated time than a Compact build (the full-table shuffle).
"""

from repro.bench.lab import MeterLab, MeterLabConfig

BUILD_SCALE = MeterLabConfig(num_users=600, num_days=6, readings_per_day=2)


def test_table2_compact_build(benchmark):
    def build():
        lab = MeterLab(BUILD_SCALE)
        return lab.compact_session  # property triggers load + index build

    session = benchmark.pedantic(build, rounds=1, iterations=1)
    report = session.build_report("meterdata", "cmp_idx")
    assert report.index_size_bytes > 0


def test_table2_dgf_build(benchmark):
    def build():
        lab = MeterLab(BUILD_SCALE)
        return lab.dgf_session("medium")

    session = benchmark.pedantic(build, rounds=1, iterations=1)
    report = session.build_report("meterdata", "dgf_idx")
    assert report.details["gfus"] > 0


def test_table2_paper_shape(table2_experiment):
    data = table2_experiment.data
    assert data["compact-3d"]["size"] > 20 * data["compact-2d"]["size"]
    assert data["dgf-large"]["size"] < data["dgf-medium"]["size"] \
        < data["dgf-small"]["size"]
    # DGF construction reorganizes the table through a shuffle: simulated
    # build time exceeds the 2-D compact build's
    assert data["dgf-large"]["seconds"] > data["compact-2d"]["seconds"]
