"""Micro-benchmark: warm GFU-metadata cache vs cold KV-store reads.

The serving-layer claim (docs/architecture.md): once the cache is warm,
repeated MDRQs plan without physical KV-store reads, while every result
and logical observable stays byte-identical.  This benchmark runs a
repeated-MDRQ workload and asserts the physical ``get``/``multi_get``
op elimination is at least 5x, printing the measured counts.
"""

import datetime

import pytest

from repro.hive.session import HiveSession

pytestmark = pytest.mark.slow

NUM_USERS = 400
NUM_DAYS = 10
WARM_PASSES = 4


def _rows():
    start = datetime.date(2012, 12, 1)
    rows = []
    for day in range(NUM_DAYS):
        ts = (start + datetime.timedelta(days=day)).isoformat()
        for user in range(NUM_USERS):
            rows.append((user, user % 5, ts,
                         round((user * 13 + day * 7) % 60 + 0.5, 2)))
    return rows


def _session(cache: bool) -> HiveSession:
    session = HiveSession(num_datanodes=4, cache=cache)
    session.fs.block_size = 16 * 1024
    session.execute("CREATE TABLE meterdata (userid bigint, regionid int, "
                    "ts date, powerconsumed double)")
    rows = _rows()
    third = len(rows) // 3 + 1
    for i in range(0, len(rows), third):
        session.load_rows("meterdata", rows[i:i + third])
    session.execute(
        "CREATE INDEX dgf_idx ON TABLE meterdata(userid, regionid, ts) "
        "AS 'dgf' IDXPROPERTIES ('userid'='0_25', 'regionid'='0_1', "
        "'ts'='2012-12-01_2d', "
        "'precompute'='sum(powerconsumed),count(*)')")
    return session


def _queries():
    """A small repeated-MDRQ mix: the interactive dashboard pattern."""
    out = []
    for u_lo, days in ((0, 4), (50, 6), (120, 8), (200, 4)):
        lo = datetime.date(2012, 12, 1)
        hi = lo + datetime.timedelta(days=days)
        out.append(
            "SELECT sum(powerconsumed), count(*) FROM meterdata "
            f"WHERE userid >= {u_lo} AND userid < {u_lo + 100} "
            f"AND ts >= '{lo}' AND ts < '{hi}'")
    return out


def _pass_gets(session, queries):
    before = session.kvstore.snapshot_stats()
    rows = [session.execute(sql).rows for sql in queries]
    return session.kvstore.stats_delta(before).gets, rows


def test_warm_cache_eliminates_physical_kv_reads():
    cached = _session(cache=True)
    uncached = _session(cache=False)
    queries = _queries()

    cold_gets, cold_rows = _pass_gets(cached, queries)
    warm_gets = 0
    for _ in range(WARM_PASSES):
        gets, warm_rows = _pass_gets(cached, queries)
        warm_gets += gets
        assert warm_rows == cold_rows
    warm_per_pass = warm_gets / WARM_PASSES

    baseline_gets, baseline_rows = _pass_gets(uncached, queries)
    assert baseline_rows == cold_rows

    stats = cached.metadata_cache.stats
    print("\nGFU-metadata cache, repeated-MDRQ workload "
          f"({len(queries)} queries x {1 + WARM_PASSES} passes):")
    print(f"  cold pass physical KV gets : {cold_gets}")
    print(f"  warm pass physical KV gets : {warm_per_pass:.1f} (avg of "
          f"{WARM_PASSES})")
    print(f"  uncached pass physical gets: {baseline_gets}")
    print(f"  elimination                : "
          f"{baseline_gets / max(warm_per_pass, 1):.0f}x")
    print(f"  cache hit rate             : {stats.hit_rate:.1%} "
          f"({stats.hits} hits / {stats.misses} misses)")

    # overlapping queries within the cold pass may already share fills,
    # so the cold cached pass pays at most the uncached amount
    assert 0 < cold_gets <= baseline_gets
    # the acceptance bar: >= 5x fewer physical get/multi_get ops warm
    assert baseline_gets >= 5 * max(warm_per_pass, 1), (
        f"warm cache eliminated too little: {baseline_gets} baseline vs "
        f"{warm_per_pass:.1f} warm physical gets")


def test_warm_cache_preserves_logical_observables():
    """Warm trace counters and simulated seconds replay the cold ones."""
    cached = _session(cache=True)
    sql = _queries()[0]
    cold = cached.execute(sql)
    warm = cached.execute(sql)
    assert warm.trace.normalized_json() == cold.trace.normalized_json()
    assert warm.stats.index_kv_gets == cold.stats.index_kv_gets
    assert (warm.stats.time.read_index_and_other
            == cold.stats.time.read_index_and_other)
