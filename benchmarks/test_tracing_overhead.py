"""Micro-benchmark: query tracing must stay cheap on the sequential path.

Spans are created at stage granularity and the storage-layer hooks are a
single active-span lookup plus a dict increment, so the budget is ~5%;
the assertion tolerance is wider because min-of-rounds wall timings on a
shared CI box still jitter by more than the effect being measured.  An
accidental per-record or per-byte span would exceed any tolerance by
orders of magnitude, which is the regression this guards against.
"""

import time

import pytest

pytestmark = pytest.mark.slow

ROUNDS = 5
QUERIES_PER_ROUND = 3
TOLERANCE = 1.3


def _best_of(session, sql, rounds=ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        for _ in range(QUERIES_PER_ROUND):
            session.execute(sql)
        best = min(best, time.perf_counter() - started)
    return best


def test_tracing_overhead_sequential(meter_lab):
    session = meter_lab.dgf_session("medium")
    sql = meter_lab.query_sql("agg", 0.05)
    session.execute(sql)  # warm both paths before timing
    traced = _best_of(session, sql)
    session.tracer.enabled = False
    try:
        untraced = _best_of(session, sql)
    finally:
        session.tracer.enabled = True
    assert traced <= untraced * TOLERANCE + 0.02, (
        f"tracing {traced:.3f}s vs untraced {untraced:.3f}s exceeds the "
        f"{TOLERANCE}x tolerance")
