"""Shared labs and cached experiment results for the benchmark suite.

Labs are built once per pytest session at a reduced scale so the whole
suite (`pytest benchmarks/ --benchmark-only`) finishes in minutes; run
``python -m repro.bench`` for the full-scale report that regenerates
EXPERIMENTS.md.
"""

import pytest

from repro.bench import experiments as exps
from repro.bench.lab import (MeterLab, MeterLabConfig, TpchLab,
                             TpchLabConfig)

BENCH_METER = MeterLabConfig(num_users=1000, num_days=8,
                             readings_per_day=2)
BENCH_TPCH = TpchLabConfig(num_orders=6000)


@pytest.fixture(scope="session")
def meter_lab() -> MeterLab:
    return MeterLab(BENCH_METER)


@pytest.fixture(scope="session")
def tpch_lab() -> TpchLab:
    return TpchLab(BENCH_TPCH)


# Experiment results are cached per session so several bench files can
# assert on the same run without recomputing it.
@pytest.fixture(scope="session")
def agg_experiment(meter_lab):
    return exps.aggregation_queries(meter_lab)


@pytest.fixture(scope="session")
def groupby_experiment(meter_lab):
    return exps.groupby_queries(meter_lab)


@pytest.fixture(scope="session")
def join_experiment(meter_lab):
    return exps.join_queries(meter_lab)


@pytest.fixture(scope="session")
def partial_experiment(meter_lab):
    return exps.partial_query(meter_lab)


@pytest.fixture(scope="session")
def tpch_experiment(tpch_lab):
    return exps.tpch_q6(tpch_lab)


@pytest.fixture(scope="session")
def table2_experiment(meter_lab):
    return exps.table2_index_build(meter_lab)
