"""Benchmark: the divergent advisor's win over every uniform grid,
recorded as ``BENCH_advisor.json``.

Runs ``repro.bench.experiments.advisor_divergent`` at the lab's full
default scale: a deliberately coarse ``large``-interval primary observes
a mixed workload (per-user billing histories, weight 15 each, plus a
12%-selectivity regional GROUP BY, weight 2) through the query log; the
advisor clusters the log, builds one specialist replica layout per
cluster, and the workload reruns cost-routed over the advised fleet and
pinned uniformly to the primary and to each advised layout.  Asserted
claims (ISSUE 9 acceptance):

* **routed >= 1.3x the best uniform** — the advisor-chosen divergent
  fleet beats the *best* single uniform configuration (including each
  of its own specialists applied fleet-wide) on aggregate weighted
  simulated seconds;
* **specialist routing** — every clustered query routes to exactly the
  layout its :class:`AdvisorReport` names as that cluster's specialist
  (the router's cost formula is the advisor's what-if formula);
* **genuine divergence** — the report builds >= 2 layouts whose grids
  differ.

Query results are cross-checked against a full table scan inside the
experiment before any timing is trusted.  The measured trajectory is
written to ``BENCH_advisor.json`` at the repo root — one entry per day,
so later PRs extend the series and must defend the baseline.
"""

import json
import time
from pathlib import Path

import pytest

from repro.bench import experiments as exps
from repro.bench.lab import MeterLab

pytestmark = pytest.mark.slow

# ISSUE 9 acceptance floor: routed fleet >= 1.3x the best uniform.
SPEEDUP_FLOOR = 1.3

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_advisor.json"


@pytest.fixture(scope="module")
def advisor_experiment():
    return exps.advisor_divergent(MeterLab())


def test_divergent_fleet_beats_best_uniform(advisor_experiment):
    data = advisor_experiment.data
    assert data["speedup_vs_best_uniform"] >= SPEEDUP_FLOOR, (
        f"routed divergent fleet is only "
        f"{data['speedup_vs_best_uniform']:.2f}x the best uniform "
        f"({data['best_uniform']}); the advisor is not earning its "
        f"replica storage")
    # the routed total really is the weighted sum it claims to be
    recomputed = sum(q["weight"] * q["routed_seconds"]
                     for q in data["queries"].values())
    assert data["routed_total"] == pytest.approx(recomputed)


def test_every_query_routes_to_its_specialist(advisor_experiment):
    for label, q in advisor_experiment.data["queries"].items():
        assert q["chosen"] == q["specialist"], (
            f"{label}: routed to {q['chosen']!r} but its specialist is "
            f"{q['specialist']!r}")


def test_report_is_genuinely_divergent(advisor_experiment):
    data = advisor_experiment.data
    assert len(data["built"]) >= 2
    grids = [tuple(sorted(g.items())) for g in data["grids"].values()]
    assert len(set(grids)) == len(grids), (
        f"advised layouts share a grid: {data['grids']}")
    # every specialist beats the (deliberately mistuned) primary on the
    # workload it was built for
    for label, q in advisor_experiment.data["queries"].items():
        assert q["routed_seconds"] <= \
            q["uniform_seconds"]["primary"] * 1.05, (
                f"{label}: routing did not recover the primary's cost")


def test_recorded_in_report(advisor_experiment):
    assert advisor_experiment.exp_id == "advisor-divergent"
    rendered = advisor_experiment.markdown()
    assert "specialist" in rendered and "groupby 12%" in rendered


def test_writes_trajectory_file(advisor_experiment):
    """Record the run in BENCH_advisor.json (one entry per day —
    re-runs on the same day replace that day's entry, so the committed
    trajectory grows one point per revision, not per invocation)."""
    data = advisor_experiment.data
    if BENCH_PATH.exists():
        document = json.loads(BENCH_PATH.read_text())
    else:
        document = {"bench": "advisor", "schema_version": 1,
                    "unit": "aggregate weighted simulated seconds",
                    "trajectory": []}
    entry = {
        "date": time.strftime("%Y-%m-%d"),
        "grids": data["grids"],
        "best_uniform": data["best_uniform"],
        "uniform_totals": data["uniform_totals"],
        "routed_total": data["routed_total"],
        "speedup_vs_best_uniform": data["speedup_vs_best_uniform"],
        "queries": data["queries"],
    }
    trajectory = [e for e in document["trajectory"]
                  if e["date"] != entry["date"]]
    trajectory.append(entry)
    document["trajectory"] = trajectory
    BENCH_PATH.write_text(json.dumps(document, indent=2, sort_keys=True)
                          + "\n")
    assert json.loads(BENCH_PATH.read_text())["trajectory"][-1][
        "speedup_vs_best_uniform"] >= SPEEDUP_FLOOR
