"""Figure 3: write throughput of DBMS-X (with/without index) vs HDFS.

The benchmark times the three simulated load paths; the assertions check
the paper's ordering (DBMS-X-with-index < DBMS-X-without-index << HDFS).
"""

from repro.bench import experiments as exps
from repro.data.meter import METER_SCHEMA, MeterDataConfig, MeterDataGenerator
from repro.rdbms.writer import measure_dbms_write, measure_hdfs_write

ROWS = 20000


def _rows():
    config = MeterDataConfig(num_users=ROWS // 10, num_days=10,
                             readings_per_day=1)
    return [row for _, row in zip(range(ROWS),
                                  MeterDataGenerator(config).iter_rows())]


def test_fig3_dbms_with_index(benchmark):
    rows = _rows()
    key = METER_SCHEMA.index_of("userid")
    result = benchmark.pedantic(
        lambda: measure_dbms_write(rows, key, with_index=True),
        rounds=1, iterations=1)
    assert result.pool_misses > 0


def test_fig3_dbms_without_index(benchmark):
    rows = _rows()
    key = METER_SCHEMA.index_of("userid")
    result = benchmark.pedantic(
        lambda: measure_dbms_write(rows, key, with_index=False),
        rounds=1, iterations=1)
    assert result.pool_misses == 0


def test_fig3_hdfs(benchmark):
    rows = _rows()
    result = benchmark.pedantic(lambda: measure_hdfs_write(rows),
                                rounds=1, iterations=1)
    assert result.rows == ROWS


def test_fig3_paper_shape(benchmark):
    """Full experiment incl. the paper-shape assertion baked into it."""
    result = benchmark.pedantic(
        lambda: exps.fig3_write_throughput(num_rows=ROWS),
        rounds=1, iterations=1)
    throughputs = result.data["throughputs"]
    assert throughputs["DBMS-X with index"] \
        < throughputs["DBMS-X without index"] < throughputs["HDFS"]
