"""Figures 14-16: JOIN query (meterdata x userInfo) with MDRQ predicate."""

import pytest

from repro.data.meter import METER_SCHEMA
from repro.hive.session import QueryOptions

SELECTIVITIES = ("point", 0.05, 0.12)


@pytest.mark.parametrize("selectivity", SELECTIVITIES)
def test_dgf_join(meter_lab, benchmark, selectivity):
    session = meter_lab.dgf_session("medium")
    sql = meter_lab.query_sql("join", selectivity)
    result = benchmark.pedantic(
        lambda: session.execute(sql, QueryOptions(index_name="dgf_idx")),
        rounds=3, iterations=1)
    assert "dgf" in result.stats.index_used


@pytest.mark.parametrize("selectivity", SELECTIVITIES)
def test_compact_join(meter_lab, benchmark, selectivity):
    sql = meter_lab.query_sql("join", selectivity)
    result = benchmark.pedantic(
        lambda: meter_lab.compact_session.execute(
            sql, QueryOptions(index_name="cmp_idx")),
        rounds=3, iterations=1)
    assert result.stats.output_records >= 0


def test_hadoopdb_join(meter_lab, benchmark):
    intervals = meter_lab.intervals_for(0.05)
    value_pos = METER_SCHEMA.index_of("powerconsumed")
    result = benchmark.pedantic(
        lambda: meter_lab.hadoopdb.join(
            intervals, METER_SCHEMA.index_of("userid"),
            project=lambda fact, user: (user[1], fact[value_pos])),
        rounds=3, iterations=1)
    assert result.time.total > 0


class TestPaperShape:
    def test_dgf_fastest(self, join_experiment):
        data = join_experiment.data
        for selectivity in ("5%", "12%"):
            dgf = data[f"{selectivity}/dgf-medium"]["seconds"]
            assert dgf < data[f"{selectivity}/compact"]["seconds"]
            assert dgf < data[f"{selectivity}/hadoopdb"]["seconds"]
            assert dgf < data[f"{selectivity}/scan"]["seconds"]

    def test_join_writes_output_directory(self, join_experiment):
        """The paper's Listing 6 uses INSERT OVERWRITE DIRECTORY; join
        times include materializing the result."""
        for selectivity in ("5%", "12%"):
            join_key = f"{selectivity}/dgf-medium"
            assert join_experiment.data[join_key]["seconds"] > 0

    def test_join_slower_than_groupby_same_predicate(
            self, join_experiment, groupby_experiment):
        """Joins add the build side + output write on top of the same
        filtered read, so per system they cost at least as much."""
        for selectivity in ("5%", "12%"):
            for system in ("dgf-medium", "compact", "scan"):
                key = f"{selectivity}/{system}"
                assert join_experiment.data[key]["seconds"] \
                    >= 0.9 * groupby_experiment.data[key]["seconds"]
