"""Benchmark: multi-tenant streaming traffic over the delta subsystem.

Replays the four smart-grid traffic shapes from
``repro.bench.streaming`` — steady ingest, billing scans, outage
backfill, tariff hot spots — against a ``QueryService`` with a DGF
index and an attached streaming-delta binding, the whole scenario under
a seeded fault plan.  Per scenario the query battery's wall-clock is
measured with the delta resident (merge-on-read) and again after
compaction, with identical rows asserted between the two states inside
the experiment.  The headline quantity is the **delta-resident latency
overhead** (resident / compacted); the trajectory is appended to
``BENCH_streaming.json`` at the repo root — one entry per day, like the
other ``BENCH_*`` files.
"""

import json
import time
from pathlib import Path

import pytest

from repro.bench.streaming import SCENARIOS, streaming_scenarios

pytestmark = pytest.mark.slow

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_streaming.json"


@pytest.fixture(scope="module")
def scenario_experiment():
    return streaming_scenarios()


def test_covers_all_four_scenarios(scenario_experiment):
    recorded = scenario_experiment.data["scenarios"]
    assert sorted(recorded) == sorted(name for name, _t, _q in SCENARIOS)
    assert len(recorded) >= 4
    for name, metrics in recorded.items():
        assert metrics["ops"] > 0 and metrics["resident_ops"] > 0, name
        assert metrics["resident_s"] > 0 and metrics["compacted_s"] > 0
        assert metrics["overhead"] > 0


def test_compaction_shapes_match_traffic(scenario_experiment):
    """Insert-only traffic folds; upsert/delete traffic forces the
    whole-file rewrite path."""
    recorded = scenario_experiment.data["scenarios"]
    steady = recorded["steady_ingest"]["compaction"]
    assert steady["rewritten_cells"] == 0
    assert steady["folded_rows"] == recorded["steady_ingest"]["ops"]
    for name in ("billing_scan", "outage_backfill", "tariff_hotspot"):
        compaction = recorded[name]["compaction"]
        assert compaction["rewritten_cells"] > 0, name
        assert compaction["suppressed_rows"] > 0, name
    # net file shrink only where rows truly vanish; pure replacement
    # (outage_backfill) reclaims old bytes but writes the same volume back
    for name in ("billing_scan", "tariff_hotspot"):
        assert recorded[name]["compaction"]["dead_bytes"] > 0, name


def test_whole_scenario_ran_under_chaos(scenario_experiment):
    assert scenario_experiment.data["chaos"]
    for name, metrics in scenario_experiment.data["scenarios"].items():
        injected = metrics["faults"]["injected"]
        assert sum(injected.values()) > 0, f"{name}: no faults injected"


def test_recorded_in_report(scenario_experiment):
    assert scenario_experiment.exp_id == "streaming-scenarios"
    rendered = scenario_experiment.markdown()
    assert "tariff_hotspot" in rendered and "overhead" in rendered


def test_writes_trajectory_file(scenario_experiment):
    """Record the run in BENCH_streaming.json (one entry per day — same
    replace-same-day protocol as BENCH_vectorized.json)."""
    if BENCH_PATH.exists():
        document = json.loads(BENCH_PATH.read_text())
    else:
        document = {"bench": "streaming", "schema_version": 1,
                    "unit": "seconds (wall-clock, best of rounds)",
                    "trajectory": []}
    entry = {
        "date": time.strftime("%Y-%m-%d"),
        "rounds": scenario_experiment.data["rounds"],
        "workers": scenario_experiment.data["workers"],
        "chaos": scenario_experiment.data["chaos"],
        "scenarios": scenario_experiment.data["scenarios"],
    }
    trajectory = [e for e in document["trajectory"]
                  if e["date"] != entry["date"]]
    trajectory.append(entry)
    document["trajectory"] = trajectory
    BENCH_PATH.write_text(json.dumps(document, indent=2, sort_keys=True)
                          + "\n")
    assert json.loads(BENCH_PATH.read_text())["trajectory"][-1]["scenarios"]
