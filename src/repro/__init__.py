"""repro — a full reproduction of *DGFIndex for Smart Grid: Enhancing Hive
with a Cost-Effective Multidimensional Range Index* (Liu et al., VLDB 2014)
on a simulated Hadoop/Hive/HBase stack.

Quick start::

    from repro import HiveSession

    session = HiveSession()
    session.execute("CREATE TABLE meterdata (userid bigint, regionid int, "
                    "ts date, powerconsumed double)")
    session.load_rows("meterdata", rows)
    session.execute("CREATE INDEX dgf_idx ON TABLE meterdata"
                    "(userid, regionid, ts) AS 'dgf' IDXPROPERTIES ("
                    "'userid'='0_200', 'regionid'='0_1', "
                    "'ts'='2012-12-01_1d', "
                    "'precompute'='sum(powerconsumed),count(*)')")
    result = session.execute(
        "SELECT sum(powerconsumed) FROM meterdata "
        "WHERE userid >= 100 AND userid < 500 "
        "AND ts >= '2012-12-05' AND ts < '2012-12-10'")
    print(result.rows, result.stats.records_read,
          result.stats.simulated_seconds)

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-vs-measured record of every table and figure.
"""

from repro.hive.session import HiveSession, QueryOptions, QueryResult
from repro.core.dgf import (DgfIndexHandler, DimensionPolicy, PolicyAdvisor,
                            SplittingPolicy, add_precompute,
                            append_with_dgf)
from repro.mapreduce.cluster import PAPER_CLUSTER, ClusterConfig
from repro.mapreduce.cost import CostModel, TimeBreakdown

__version__ = "1.0.0"

__all__ = [
    "HiveSession",
    "QueryOptions",
    "QueryResult",
    "DgfIndexHandler",
    "DimensionPolicy",
    "SplittingPolicy",
    "PolicyAdvisor",
    "add_precompute",
    "append_with_dgf",
    "ClusterConfig",
    "PAPER_CLUSTER",
    "CostModel",
    "TimeBreakdown",
    "__version__",
]
