"""repro — a full reproduction of *DGFIndex for Smart Grid: Enhancing Hive
with a Cost-Effective Multidimensional Range Index* (Liu et al., VLDB 2014)
on a simulated Hadoop/Hive/HBase stack.

Quick start (the stable public API — see ``docs/api.md``)::

    import repro

    conn = repro.connect()
    conn.execute("CREATE TABLE meterdata (userid bigint, regionid int, "
                 "ts date, powerconsumed double)")
    conn.load_rows("meterdata", rows)
    conn.execute("CREATE INDEX dgf_idx ON TABLE meterdata"
                 "(userid, regionid, ts) AS 'dgf' IDXPROPERTIES ("
                 "'userid'='0_200', 'regionid'='0_1', "
                 "'ts'='2012-12-01_1d', "
                 "'precompute'='sum(powerconsumed),count(*)')")
    result = conn.execute(
        "SELECT sum(powerconsumed) FROM meterdata "
        "WHERE userid >= ? AND userid < ? "
        "AND ts >= ? AND ts < ?",
        (100, 500, "2012-12-05", "2012-12-10"))
    print(result.rows, result.stats.records_read,
          result.stats.simulated_seconds)

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-vs-measured record of every table and figure.
"""

import warnings

from repro.api import (Advice, Advisor, Connection, Cursor, apilevel,
                       connect, paramstyle, threadsafety)
from repro.hive.plan import Plan
from repro.hive.session import QueryOptions, QueryResult
from repro.core.dgf import (DgfIndexHandler, DimensionPolicy, PolicyAdvisor,
                            SplittingPolicy, add_precompute,
                            append_with_dgf)
from repro.core.dgf.advisor import AdvisorReport
from repro.mapreduce.cluster import (PAPER_CLUSTER, ClusterConfig,
                                     ExecutionConfig)
from repro.mapreduce.cost import CostModel, TimeBreakdown
from repro.service import GfuMetadataCache, QueryLog, QueryService

__version__ = "1.2.0"

__all__ = [
    # stable public connection API
    "connect",
    "Connection",
    "Cursor",
    "apilevel",
    "paramstyle",
    "threadsafety",
    "Plan",
    "QueryOptions",
    "QueryResult",
    # serving layer
    "QueryService",
    "GfuMetadataCache",
    # workload-driven tuning (docs/advisor.md)
    "Advisor",
    "Advice",
    "AdvisorReport",
    "QueryLog",
    # deprecated alias (import path kept; see __getattr__)
    "HiveSession",
    # index machinery
    "DgfIndexHandler",
    "DimensionPolicy",
    "SplittingPolicy",
    "PolicyAdvisor",
    "add_precompute",
    "append_with_dgf",
    # cluster / cost model
    "ClusterConfig",
    "ExecutionConfig",
    "PAPER_CLUSTER",
    "CostModel",
    "TimeBreakdown",
    "__version__",
]


def __getattr__(name):
    # Deprecation shim: ``from repro import HiveSession`` keeps working but
    # steers callers to the stable facade.  The class itself is unchanged
    # and importable directly from repro.hive.session without a warning.
    if name == "HiveSession":
        warnings.warn(
            "importing HiveSession from the top-level 'repro' package is "
            "deprecated; use repro.connect() (see docs/api.md) or import "
            "it from repro.hive.session",
            DeprecationWarning, stacklevel=2)
        from repro.hive.session import HiveSession
        return HiveSession
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
