"""SELECT execution: compiles a parsed statement onto the MapReduce engine.

Physical strategies (all used by the paper's workloads):

* plain projection scan — map-only job;
* aggregation without GROUP BY — map emits per-row partial states, combiner
  merges per task, a single reducer merges; the session finalizes (after
  merging DGFIndex header states, when the index rewrote the query);
* GROUP BY — same, keyed by the group tuple, several reducers;
* equi-JOIN — broadcast hash join: small side is read fully into a hash
  table (Hive's map-side join), probe side streams through the mappers.

Index handlers run before the job: they shrink the split list, swap in a
slice-skipping input format, and/or supply pre-computed header states.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ExecutionError, SemanticError
from repro.hdfs.metrics import task_io_scope
from repro.hive import formats
from repro.hive.aggregates import CompiledAggregate
from repro.hive.metastore import TableInfo
from repro.hiveql import ast
from repro.hiveql.evaluator import ColumnResolver, compile_expr
from repro.hiveql.predicates import RangeExtraction, extract_ranges
from repro.mapreduce.cost import JobStats, TimeBreakdown
from repro.mapreduce.job import Job
from repro.mapreduce.splits import FileSplit, InputFormat

#: group key used for aggregation without GROUP BY
_GLOBAL_KEY = 0


@dataclass
class JoinStep:
    """One broadcast hash-join stage."""

    table: TableInfo
    binding: str
    probe_key_fn: Callable          # over the accumulated row
    build_key_fn: Callable          # over the new table's row
    #: rows of the build table, hashed by join key (loaded lazily)
    hash_table: Optional[Dict[Any, List[Tuple]]] = None
    build_stats: JobStats = field(default_factory=JobStats)


@dataclass
class AnalyzedSelect:
    """Everything the physical run needs, produced by :func:`analyze`."""

    stmt: ast.SelectStmt
    table: TableInfo
    resolver: ColumnResolver          # over the combined (joined) row
    probe_resolver: ColumnResolver    # over the base-table row only
    joins: List[JoinStep]
    probe_filter: Callable[[Sequence[Any]], bool]
    combined_filter: Callable[[Sequence[Any]], bool]
    ranges: RangeExtraction
    is_group_query: bool
    group_exprs: List[ast.Expr]
    group_fns: List[Callable]
    aggregates: List[CompiledAggregate]
    #: for each select item: ("group", group_index) or ("agg", agg_index)
    item_slots: List[Tuple[str, int]]
    project_fns: List[Callable]       # plain (non-group) projection
    output_names: List[str]
    referenced_columns: List[str]     # base-table columns the query touches


def analyze(metastore, stmt: ast.SelectStmt) -> AnalyzedSelect:
    table = metastore.get_table(stmt.table.name)
    probe_resolver = ColumnResolver.for_schema(table.schema,
                                               stmt.table.binding)
    resolver = ColumnResolver.for_schema(table.schema, stmt.table.binding)
    joins: List[JoinStep] = []
    offset = len(table.schema)
    for join in stmt.joins:
        join_table = metastore.get_table(join.table.name)
        probe_key, build_key = _split_join_condition(
            join.condition, resolver, join_table, join.table.binding)
        build_resolver = ColumnResolver.for_schema(join_table.schema,
                                                   join.table.binding)
        joins.append(JoinStep(
            table=join_table, binding=join.table.binding,
            probe_key_fn=compile_expr(probe_key, resolver),
            build_key_fn=compile_expr(build_key, build_resolver)))
        resolver.add_schema(join_table.schema, join.table.binding, offset)
        offset += len(join_table.schema)

    items = _expand_stars(stmt, table, joins)
    ranges = extract_ranges(stmt.where)
    probe_pred, combined_pred = _split_filter(stmt.where, probe_resolver)
    probe_filter = _filter_fn(probe_pred, probe_resolver)
    combined_filter = _filter_fn(combined_pred, resolver)

    group_exprs = list(stmt.group_by)
    has_aggs = any(ast.contains_aggregate(item.expr) for item in items)
    is_group_query = bool(group_exprs) or has_aggs

    aggregates: List[CompiledAggregate] = []
    item_slots: List[Tuple[str, int]] = []
    project_fns: List[Callable] = []
    if is_group_query:
        rendered_groups = [_canon(e) for e in group_exprs]
        for item in items:
            if ast.is_aggregate_call(item.expr):
                aggregates.append(
                    CompiledAggregate.compile(item.expr, resolver))
                item_slots.append(("agg", len(aggregates) - 1))
            elif ast.contains_aggregate(item.expr):
                raise SemanticError(
                    f"expressions over aggregates are not supported: "
                    f"{item.expr.render()}")
            else:
                slot = _match_group(item.expr, rendered_groups)
                if slot is None:
                    raise SemanticError(
                        f"{item.expr.render()} is neither an aggregate nor "
                        "in GROUP BY")
                item_slots.append(("group", slot))
    else:
        project_fns = [compile_expr(item.expr, resolver) for item in items]

    group_fns = [compile_expr(e, resolver) for e in group_exprs]
    referenced = _referenced_columns(stmt, items, table)
    return AnalyzedSelect(
        stmt=stmt, table=table, resolver=resolver,
        probe_resolver=probe_resolver, joins=joins,
        probe_filter=probe_filter, combined_filter=combined_filter,
        ranges=ranges, is_group_query=is_group_query,
        group_exprs=group_exprs, group_fns=group_fns,
        aggregates=aggregates, item_slots=item_slots,
        project_fns=project_fns,
        output_names=[item.output_name() for item in items],
        referenced_columns=referenced)


def _canon(expr: ast.Expr) -> str:
    return expr.render().lower().replace(" ", "")


def _match_group(expr: ast.Expr, rendered_groups: List[str]) -> Optional[int]:
    canon = _canon(expr)
    for i, group in enumerate(rendered_groups):
        if canon == group:
            return i
        # allow unqualified select item to match a qualified group expr
        if canon == group.split(".")[-1] or group == canon.split(".")[-1]:
            return i
    return None


def _expand_stars(stmt: ast.SelectStmt, table: TableInfo,
                  joins: List[JoinStep]) -> List[ast.SelectItem]:
    items: List[ast.SelectItem] = []
    for item in stmt.items:
        if isinstance(item.expr, ast.Star):
            for column in table.schema.columns:
                items.append(ast.SelectItem(
                    expr=ast.ColumnRef(name=column.name,
                                       table=stmt.table.binding)))
            for step in joins:
                for column in step.table.schema.columns:
                    items.append(ast.SelectItem(
                        expr=ast.ColumnRef(name=column.name,
                                           table=step.binding)))
        else:
            items.append(item)
    return items


def _split_join_condition(condition: ast.Expr, probe_resolver: ColumnResolver,
                          build_table: TableInfo, build_binding: str
                          ) -> Tuple[ast.Expr, ast.Expr]:
    """Return (probe-side expr, build-side expr) of an equi-join condition."""
    if not (isinstance(condition, ast.BinaryOp) and condition.op == "="):
        raise SemanticError(
            f"only equi-joins are supported, got {condition.render()}")
    build_resolver = ColumnResolver.for_schema(build_table.schema,
                                               build_binding)

    def side_of(expr: ast.Expr) -> str:
        refs = ast.collect_column_refs(expr)
        if not refs:
            raise SemanticError(
                f"join condition side {expr.render()} references no column")
        if all(build_resolver.try_resolve(r) is not None for r in refs):
            return "build"
        if all(probe_resolver.try_resolve(r) is not None for r in refs):
            return "probe"
        raise SemanticError(
            f"cannot attribute {expr.render()} to one join side")

    left_side = side_of(condition.left)
    right_side = side_of(condition.right)
    if {left_side, right_side} != {"probe", "build"}:
        raise SemanticError(
            f"join condition {condition.render()} must compare the two sides")
    if left_side == "probe":
        return condition.left, condition.right
    return condition.right, condition.left


def _split_filter(where: Optional[ast.Expr], probe_resolver: ColumnResolver
                  ) -> Tuple[Optional[ast.Expr], Optional[ast.Expr]]:
    """Split WHERE into (probe-only conjunction, remainder conjunction) so
    rows are filtered before the join whenever possible."""
    if where is None:
        return None, None
    probe_parts: List[ast.Expr] = []
    rest_parts: List[ast.Expr] = []
    for conjunct in _conjuncts(where):
        refs = ast.collect_column_refs(conjunct)
        if refs and all(probe_resolver.try_resolve(r) is not None
                        for r in refs):
            probe_parts.append(conjunct)
        else:
            rest_parts.append(conjunct)
    return _conjoin(probe_parts), _conjoin(rest_parts)


def _conjuncts(expr: ast.Expr) -> List[ast.Expr]:
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


def _conjoin(parts: List[ast.Expr]) -> Optional[ast.Expr]:
    if not parts:
        return None
    out = parts[0]
    for part in parts[1:]:
        out = ast.BinaryOp(op="AND", left=out, right=part)
    return out


def _filter_fn(pred: Optional[ast.Expr],
               resolver: ColumnResolver) -> Callable:
    if pred is None:
        return lambda row: True
    compiled = compile_expr(pred, resolver)
    return lambda row: compiled(row) is True


def _referenced_columns(stmt: ast.SelectStmt, items: List[ast.SelectItem],
                        table: TableInfo) -> List[str]:
    refs: List[ast.ColumnRef] = []
    for item in items:
        refs.extend(ast.collect_column_refs(item.expr))
    if stmt.where is not None:
        refs.extend(ast.collect_column_refs(stmt.where))
    for expr in stmt.group_by:
        refs.extend(ast.collect_column_refs(expr))
    for order in stmt.order_by:
        refs.extend(ast.collect_column_refs(order.expr))
    for join in stmt.joins:
        refs.extend(ast.collect_column_refs(join.condition))
    seen = []
    for ref in refs:
        if table.schema.has_column(ref.name):
            name = table.schema.column(ref.name).name
            if name not in seen:
                seen.append(name)
    if not seen:  # e.g. SELECT count(*): still must read something
        seen.append(table.schema.columns[0].name)
    return seen


# --------------------------------------------------------------------- jobs
def build_job(analysis: AnalyzedSelect, splits: List[FileSplit],
              input_format: InputFormat, job_name: str,
              num_group_reducers: int = 8, vector_plan=None) -> Job:
    """Assemble the MapReduce job implementing the analysed SELECT.

    ``vector_plan`` (a :class:`repro.vector.plan.VectorSelectPlan`) makes
    the engine run map tasks columnar; the row mapper built here remains
    the job's reference implementation and still serves crash-injected
    attempts.
    """
    probe_filter = analysis.probe_filter
    combined_filter = analysis.combined_filter
    joins = analysis.joins
    group_fns = analysis.group_fns
    aggregates = analysis.aggregates

    def expand(row):
        """Apply the join pipeline: one probe row -> 0+ combined rows."""
        rows = [row]
        for step in joins:
            matched = []
            for current in rows:
                key = step.probe_key_fn(current)
                for build_row in step.hash_table.get(key, ()):
                    matched.append(tuple(current) + build_row)
            rows = matched
            if not rows:
                return rows
        return rows

    if analysis.is_group_query:
        functions = [agg.function for agg in aggregates]

        def mapper(key, value, ctx):
            if not probe_filter(value):
                return
            for row in (expand(value) if joins else (value,)):
                if not combined_filter(row):
                    continue
                ctx.counter("query", "matched")
                group_key = (tuple(fn(row) for fn in group_fns)
                             if group_fns else _GLOBAL_KEY)
                states = tuple(
                    agg.accumulate_row(agg.function.initial(), row)
                    for agg in aggregates)
                ctx.emit(group_key, states)

        def combiner(key, values, ctx):
            ctx.emit(key, _merge_states(functions, values))

        def reducer(key, values, ctx):
            ctx.emit(key, _merge_states(functions, values))

        return Job(name=job_name, input_format=input_format, mapper=mapper,
                   splits=splits, combiner=combiner, reducer=reducer,
                   num_reducers=(num_group_reducers if group_fns else 1),
                   vector_plan=vector_plan)

    project_fns = analysis.project_fns

    def plain_mapper(key, value, ctx):
        if not probe_filter(value):
            return
        for row in (expand(value) if joins else (value,)):
            if not combined_filter(row):
                continue
            ctx.counter("query", "matched")
            ctx.emit(None, tuple(fn(row) for fn in project_fns))

    return Job(name=job_name, input_format=input_format,
               mapper=plain_mapper, splits=splits, num_reducers=0,
               vector_plan=vector_plan)


def _merge_states(functions, values):
    merged = list(values[0])
    for value in values[1:]:
        for i, function in enumerate(functions):
            merged[i] = function.merge(merged[i], value[i])
    return tuple(merged)


def finalize_group_output(analysis: AnalyzedSelect,
                          grouped: Dict[Any, Tuple]) -> List[Tuple]:
    """Turn reduced ``group_key -> states`` into output rows in select-item
    order (group keys sorted for determinism)."""
    rows: List[Tuple] = []
    for key in sorted(grouped, key=_sort_key):
        states = grouped[key]
        out = []
        for kind, slot in analysis.item_slots:
            if kind == "group":
                out.append(key[slot] if isinstance(key, tuple) else key)
            else:
                agg = analysis.aggregates[slot]
                out.append(agg.function.finalize(states[slot]))
        rows.append(tuple(out))
    return rows


def _sort_key(key):
    # None sorts first; mixed types are kept stable via type name.
    if isinstance(key, tuple):
        return tuple(_sort_key(k) for k in key)
    return (key is not None, type(key).__name__, key)


def apply_order_and_limit(analysis: AnalyzedSelect,
                          rows: List[Tuple]) -> List[Tuple]:
    stmt = analysis.stmt
    if stmt.order_by:
        names = [n.lower() for n in analysis.output_names]
        for order in reversed(stmt.order_by):
            idx = _output_index(order.expr, names, analysis)
            rows.sort(key=lambda r, i=idx: _sort_key(r[i]),
                      reverse=not order.ascending)
    if stmt.limit is not None:
        rows = rows[:stmt.limit]
    return rows


def _output_index(expr: ast.Expr, names: List[str],
                  analysis: AnalyzedSelect) -> int:
    canon = _canon(expr)
    if canon in names:
        return names.index(canon)
    bare = canon.split(".")[-1]
    if bare in names:
        return names.index(bare)
    for i, item in enumerate(analysis.stmt.items):
        if _canon(item.expr) == canon:
            return i
    raise SemanticError(
        f"ORDER BY {expr.render()} must reference a select item")


def load_join_hash_tables(fs, analysis: AnalyzedSelect) -> JobStats:
    """Read each build-side table fully and hash it (Hive's local map-join
    task).  Returns the combined measured read stats."""
    total = JobStats()
    for step in analysis.joins:
        if step.hash_table is not None:
            continue
        # Per-thread I/O scope (not a global snapshot/delta): the measured
        # bytes are exactly this build's reads even when other statements
        # run concurrently under the query service.
        with task_io_scope() as scope:
            table: Dict[Any, List[Tuple]] = {}
            count = 0
            for row in formats.scan_table_rows(fs, step.table):
                count += 1
                table.setdefault(step.build_key_fn(row), []).append(row)
            step.hash_table = table
            captured = scope.captured(fs.io)
        step.build_stats = JobStats(map_tasks=1, map_input_records=count,
                                    map_input_bytes=captured.bytes_read)
        total.merge(step.build_stats)
    return total
