"""The metastore: tables, partitions and index descriptors.

Tables live under a warehouse directory (``/warehouse/<table>``); a
partitioned table has one subdirectory per partition value
(``<location>/<col>=<value>``), exactly Hive's layout — which is what makes
the NameNode-memory partition-explosion experiment meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import MetastoreError
from repro.storage.schema import DataType, Schema

WAREHOUSE_ROOT = "/warehouse"

_TYPE_NAMES = {
    "int": DataType.INT,
    "bigint": DataType.BIGINT,
    "double": DataType.DOUBLE,
    "float": DataType.DOUBLE,
    "string": DataType.STRING,
    "date": DataType.DATE,
}


def parse_type(name: str) -> DataType:
    try:
        return _TYPE_NAMES[name.lower()]
    except KeyError:
        raise MetastoreError(f"unsupported column type {name!r}") from None


@dataclass
class TableInfo:
    """Metadata of one table."""

    name: str
    schema: Schema
    stored_as: str = "TEXTFILE"
    location: str = ""
    partition_schema: Optional[Schema] = None
    #: partition value tuple -> directory path
    partitions: Dict[Tuple, str] = field(default_factory=dict)
    properties: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if not self.location:
            self.location = f"{WAREHOUSE_ROOT}/{self.name.lower()}"

    @property
    def is_partitioned(self) -> bool:
        return self.partition_schema is not None

    def partition_dir(self, values: Tuple) -> str:
        """Hive-style partition directory for a value tuple."""
        if not self.is_partitioned:
            raise MetastoreError(f"table {self.name!r} is not partitioned")
        if len(values) != len(self.partition_schema.columns):
            raise MetastoreError(
                f"expected {len(self.partition_schema.columns)} partition "
                f"values, got {len(values)}")
        parts = [f"{col.name}={value}" for col, value in
                 zip(self.partition_schema.columns, values)]
        return self.location + "/" + "/".join(parts)

    @property
    def data_location(self) -> str:
        """Where query scans read from.  DGFIndex construction reorganizes
        the table into a new directory and records it here."""
        return self.properties.get("dgf_data_location", self.location)


@dataclass
class IndexInfo:
    """Metadata of one index (any handler type)."""

    name: str
    table: str
    columns: Tuple[str, ...]
    handler: str  # registry name: "compact" | "aggregate" | "bitmap" | "dgf"
    properties: Dict[str, str] = field(default_factory=dict)
    #: handler-private state (index table path, policy JSON, KV table name...)
    state: Dict[str, Any] = field(default_factory=dict)
    built: bool = False


class Metastore:
    """Name -> metadata maps with validation."""

    def __init__(self):
        self._tables: Dict[str, TableInfo] = {}
        self._indexes: Dict[str, IndexInfo] = {}  # key: table.index

    # ---------------------------------------------------------------- tables
    def create_table(self, info: TableInfo) -> None:
        key = info.name.lower()
        if key in self._tables:
            raise MetastoreError(f"table {info.name!r} already exists")
        self._tables[key] = info

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def get_table(self, name: str) -> TableInfo:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise MetastoreError(f"unknown table {name!r}") from None

    def drop_table(self, name: str) -> TableInfo:
        info = self.get_table(name)
        del self._tables[name.lower()]
        for key in [k for k, v in self._indexes.items()
                    if v.table.lower() == name.lower()]:
            del self._indexes[key]
        return info

    def list_tables(self) -> List[str]:
        return sorted(t.name for t in self._tables.values())

    # --------------------------------------------------------------- indexes
    def add_index(self, info: IndexInfo) -> None:
        self.get_table(info.table)  # validates the table exists
        key = f"{info.table.lower()}.{info.name.lower()}"
        if key in self._indexes:
            raise MetastoreError(
                f"index {info.name!r} on {info.table!r} already exists")
        if info.handler == "dgf" and self.indexes_on(info.table, "dgf"):
            # The paper: each table can only create one DGFIndex, because the
            # index physically reorganizes the table's data layout.
            raise MetastoreError(
                f"table {info.table!r} already has a DGFIndex; "
                "each table can have at most one")
        self._indexes[key] = info

    def get_index(self, table: str, name: str) -> IndexInfo:
        try:
            return self._indexes[f"{table.lower()}.{name.lower()}"]
        except KeyError:
            raise MetastoreError(
                f"unknown index {name!r} on table {table!r}") from None

    def drop_index(self, table: str, name: str) -> IndexInfo:
        info = self.get_index(table, name)
        del self._indexes[f"{table.lower()}.{name.lower()}"]
        return info

    def indexes_on(self, table: str,
                   handler: Optional[str] = None) -> List[IndexInfo]:
        out = [v for v in self._indexes.values()
               if v.table.lower() == table.lower()]
        if handler is not None:
            out = [v for v in out if v.handler == handler]
        return sorted(out, key=lambda v: v.name)
