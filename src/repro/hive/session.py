"""HiveSession: the public entry point tying all substrates together.

A session owns a simulated HDFS, a MapReduce engine, a key-value store
(HBase stand-in for DGFIndex), the metastore, the index-handler registry and
a cost model.  ``execute()`` accepts HiveQL text and returns a
:class:`QueryResult` with rows, measured counters and paper-scale simulated
times.

Typical use::

    session = HiveSession()
    session.execute("CREATE TABLE meterdata (userid bigint, ...)")
    session.load_rows("meterdata", rows)
    session.execute(
        "CREATE INDEX idx ON TABLE meterdata(userid, regionid, ts) "
        "AS 'dgf' IDXPROPERTIES ('userid'='0_200', 'regionid'='0_1', "
        "'ts'='2012-12-01_1d', 'precompute'='sum(powerconsumed)')")
    result = session.execute("SELECT sum(powerconsumed) FROM meterdata "
                             "WHERE userid >= 100 AND userid < 2000")
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import (DataNodeUnavailable, ExecutionError,
                          MetastoreError, SemanticError)
from repro.hdfs.filesystem import HDFS
from repro.hdfs.metrics import task_io_scope
from repro.hive import exec as hexec
from repro.hive import formats
from repro.hive.aggregates import canonical_key
from repro.hive.indexhandler import (BuildReport, IndexAccessPlan,
                                     IndexHandler, QueryIndexContext,
                                     resolve_handler_name)
from repro.hive.metastore import (IndexInfo, Metastore, TableInfo, parse_type)
from repro.hive.plan import Plan
from repro.hiveql import ast, parse
from repro.hiveql.predicates import extract_ranges
from repro.kvstore.hbase import KVStore
from repro.mapreduce.cluster import (PAPER_CLUSTER, ClusterConfig,
                                     ExecutionConfig)
from repro.mapreduce.cost import CostModel, JobStats, TimeBreakdown
from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.splits import FileSplit
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, Trace, Tracer
from repro.service.cache import GfuMetadataCache
from repro.storage.schema import Column, Schema
from repro.storage.textfile import serialize_row


@dataclass
class QueryOptions:
    """Per-query knobs (all default to the paper's transparent behaviour).

    Layer ownership: QueryOptions is the **planner's per-query** surface —
    pass it (or a plain dict of its fields) to every
    ``execute(..., options=...)``.  Session-wide engine mechanics
    (vectorization, task threads) belong to
    :class:`~repro.mapreduce.cluster.ExecutionConfig`, fixed at
    ``repro.connect()`` time; service-pool sizing belongs to
    ``connect(max_workers=..., queue_depth=...)``.  Unknown keys in the
    dict form raise ``TypeError`` naming the right layer (see the
    knob-ownership section of :mod:`repro.api`).
    """

    use_index: bool = True
    #: force one specific index by name (None = automatic selection)
    index_name: Optional[str] = None
    #: Figure 17 ablation: keep DGFIndex but disable its header path
    dgf_use_precompute: bool = True
    #: pin the replica-fleet router to one layout ("primary" or a
    #: registered layout name); None = cost-based routing.  Only
    #: meaningful for tables whose DGF index carries a replica fleet.
    dgf_layout: Optional[str] = None
    #: disable the aggregation-pyramid read path while keeping the
    #: pyramid built (differential harnesses compare the two modes)
    dgf_pyramid: bool = True
    #: reducers used for GROUP BY jobs
    group_reducers: int = 8


@dataclass
class QueryStats:
    """Measured + modelled facts about one executed query."""

    jobs: int = 0
    splits_processed: int = 0
    records_read: int = 0          # base-table records fed to mappers
    bytes_read: int = 0
    records_matched: int = 0       # rows that satisfied the full predicate
    output_records: int = 0
    index_used: Optional[str] = None
    index_records_scanned: int = 0
    index_kv_gets: int = 0
    time: TimeBreakdown = field(default_factory=TimeBreakdown)

    @property
    def simulated_seconds(self) -> float:
        return self.time.total


@dataclass
class QueryResult:
    columns: List[str]
    rows: List[Tuple]
    stats: QueryStats = field(default_factory=QueryStats)
    description: str = ""
    #: the query's span tree (populated for SELECTs); ``trace.to_json()``
    #: emits the versioned document described in docs/observability.md.
    trace: Optional[Trace] = None
    #: structured plan (populated for SELECT/EXPLAIN); ``description`` is
    #: exactly ``plan.render()`` — inspect fields instead of parsing text.
    plan: Optional[Plan] = None

    def scalar(self) -> Any:
        """The single value of a one-row/one-column result."""
        if len(self.rows) != 1 or len(self.rows[0]) != 1:
            raise ExecutionError(
                f"scalar() on a {len(self.rows)}-row result")
        return self.rows[0][0]


class HiveSession:
    """Executes HiveQL over the simulated stack."""

    def __init__(self, fs: Optional[HDFS] = None,
                 kvstore: Optional[KVStore] = None,
                 cluster: ClusterConfig = PAPER_CLUSTER,
                 data_scale: float = 1.0,
                 num_datanodes: int = 4,
                 execution: Optional[ExecutionConfig] = None,
                 cache: Union[None, bool, GfuMetadataCache] = None,
                 faults: Union[None, "FaultPlan", "FaultInjector"] = None):
        self.fs = fs if fs is not None else HDFS(num_datanodes=num_datanodes)
        self.kvstore = kvstore if kvstore is not None else KVStore()
        self.cluster = cluster
        self.cost_model = CostModel(cluster, data_scale=data_scale)
        self.metastore = Metastore()
        # ``execution`` controls *real* in-process task parallelism (thread
        # pool size); results are byte-identical for every setting, and the
        # sequential default keeps calibrated benchmark numbers unchanged.
        self.execution = execution if execution is not None \
            else ExecutionConfig()
        # Observability: one tracer (per-query span trees, normalized-stable
        # across worker counts) and one metrics registry per session.  The
        # filesystem, KV store and engine all report into the same tracer.
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()
        self.fs.tracer = self.tracer
        self.kvstore.tracer = self.tracer
        # Fault injection: accept a FaultPlan (wrapped in a fresh injector)
        # or a prebuilt FaultInjector; every instrumented layer shares it.
        # ``faults=None`` (the default) keeps all fault paths dormant.
        if faults is None:
            self.fault_injector = None
        else:
            from repro.faults import FaultInjector, FaultPlan
            if isinstance(faults, FaultPlan):
                faults = FaultInjector(faults)
            self.fault_injector = faults
            self.fault_injector.bind_metrics(self.metrics)
            self.fs.faults = self.fault_injector
            self.kvstore.faults = self.fault_injector
        self.engine = MapReduceEngine(self.fs, execution=self.execution,
                                      tracer=self.tracer,
                                      faults=self.fault_injector)
        # GFU-metadata cache in front of the KV store: on by default
        # (``cache=False`` disables it, an instance injects a shared one).
        # Kept coherent by the store's write listeners plus the explicit
        # namespace invalidations on append/rebuild/drop below; per-query
        # results and traces are byte-identical with or without it.
        if cache is False:
            self.metadata_cache: Optional[GfuMetadataCache] = None
        elif cache is None or cache is True:
            self.metadata_cache = GfuMetadataCache(metrics=self.metrics)
        else:
            self.metadata_cache = cache
            cache.bind_metrics(self.metrics)
        if self.metadata_cache is not None:
            self.kvstore.add_write_listener(self.metadata_cache.on_write)
        self._handlers: Dict[str, IndexHandler] = {}
        self._load_counters: Dict[str, int] = {}
        # Streaming delta bindings, one per table (lowercased name).  A
        # bound table's reads merge resident KV delta ops on the fly; see
        # repro.delta.  Attached via attach_delta() / the query service's
        # streaming_writer().
        self._delta_bindings: Dict[str, Any] = {}
        # Advisor query log: None (the default) disables capture entirely;
        # attach a repro.service.querylog.QueryLog to record one compact
        # LoggedQuery per executed DGF range query.  The pending region is
        # thread-local so concurrent service workers never cross-log.
        self.query_log = None
        self._pending_region = threading.local()
        self._register_default_handlers()

    def set_data_scale(self, data_scale: float) -> None:
        """Rescale the cost model (paper records / loaded records)."""
        self.cost_model = CostModel(self.cluster, data_scale=data_scale)

    # ----------------------------------------------------------- registration
    def _register_default_handlers(self) -> None:
        # Imported here to avoid a circular import at module load time.
        from repro.indexes.compact import CompactIndexHandler
        from repro.indexes.aggregate import AggregateIndexHandler
        from repro.indexes.bitmap import BitmapIndexHandler
        from repro.core.dgf.handler import DgfIndexHandler
        for handler in (DgfIndexHandler(), CompactIndexHandler(),
                        AggregateIndexHandler(), BitmapIndexHandler()):
            self.register_handler(handler)

    def register_handler(self, handler: IndexHandler) -> None:
        self._handlers[handler.handler_name] = handler

    def handler(self, name: str) -> IndexHandler:
        try:
            return self._handlers[name]
        except KeyError:
            raise SemanticError(f"no index handler registered as {name!r}")

    def dgf_store(self, table: str, index: str):
        """A :class:`~repro.core.dgf.store.DgfStore` for ``(table, index)``
        wired to this session's GFU-metadata cache (planner read path)."""
        from repro.core.dgf.store import DgfStore
        return DgfStore(self.kvstore, table, index,
                        cache=self.metadata_cache)

    # ------------------------------------------------------------- streaming
    def attach_delta(self, table: str, index: str,
                     key_columns: Optional[Sequence[str]] = None):
        """Bind a KV delta store to ``table``'s DGF ``index`` so streamed
        inserts/upserts/deletes are merged into every subsequent read
        (:class:`~repro.delta.store.DeltaBinding`).  Idempotent for the
        same index; rebinding a table to a different index raises."""
        from repro.delta.store import DeltaBinding
        from repro.errors import DeltaError
        info = self.metastore.get_table(table)
        existing = self._delta_bindings.get(info.name.lower())
        if existing is not None:
            if not existing.serves(index):
                raise DeltaError(
                    f"table {info.name!r} already streams into index "
                    f"{existing.index.name!r}; detach_delta() first")
            return existing
        binding = DeltaBinding(self, info,
                               self.metastore.get_index(table, index),
                               key_columns=key_columns)
        self._delta_bindings[info.name.lower()] = binding
        return binding

    def delta_binding(self, table: str):
        """The table's live :class:`DeltaBinding`, or ``None``."""
        return self._delta_bindings.get(table.lower())

    def detach_delta(self, table: str, clear: bool = False):
        """Unbind the table's delta store.  ``clear=True`` also deletes
        its resident KV ops (otherwise they survive for a re-attach)."""
        binding = self._delta_bindings.pop(table.lower(), None)
        if binding is not None and clear:
            binding.clear()
        return binding

    def _invalidate_table_cache(self, table: str) -> None:
        if self.metadata_cache is not None:
            self.metadata_cache.invalidate_table(table)

    def _invalidate_index_cache(self, table: str, index: str) -> None:
        if self.metadata_cache is not None:
            self.metadata_cache.invalidate_index(table, index)

    # ------------------------------------------------------------------- DDL
    def execute(self, sql: str,
                options: Optional[QueryOptions] = None) -> QueryResult:
        stmt = parse(sql) if isinstance(sql, str) else sql
        options = options or QueryOptions()
        if isinstance(stmt, ast.SelectStmt):
            return self._run_select(stmt, options)
        if isinstance(stmt, ast.ExplainStmt):
            return self._explain(stmt.query, options, analyze=stmt.analyze)
        if isinstance(stmt, ast.CreateTableStmt):
            return self._create_table(stmt)
        if isinstance(stmt, ast.CreateIndexStmt):
            return self._create_index(stmt)
        if isinstance(stmt, ast.DropTableStmt):
            return self._drop_table(stmt)
        if isinstance(stmt, ast.DropIndexStmt):
            return self._drop_index(stmt)
        if isinstance(stmt, ast.ShowTablesStmt):
            return QueryResult(columns=["table_name"],
                               rows=[(t,) for t in
                                     self.metastore.list_tables()])
        if isinstance(stmt, ast.ShowIndexesStmt):
            rows = [(i.name, i.handler, ",".join(i.columns), i.built)
                    for i in self.metastore.indexes_on(stmt.table)]
            return QueryResult(
                columns=["index_name", "handler", "columns", "built"],
                rows=rows)
        if isinstance(stmt, ast.DescribeStmt):
            table = self.metastore.get_table(stmt.table)
            rows = [(c.name, c.dtype.value) for c in table.schema.columns]
            return QueryResult(columns=["col_name", "data_type"], rows=rows)
        raise ExecutionError(f"unsupported statement {type(stmt).__name__}")

    def _create_table(self, stmt: ast.CreateTableStmt) -> QueryResult:
        if stmt.if_not_exists and self.metastore.has_table(stmt.name):
            return QueryResult(columns=["result"], rows=[("EXISTS",)])
        columns = [Column(c.name, parse_type(c.type_name))
                   for c in stmt.columns]
        partition_schema = None
        if stmt.partitioned_by:
            # Partition columns are routing columns; they are also kept in
            # the row data so scans and filters treat them uniformly (a
            # documented divergence from Hive, which stores them only in the
            # directory name).
            partition_schema = Schema(
                Column(c.name, parse_type(c.type_name))
                for c in stmt.partitioned_by)
            names = {c.name.lower() for c in columns}
            missing = [c for c in partition_schema.columns
                       if c.name.lower() not in names]
            columns.extend(missing)
        info = TableInfo(name=stmt.name, schema=Schema(columns),
                         stored_as=stmt.stored_as,
                         partition_schema=partition_schema)
        self.metastore.create_table(info)
        self.fs.mkdirs(info.location)
        return QueryResult(columns=["result"], rows=[("OK",)])

    def _drop_table(self, stmt: ast.DropTableStmt) -> QueryResult:
        if stmt.if_exists and not self.metastore.has_table(stmt.name):
            return QueryResult(columns=["result"], rows=[("SKIPPED",)])
        for index in self.metastore.indexes_on(stmt.name):
            self.handler(index.handler).drop(self, index)
            # Persisted streaming deltas ride the index's lifecycle even
            # when no binding is attached this session.
            from repro.delta.store import DeltaStore
            DeltaStore(self.kvstore, stmt.name, index.name).clear()
        self._delta_bindings.pop(stmt.name.lower(), None)
        self._invalidate_table_cache(stmt.name)
        if self.metadata_cache is not None:
            self.metadata_cache.invalidate_streaming(stmt.name)
        info = self.metastore.drop_table(stmt.name)
        if self.fs.exists(info.location):
            self.fs.delete(info.location, recursive=True)
        reorganized = info.properties.get("dgf_data_location")
        if reorganized and self.fs.exists(reorganized):
            self.fs.delete(reorganized, recursive=True)
        return QueryResult(columns=["result"], rows=[("OK",)])

    def _create_index(self, stmt: ast.CreateIndexStmt) -> QueryResult:
        handler_name = resolve_handler_name(stmt.handler)
        table = self.metastore.get_table(stmt.table)
        for column in stmt.columns:
            table.schema.index_of(column)  # validates
        info = IndexInfo(name=stmt.name, table=stmt.table,
                         columns=tuple(table.schema.column(c).name
                                       for c in stmt.columns),
                         handler=handler_name,
                         properties=dict(stmt.properties))
        self.metastore.add_index(info)
        if stmt.deferred_rebuild:
            return QueryResult(columns=["result"], rows=[("DEFERRED",)])
        report = self.handler(handler_name).build(self, info)
        info.state["build_report"] = report
        return QueryResult(
            columns=["result", "index_size_bytes", "build_seconds"],
            rows=[("OK", report.index_size_bytes, report.build_time.total)])

    def _drop_index(self, stmt: ast.DropIndexStmt) -> QueryResult:
        info = self.metastore.drop_index(stmt.table, stmt.name)
        self.handler(info.handler).drop(self, info)
        # Strict invalidation: the drop's deletes already evicted every
        # *positive* cache entry via the write listeners; dropping the
        # whole namespace also clears negative entries so a later index
        # of the same name starts from a cold cache.
        self._invalidate_index_cache(stmt.table, stmt.name)
        return QueryResult(columns=["result"], rows=[("OK",)])

    def rebuild_index(self, table: str, name: str) -> BuildReport:
        """ALTER INDEX ... REBUILD equivalent (also used after appends)."""
        info = self.metastore.get_index(table, name)
        binding = self.delta_binding(table)
        if (binding is not None and binding.serves(name)
                and binding.resident_ops):
            from repro.errors import DeltaError
            raise DeltaError(
                f"index {name!r} has {binding.resident_ops} resident "
                "streaming ops; compact or clear the delta before "
                "rebuilding")
        self._invalidate_index_cache(table, name)
        report = self.handler(info.handler).build(self, info)
        info.state["build_report"] = report
        return report

    def build_report(self, table: str, name: str) -> BuildReport:
        info = self.metastore.get_index(table, name)
        report = info.state.get("build_report")
        if report is None:
            raise MetastoreError(f"index {name!r} has not been built")
        return report

    # ---------------------------------------------------------- replica fleet
    def add_layout(self, table: str, index: str, layout: str, *,
                   grid: Optional[Dict[str, str]] = None,
                   stored_as: Optional[str] = None,
                   placement: Optional[str] = None,
                   datanodes: Iterable[int] = ()) -> BuildReport:
        """Build one replica-fleet layout of a DGF index (HAIL-style):
        a full reorganized copy under its own grid granularity, storage
        format and reducer placement, pinned to ``datanodes``.  See
        :mod:`repro.core.dgf.fleet` and docs/replicas.md."""
        from repro.core.dgf import fleet
        return fleet.add_replica_layout(
            self, table, index, layout, grid=grid, stored_as=stored_as,
            placement=placement, datanodes=datanodes)

    def drop_layout(self, table: str, index: str, layout: str) -> None:
        """Remove one replica-fleet layout (files, KV namespace, pin)."""
        from repro.core.dgf import fleet
        fleet.drop_layout(self, self.metastore.get_table(table),
                          self.metastore.get_index(table, index), layout)

    def layout_report(self) -> List[Dict[str, Any]]:
        """Registered layouts and their liveness (delegates to HDFS)."""
        return self.fs.layout_report()

    # ---------------------------------------------------- aggregation pyramid
    def build_pyramid(self, table: str, index: str,
                      fanout: int = 2) -> Dict[str, Any]:
        """Materialize the multi-resolution aggregation pyramid over a
        built DGF index's GFU headers (and over every registered replica
        layout), enabling the pyramid read path for inner regions.  See
        :mod:`repro.pyramid` and docs/pyramid.md."""
        from repro.core.dgf import fleet
        from repro.errors import IndexError_
        from repro.pyramid import PYRAMID_STATE_KEY, rebuild_pyramid
        info = self.metastore.get_index(table, index)
        if info.handler != "dgf":
            raise IndexError_(
                f"index {index!r} uses handler {info.handler!r}; the "
                "aggregation pyramid only applies to DGF indexes")
        if not info.built:
            raise IndexError_(
                f"index {index!r} has not been built; build it before "
                "adding a pyramid")
        if fanout < 2:
            raise IndexError_(f"pyramid fanout must be >= 2, got {fanout}")
        info.state[PYRAMID_STATE_KEY] = {"fanout": fanout, "layouts": {}}
        summary = {"primary": rebuild_pyramid(self, info)}
        for layout_name in fleet.registered_layouts(info):
            summary[layout_name] = rebuild_pyramid(self, info,
                                                   layout_name=layout_name)
        return summary

    def drop_pyramid(self, table: str, index: str) -> None:
        """Remove the index's aggregation pyramid (all layouts) and
        disable the pyramid read path.  The index itself is untouched."""
        from repro.core.dgf import fleet
        from repro.pyramid import PYRAMID_STATE_KEY, drop_pyramid
        info = self.metastore.get_index(table, index)
        drop_pyramid(self, info.table, info.name)
        for layout_name in fleet.registered_layouts(info):
            drop_pyramid(self, info.table, info.name,
                         layout_name=layout_name)
        info.state.pop(PYRAMID_STATE_KEY, None)

    # ----------------------------------------------------------- data loading
    def load_rows(self, table_name: str, rows: Iterable[Sequence[Any]],
                  file_label: Optional[str] = None) -> int:
        """Append rows to the table (one new file per call, per partition).

        Mirrors the paper's load path: HDFS clients append verified meter
        data as new files; indexes are *not* implicitly updated (DGFIndex
        appends go through :meth:`append_with_dgf` instead).
        """
        table = self.metastore.get_table(table_name)
        # Appended rows make any cached index metadata for this table
        # suspect (e.g. headers a subsequent append_with_dgf will merge
        # into); drop the whole namespace up front.
        self._invalidate_table_cache(table.name)
        count = self._load_counters.get(table.name.lower(), 0)
        self._load_counters[table.name.lower()] = count + 1
        label = file_label or f"{count:06d}_0"
        written = 0
        if not table.is_partitioned:
            with formats.open_row_writer(
                    self.fs, f"{table.location}/{label}", table) as writer:
                for row in rows:
                    table.schema.validate_row(row)
                    writer.write_row(row)
                    written += 1
            return written
        # Partitioned: route rows into one file per partition directory.
        positions = [table.schema.index_of(c.name)
                     for c in table.partition_schema.columns]
        buckets: Dict[Tuple, List[Tuple]] = {}
        for row in rows:
            table.schema.validate_row(row)
            key = tuple(row[p] for p in positions)
            buckets.setdefault(key, []).append(tuple(row))
        for key, bucket in buckets.items():
            directory = table.partition_dir(key)
            table.partitions[key] = directory
            with formats.open_row_writer(
                    self.fs, f"{directory}/{label}", table) as writer:
                writer.write_rows(bucket)
            written += len(bucket)
        return written

    # ---------------------------------------------------------------- SELECT
    def _run_select(self, stmt: ast.SelectStmt,
                    options: QueryOptions) -> QueryResult:
        with self.tracer.span("query") as root:
            attempt = 0
            while True:
                try:
                    result = self._execute_select(stmt, options, root)
                    break
                except DataNodeUnavailable:
                    # Layout failover: a replica layout's pinned datanode
                    # died under this query.  If any registered layout is
                    # now dead, replan — the router skips dead layouts and
                    # re-costs the survivors.  Anything else (a genuinely
                    # unreadable block) propagates as before.
                    dead = [d.name for d in self.fs.layouts()
                            if not self.fs.layout_alive(d.name)]
                    attempt += 1
                    if not dead or attempt > len(self.fs.layouts()):
                        raise
                    self._note_layout_downgrade(root, dead, attempt)
        if self.tracer.enabled:
            result.trace = Trace(root)
            if result.plan is not None:
                result.plan.trace = result.trace
        return result

    def _note_layout_downgrade(self, root: Span, dead: List[str],
                               attempt: int) -> None:
        """Record one aborted query attempt before the layout-failover
        replan.  The attempt's spans are folded under a single
        ``fault:layout_downgrade`` child (carrying no simulated time, like
        every ``fault:*`` span), so the retried attempt's children still
        reconcile exactly with the root's totals and the chaos view's
        fault-stripping removes the abort wholesale."""
        if self.fault_injector is not None:
            self.fault_injector.layout_downgrade(
                dead, root.children_sim_sum().total)
        if self.tracer.enabled and root.children:
            wrapper = Span(name="fault:layout_downgrade",
                           attrs={"dead_layouts": ",".join(sorted(dead)),
                                  "attempt": attempt})
            wrapper.children = root.children
            for child in wrapper.children:
                child.sim = None
            root.children = [wrapper]
            root.add("fault.layout_downgrades")

    # ------------------------------------------------------- query-log capture
    def note_query_region(self, table: str, index: str, spans,
                          agg_path: bool) -> None:
        """Called by the DGF handler during planning (before replica
        routing): stage this thread's query region for the log.  The
        entry is only committed by :meth:`_finalize_query_log` once the
        query has executed and measured itself — EXPLAIN-only planning
        stages a region that the next execution simply discards."""
        self._pending_region.value = {"table": table, "index": index,
                                      "spans": spans, "agg_path": agg_path}

    def _clear_query_region(self) -> None:
        self._pending_region.value = None

    def _finalize_query_log(self, stats: QueryStats, plan: Plan) -> None:
        """Commit the staged region (if any) as one LoggedQuery."""
        pending = getattr(self._pending_region, "value", None)
        self._pending_region.value = None
        if pending is None or self.query_log is None:
            return
        from repro.service.querylog import LoggedQuery
        layout = plan.access.layout if plan.access is not None else None
        self.query_log.record(LoggedQuery(
            table=pending["table"], index=pending["index"],
            spans=pending["spans"], agg_path=pending["agg_path"],
            layout=layout, seconds=stats.time.total,
            records_read=stats.records_read,
            records_matched=stats.records_matched,
            output_records=stats.output_records))

    def _execute_select(self, stmt: ast.SelectStmt, options: QueryOptions,
                        root: Span) -> QueryResult:
        """Run one SELECT under the ``root`` span.

        Every simulated-time contribution is attached to exactly one direct
        child span (in the order it is accumulated into ``stats.time``), so
        the root's ``sim`` reconciles bit-for-bit with the sum of its
        children's — the invariant ``EXPLAIN ANALYZE`` and the trace tests
        rely on.
        """
        self._clear_query_region()
        with self.tracer.span("analyze") as analyze_span:
            analysis = hexec.analyze(self.metastore, stmt)
            analyze_span.set("columns", len(analysis.referenced_columns))
        shape = "group/aggregate" if analysis.is_group_query else "projection"
        root.set("table", analysis.table.name)
        root.set("shape", shape)

        with self.tracer.span("plan_access") as plan_span:
            plan = self._plan_access(analysis, options)
            if plan is not None:
                plan_span.set("handler", plan.handler)
                if plan.mode:
                    plan_span.set("mode", plan.mode)
                plan_span.set("inner_gfus", plan.inner_gfus)
                plan_span.set("boundary_gfus", plan.boundary_gfus)
                plan_span.set("splits_kept", len(plan.splits))
                if plan.total_splits is not None:
                    plan_span.set("splits_total", plan.total_splits)
                plan_span.sim = plan.index_time
            else:
                plan_span.set("handler", "none")

        stats = QueryStats()
        time = TimeBreakdown()
        if plan is not None:
            stats.index_used = plan.description
            stats.index_records_scanned = plan.index_records_scanned
            stats.index_kv_gets = plan.index_kv_gets
            time = time + plan.index_time

        # Join build sides (Hive's local map-join hash-table task).
        if analysis.joins:
            for step in analysis.joins:
                side = self.delta_binding(step.table.name)
                if side is not None and side.resident_cells:
                    raise ExecutionError(
                        f"join build side {step.table.name!r} has resident "
                        "streaming deltas; compact them before joining "
                        "(hash tables are built from base files only)")
            with self.tracer.span("join_build",
                                  joins=len(analysis.joins)) as join_span:
                build_stats = hexec.load_join_hash_tables(self.fs, analysis)
                build_time = self.cost_model.job_seconds(
                    build_stats, include_launch=False)
                join_span.sim = build_time
                join_span.add("input_records",
                              build_stats.map_input_records)
                join_span.add("input_bytes", build_stats.map_input_bytes)
            time = time + build_time
            stats.records_read += build_stats.map_input_records
            stats.bytes_read += build_stats.map_input_bytes

        splits, input_format, delta_info = self._resolve_splits(analysis,
                                                                plan)
        header_states = plan.header_states if plan is not None else None
        rewrite_grouped = plan.rewrite_grouped if plan is not None else None
        if rewrite_grouped is not None:
            splits = []
            header_states = None

        grouped: Dict[Any, Tuple] = {}
        plain_rows: List[Tuple] = []
        vectorized = False
        if rewrite_grouped is not None:
            grouped = rewrite_grouped
            with self.tracer.span("index_rewrite",
                                  groups=len(grouped)) as rewrite_span:
                rewrite_span.sim = TimeBreakdown(
                    read_index_and_other=self.cluster.job_launch_seconds)
            time = time + rewrite_span.sim
        elif splits:
            vector_plan = self._vector_plan(analysis, input_format)
            vectorized = vector_plan is not None
            job = hexec.build_job(analysis, splits, input_format,
                                  job_name=f"select-{stmt.table.name}",
                                  num_group_reducers=options.group_reducers,
                                  vector_plan=vector_plan)
            result = self.engine.run(job)
            stats.jobs += 1
            stats.splits_processed = len(splits)
            stats.records_read += result.stats.map_input_records
            stats.bytes_read += result.stats.map_input_bytes
            stats.records_matched = result.counters.get("query", "matched")
            job_time = self._annotate_job_span(result)
            time = time + job_time
            if analysis.is_group_query:
                grouped = dict(result.output)
            else:
                plain_rows = [value for _key, value in result.output]
        else:
            # Fully covered by pre-computed headers (or empty table): Hive
            # still submits a job shell, so charge one launch.
            with self.tracer.span("job_launch") as launch_span:
                launch_span.sim = TimeBreakdown(
                    read_index_and_other=self.cluster.job_launch_seconds)
            time = time + launch_span.sim

        if (analysis.is_group_query and not analysis.group_exprs
                and hexec._GLOBAL_KEY not in grouped):
            # SQL semantics: global aggregation over zero rows still yields
            # one row (count 0, sum NULL, ...).
            grouped[hexec._GLOBAL_KEY] = tuple(
                agg.function.initial() for agg in analysis.aggregates)

        if header_states is not None:
            with self.tracer.span("merge_headers") as merge_span:
                grouped = self._merge_header_states(analysis, grouped,
                                                    header_states)
                merge_span.add("header_aggregates", len(header_states))

        with self.tracer.span("finalize") as finalize_span:
            if analysis.is_group_query:
                rows = hexec.finalize_group_output(analysis, grouped)
            else:
                rows = plain_rows
            rows = hexec.apply_order_and_limit(analysis, rows)
            stats.output_records = len(rows)
            finalize_span.add("output_records", len(rows))

        if stmt.insert_directory:
            with self.tracer.span(
                    "write_output",
                    directory=stmt.insert_directory) as write_span:
                write_time = self._write_directory(stmt.insert_directory,
                                                   rows, stats)
                write_span.sim = write_time
            time = time + write_time

        stats.time = time
        root.sim = time
        root.add("records_read", stats.records_read)
        root.add("bytes_read", stats.bytes_read)
        root.add("records_matched", stats.records_matched)
        root.add("output_records", stats.output_records)
        root.add("splits_processed", stats.splits_processed)
        self._record_query_metrics(shape, plan, stats)
        query_plan = self._make_plan(analysis, plan, len(splits),
                                     vectorized=vectorized,
                                     delta=delta_info)
        self._finalize_query_log(stats, query_plan)
        return QueryResult(columns=list(analysis.output_names), rows=rows,
                           stats=stats,
                           description=query_plan.render(),
                           plan=query_plan)

    def _annotate_job_span(self, result) -> TimeBreakdown:
        """Attach the cost model's per-phase seconds to the engine's spans.

        The phases come from :meth:`CostModel.job_phases`, the same numbers
        :meth:`CostModel.job_seconds` folds into the job total, so the
        ``mr_job`` span's sim equals the sum of its phase children's sims
        exactly (a synthetic ``job_launch`` child carries the fixed launch
        overhead, which the engine cannot know about).
        """
        job_time = self.cost_model.job_seconds(result.stats)
        span = result.trace_span
        if span is None:
            return job_time
        phases = self.cost_model.job_phases(result.stats)
        span.sim = job_time
        span.children.insert(0, Span(
            name="job_launch",
            sim=TimeBreakdown(read_index_and_other=phases["launch"])))
        names = (("map_phase", "map"), ("shuffle", "shuffle"),
                 ("reduce_phase", "reduce"))
        for child_name, phase in names:
            child = span.child(child_name)
            if child is not None:
                child.sim = TimeBreakdown(
                    read_data_and_process=phases[phase])
        return job_time

    def _record_query_metrics(self, shape: str,
                              plan: Optional[IndexAccessPlan],
                              stats: QueryStats) -> None:
        handler = plan.handler if plan is not None else "none"
        self.metrics.counter(
            "queries_total", "SELECT statements executed").inc(
                shape=shape, index=handler)
        self.metrics.histogram(
            "query_sim_seconds",
            "simulated paper-scale seconds per query").observe(
                stats.time.total, shape=shape)
        self.metrics.counter(
            "mr_jobs_total", "MapReduce jobs launched by queries").inc(
                stats.jobs)
        self.metrics.counter(
            "records_read_total", "base-table records fed to mappers").inc(
                stats.records_read)
        self.metrics.gauge(
            "last_query_splits",
            "splits processed by the most recent query").set(
                stats.splits_processed)

    def _merge_header_states(self, analysis: hexec.AnalyzedSelect,
                             grouped: Dict[Any, Tuple],
                             header_states: Dict[str, Any]) -> Dict[Any, Tuple]:
        """Merge DGFIndex inner-region header states with the boundary job's
        partial states (global aggregation only — no GROUP BY)."""
        states = []
        for agg in analysis.aggregates:
            header = header_states.get(agg.key)
            boundary = None
            if hexec._GLOBAL_KEY in grouped:
                index = analysis.aggregates.index(agg)
                boundary = grouped[hexec._GLOBAL_KEY][index]
            if boundary is None:
                merged = header if header is not None \
                    else agg.function.initial()
            elif header is None:
                merged = boundary
            else:
                merged = agg.function.merge(header, boundary)
            states.append(merged)
        return {hexec._GLOBAL_KEY: tuple(states)}

    def _plan_access(self, analysis: hexec.AnalyzedSelect,
                     options: QueryOptions) -> Optional[IndexAccessPlan]:
        if not options.use_index:
            return None
        table = analysis.table
        indexes = self.metastore.indexes_on(table.name)
        if options.index_name is not None:
            indexes = [i for i in indexes
                       if i.name.lower() == options.index_name.lower()]
            if not indexes:
                raise MetastoreError(
                    f"forced index {options.index_name!r} not found on "
                    f"{table.name!r}")
        binding = self.delta_binding(table.name)
        if binding is not None and binding.resident_cells:
            # Merge-on-read only understands the bound index's grid: any
            # other access path would miss resident delta rows.  A table
            # with no resident ops plans exactly as an unbound one.
            indexes = [i for i in indexes if binding.serves(i.name)]
        group_columns: Optional[List[str]] = []
        for expr in analysis.group_exprs:
            if isinstance(expr, ast.ColumnRef):
                group_columns.append(expr.name.lower())
            else:
                group_columns = None
                break
        ctx = QueryIndexContext(
            ranges=analysis.ranges,
            agg_keys=[agg.key for agg in analysis.aggregates],
            is_plain_aggregation=analysis.stmt.is_plain_aggregation,
            use_precompute=options.dgf_use_precompute,
            referenced_columns=analysis.referenced_columns,
            group_columns=group_columns,
            force_layout=options.dgf_layout,
            use_pyramid=options.dgf_pyramid)
        priority = {"dgf": 0, "aggregate": 1, "bitmap": 2, "compact": 3}
        for index in sorted(indexes,
                            key=lambda i: priority.get(i.handler, 9)):
            if not index.built:
                continue
            with self.tracer.span(f"plan:{index.handler}",
                                  index=index.name) as handler_span:
                plan = self.handler(index.handler).plan_access(
                    self, table, index, ctx)
                handler_span.set("selected", plan is not None)
            if plan is not None:
                return plan
        return None

    def _resolve_splits(self, analysis: hexec.AnalyzedSelect,
                        plan: Optional[IndexAccessPlan]):
        """Returns ``(splits, input_format, delta_info)``.

        ``delta_info`` is ``(cells, rows)`` when this *full-scan* path
        composed a merge-on-read overlay itself; index plans carry their
        overlay stats on the :class:`IndexAccessPlan` instead.
        """
        table = analysis.table
        if plan is not None:
            fmt = plan.input_format
            if fmt is None:
                fmt = formats.input_format_for(
                    table, columns=self._pruned_columns(analysis))
            return plan.splits, fmt, None
        binding = self.delta_binding(table.name)
        if binding is not None and not binding.resident_cells:
            binding = None
        columns = self._pruned_columns(analysis)
        if binding is not None and columns is not None:
            # Widen RCFile pruning so cell/key routing for tombstones sees
            # the dimension and key columns (pruned positions read None).
            have = {c.lower() for c in columns}
            columns = list(columns) + [c for c in binding.required_columns
                                       if c.lower() not in have]
        fmt = formats.input_format_for(table, columns=columns)
        paths = self._pruned_paths(analysis)
        splits = fmt.get_splits(self.fs, paths)
        if binding is None:
            return splits, fmt, None
        from repro.delta.overlay import DeltaOverlayInputFormat
        with self.tracer.span("delta:merge") as merge_span:
            overlay = binding.build_overlay(None)
            if overlay is None:  # pragma: no cover - resident check above
                return splits, fmt, None
            merge_span.add("delta.cells", overlay.num_cells)
            merge_span.add("delta.rows", overlay.num_rows)
            merge_span.add("delta.suppressed", overlay.num_suppressed)
        return (splits + overlay.synthetic_splits(),
                DeltaOverlayInputFormat(fmt, overlay),
                (overlay.num_cells, overlay.num_rows))

    def _pruned_columns(self, analysis: hexec.AnalyzedSelect):
        if analysis.table.stored_as.upper() == formats.RCFILE:
            return analysis.referenced_columns
        return None

    def _pruned_paths(self, analysis: hexec.AnalyzedSelect) -> List[str]:
        """Partition pruning: keep only partitions whose values satisfy the
        extracted ranges (Hive's coarse-grained 'index')."""
        table = analysis.table
        if not table.is_partitioned or not table.partitions:
            root = table.data_location
            return [root] if self.fs.exists(root) else []
        kept: List[str] = []
        for values, directory in sorted(table.partitions.items()):
            keep = True
            for column, value in zip(table.partition_schema.columns, values):
                interval = analysis.ranges.interval_for(column.name)
                if interval is not None and not interval.contains(value):
                    keep = False
                    break
            if keep and self.fs.exists(directory):
                kept.append(directory)
        return kept

    def _write_directory(self, directory: str, rows: List[Tuple],
                         stats: QueryStats) -> TimeBreakdown:
        """INSERT OVERWRITE DIRECTORY: write the result as a text file."""
        if self.fs.exists(directory):
            self.fs.delete(directory, recursive=True)
        path = f"{directory}/000000_0"
        # Measure this thread's own writes via a nested I/O scope (instead
        # of a global snapshot/delta) so concurrent statements running
        # under the query service cannot pollute the measurement.
        with task_io_scope() as scope:
            with self.fs.create(path) as writer:
                for row in rows:
                    line = "|".join("" if v is None else str(v)
                                    for v in row)
                    writer.write(line.encode("utf-8") + b"\n")
            written = scope.captured(self.fs.io).bytes_written
        extra = JobStats(output_bytes=written)
        return self.cost_model.job_seconds(extra, include_launch=False)

    def _vector_plan(self, analysis: hexec.AnalyzedSelect, input_format):
        """The columnar plan for this scan, or ``None`` (vectorization off,
        NumPy unavailable, joins, or no batch decoder for the format)."""
        if not self.execution.vectorized:
            return None
        from repro import vector  # deferred: NumPy-optional subsystem
        return vector.compile_select(analysis, input_format)

    def _make_plan(self, analysis: hexec.AnalyzedSelect,
                   access: Optional[IndexAccessPlan],
                   num_splits: int, vectorized: bool = False,
                   delta: Optional[Tuple[int, int]] = None) -> Plan:
        shape = "group/aggregate" if analysis.is_group_query else "projection"
        if delta is not None:
            delta_cells, delta_rows = delta
        elif access is not None:
            delta_cells, delta_rows = access.delta_cells, access.delta_rows
        else:
            delta_cells = delta_rows = 0
        return Plan(table=analysis.table.name,
                    stored_as=analysis.table.stored_as,
                    shape=shape,
                    joins=len(analysis.joins),
                    splits=num_splits,
                    access=access,
                    vectorized=vectorized,
                    delta_cells=delta_cells,
                    delta_rows=delta_rows)

    def _explain(self, stmt: ast.SelectStmt, options: QueryOptions,
                 analyze: bool = False) -> QueryResult:
        if analyze:
            # EXPLAIN ANALYZE: execute the query, then render the span tree
            # (the plan-only lines first, for context).
            result = self._run_select(stmt, options)
            text = (result.plan.render_analyze()
                    if result.plan is not None else result.description)
            return QueryResult(columns=["plan"],
                               rows=[(line,) for line in text.split("\n")],
                               stats=result.stats,
                               description=text,
                               trace=result.trace,
                               plan=result.plan)
        analysis = hexec.analyze(self.metastore, stmt)
        access = self._plan_access(analysis, options)
        splits, fmt, delta_info = self._resolve_splits(analysis, access)
        # Mirror _run_select's decision: an index rewrite answers from GFU
        # headers without a scan job, so nothing would be vectorized.
        rewrite = access.rewrite_grouped if access is not None else None
        vectorized = bool(
            splits and rewrite is None
            and self._vector_plan(analysis, fmt) is not None)
        query_plan = self._make_plan(analysis, access, len(splits),
                                     vectorized=vectorized,
                                     delta=delta_info)
        text = query_plan.render()
        return QueryResult(columns=["plan"],
                           rows=[(line,) for line in text.split("\n")],
                           description=text,
                           plan=query_plan)

    # -------------------------------------------------------------- counting
    def table_row_count(self, table_name: str) -> int:
        """Exact row count via a full scan (no index; used by tests)."""
        table = self.metastore.get_table(table_name)
        return sum(1 for _ in formats.scan_table_rows(self.fs, table))
