"""Index handler plug-in API (Hive's index interface, as the paper uses it).

Paper mapping: Sec. 4.1 ("Implementation of DGFIndex") describes how a
custom index plugs into Hive — the handler is consulted between semantic
analysis and ``getSplits``, and communicates the pruned input back through
a temp-file protocol.  This module is that seam: the session consults each
registered handler in priority order, and the winning handler's
:class:`IndexAccessPlan` replaces the full-scan input of the main job.

A handler can do two things:

* ``build`` — populate the index for a table (usually a MapReduce job;
  Sec. 4.2 / Algorithms 1-2 for DGFIndex);
* ``plan_access`` — given a query's extracted ranges, either return an
  :class:`IndexAccessPlan` that shrinks the work of the main job, or ``None``
  to decline (Hive then falls back to the next index or a full scan;
  Sec. 4.3 / Algorithm 3 for DGFIndex's query decomposition).

The plan carries (a) the filtered split list — Hive's temp-file protocol
between index handler and ``getSplits`` — (b) an optional replacement input
format (DGFIndex's slice-skipping record reader), (c) optional pre-computed
aggregate states for the covered inner region (DGFIndex's header path), and
(d) the simulated cost of reading the index itself, which the session adds
to the query's "read index and other" time.  The structured fields
(``handler``, ``inner_gfus``, ``boundary_gfus``, ``total_splits``) feed
``EXPLAIN`` / ``EXPLAIN ANALYZE`` output — see ``docs/observability.md``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import IndexError_
from repro.hive.metastore import IndexInfo, TableInfo
from repro.hiveql.predicates import RangeExtraction
from repro.mapreduce.cost import JobStats, TimeBreakdown
from repro.mapreduce.splits import FileSplit, InputFormat


@dataclass
class QueryIndexContext:
    """What a handler may inspect when planning index access."""

    ranges: RangeExtraction
    #: canonical keys of the aggregates the query computes (empty when the
    #: query is not a plain aggregation), e.g. ["sum(powerconsumed)"]
    agg_keys: List[str] = field(default_factory=list)
    #: True when every select item is an aggregate and there is no GROUP BY
    is_plain_aggregation: bool = False
    #: Figure 17 ablation: disable the header path while keeping the index
    use_precompute: bool = True
    #: columns the query touches (for RCFile column pruning)
    referenced_columns: List[str] = field(default_factory=list)
    #: lower-case column names of GROUP BY expressions when every group
    #: expression is a plain column reference; None otherwise.  The
    #: Aggregate Index needs this for its GROUP BY rewrite.
    group_columns: Optional[List[str]] = None
    #: pin the replica-fleet router to one layout by name ("primary" or a
    #: registered layout); None = cost-based choice.  Differential
    #: harnesses use this to compare layouts against each other.
    force_layout: Optional[str] = None
    #: answer the inner region from the aggregation pyramid when one is
    #: built (``src/repro/pyramid/``); False forces the flat per-GFU
    #: header probes.  Differential harnesses compare the two modes.
    use_pyramid: bool = True


@dataclass
class IndexAccessPlan:
    """A handler's answer: how the main job should read the table."""

    description: str
    splits: List[FileSplit]
    input_format: Optional[InputFormat] = None
    index_time: TimeBreakdown = field(default_factory=TimeBreakdown)
    #: registry name of the handler that produced this plan ("dgf", ...)
    handler: str = "?"
    #: access mode within the handler (e.g. DGF's "agg-headers" vs
    #: "slices", the Aggregate Index's "rewrite"); free-form but stable.
    mode: str = ""
    #: GFUs fully inside the query region, answered from headers (DGF only)
    inner_gfus: int = 0
    #: GFUs on the query-region boundary, scanned with the exact predicate
    boundary_gfus: int = 0
    #: how many splits a full scan would have processed (None = unknown);
    #: ``total_splits - len(splits)`` is the pruned split count EXPLAIN
    #: reports.
    total_splits: Optional[int] = None
    #: canonical agg key -> merged pre-computed state over all *inner* GFUs
    #: (only the DGF header path sets this; None means "no rewrite")
    header_states: Optional[Dict[str, Any]] = None
    #: full GROUP BY rewrite: group key -> aggregate state tuple, in the
    #: query's aggregate order (the Aggregate Index's index-as-data path);
    #: when set, the main job is skipped entirely.
    rewrite_grouped: Optional[Dict[Any, tuple]] = None
    #: measured index-access facts, reported alongside modelled time
    index_records_scanned: int = 0
    index_kv_gets: int = 0
    #: merge-on-read overlay (streaming deltas resident in the query
    #: region): cells contributing delta rows/tombstones, and the delta
    #: rows injected as synthetic splits.  0/0 whenever no delta is
    #: resident, keeping pre-streaming plans (and their fingerprints)
    #: byte-identical.
    delta_cells: int = 0
    delta_rows: int = 0
    #: replica layout the router chose ("primary" or a fleet layout
    #: name); None whenever the index has no replica fleet, keeping
    #: pre-fleet plans (and their fingerprints) byte-identical.
    layout: Optional[str] = None
    #: aggregation-pyramid decomposition of the inner region: highest
    #: node level used, summarizable nodes used, and level-0 fringe
    #: probes issued.  All zero whenever the pyramid path did not run,
    #: keeping flat-path plans (and their fingerprints) byte-identical.
    pyramid_levels: int = 0
    pyramid_nodes: int = 0
    pyramid_leaves: int = 0


@dataclass
class BuildReport:
    """What an index build produced (Table 2 / Table 5 raw material)."""

    index_name: str
    handler: str
    index_size_bytes: int
    build_time: TimeBreakdown
    job_stats: JobStats = field(default_factory=JobStats)
    details: Dict[str, Any] = field(default_factory=dict)


class IndexHandler(ABC):
    """Base class for index implementations."""

    #: registry key, e.g. "compact"
    handler_name: str = "?"

    @abstractmethod
    def build(self, session, index: IndexInfo) -> BuildReport:
        """Populate the index; must set ``index.built = True`` on success."""

    @abstractmethod
    def plan_access(self, session, table: TableInfo, index: IndexInfo,
                    ctx: QueryIndexContext) -> Optional[IndexAccessPlan]:
        """Return an access plan, or None if this index cannot help."""

    def drop(self, session, index: IndexInfo) -> None:
        """Release index storage; default is a no-op."""


_HANDLER_ALIASES = {
    "dgf": "dgf",
    "dgfindexhandler": "dgf",
    "compact": "compact",
    "compactindexhandler": "compact",
    "aggregate": "aggregate",
    "aggindexhandler": "aggregate",
    "aggregateindexhandler": "aggregate",
    "bitmap": "bitmap",
    "bitmapindexhandler": "bitmap",
}


def resolve_handler_name(handler_string: str) -> str:
    """Map a ``CREATE INDEX ... AS '<class>'`` string to a registry name.

    Accepts both short names (``'dgf'``) and Hive-style class names
    (``'org.apache.hadoop.hive.ql.index.dgf.DgfIndexHandler'``).
    """
    lowered = handler_string.lower()
    tail = lowered.rsplit(".", 1)[-1]
    if tail in _HANDLER_ALIASES:
        return _HANDLER_ALIASES[tail]
    for key, name in _HANDLER_ALIASES.items():
        if key in lowered:
            return name
    raise IndexError_(f"unknown index handler {handler_string!r}; "
                      f"known: dgf, compact, aggregate, bitmap")
