"""Aggregate function framework.

Each function is an object with Hadoop-combiner-friendly semantics:
``initial() -> state``, ``accumulate(state, value) -> state``,
``merge(state, state) -> state``, ``finalize(state) -> value``.

``merge`` must be associative and commutative — the *additive* property the
paper requires of functions pre-computed into DGFIndex headers.  ``avg`` is
not additive by itself; it is computed as an additive (sum, count) pair and
divided at finalize, and DGFIndex derives it from pre-computed ``sum`` and
``count`` headers the same way.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import SemanticError
from repro.hiveql import ast


class AggFunction:
    """Base class; subclasses define the four-phase protocol."""

    name = "?"
    #: additive functions may be pre-computed into DGFIndex headers
    additive = True

    def initial(self) -> Any:
        raise NotImplementedError

    def accumulate(self, state: Any, value: Any) -> Any:
        raise NotImplementedError

    def merge(self, left: Any, right: Any) -> Any:
        raise NotImplementedError

    def finalize(self, state: Any) -> Any:
        return state


class SumAgg(AggFunction):
    name = "sum"

    def initial(self):
        return None

    def accumulate(self, state, value):
        if value is None:
            return state
        return value if state is None else state + value

    def merge(self, left, right):
        if left is None:
            return right
        if right is None:
            return left
        return left + right


class CountAgg(AggFunction):
    """count(*) and count(col); the value is None-filtered by the caller
    for count(col)."""

    name = "count"

    def initial(self):
        return 0

    def accumulate(self, state, value):
        return state + 1

    def merge(self, left, right):
        return left + right


class MinAgg(AggFunction):
    name = "min"

    def initial(self):
        return None

    def accumulate(self, state, value):
        if value is None:
            return state
        return value if state is None or value < state else state

    def merge(self, left, right):
        if left is None:
            return right
        if right is None:
            return left
        return min(left, right)


class MaxAgg(AggFunction):
    name = "max"

    def initial(self):
        return None

    def accumulate(self, state, value):
        if value is None:
            return state
        return value if state is None or value > state else state

    def merge(self, left, right):
        if left is None:
            return right
        if right is None:
            return left
        return max(left, right)


class AvgAgg(AggFunction):
    """Average as an additive (sum, count) pair."""

    name = "avg"

    def initial(self):
        return (0.0, 0)

    def accumulate(self, state, value):
        if value is None:
            return state
        total, count = state
        return (total + value, count + 1)

    def merge(self, left, right):
        return (left[0] + right[0], left[1] + right[1])

    def finalize(self, state):
        total, count = state
        if count == 0:
            return None
        return total / count


class CountDistinctAgg(AggFunction):
    """count(DISTINCT col): the state is the set of seen values.

    Set union is associative/commutative so the combiner still applies, but
    the state size grows with cardinality — not suitable for DGF headers.
    """

    name = "count_distinct"
    additive = False

    def initial(self):
        return set()

    def accumulate(self, state, value):
        if value is not None:
            state = set(state) if not isinstance(state, set) else state
            state.add(value)
        return state

    def merge(self, left, right):
        return set(left) | set(right)

    def finalize(self, state):
        return len(state)


_FUNCTIONS = {
    "sum": SumAgg,
    "count": CountAgg,
    "min": MinAgg,
    "max": MaxAgg,
    "avg": AvgAgg,
}


def resolve_aggregate(call: ast.FuncCall) -> AggFunction:
    """Map a parsed aggregate call to its implementation."""
    if call.name == "count" and call.distinct:
        return CountDistinctAgg()
    cls = _FUNCTIONS.get(call.name)
    if cls is None:
        raise SemanticError(f"unknown aggregate function {call.name!r}")
    if len(call.args) != 1:
        raise SemanticError(f"{call.name}() takes exactly one argument")
    return cls()


def canonical_key(call: ast.FuncCall) -> str:
    """Canonical text for matching query aggregates against pre-computed
    DGFIndex headers, e.g. ``sum(powerconsumed)`` or ``count(*)``."""
    inner = ",".join(a.render() for a in call.args)
    prefix = "count_distinct" if (call.name == "count" and call.distinct) \
        else call.name
    return f"{prefix}({inner})".lower().replace(" ", "")


class CompiledAggregate:
    """An aggregate call bound to a compiled argument expression."""

    def __init__(self, call: ast.FuncCall, arg_fn: Optional[Callable],
                 function: AggFunction, count_star: bool):
        self.call = call
        self.arg_fn = arg_fn            # None for count(*)
        self.function = function
        self.count_star = count_star
        self.key = canonical_key(call)

    @classmethod
    def compile(cls, call: ast.FuncCall, resolver) -> "CompiledAggregate":
        from repro.hiveql.evaluator import compile_expr
        function = resolve_aggregate(call)
        count_star = (call.name == "count" and len(call.args) == 1
                      and isinstance(call.args[0], ast.Star))
        arg_fn = None
        if not count_star:
            if len(call.args) != 1:
                raise SemanticError(f"{call.name}() takes one argument")
            arg_fn = compile_expr(call.args[0], resolver)
        return cls(call, arg_fn, function, count_star)

    def accumulate_row(self, state: Any, row) -> Any:
        if self.count_star:
            return self.function.accumulate(state, 1)
        value = self.arg_fn(row)
        if value is None and not isinstance(self.function, CountDistinctAgg):
            if isinstance(self.function, CountAgg):
                return state  # count(col) skips NULLs
            return self.function.accumulate(state, value)
        if value is None:
            return state
        if isinstance(self.function, CountAgg):
            return self.function.accumulate(state, 1)
        return self.function.accumulate(state, value)
