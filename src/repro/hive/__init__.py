"""Hive layer: metastore, query execution on MapReduce, index handler API.

:class:`~repro.hive.session.HiveSession` is the main entry point: it owns an
HDFS instance, a MapReduce engine, a key-value store and a metastore, and
executes HiveQL statements, transparently routing MDRQ predicates through
whatever index exists on the table (the paper's behaviour).
"""

from repro.hive.metastore import Metastore, TableInfo, IndexInfo
from repro.hive.session import HiveSession, QueryOptions, QueryResult

__all__ = [
    "Metastore",
    "TableInfo",
    "IndexInfo",
    "HiveSession",
    "QueryOptions",
    "QueryResult",
]
