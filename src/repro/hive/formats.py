"""Format dispatch: writers/readers/input formats per table ``STORED AS``."""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import MetastoreError
from repro.hdfs.filesystem import HDFS
from repro.hive.metastore import TableInfo
from repro.mapreduce.splits import (InputFormat, RCFileRowInputFormat,
                                    TextRowInputFormat)
from repro.storage.rcfile import RCFileWriter
from repro.storage.schema import Schema
from repro.storage.sequencefile import SequenceFileReader, SequenceFileWriter
from repro.storage.textfile import TextFileWriter, parse_line, serialize_row

TEXTFILE = "TEXTFILE"
RCFILE = "RCFILE"
SEQUENCEFILE = "SEQUENCEFILE"


class _SequenceRowWriter:
    """Adapts the SequenceFile writer to the row-writer protocol."""

    def __init__(self, stream, schema: Schema):
        self._writer = SequenceFileWriter(stream)
        self._schema = schema
        self.rows_written = 0

    @property
    def pos(self) -> int:
        return self._writer.pos

    def write_row(self, row) -> int:
        offset = self._writer.append(
            b"", serialize_row(row, self._schema).rstrip(b"\n"))
        self.rows_written += 1
        return offset

    def write_rows(self, rows) -> None:
        for row in rows:
            self.write_row(row)

    def close(self) -> None:
        self._writer.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


class SequenceRowInputFormat(InputFormat):
    """SequenceFile tables parsed into schema rows; key = record offset."""

    def __init__(self, schema: Schema):
        self.schema = schema

    def read_split(self, fs: HDFS, split) -> Iterator[Tuple[int, Tuple]]:
        with fs.open(split.path) as stream:
            reader = SequenceFileReader(stream)
            # Records are not block-aligned; to keep split semantics exact we
            # walk records from the file start and keep those in range (the
            # header walk reads only record headers, which is cheap).
            for offset, _key, value in reader.iter_records(0, None):
                if split.start <= offset < split.end:
                    yield offset, parse_line(value.decode("utf-8"),
                                             self.schema)


def open_row_writer(fs: HDFS, path: str, table: TableInfo,
                    overwrite: bool = False):
    """Open a row writer for ``path`` in the table's storage format."""
    stream = fs.create(path, overwrite=overwrite)
    fmt = table.stored_as.upper()
    if fmt == TEXTFILE:
        return TextFileWriter(stream, table.schema)
    if fmt == RCFILE:
        return RCFileWriter(stream, table.schema)
    if fmt == SEQUENCEFILE:
        return _SequenceRowWriter(stream, table.schema)
    raise MetastoreError(f"unsupported storage format {table.stored_as!r}")


def input_format_for(table: TableInfo,
                     columns: Optional[Sequence[str]] = None,
                     group_filter=None, row_filter=None) -> InputFormat:
    """The input format matching the table's storage.

    ``columns`` prunes RCFile reads to the needed columns; the optional
    filters plug Bitmap-Index row skipping into RCFile scans.
    """
    fmt = table.stored_as.upper()
    if fmt == TEXTFILE:
        return TextRowInputFormat(table.schema)
    if fmt == RCFILE:
        return RCFileRowInputFormat(table.schema, columns=columns,
                                    group_filter=group_filter,
                                    row_filter=row_filter)
    if fmt == SEQUENCEFILE:
        return SequenceRowInputFormat(table.schema)
    raise MetastoreError(f"unsupported storage format {table.stored_as!r}")


def scan_table_rows(fs: HDFS, table: TableInfo,
                    location: Optional[str] = None) -> Iterator[Tuple]:
    """Stream all rows of a table (used for join build sides and tests)."""
    fmt = input_format_for(table)
    root = location or table.data_location
    if not fs.exists(root):
        return
    for split in fmt.get_splits(fs, [root]):
        for _key, row in fmt.read_split(fs, split):
            yield row


def data_paths(fs: HDFS, table: TableInfo) -> List[str]:
    """All data files of a table (its reorganized location if DGF-indexed)."""
    root = table.data_location
    if not fs.exists(root):
        return []
    return fs.list_files(root)
