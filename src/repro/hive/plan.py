"""The structured query plan exposed by the public API.

One :class:`Plan` object backs all three plan surfaces — ``EXPLAIN``,
``EXPLAIN ANALYZE`` and ``QueryResult.plan`` — so callers inspect fields
instead of string-parsing.  The legacy plan *text* (``EXPLAIN`` rows,
``QueryResult.description``) is rendered **from** this object
(:meth:`Plan.render`), character-for-character what the session used to
assemble inline, so existing output and the differential harness's
fingerprints are unchanged.

``EXPLAIN ANALYZE`` is the same object with :attr:`Plan.trace` populated:
:meth:`Plan.render_analyze` appends the executed span tree
(:meth:`repro.obs.trace.Trace.render`) below the plan lines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.hive.indexhandler import IndexAccessPlan
from repro.obs.trace import Trace


@dataclass
class Plan:
    """Everything decided before (and, when executed, measured during)
    one SELECT: table access, join strategy, index selection, split count
    and result shape."""

    #: table being read and its storage format
    table: str
    stored_as: str
    #: ``"group/aggregate"`` or ``"projection"``
    shape: str
    #: broadcast hash joins the query performs
    joins: int = 0
    #: splits handed to the MapReduce job (0 when the index rewrite or the
    #: header path answered the query without scanning)
    splits: int = 0
    #: the chosen index handler's access plan, or None for a full scan
    access: Optional[IndexAccessPlan] = None
    #: the scan job runs on the columnar engine (``ExecutionConfig(
    #: vectorized=True)`` and the scan is batch-decodable)
    vectorized: bool = False
    #: merge-on-read: resident streaming-delta cells and rows composed
    #: into this scan (0/0 when no delta is resident — the plan then
    #: renders exactly as before streaming existed)
    delta_cells: int = 0
    delta_rows: int = 0
    #: executed span tree (populated only after execution, i.e. for
    #: ``QueryResult.plan`` and ``EXPLAIN ANALYZE``)
    trace: Optional[Trace] = None

    # ----------------------------------------------------------- shorthands
    @property
    def uses_index(self) -> bool:
        return self.access is not None

    @property
    def index_handler(self) -> Optional[str]:
        return self.access.handler if self.access is not None else None

    @property
    def index_mode(self) -> Optional[str]:
        return self.access.mode if self.access is not None else None

    @property
    def is_rewrite(self) -> bool:
        """Answered entirely from the index; the main job was skipped."""
        return (self.access is not None
                and self.access.rewrite_grouped is not None)

    @property
    def uses_headers(self) -> bool:
        """Inner region answered from pre-computed aggregate headers."""
        return (self.access is not None
                and self.access.header_states is not None)

    @property
    def splits_kept(self) -> Optional[int]:
        return len(self.access.splits) if self.access is not None else None

    @property
    def splits_total(self) -> Optional[int]:
        return self.access.total_splits if self.access is not None else None

    @property
    def splits_pruned(self) -> Optional[int]:
        if self.access is None or self.access.total_splits is None:
            return None
        return self.access.total_splits - len(self.access.splits)

    # ------------------------------------------------------------ rendering
    def render(self) -> str:
        """The canonical plan text (EXPLAIN output, result description)."""
        lines = [f"table: {self.table} ({self.stored_as})"]
        if self.joins:
            lines.append(f"join: broadcast hash join x{self.joins}")
        access = self.access
        if access is not None:
            lines.append(f"index: {access.description}")
            lines.append(f"  handler: {access.handler}"
                         + (f" mode={access.mode}" if access.mode else ""))
            if access.layout is not None:
                lines.append(f"  layout: {access.layout}")
            if access.inner_gfus or access.boundary_gfus:
                lines.append(f"  gfus: inner={access.inner_gfus} "
                             f"boundary={access.boundary_gfus}")
            if access.total_splits is not None:
                pruned = access.total_splits - len(access.splits)
                lines.append(f"  splits kept: {len(access.splits)} of "
                             f"{access.total_splits} ({pruned} pruned)")
            if access.rewrite_grouped is not None:
                lines.append("  rewrite: answered from index "
                             "(main job skipped)")
            elif access.header_states is not None:
                lines.append("  headers: inner region answered from "
                             "pre-computed aggregates")
                if access.pyramid_nodes or access.pyramid_leaves:
                    # Only emitted when the pyramid path ran, so flat
                    # header-path plan text (and every fingerprint built
                    # from it) is unchanged.
                    lines.append(f"  pyramid: levels={access.pyramid_levels}"
                                 f" nodes={access.pyramid_nodes}"
                                 f" leaves={access.pyramid_leaves}")
        else:
            lines.append("index: none (full scan)")
        lines.append(f"splits: {self.splits}")
        if self.delta_cells or self.delta_rows:
            # Only emitted when a delta is resident, so pre-streaming plan
            # text and fingerprints are unchanged.
            lines.append(f"delta: merge-on-read cells={self.delta_cells} "
                         f"rows={self.delta_rows}")
        if self.vectorized:
            # Only emitted when on, so the row engine's plan text (and
            # every fingerprint built from it) is unchanged.
            lines.append("vectorized: true")
        lines.append(f"shape: {self.shape}")
        return "\n".join(lines)

    def render_analyze(self) -> str:
        """Plan text plus the executed span tree (EXPLAIN ANALYZE body)."""
        text = self.render()
        if self.trace is not None:
            text = text + "\n" + self.trace.render()
        return text

    # ----------------------------------------------------------------- JSON
    def to_dict(self) -> Dict[str, Any]:
        """Scalar-only summary (stable, fingerprint- and JSON-friendly)."""
        access = self.access
        index: Optional[Dict[str, Any]] = None
        if access is not None:
            index = {
                "description": access.description,
                "handler": access.handler,
                "mode": access.mode,
                "inner_gfus": access.inner_gfus,
                "boundary_gfus": access.boundary_gfus,
                "splits_kept": len(access.splits),
                "splits_total": access.total_splits,
                "uses_headers": access.header_states is not None,
                "is_rewrite": access.rewrite_grouped is not None,
                "index_kv_gets": access.index_kv_gets,
                "index_records_scanned": access.index_records_scanned,
            }
            if access.layout is not None:
                # Only present with a replica fleet, so fleetless plan
                # dicts (and their fingerprints) are unchanged.
                index["layout"] = access.layout
            if access.pyramid_nodes or access.pyramid_leaves:
                # Only present when the pyramid path ran, so flat-path
                # plan dicts (and their fingerprints) are unchanged.
                index["pyramid_levels"] = access.pyramid_levels
                index["pyramid_nodes"] = access.pyramid_nodes
                index["pyramid_leaves"] = access.pyramid_leaves
        summary = {
            "table": self.table,
            "stored_as": self.stored_as,
            "shape": self.shape,
            "joins": self.joins,
            "splits": self.splits,
            "vectorized": self.vectorized,
            "index": index,
        }
        if self.delta_cells or self.delta_rows:
            summary["delta_cells"] = self.delta_cells
            summary["delta_rows"] = self.delta_rows
        return summary
