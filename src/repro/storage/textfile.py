"""TextFile format: one delimited row per line.

The paper stores DGFIndex base tables as TextFile.  The reader exposes the
byte offset of every line — Hive's ``BLOCK_OFFSET_INSIDE_FILE`` virtual
column, which the Compact Index stores — and implements the standard split
semantics: a reader assigned the byte range ``[start, end)`` processes the
lines that *begin* in the range (skipping a partial first line unless
``start == 0``).
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.errors import StorageFormatError
from repro.hdfs.filesystem import HDFSReader, HDFSWriter
from repro.storage.schema import Schema

DEFAULT_DELIMITER = "|"
_READ_CHUNK = 256 * 1024
#: extra bytes fetched past a range end to finish its last line cheaply
_TAIL_SLACK = 1024


def serialize_row(row: Sequence[Any], schema: Schema,
                  delimiter: str = DEFAULT_DELIMITER) -> bytes:
    """Render a row as a delimited text line (with trailing newline)."""
    fields = [col.dtype.serialize(value)
              for value, col in zip(row, schema.columns)]
    for field in fields:
        if delimiter in field or "\n" in field:
            raise StorageFormatError(
                f"field {field!r} contains the delimiter or a newline")
    return (delimiter.join(fields) + "\n").encode("utf-8")


def parse_line(line: str, schema: Schema,
               delimiter: str = DEFAULT_DELIMITER) -> Tuple[Any, ...]:
    parts = line.split(delimiter)
    if len(parts) != len(schema.columns):
        raise StorageFormatError(
            f"line has {len(parts)} fields, schema has {len(schema.columns)}: "
            f"{line[:80]!r}")
    return tuple(col.dtype.parse(text)
                 for text, col in zip(parts, schema.columns))


class TextFileWriter:
    """Writes rows of ``schema`` to an HDFS output stream."""

    def __init__(self, stream: HDFSWriter, schema: Schema,
                 delimiter: str = DEFAULT_DELIMITER):
        self._stream = stream
        self._schema = schema
        self._delimiter = delimiter
        self.rows_written = 0

    @property
    def pos(self) -> int:
        """Byte offset where the next row will start."""
        return self._stream.pos

    def write_row(self, row: Sequence[Any]) -> int:
        """Write one row; return the byte offset where it starts."""
        offset = self._stream.pos
        self._stream.write(serialize_row(row, self._schema, self._delimiter))
        self.rows_written += 1
        return offset

    def write_rows(self, rows) -> None:
        for row in rows:
            self.write_row(row)

    def close(self) -> None:
        self._stream.close()

    def __enter__(self) -> "TextFileWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class TextFileReader:
    """Iterates ``(offset, row)`` pairs over a byte range of a text file."""

    def __init__(self, stream: HDFSReader, schema: Schema,
                 delimiter: str = DEFAULT_DELIMITER):
        self._stream = stream
        self._schema = schema
        self._delimiter = delimiter

    def iter_rows(self, start: int = 0,
                  end: Optional[int] = None) -> Iterator[Tuple[int, Tuple]]:
        """Yield ``(line_start_offset, parsed_row)`` for lines beginning in
        ``[start, end)``, reading past ``end`` only to finish the last line."""
        for offset, line in self.iter_lines(start, end):
            yield offset, parse_line(line, self._schema, self._delimiter)

    def iter_lines(self, start: int = 0,
                   end: Optional[int] = None) -> Iterator[Tuple[int, str]]:
        """Yield ``(offset, text)`` for exactly the lines whose first byte
        lies in ``[start, end)``.  Splits that tile a file therefore cover
        every line exactly once."""
        file_len = self._stream.length
        if end is None or end > file_len:
            end = file_len
        if start == 0:
            pos = 0
        else:
            # The line straddling ``start`` belongs to the previous range;
            # find the first line that starts at or after ``start``.
            pos = self._find_next_line_start(start - 1)
        buffer = b""
        cursor = 0           # consumed prefix of ``buffer``
        line_start = pos     # file offset of buffer[cursor]
        read_pos = pos       # next file offset to fetch
        while line_start < end:
            newline = buffer.find(b"\n", cursor)
            if newline < 0:
                if read_pos >= file_len:
                    if cursor < len(buffer):  # file lacks a final newline
                        yield line_start, buffer[cursor:].decode("utf-8")
                    return
                buffer = buffer[cursor:]
                cursor = 0
                # Read no more than the range needs (plus slack to finish
                # the final line) so short slice reads are not inflated to
                # a full chunk — the DGFIndex record reader depends on this
                # for honest byte accounting.
                want = min(_READ_CHUNK,
                           max(end + _TAIL_SLACK - read_pos, _TAIL_SLACK))
                chunk = self._stream.pread(read_pos, want)
                read_pos += len(chunk)
                buffer += chunk
                continue
            yield line_start, buffer[cursor:newline].decode("utf-8")
            line_start += newline - cursor + 1
            cursor = newline + 1

    def iter_line_batches(self, start: int = 0,
                          end: Optional[int] = None
                          ) -> Iterator[Tuple[bytes, int]]:
        """Yield ``(segment, line_count)`` chunks covering exactly the lines
        :meth:`iter_lines` would yield for ``[start, end)``.

        Each segment is the raw bytes of ``line_count`` consecutive lines
        (every line newline-terminated, except a final line when the file
        lacks a trailing newline).  The batch decoder in
        :mod:`repro.vector.decode` splits whole segments instead of paying
        per-line Python.  The pread sequence is *identical* to
        :meth:`iter_lines` — a fetch happens exactly when the buffer holds
        no complete line and the range is unfinished — so byte/seek
        accounting cannot diverge between the row and vector engines.
        """
        file_len = self._stream.length
        if end is None or end > file_len:
            end = file_len
        pos = 0 if start == 0 else self._find_next_line_start(start - 1)
        buffer = b""
        cursor = 0
        line_start = pos
        read_pos = pos
        while line_start < end:
            segment_start = cursor
            # Bulk-consume with one C scan: every newline within
            # ``end - line_start`` bytes of the current line start
            # terminates a line that began inside the range (the current
            # line begins in range by loop invariant, and each newline
            # before the window edge puts the next line start below
            # ``end``).  At most one further line — one that begins in
            # range but ends past the window — remains for the per-line
            # loop below.
            window_end = cursor + (end - line_start)
            count = buffer.count(b"\n", cursor, window_end)
            if count:
                last_newline = buffer.rfind(b"\n", cursor, window_end)
                line_start += last_newline + 1 - cursor
                cursor = last_newline + 1
            while line_start < end:
                newline = buffer.find(b"\n", cursor)
                if newline < 0:
                    break
                count += 1
                line_start += newline - cursor + 1
                cursor = newline + 1
            if count:
                yield buffer[segment_start:cursor], count
                continue
            if read_pos >= file_len:
                if cursor < len(buffer):  # file lacks a final newline
                    yield buffer[cursor:], 1
                return
            buffer = buffer[cursor:]
            cursor = 0
            want = min(_READ_CHUNK,
                       max(end + _TAIL_SLACK - read_pos, _TAIL_SLACK))
            chunk = self._stream.pread(read_pos, want)
            read_pos += len(chunk)
            buffer += chunk

    def _find_next_line_start(self, offset: int) -> int:
        """Offset of the first line that starts strictly after ``offset``."""
        pos = offset
        while pos < self._stream.length:
            chunk = self._stream.pread(pos, _TAIL_SLACK)
            newline = chunk.find(b"\n")
            if newline >= 0:
                return pos + newline + 1
            pos += len(chunk)
        return self._stream.length

    def read_row_at(self, offset: int) -> Tuple[Any, ...]:
        """Parse the single row that starts at ``offset``."""
        rows = self.iter_rows(offset, offset + 1)
        for _, row in rows:
            return row
        raise StorageFormatError(f"no row starts at offset {offset}")


def scan_rows(fs, path: str, schema: Schema, start: int = 0,
              end: Optional[int] = None,
              delimiter: str = DEFAULT_DELIMITER) -> List[Tuple]:
    """Convenience: materialize rows of a text file range (tests, small data)."""
    with fs.open(path) as stream:
        reader = TextFileReader(stream, schema, delimiter)
        return [row for _, row in reader.iter_rows(start, end)]
