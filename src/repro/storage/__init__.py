"""Storage layer: table schemas and the file formats Hive tables use.

Three formats are implemented, mirroring the paper's setup:

* :mod:`repro.storage.textfile` — delimited text, the base format of
  DGFIndex tables in the paper;
* :mod:`repro.storage.rcfile` — PAX-style row groups with columnar blobs,
  the base format of Compact-Index tables in the paper;
* :mod:`repro.storage.sequencefile` — binary key-value records.
"""

from repro.storage.schema import Column, DataType, Schema
from repro.storage.textfile import TextFileReader, TextFileWriter
from repro.storage.rcfile import RCFileReader, RCFileWriter
from repro.storage.sequencefile import SequenceFileReader, SequenceFileWriter

__all__ = [
    "Column",
    "DataType",
    "Schema",
    "TextFileReader",
    "TextFileWriter",
    "RCFileReader",
    "RCFileWriter",
    "SequenceFileReader",
    "SequenceFileWriter",
]
