"""SequenceFile format: length-prefixed binary key-value records.

Hive tables can be stored as SequenceFile; the MapReduce engine also uses it
for intermediate shuffle spill files.  Layout::

    file   := MAGIC record*
    record := total_len(u32) key_len(u32) key_bytes value_bytes

``BLOCK_OFFSET_INSIDE_FILE`` for a SequenceFile row is the byte offset of its
record header, matching the paper's description that for TextFile and
SequenceFile the offset is per-row.
"""

from __future__ import annotations

import struct
from typing import Iterator, Optional, Tuple

from repro.errors import StorageFormatError
from repro.hdfs.filesystem import HDFSReader, HDFSWriter

MAGIC = b"SEQ6"
_HEADER = struct.Struct("<II")
_READ_CHUNK = 256 * 1024


class SequenceFileWriter:
    """Appends binary key-value records."""

    def __init__(self, stream: HDFSWriter):
        self._stream = stream
        self._stream.write(MAGIC)
        self.records_written = 0

    @property
    def pos(self) -> int:
        return self._stream.pos

    def append(self, key: bytes, value: bytes) -> int:
        """Write one record; return its starting byte offset."""
        offset = self._stream.pos
        self._stream.write(_HEADER.pack(len(key) + len(value), len(key)))
        self._stream.write(key)
        self._stream.write(value)
        self.records_written += 1
        return offset

    def close(self) -> None:
        self._stream.close()

    def __enter__(self) -> "SequenceFileWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SequenceFileReader:
    """Iterates ``(offset, key, value)`` triples over a byte range."""

    def __init__(self, stream: HDFSReader):
        self._stream = stream
        magic = stream.pread(0, len(MAGIC))
        if magic != MAGIC:
            raise StorageFormatError(
                f"{stream.path!r} is not a SequenceFile (magic {magic!r})")

    def iter_records(self, start: int = 0, end: Optional[int] = None
                     ) -> Iterator[Tuple[int, bytes, bytes]]:
        """Yield records whose header starts in ``[start, end)``.

        ``start`` must be a record boundary (or 0 / the magic length); the
        engine only ever passes offsets previously returned by the writer.
        """
        file_len = self._stream.length
        if end is None or end > file_len:
            end = file_len
        pos = max(start, len(MAGIC))
        while pos < end:
            header = self._stream.pread(pos, _HEADER.size)
            if len(header) < _HEADER.size:
                raise StorageFormatError(
                    f"truncated record header at {pos} in {self._stream.path!r}")
            total_len, key_len = _HEADER.unpack(header)
            if key_len > total_len:
                raise StorageFormatError(
                    f"corrupt record at {pos} in {self._stream.path!r}")
            payload = self._stream.pread(pos + _HEADER.size, total_len)
            if len(payload) < total_len:
                raise StorageFormatError(
                    f"truncated record body at {pos} in {self._stream.path!r}")
            yield pos, payload[:key_len], payload[key_len:]
            pos += _HEADER.size + total_len
