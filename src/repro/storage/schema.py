"""Table schemas and column data types.

Rows are plain Python tuples; the schema gives each position a name and a
:class:`DataType` that knows how to parse/serialize the value for text
storage and how to compare values for range predicates.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from enum import Enum
from typing import Any, Iterable, List, Sequence, Tuple

from repro.errors import SchemaError


class DataType(Enum):
    """Supported column types (the subset the paper's workloads use)."""

    INT = "int"
    BIGINT = "bigint"
    DOUBLE = "double"
    STRING = "string"
    DATE = "date"

    def parse(self, text: str) -> Any:
        """Parse the text-file representation of a value of this type."""
        if self in (DataType.INT, DataType.BIGINT):
            return int(text)
        if self is DataType.DOUBLE:
            return float(text)
        return text  # STRING and DATE are stored verbatim (ISO dates)

    def serialize(self, value: Any) -> str:
        """Render ``value`` for text-file storage."""
        if self is DataType.DOUBLE:
            # repr() keeps round-trip exactness for floats.
            return repr(float(value))
        return str(value)

    def validate(self, value: Any) -> None:
        ok = {
            DataType.INT: lambda v: isinstance(v, int),
            DataType.BIGINT: lambda v: isinstance(v, int),
            DataType.DOUBLE: lambda v: isinstance(v, (int, float)),
            DataType.STRING: lambda v: isinstance(v, str),
            DataType.DATE: lambda v: isinstance(v, str) and _is_iso_date(v),
        }[self](value)
        if not ok:
            raise SchemaError(f"value {value!r} is not a valid {self.value}")

    @property
    def is_numeric(self) -> bool:
        return self in (DataType.INT, DataType.BIGINT, DataType.DOUBLE)


def _is_iso_date(text: str) -> bool:
    try:
        _dt.date.fromisoformat(text)
    except ValueError:
        return False
    return True


def date_to_ordinal(text: str) -> int:
    """ISO date string -> proleptic ordinal day (for grid arithmetic)."""
    return _dt.date.fromisoformat(text).toordinal()


def ordinal_to_date(ordinal: int) -> str:
    return _dt.date.fromordinal(int(ordinal)).isoformat()


@dataclass(frozen=True)
class Column:
    """One column: a name and a type."""

    name: str
    dtype: DataType

    def __post_init__(self):
        if not self.name or not self.name.replace("_", "").isalnum():
            raise SchemaError(f"invalid column name {self.name!r}")


class Schema:
    """An ordered list of columns with fast name lookup."""

    def __init__(self, columns: Iterable[Column]):
        self.columns: Tuple[Column, ...] = tuple(columns)
        if not self.columns:
            raise SchemaError("schema needs at least one column")
        self._index = {}
        for i, col in enumerate(self.columns):
            key = col.name.lower()
            if key in self._index:
                raise SchemaError(f"duplicate column {col.name!r}")
            self._index[key] = i

    @classmethod
    def of(cls, *specs: Tuple[str, DataType]) -> "Schema":
        """Shorthand: ``Schema.of(("a", DataType.INT), ("b", DataType.DOUBLE))``."""
        return cls(Column(name, dtype) for name, dtype in specs)

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self):
        return iter(self.columns)

    def __eq__(self, other) -> bool:
        return isinstance(other, Schema) and self.columns == other.columns

    def names(self) -> List[str]:
        return [c.name for c in self.columns]

    def has_column(self, name: str) -> bool:
        return name.lower() in self._index

    def index_of(self, name: str) -> int:
        try:
            return self._index[name.lower()]
        except KeyError:
            raise SchemaError(
                f"unknown column {name!r}; have {self.names()}") from None

    def column(self, name: str) -> Column:
        return self.columns[self.index_of(name)]

    def dtype_of(self, name: str) -> DataType:
        return self.column(name).dtype

    def validate_row(self, row: Sequence[Any]) -> None:
        if len(row) != len(self.columns):
            raise SchemaError(
                f"row has {len(row)} fields, schema has {len(self.columns)}")
        for value, col in zip(row, self.columns):
            col.dtype.validate(value)

    def project(self, names: Sequence[str]) -> "Schema":
        """A schema containing only ``names`` (in the given order)."""
        return Schema(self.column(n) for n in names)
