"""RCFile format: PAX-style row groups with per-column blobs.

RCFile (He et al., ICDE 2011) packs rows into *row groups*; within a group
values are stored column-by-column so a scan that needs only some columns
reads only those byte ranges.  Hive's ``BLOCK_OFFSET_INSIDE_FILE`` for an
RCFile row is the byte offset of its row group, which is what the Compact
Index stores and what the Bitmap Index refines with per-row bitmaps.

On-disk layout::

    file  := group*
    group := MAGIC nrows(u32) ncols(u32) col_len(u32)*ncols  blob*ncols
    blob  := field*nrows, each field = len(u32) utf8_bytes
"""

from __future__ import annotations

import struct
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.errors import StorageFormatError
from repro.hdfs.filesystem import HDFSReader, HDFSWriter
from repro.storage.schema import Schema

MAGIC = b"RCF1"
_U32 = struct.Struct("<I")
DEFAULT_ROW_GROUP_SIZE = 4096


class RCFileWriter:
    """Buffers rows and flushes them as row groups."""

    def __init__(self, stream: HDFSWriter, schema: Schema,
                 row_group_size: int = DEFAULT_ROW_GROUP_SIZE):
        if row_group_size < 1:
            raise StorageFormatError("row_group_size must be >= 1")
        self._stream = stream
        self._schema = schema
        self._row_group_size = row_group_size
        self._pending: List[Sequence[Any]] = []
        self.rows_written = 0
        self.groups_written = 0

    @property
    def pos(self) -> int:
        """Offset where the next row group will start (after a flush)."""
        return self._stream.pos

    def write_row(self, row: Sequence[Any]) -> None:
        self._pending.append(tuple(row))
        self.rows_written += 1
        if len(self._pending) >= self._row_group_size:
            self._flush_group()

    def write_rows(self, rows) -> None:
        for row in rows:
            self.write_row(row)

    def flush(self) -> None:
        """Force the pending rows out as a row group.  The DGFIndex builder
        flushes at every slice boundary so slices align with row groups."""
        self._flush_group()

    def _flush_group(self) -> None:
        if not self._pending:
            return
        ncols = len(self._schema)
        blobs: List[bytearray] = [bytearray() for _ in range(ncols)]
        for row in self._pending:
            if len(row) != ncols:
                raise StorageFormatError(
                    f"row has {len(row)} fields, schema has {ncols}")
            for i, (value, col) in enumerate(zip(row, self._schema.columns)):
                encoded = col.dtype.serialize(value).encode("utf-8")
                blobs[i].extend(_U32.pack(len(encoded)))
                blobs[i].extend(encoded)
        header = bytearray()
        header.extend(MAGIC)
        header.extend(_U32.pack(len(self._pending)))
        header.extend(_U32.pack(ncols))
        for blob in blobs:
            header.extend(_U32.pack(len(blob)))
        self._stream.write(bytes(header))
        for blob in blobs:
            self._stream.write(bytes(blob))
        self._pending.clear()
        self.groups_written += 1

    def close(self) -> None:
        self._flush_group()
        self._stream.close()

    def __enter__(self) -> "RCFileWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class RCFileReader:
    """Reads row groups, optionally pruning to a subset of columns."""

    def __init__(self, stream: HDFSReader, schema: Schema):
        self._stream = stream
        self._schema = schema

    def iter_groups(self, start: int = 0, end: Optional[int] = None
                    ) -> Iterator[Tuple[int, int]]:
        """Yield ``(group_offset, nrows)`` for groups starting in [start, end).

        Only group headers are read, so this is cheap; use it to enumerate
        candidate groups before deciding which to materialize.
        """
        file_len = self._stream.length
        if end is None or end > file_len:
            end = file_len
        pos = self._seek_group(start)
        while pos < end:
            nrows, _, _, next_pos = self._read_header(pos)
            yield pos, nrows
            pos = next_pos

    def iter_rows(self, start: int = 0, end: Optional[int] = None,
                  columns: Optional[Sequence[str]] = None,
                  row_filter=None) -> Iterator[Tuple[int, Tuple]]:
        """Yield ``(group_offset, row)`` for rows in groups starting in
        ``[start, end)``.

        ``columns``: if given, only those columns' blobs are read from the
        filesystem (column pruning); rows still come back positionally in
        *schema* order with ``None`` for pruned-out columns, so downstream
        operators can address columns by schema index uniformly.
        ``row_filter``: optional ``(group_offset, row_index) -> bool`` used by
        the Bitmap Index to skip rows inside a group.
        """
        file_len = self._stream.length
        if end is None or end > file_len:
            end = file_len
        pos = self._seek_group(start)
        wanted = None
        if columns is not None:
            wanted = sorted(self._schema.index_of(c) for c in columns)
        while pos < end:
            for offset, row in self._read_group(pos, wanted, row_filter):
                yield offset, row
            pos = self._next_group_offset(pos)

    def read_group_rows(self, group_offset: int,
                        columns: Optional[Sequence[str]] = None,
                        row_filter=None) -> List[Tuple]:
        wanted = None
        if columns is not None:
            wanted = sorted(self._schema.index_of(c) for c in columns)
        return [row for _, row in
                self._read_group(group_offset, wanted, row_filter)]

    def read_group_columns(self, group_offset: int,
                           wanted: Optional[Sequence[int]] = None
                           ) -> Tuple[int, List[Optional[List[Any]]]]:
        """Read one row group *columnar*: ``(nrows, columns)``.

        ``columns`` has one entry per schema position — a list of parsed
        values for read columns, ``None`` for pruned ones (``wanted`` is a
        collection of schema positions; ``None`` reads everything).  This is
        the single source of the group pread pattern: :meth:`_read_group`
        (the row path) is built on it, so the vector decoder's byte/seek
        accounting is identical to the row engine's by construction.
        """
        nrows, col_lens, blob_start, _ = self._read_header(group_offset)
        ncols = len(self._schema)
        indices = wanted if wanted is not None else range(ncols)
        decoded: List[Optional[List[Any]]] = [None] * ncols
        offset = blob_start
        for i in range(ncols):
            if i in indices:
                blob = self._stream.pread(offset, col_lens[i])
                decoded[i] = self._decode_blob(blob, nrows,
                                               self._schema.columns[i].dtype)
            offset += col_lens[i]
        return nrows, decoded

    # ----------------------------------------------------------------- parts
    def _seek_group(self, start: int) -> int:
        """Groups are self-delimiting; callers pass real group offsets (from
        the writer or a previous scan) or 0.  Offsets inside a group would be
        a corruption, which the magic check below catches."""
        return start

    def _read_header(self, pos: int) -> Tuple[int, List[int], int, int]:
        """Return ``(nrows, col_lens, blob_start, next_group_offset)``."""
        fixed = self._stream.pread(pos, len(MAGIC) + 2 * _U32.size)
        if fixed[:len(MAGIC)] != MAGIC:
            raise StorageFormatError(
                f"no RCFile group at offset {pos} in {self._stream.path!r}")
        nrows = _U32.unpack_from(fixed, len(MAGIC))[0]
        ncols = _U32.unpack_from(fixed, len(MAGIC) + _U32.size)[0]
        if ncols != len(self._schema):
            raise StorageFormatError(
                f"group at {pos} has {ncols} columns, schema has "
                f"{len(self._schema)}")
        lens_off = pos + len(MAGIC) + 2 * _U32.size
        raw = self._stream.pread(lens_off, ncols * _U32.size)
        col_lens = [_U32.unpack_from(raw, i * _U32.size)[0]
                    for i in range(ncols)]
        blob_start = lens_off + ncols * _U32.size
        next_pos = blob_start + sum(col_lens)
        return nrows, col_lens, blob_start, next_pos

    def _next_group_offset(self, pos: int) -> int:
        return self._read_header(pos)[3]

    def _read_group(self, pos: int, wanted: Optional[List[int]],
                    row_filter) -> Iterator[Tuple[int, Tuple]]:
        nrows, decoded = self.read_group_columns(pos, wanted)
        ncols = len(self._schema)
        for r in range(nrows):
            if row_filter is not None and not row_filter(pos, r):
                continue
            row = tuple(decoded[i][r] if decoded[i] is not None else None
                        for i in range(ncols))
            yield pos, row

    @staticmethod
    def _decode_blob(blob: bytes, nrows: int, dtype) -> List[Any]:
        values = []
        pos = 0
        for _ in range(nrows):
            if pos + _U32.size > len(blob):
                raise StorageFormatError("truncated column blob")
            (length,) = _U32.unpack_from(blob, pos)
            pos += _U32.size
            values.append(dtype.parse(blob[pos:pos + length].decode("utf-8")))
            pos += length
        return values
