"""The paper's primary contribution lives here (``repro.core.dgf``)."""
