"""Splitting-policy advisor — the paper's stated future work, implemented.

"In future work, we will work on an algorithm to find the best splitting
policy for DGFIndex based on the distribution of the meter data and the
query history."  (Section 8.)

The advisor balances the two costs the paper's experiments expose:

* small cells -> many GFUs -> a bigger index and more key-value gets per
  query (Figures 12/13's growing "read index" component);
* large cells -> wide boundary regions -> more over-read data per query
  (Table 3/4's growing record counts for DGF-L).

For a query with range width ``W_i`` on dimension ``i`` and cell width
``c_i``, the number of query-related cells is ``~prod(W_i / c_i)`` and the
expected fraction of *boundary* volume is ``1 - prod(max(0, W_i - 2 c_i) /
W_i)``.  The advisor multiplies these by the cost model's per-get latency
and per-record CPU cost, averages over the query history, and minimizes by
coordinate descent over a geometric grid of candidate cell counts.

Beyond the paper's single-policy question, :meth:`PolicyAdvisor.
advise_divergent` tunes a *fleet*: it clusters the logged workload on
normalized interval signatures (greedy k-medoids with max-min seeding),
searches one grid per cluster under the router-aligned what-if objective
(:class:`repro.core.dgf.whatif.WhatIfEvaluator`), and emits an
:class:`AdvisorReport` whose layouts ``fleet.add_replica_layout`` can
apply — each replica layout a specialist for one workload cluster, in the
HAIL-style divergent-tuning sense.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.dgf.policy import DimensionPolicy, SplittingPolicy
from repro.errors import DGFError
from repro.hiveql.predicates import Interval
from repro.mapreduce.cluster import PAPER_CLUSTER, ClusterConfig
from repro.storage.schema import DataType, Schema, date_to_ordinal


@dataclass
class DimensionStats:
    """Observed span of one index dimension in the data sample."""

    name: str
    dtype: DataType
    low: float   # coordinate space (ordinals for dates)
    high: float

    @property
    def span(self) -> float:
        return max(self.high - self.low, 1.0)


@dataclass
class QueryProfile:
    """One historical query: per-dimension range widths in coordinate
    space (None = dimension unconstrained).  ``agg_path`` records whether
    the query could use pre-computed headers (inner cells free) or had to
    read every query-related slice (``force_all_boundary``)."""

    widths: Dict[str, Optional[float]]
    weight: float = 1.0
    agg_path: bool = True


@dataclass
class Advice:
    """Structured advisor output: the recommended grid plus the evidence.

    Replaces the bare :class:`SplittingPolicy` that ``recommend()`` used
    to return — serializable (``to_dict``/``from_dict``), carries the
    predicted cost under the advisor's objective, and explains itself.
    """

    policy: SplittingPolicy
    #: ``IDXPROPERTIES`` rendering of ``policy`` (Listing 3 syntax) —
    #: ready for ``CREATE INDEX`` / ``add_replica_layout(grid=...)``
    properties: Dict[str, str]
    #: searched cells per dimension (lower-case names)
    cell_counts: Dict[str, int]
    #: modelled seconds of the advised workload on this grid
    predicted_seconds: float
    #: number of logged queries this advice was fitted to
    queries: int
    rationale: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {"policy": self.policy.to_dict(),
                "properties": dict(self.properties),
                "cell_counts": dict(self.cell_counts),
                "predicted_seconds": self.predicted_seconds,
                "queries": self.queries,
                "rationale": self.rationale}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Advice":
        return cls(policy=SplittingPolicy.from_dict(data["policy"]),
                   properties=dict(data["properties"]),
                   cell_counts={k: int(v)
                                for k, v in data["cell_counts"].items()},
                   predicted_seconds=float(data["predicted_seconds"]),
                   queries=int(data["queries"]),
                   rationale=data.get("rationale", ""))


# --------------------------------------------------------------- clustering
def signature_of(profile: QueryProfile, stats: Dict[str, DimensionStats],
                 index_columns: Sequence[str]) -> Dict[str, float]:
    """Normalized interval signature of one query: per dimension, the
    constrained width as a fraction of the data span, clipped to [0, 1]
    (an unconstrained dimension is a full-span 1.0)."""
    signature: Dict[str, float] = {}
    for name in index_columns:
        key = name.lower()
        width = profile.widths.get(key)
        if width is None:
            signature[key] = 1.0
        else:
            signature[key] = min(1.0, max(0.0, width / stats[key].span))
    return signature


def signature_distance(a: Dict[str, float], b: Dict[str, float]) -> float:
    """Euclidean distance between signatures, normalized by dimension
    count so it stays in [0, 1] regardless of index arity."""
    keys = sorted(set(a) | set(b))
    if not keys:
        return 0.0
    total = sum((a.get(key, 1.0) - b.get(key, 1.0)) ** 2 for key in keys)
    return math.sqrt(total / len(keys))


def _assign(signatures: Sequence[Dict[str, float]],
            medoids: Sequence[int]) -> List[int]:
    """Nearest-medoid assignment, ties broken by lowest cluster index."""
    return [min(range(len(medoids)),
                key=lambda c: (signature_distance(sig,
                                                  signatures[medoids[c]]),
                               c))
            for sig in signatures]


def cluster_signatures(signatures: Sequence[Dict[str, float]],
                       max_clusters: int,
                       min_separation: float = 0.05,
                       ) -> Tuple[List[int], List[int]]:
    """Greedy k-medoids over query signatures, fully deterministic.

    Seeds with max-min (farthest-point) selection starting from index 0,
    stops early when the farthest remaining signature is within
    ``min_separation`` of an existing medoid (identical workloads yield
    one cluster no matter the budget), then runs one true-medoid
    refinement pass.  Ties always break toward the lowest index.

    Returns ``(medoid_indices, assignments)`` where ``assignments[i]`` is
    the cluster of ``signatures[i]``.
    """
    n = len(signatures)
    if n == 0:
        return [], []
    medoids = [0]
    while len(medoids) < min(max(1, max_clusters), n):
        dists = [min(signature_distance(signatures[i], signatures[m])
                     for m in medoids) for i in range(n)]
        farthest = max(range(n), key=lambda i: (dists[i], -i))
        if dists[farthest] <= min_separation:
            break
        medoids.append(farthest)
    assignments = _assign(signatures, medoids)
    refined = []
    for cluster, medoid in enumerate(medoids):
        members = [i for i, a in enumerate(assignments) if a == cluster]
        refined.append(min(
            members,
            key=lambda i: (sum(signature_distance(signatures[i],
                                                  signatures[j])
                               for j in members), i)))
    if refined != medoids:
        medoids = refined
        assignments = _assign(signatures, medoids)
    return medoids, assignments


@dataclass
class LayoutAdvice:
    """One specialist replica layout of an :class:`AdvisorReport`.

    ``name`` is the replica-layout name to register (or ``"primary"``
    when the cluster's best grid *is* the primary's — nothing to build,
    the router's primary-first tie-break already serves it).  A layout
    may serve several clusters whose searches converged on the same grid;
    ``medoids`` lists each served cluster's medoid signature.
    """

    name: str
    advice: Advice
    medoids: List[Dict[str, float]] = field(default_factory=list)
    queries: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "advice": self.advice.to_dict(),
                "medoids": [dict(m) for m in self.medoids],
                "queries": self.queries}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "LayoutAdvice":
        return cls(name=data["name"],
                   advice=Advice.from_dict(data["advice"]),
                   medoids=[dict(m) for m in data["medoids"]],
                   queries=int(data["queries"]))


@dataclass
class AdvisorReport:
    """Divergent-tuning output: one specialist layout per workload
    cluster, plus the best *uniform* grid for comparison."""

    table: str
    index: str
    #: best single grid for the whole workload (the paper's question)
    uniform: Advice
    #: per-cluster specialists, deduplicated by grid
    layouts: List[LayoutAdvice]
    #: per logged query, index into :attr:`layouts`
    assignments: List[int]
    #: per logged query, its normalized interval signature
    signatures: List[Dict[str, float]]
    predicted_uniform_seconds: float
    predicted_divergent_seconds: float

    @property
    def predicted_speedup(self) -> float:
        """Modelled aggregate win of the divergent fleet over the best
        uniform grid."""
        return (self.predicted_uniform_seconds
                / max(self.predicted_divergent_seconds, 1e-12))

    def layout_names(self) -> List[str]:
        """Replica layouts to build (``"primary"`` needs no build)."""
        return [layout.name for layout in self.layouts
                if layout.name != "primary"]

    def specialist_for(self, signature: Dict[str, float]) -> str:
        """Layout whose served medoid is nearest to ``signature`` — the
        replica the router *should* choose for such a query."""
        if not self.layouts:
            return "primary"
        best: Optional[Tuple[float, int, int]] = None
        for position, layout in enumerate(self.layouts):
            for rank, medoid in enumerate(layout.medoids):
                key = (signature_distance(signature, medoid), position,
                       rank)
                if best is None or key < best:
                    best = key
        assert best is not None
        return self.layouts[best[1]].name

    def to_dict(self) -> Dict[str, Any]:
        return {"table": self.table, "index": self.index,
                "uniform": self.uniform.to_dict(),
                "layouts": [layout.to_dict() for layout in self.layouts],
                "assignments": list(self.assignments),
                "signatures": [dict(s) for s in self.signatures],
                "predicted_uniform_seconds":
                    self.predicted_uniform_seconds,
                "predicted_divergent_seconds":
                    self.predicted_divergent_seconds}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AdvisorReport":
        return cls(table=data["table"], index=data["index"],
                   uniform=Advice.from_dict(data["uniform"]),
                   layouts=[LayoutAdvice.from_dict(layout)
                            for layout in data["layouts"]],
                   assignments=[int(a) for a in data["assignments"]],
                   signatures=[dict(s) for s in data["signatures"]],
                   predicted_uniform_seconds=float(
                       data["predicted_uniform_seconds"]),
                   predicted_divergent_seconds=float(
                       data["predicted_divergent_seconds"]))


class PolicyAdvisor:
    """Chooses interval sizes from a data sample and a query history."""

    #: candidate number of cells per dimension (geometric grid)
    CANDIDATE_CELL_COUNTS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)

    def __init__(self, schema: Schema, index_columns: Sequence[str],
                 cluster: ClusterConfig = PAPER_CLUSTER,
                 records_per_unit_volume: float = 1.0):
        self.schema = schema
        self.index_columns = list(index_columns)
        self.cluster = cluster
        #: expected matching records per unit of normalized query volume
        #: (callers pass total_records so boundary over-read is in records)
        self.records_per_unit_volume = records_per_unit_volume

    # ------------------------------------------------------------- profiling
    def profile_data(self, rows: Sequence[Sequence],
                     ) -> Dict[str, DimensionStats]:
        """Min/max per index dimension over a sample of rows."""
        if not rows:
            raise DGFError("cannot profile an empty sample")
        stats: Dict[str, DimensionStats] = {}
        for name in self.index_columns:
            position = self.schema.index_of(name)
            dtype = self.schema.dtype_of(name)
            coords = [self._coord(dtype, row[position]) for row in rows]
            stats[name.lower()] = DimensionStats(
                name=name, dtype=dtype, low=min(coords), high=max(coords))
        return stats

    def profile_queries(self, histories: Sequence[Dict[str, Interval]],
                        stats: Dict[str, DimensionStats]
                        ) -> List[QueryProfile]:
        """Turn interval predicates into per-dimension range widths."""
        profiles = []
        for intervals in histories:
            widths: Dict[str, Optional[float]] = {}
            for name in self.index_columns:
                key = name.lower()
                interval = intervals.get(key)
                if interval is None:
                    widths[key] = None
                    continue
                dim = stats[key]
                low = self._coord(dim.dtype, interval.low) \
                    if interval.low is not None else dim.low
                high = self._coord(dim.dtype, interval.high) \
                    if interval.high is not None else dim.high
                widths[key] = max(high - low, 1e-9)
            profiles.append(QueryProfile(widths=widths))
        return profiles

    @staticmethod
    def _coord(dtype: DataType, value) -> float:
        if dtype is DataType.DATE:
            return float(date_to_ordinal(value))
        return float(value)

    # ------------------------------------------------------------------ cost
    def expected_query_cost(self, cell_counts: Dict[str, int],
                            stats: Dict[str, DimensionStats],
                            profiles: Sequence[QueryProfile]) -> float:
        """Average modelled seconds per query for a candidate grid."""
        c = self.cluster
        total = 0.0
        weight_sum = 0.0
        for profile in profiles:
            cells = 1.0
            inside_fraction = 1.0
            volume_fraction = 1.0
            for key, count in cell_counts.items():
                dim = stats[key]
                cell_width = dim.span / count
                width = profile.widths.get(key)
                if width is None:
                    width = dim.span
                cells *= max(1.0, width / cell_width)
                inside_fraction *= max(0.0, width - 2 * cell_width) \
                    / dim.span
                volume_fraction *= width / dim.span
            boundary_records = (self.records_per_unit_volume
                                * max(0.0, volume_fraction
                                      - inside_fraction))
            slots = c.total_map_slots
            cost = (cells * c.kv_get_seconds
                    + boundary_records * c.cpu_seconds_per_record / slots)
            total += profile.weight * cost
            weight_sum += profile.weight
        return total / max(weight_sum, 1e-12)

    # ------------------------------------------------------------ the search
    def _descend(self, objective: Callable[[Dict[str, int]], float],
                 passes: int = 3) -> Tuple[Dict[str, int], float]:
        """Coordinate descent over :attr:`CANDIDATE_CELL_COUNTS`,
        minimizing ``objective(cell_counts)``.  Deterministic: dimensions
        in index-column order, candidates in grid order, strict-improve
        threshold."""
        cell_counts = {name.lower(): 16 for name in self.index_columns}
        best_cost = objective(cell_counts)
        for _ in range(passes):
            improved = False
            for name in self.index_columns:
                key = name.lower()
                start = best_count = cell_counts[key]
                for candidate in self.CANDIDATE_CELL_COUNTS:
                    cell_counts[key] = candidate
                    cost = objective(cell_counts)
                    if cost < best_cost - 1e-15:
                        best_cost = cost
                        best_count = candidate
                cell_counts[key] = best_count
                improved = improved or best_count != start
            if not improved:
                break
        return cell_counts, best_cost

    def advise_profiles(self, stats: Dict[str, DimensionStats],
                        profiles: Sequence[QueryProfile],
                        passes: int = 3,
                        objective: Optional[
                            Callable[[Dict[str, int]], float]] = None,
                        ) -> Advice:
        """Search the cheapest grid for already-profiled queries.

        ``objective`` defaults to :meth:`expected_query_cost`; the
        divergent search passes the router-aligned what-if objective
        instead.
        """
        if not profiles:
            raise DGFError("advisor needs at least one historical query")
        if objective is None:
            def objective(cell_counts: Dict[str, int]) -> float:
                return self.expected_query_cost(cell_counts, stats,
                                                profiles)
        cell_counts, cost = self._descend(objective, passes)
        policy = self._to_policy(cell_counts, stats)
        grid = ", ".join(f"{key}={cell_counts[key]}"
                         for key in sorted(cell_counts))
        return Advice(policy=policy,
                      properties=self.properties_for(policy),
                      cell_counts=dict(cell_counts),
                      predicted_seconds=cost,
                      queries=len(profiles),
                      rationale=(f"coordinate descent over "
                                 f"{len(profiles)} logged queries "
                                 f"settled on cells [{grid}] at modelled "
                                 f"cost {cost:.6g}s"))

    def advise(self, rows: Sequence[Sequence],
               query_history: Sequence[Dict[str, Interval]],
               passes: int = 3) -> Advice:
        """Search the cheapest splitting policy, with the evidence.

        The structured successor of :meth:`recommend`: same coordinate
        descent on :meth:`expected_query_cost`, but the result is a
        serializable :class:`Advice` (policy + ``IDXPROPERTIES`` + cell
        counts + predicted cost + rationale) instead of a bare policy.
        """
        stats = self.profile_data(rows)
        profiles = self.profile_queries(query_history, stats)
        return self.advise_profiles(stats, profiles, passes)

    def recommend(self, rows: Sequence[Sequence],
                  query_history: Sequence[Dict[str, Interval]],
                  passes: int = 3) -> SplittingPolicy:
        """Deprecated: use :meth:`advise` (same search, richer result)."""
        warnings.warn(
            "PolicyAdvisor.recommend() is deprecated; use advise(), "
            "which returns a structured Advice (advice.policy is the "
            "old return value)", DeprecationWarning, stacklevel=2)
        return self.advise(rows, query_history, passes).policy

    def advise_divergent(self, stats: Dict[str, DimensionStats],
                         profiles: Sequence[QueryProfile],
                         evaluator, *,
                         max_layouts: int = 2,
                         passes: int = 3,
                         min_separation: float = 0.05,
                         layout_prefix: str = "adv-",
                         table: str = "", index: str = "",
                         primary_cell_counts: Optional[Dict[str, int]]
                         = None) -> AdvisorReport:
        """Divergent fleet tuning: one specialist grid per workload
        cluster, priced by a router-aligned ``evaluator``
        (:class:`repro.core.dgf.whatif.WhatIfEvaluator`).

        Clusters the profiles' normalized signatures (at most
        ``max_layouts`` clusters), coordinate-descends one grid per
        cluster under ``evaluator.workload_seconds``, and dedupes
        clusters whose searches converge on the same grid.  A cluster
        whose best grid equals ``primary_cell_counts`` maps to the
        ``"primary"`` pseudo-layout — nothing to build; the router's
        primary-first tie-break already serves it.
        """
        if not profiles:
            raise DGFError("advisor needs at least one historical query")
        signatures = [signature_of(profile, stats, self.index_columns)
                      for profile in profiles]
        uniform = self.advise_profiles(
            stats, profiles, passes,
            objective=lambda cc: evaluator.workload_seconds(profiles, cc))
        uniform.rationale = (f"best single uniform grid for all "
                             f"{len(profiles)} logged queries; "
                             + uniform.rationale)

        medoids, assignments = cluster_signatures(
            signatures, max_layouts, min_separation)
        per_cluster: List[Tuple[int, Advice]] = []
        for cluster, _medoid in enumerate(medoids):
            members = [profiles[i] for i, a in enumerate(assignments)
                       if a == cluster]
            advice = self.advise_profiles(
                stats, members, passes,
                objective=lambda cc, members=members:
                    evaluator.workload_seconds(members, cc))
            per_cluster.append((cluster, advice))

        # Dedupe clusters that converged on the same grid; a grid equal
        # to the primary's needs no replica at all.
        grid_to_layout: Dict[Tuple[Tuple[str, int], ...], int] = {}
        layouts: List[LayoutAdvice] = []
        cluster_to_layout: Dict[int, int] = {}
        built = 0
        primary_grid = None
        if primary_cell_counts is not None:
            primary_grid = tuple(sorted(primary_cell_counts.items()))
        for cluster, advice in per_cluster:
            grid = tuple(sorted(advice.cell_counts.items()))
            if grid in grid_to_layout:
                position = grid_to_layout[grid]
                layout = layouts[position]
                layout.medoids.append(signatures[medoids[cluster]])
                layout.queries += advice.queries
                layout.advice.predicted_seconds += \
                    advice.predicted_seconds
                layout.advice.queries += advice.queries
            else:
                if grid == primary_grid:
                    name = "primary"
                else:
                    name = f"{layout_prefix}{built}"
                    built += 1
                position = len(layouts)
                grid_to_layout[grid] = position
                layouts.append(LayoutAdvice(
                    name=name, advice=advice,
                    medoids=[signatures[medoids[cluster]]],
                    queries=advice.queries))
            cluster_to_layout[cluster] = position

        divergent_seconds = sum(layout.advice.predicted_seconds
                                for layout in layouts)
        return AdvisorReport(
            table=table, index=index, uniform=uniform, layouts=layouts,
            assignments=[cluster_to_layout[a] for a in assignments],
            signatures=signatures,
            predicted_uniform_seconds=uniform.predicted_seconds,
            predicted_divergent_seconds=divergent_seconds)

    def _to_policy(self, cell_counts: Dict[str, int],
                   stats: Dict[str, DimensionStats]) -> SplittingPolicy:
        dims = []
        for name in self.index_columns:
            key = name.lower()
            dim = stats[key]
            interval = dim.span / cell_counts[key]
            if dim.dtype in (DataType.INT, DataType.BIGINT, DataType.DATE):
                interval = max(1.0, math.ceil(interval))
            origin = dim.low
            if dim.dtype is DataType.DATE:
                from repro.storage.schema import ordinal_to_date
                origin_value = ordinal_to_date(int(origin))
            elif dim.dtype in (DataType.INT, DataType.BIGINT):
                origin_value = int(origin)
            else:
                origin_value = origin
            dims.append(DimensionPolicy(name=dim.name, dtype=dim.dtype,
                                        origin=origin_value,
                                        interval=interval))
        return SplittingPolicy(dims)

    @staticmethod
    def properties_for(policy: SplittingPolicy) -> Dict[str, str]:
        """Render a policy as ``IDXPROPERTIES`` values (Listing 3 syntax)."""
        out: Dict[str, str] = {}
        for dim in policy.dimensions:
            if dim.dtype is DataType.DATE:
                out[dim.name] = f"{dim.origin}_{int(dim.interval)}d"
            else:
                interval = dim.interval
                interval_text = str(int(interval)) \
                    if interval == int(interval) else str(interval)
                out[dim.name] = f"{dim.origin}_{interval_text}"
        return out
