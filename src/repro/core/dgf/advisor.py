"""Splitting-policy advisor — the paper's stated future work, implemented.

"In future work, we will work on an algorithm to find the best splitting
policy for DGFIndex based on the distribution of the meter data and the
query history."  (Section 8.)

The advisor balances the two costs the paper's experiments expose:

* small cells -> many GFUs -> a bigger index and more key-value gets per
  query (Figures 12/13's growing "read index" component);
* large cells -> wide boundary regions -> more over-read data per query
  (Table 3/4's growing record counts for DGF-L).

For a query with range width ``W_i`` on dimension ``i`` and cell width
``c_i``, the number of query-related cells is ``~prod(W_i / c_i)`` and the
expected fraction of *boundary* volume is ``1 - prod(max(0, W_i - 2 c_i) /
W_i)``.  The advisor multiplies these by the cost model's per-get latency
and per-record CPU cost, averages over the query history, and minimizes by
coordinate descent over a geometric grid of candidate cell counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.dgf.policy import DimensionPolicy, SplittingPolicy
from repro.errors import DGFError
from repro.hiveql.predicates import Interval
from repro.mapreduce.cluster import PAPER_CLUSTER, ClusterConfig
from repro.storage.schema import DataType, Schema, date_to_ordinal


@dataclass
class DimensionStats:
    """Observed span of one index dimension in the data sample."""

    name: str
    dtype: DataType
    low: float   # coordinate space (ordinals for dates)
    high: float

    @property
    def span(self) -> float:
        return max(self.high - self.low, 1.0)


@dataclass
class QueryProfile:
    """One historical query: per-dimension range widths in coordinate
    space (None = dimension unconstrained)."""

    widths: Dict[str, Optional[float]]
    weight: float = 1.0


class PolicyAdvisor:
    """Chooses interval sizes from a data sample and a query history."""

    #: candidate number of cells per dimension (geometric grid)
    CANDIDATE_CELL_COUNTS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)

    def __init__(self, schema: Schema, index_columns: Sequence[str],
                 cluster: ClusterConfig = PAPER_CLUSTER,
                 records_per_unit_volume: float = 1.0):
        self.schema = schema
        self.index_columns = list(index_columns)
        self.cluster = cluster
        #: expected matching records per unit of normalized query volume
        #: (callers pass total_records so boundary over-read is in records)
        self.records_per_unit_volume = records_per_unit_volume

    # ------------------------------------------------------------- profiling
    def profile_data(self, rows: Sequence[Sequence],
                     ) -> Dict[str, DimensionStats]:
        """Min/max per index dimension over a sample of rows."""
        if not rows:
            raise DGFError("cannot profile an empty sample")
        stats: Dict[str, DimensionStats] = {}
        for name in self.index_columns:
            position = self.schema.index_of(name)
            dtype = self.schema.dtype_of(name)
            coords = [self._coord(dtype, row[position]) for row in rows]
            stats[name.lower()] = DimensionStats(
                name=name, dtype=dtype, low=min(coords), high=max(coords))
        return stats

    def profile_queries(self, histories: Sequence[Dict[str, Interval]],
                        stats: Dict[str, DimensionStats]
                        ) -> List[QueryProfile]:
        """Turn interval predicates into per-dimension range widths."""
        profiles = []
        for intervals in histories:
            widths: Dict[str, Optional[float]] = {}
            for name in self.index_columns:
                key = name.lower()
                interval = intervals.get(key)
                if interval is None:
                    widths[key] = None
                    continue
                dim = stats[key]
                low = self._coord(dim.dtype, interval.low) \
                    if interval.low is not None else dim.low
                high = self._coord(dim.dtype, interval.high) \
                    if interval.high is not None else dim.high
                widths[key] = max(high - low, 1e-9)
            profiles.append(QueryProfile(widths=widths))
        return profiles

    @staticmethod
    def _coord(dtype: DataType, value) -> float:
        if dtype is DataType.DATE:
            return float(date_to_ordinal(value))
        return float(value)

    # ------------------------------------------------------------------ cost
    def expected_query_cost(self, cell_counts: Dict[str, int],
                            stats: Dict[str, DimensionStats],
                            profiles: Sequence[QueryProfile]) -> float:
        """Average modelled seconds per query for a candidate grid."""
        c = self.cluster
        total = 0.0
        weight_sum = 0.0
        for profile in profiles:
            cells = 1.0
            inside_fraction = 1.0
            volume_fraction = 1.0
            for key, count in cell_counts.items():
                dim = stats[key]
                cell_width = dim.span / count
                width = profile.widths.get(key)
                if width is None:
                    width = dim.span
                cells *= max(1.0, width / cell_width)
                inside_fraction *= max(0.0, width - 2 * cell_width) \
                    / dim.span
                volume_fraction *= width / dim.span
            boundary_records = (self.records_per_unit_volume
                                * max(0.0, volume_fraction
                                      - inside_fraction))
            slots = c.total_map_slots
            cost = (cells * c.kv_get_seconds
                    + boundary_records * c.cpu_seconds_per_record / slots)
            total += profile.weight * cost
            weight_sum += profile.weight
        return total / max(weight_sum, 1e-12)

    # ------------------------------------------------------------ the search
    def recommend(self, rows: Sequence[Sequence],
                  query_history: Sequence[Dict[str, Interval]],
                  passes: int = 3) -> SplittingPolicy:
        """Coordinate-descent search for the cheapest splitting policy."""
        stats = self.profile_data(rows)
        profiles = self.profile_queries(query_history, stats)
        if not profiles:
            raise DGFError("advisor needs at least one historical query")

        cell_counts = {name.lower(): 16 for name in self.index_columns}
        for _ in range(passes):
            improved = False
            for name in self.index_columns:
                key = name.lower()
                best_count = cell_counts[key]
                best_cost = self.expected_query_cost(cell_counts, stats,
                                                     profiles)
                for candidate in self.CANDIDATE_CELL_COUNTS:
                    cell_counts[key] = candidate
                    cost = self.expected_query_cost(cell_counts, stats,
                                                    profiles)
                    if cost < best_cost - 1e-15:
                        best_cost = cost
                        best_count = candidate
                cell_counts[key] = best_count
                improved = improved or best_count != cell_counts[key]
        return self._to_policy(cell_counts, stats)

    def _to_policy(self, cell_counts: Dict[str, int],
                   stats: Dict[str, DimensionStats]) -> SplittingPolicy:
        dims = []
        for name in self.index_columns:
            key = name.lower()
            dim = stats[key]
            interval = dim.span / cell_counts[key]
            if dim.dtype in (DataType.INT, DataType.BIGINT, DataType.DATE):
                interval = max(1.0, math.ceil(interval))
            origin = dim.low
            if dim.dtype is DataType.DATE:
                from repro.storage.schema import ordinal_to_date
                origin_value = ordinal_to_date(int(origin))
            elif dim.dtype in (DataType.INT, DataType.BIGINT):
                origin_value = int(origin)
            else:
                origin_value = origin
            dims.append(DimensionPolicy(name=dim.name, dtype=dim.dtype,
                                        origin=origin_value,
                                        interval=interval))
        return SplittingPolicy(dims)

    @staticmethod
    def properties_for(policy: SplittingPolicy) -> Dict[str, str]:
        """Render a policy as ``IDXPROPERTIES`` values (Listing 3 syntax)."""
        out: Dict[str, str] = {}
        for dim in policy.dimensions:
            if dim.dtype is DataType.DATE:
                out[dim.name] = f"{dim.origin}_{int(dim.interval)}d"
            else:
                interval = dim.interval
                interval_text = str(int(interval)) \
                    if interval == int(interval) else str(interval)
                out[dim.name] = f"{dim.origin}_{interval_text}"
        return out
