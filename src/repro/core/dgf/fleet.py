"""The multi-layout replica fleet: HAIL-style aggressive replication.

Classic replication stores R byte-identical copies of the reorganized
table; R-1 of them only matter when a datanode dies.  Following *Only
Aggressive Elephants are Fast Elephants* (HAIL), this module lets each
replica carry a **different physical organization** of the same logical
data — a different DGF grid granularity, a different slice placement
(hash vs. z-order), a different storage format (TextFile vs. RCFile) —
so the replication budget buys raw query speed instead of pure
insurance.

One fleet member ("layout") is a full reorganized copy of the table:

* its files live under ``{table.location}__dgf@{name}`` and are pinned
  (via the NameNode's :class:`~repro.hdfs.layout.LayoutDescriptor`
  registry) to the layout's datanodes, so killing those datanodes kills
  exactly that layout;
* its GFU entries and metadata live in the per-layout KV namespace
  ``dgf:{table}:{index}@{name}:...`` — an ordinary
  :class:`~repro.core.dgf.store.DgfStore` under the alias index name
  :func:`layout_index_name`, so the metadata cache and its
  invalidation prefixes cover layouts for free;
* a ``stats`` metadata record (GFU count, record count, byte size)
  feeds the planner's per-layout cost estimates
  (:meth:`~repro.mapreduce.cost.CostModel.layout_route_seconds`).

The planner (:meth:`DgfIndexHandler.plan_access
<repro.core.dgf.handler.DgfIndexHandler.plan_access>`) costs every
surviving layout per query and routes to the cheapest; the descriptor
registry itself lives in ``index.state["layouts"]`` so it survives in
the metastore alongside the index.

Consistency rules (what keeps differential runs byte-identical):

* appends (:func:`append_to_layouts`) rebuild every live layout from the
  same staged rows the primary ingested, in the same session call — a
  layout is either current or dropped, never stale;
* a layout whose datanodes are dead at append time is dropped rather
  than skipped, so a later datanode revival can never resurrect a copy
  missing rows;
* while a streaming delta has resident ops the router pins queries to
  the primary (the delta overlay is built against the primary grid), and
  compaction (:class:`~repro.delta.compact.Compactor`) drops the fleet
  before folding — the rewritten primary is the only copy the folded
  rows exist in.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional

from repro.core.dgf.builder import (PRECOMPUTE_PROPERTY, compile_precompute,
                                    compute_bounds, parse_precompute_spec,
                                    run_build_job)
from repro.core.dgf.placement import PLACEMENT_PROPERTY, resolve_placement
from repro.core.dgf.policy import SplittingPolicy
from repro.core.dgf.store import DgfStore
from repro.errors import DGFError
from repro.hdfs.layout import PRIMARY_LAYOUT, LayoutDescriptor
from repro.hive.indexhandler import BuildReport
from repro.hive.metastore import IndexInfo, TableInfo
from repro.mapreduce.cost import JobStats

#: key in ``index.state`` holding the fleet registry
#: (layout name -> LayoutDescriptor dict form).
LAYOUTS_STATE_KEY = "layouts"

#: DgfStore metadata record feeding the router's cost estimates.
STATS_META = "stats"


# ------------------------------------------------------------------- naming
def layout_index_name(index_name: str, layout_name: str) -> str:
    """KV namespace alias for one layout's DgfStore: ``idx@layout``."""
    return f"{index_name}@{layout_name}"


def layout_root(table: TableInfo, layout_name: str) -> str:
    """Directory holding one layout's reorganized files."""
    return f"{table.location}__dgf@{layout_name}"


def registered_layouts(index: IndexInfo) -> Dict[str, LayoutDescriptor]:
    """The index's fleet, by layout name (sorted; empty when no fleet)."""
    docs = index.state.get(LAYOUTS_STATE_KEY) or {}
    return {name: LayoutDescriptor.from_dict(docs[name])
            for name in sorted(docs)}


def layout_table_view(table: TableInfo,
                      descriptor: LayoutDescriptor) -> TableInfo:
    """A TableInfo whose data location and storage format are the
    layout's — what split filtering and the record reader see when the
    router picks a non-primary layout."""
    properties = dict(table.properties)
    properties["dgf_data_location"] = descriptor.root
    return dataclasses.replace(table, stored_as=descriptor.stored_as,
                               properties=properties)


def _layout_index(index: IndexInfo, layout_name: str,
                  properties: Dict[str, str]) -> IndexInfo:
    """The IndexInfo alias the build job runs under (controls the KV
    namespace and the reducer placement strategy)."""
    return IndexInfo(name=layout_index_name(index.name, layout_name),
                     table=index.table, columns=index.columns,
                     handler=index.handler, properties=properties,
                     built=True)


def _layout_properties(index: IndexInfo,
                       descriptor: LayoutDescriptor) -> Dict[str, str]:
    properties = dict(index.properties)
    properties.update(descriptor.grid_properties())
    properties[PLACEMENT_PROPERTY] = descriptor.placement
    return properties


def refresh_stats(session, table: TableInfo, store: DgfStore,
                  root: str) -> Dict[str, int]:
    """(Re)write one store's router statistics from its current entries."""
    gfus = records = 0
    for _cell, value in store.iter_entries():
        gfus += 1
        records += value.records
    stats = {"gfus": gfus, "records": records,
             "bytes": session.fs.total_size(root)
             if session.fs.exists(root) else 0}
    store.put_meta(STATS_META, stats)
    return stats


# ------------------------------------------------------------------- build
def add_replica_layout(session, table_name: str, index_name: str,
                       layout_name: str, *,
                       grid: Optional[Dict[str, str]] = None,
                       stored_as: Optional[str] = None,
                       placement: Optional[str] = None,
                       datanodes: Iterable[int] = ()) -> BuildReport:
    """Build one fleet member: a full reorganized replica of the table
    under ``grid``/``stored_as``/``placement`` overrides, its files
    pinned to ``datanodes`` (empty = unpinned, normal placement).

    The replica is built by the same reorganization MapReduce job as the
    primary (Sec. 4.2), reading the primary's reorganized files and
    writing the layout's own directory and KV namespace.  Re-adding an
    existing layout name rebuilds it in place.
    """
    table = session.metastore.get_table(table_name)
    index = session.metastore.get_index(table_name, index_name)
    if index.handler != "dgf":
        raise DGFError(f"index {index_name!r} uses handler "
                       f"{index.handler!r}; replica layouts require 'dgf'")
    if not index.built:
        raise DGFError(f"index {index_name!r} must be built before adding "
                       "replica layouts")
    if layout_name == PRIMARY_LAYOUT or "@" in layout_name \
            or not layout_name:
        raise DGFError(f"invalid layout name {layout_name!r} "
                       f"(reserved: {PRIMARY_LAYOUT!r}, no '@')")
    binding = session.delta_binding(table_name)
    if (binding is not None and binding.serves(index_name)
            and binding.resident_ops):
        raise DGFError(
            f"table {table_name!r} has {binding.resident_ops} resident "
            "streaming ops; compact the delta before adding layouts")

    properties = dict(index.properties)
    properties.update(grid or {})
    if placement is not None:
        properties[PLACEMENT_PROPERTY] = placement
    policy = SplittingPolicy.from_properties(table.schema, index.columns,
                                             properties)
    aggregates = compile_precompute(table, parse_precompute_spec(
        properties.get(PRECOMPUTE_PROPERTY, "")))

    root = layout_root(table, layout_name)
    descriptor = LayoutDescriptor.make(
        layout_name, root,
        stored_as=(stored_as or table.stored_as).upper(),
        datanodes=datanodes, grid=grid,
        placement=resolve_placement(properties))
    # Register before building so every file the job creates under the
    # root inherits the pin set (validates the datanode ids too).
    session.fs.register_layout(descriptor)
    if session.fs.exists(root):
        session.fs.delete(root, recursive=True)
    session.fs.mkdirs(root)

    alias = _layout_index(index, layout_name, properties)
    store = DgfStore(session.kvstore, table.name, alias.name)
    store.clear()
    session._invalidate_index_cache(table.name, alias.name)

    input_root = table.data_location
    kv_before = session.kvstore.snapshot_stats()
    stats = JobStats()
    num_slices = 0
    if session.fs.exists(input_root):
        stats, num_slices = run_build_job(
            session, table, alias, policy, aggregates, [input_root], root,
            generation=0, write_table=layout_table_view(table, descriptor))

    store.put_meta("policy", policy.to_dict())
    store.put_meta("bounds", compute_bounds(store, policy))
    store.put_meta("precompute", [agg.key for agg in aggregates])
    store.put_meta("generation", 0)
    route_stats = refresh_stats(session, table, store, root)
    # The router also costs the primary; make sure its stats exist/are
    # current whenever a fleet exists.
    refresh_stats(session, table,
                  DgfStore(session.kvstore, table.name, index.name),
                  table.data_location)

    registry = index.state.setdefault(LAYOUTS_STATE_KEY, {})
    registry[layout_name] = descriptor.to_dict()

    # A pyramid-enabled index summarizes every fleet member under its own
    # namespace (the router may answer inner regions from any layout).
    from repro.pyramid import PYRAMID_STATE_KEY, rebuild_pyramid
    if PYRAMID_STATE_KEY in index.state:
        rebuild_pyramid(session, index, layout_name=layout_name)

    kv_delta = session.kvstore.stats_delta(kv_before)
    build_time = (session.cost_model.job_seconds(stats)
                  + session.cost_model.kv_seconds(kv_delta))
    return BuildReport(
        index_name=alias.name, handler="dgf",
        index_size_bytes=store.size_bytes(),
        build_time=build_time, job_stats=stats,
        details={"layout": layout_name, "root": root,
                 "stored_as": descriptor.stored_as,
                 "datanodes": list(descriptor.datanodes),
                 "placement": descriptor.placement,
                 "gfus": route_stats["gfus"], "slices": num_slices,
                 "records": route_stats["records"],
                 "bytes": route_stats["bytes"]})


# -------------------------------------------------------------------- drop
def drop_layout(session, table: TableInfo, index: IndexInfo,
                layout_name: str) -> None:
    """Remove one fleet member: KV namespace, cache entries, layout
    registration, files, and the registry record."""
    registry = index.state.get(LAYOUTS_STATE_KEY) or {}
    doc = registry.pop(layout_name, None)
    if doc is None:
        return
    descriptor = LayoutDescriptor.from_dict(doc)
    alias = layout_index_name(index.name, layout_name)
    DgfStore(session.kvstore, table.name, alias).clear()
    from repro.pyramid import PYRAMID_STATE_KEY, drop_pyramid
    pyramid_state = index.state.get(PYRAMID_STATE_KEY)
    if pyramid_state is not None:
        drop_pyramid(session, table.name, index.name,
                     layout_name=layout_name)
        pyramid_state.get("layouts", {}).pop(layout_name, None)
    session._invalidate_index_cache(table.name, alias)
    session.fs.unregister_layout(descriptor.root)
    if session.fs.exists(descriptor.root):
        session.fs.delete(descriptor.root, recursive=True)
    if not registry:
        index.state.pop(LAYOUTS_STATE_KEY, None)


def drop_layouts(session, table: TableInfo, index: IndexInfo) -> None:
    """Remove the whole fleet (rebuilds, compaction, DROP INDEX/TABLE)."""
    for name in list(registered_layouts(index)):
        drop_layout(session, table, index, name)


# ------------------------------------------------------------------ append
def append_to_layouts(session, table: TableInfo, index: IndexInfo,
                      staging_paths: List[str]) -> List[str]:
    """Fold freshly appended rows into every live layout.

    Called by :func:`~repro.core.dgf.builder.append_with_dgf` after the
    primary ingested the staged rows and before the staging files are
    deleted.  Layouts whose pinned datanodes are dead are *dropped*
    (a revived datanode must never serve a copy missing these rows).
    Returns the layout names that were updated.
    """
    updated: List[str] = []
    for name, descriptor in registered_layouts(index).items():
        if not session.fs.layout_alive(name):
            drop_layout(session, table, index, name)
            continue
        properties = _layout_properties(index, descriptor)
        alias = _layout_index(index, name, properties)
        store = DgfStore(session.kvstore, table.name, alias.name)
        policy = store.load_policy()
        aggregates = compile_precompute(table, parse_precompute_spec(
            properties.get(PRECOMPUTE_PROPERTY, "")))
        generation = store.get_meta("generation") + 1
        run_build_job(session, table, alias, policy, aggregates,
                      staging_paths, descriptor.root, generation,
                      write_table=layout_table_view(table, descriptor))
        store.put_meta("bounds", compute_bounds(store, policy))
        store.put_meta("generation", generation)
        refresh_stats(session, table, store, descriptor.root)
        session._invalidate_index_cache(table.name, alias.name)
        # Layout grids differ from the primary's, so the touched-cell set
        # does not transfer; regenerate this layout's pyramid wholesale.
        from repro.pyramid import PYRAMID_STATE_KEY, rebuild_pyramid
        if PYRAMID_STATE_KEY in index.state:
            rebuild_pyramid(session, index, layout_name=name)
        updated.append(name)
    if updated:
        refresh_stats(session, table,
                      DgfStore(session.kvstore, table.name, index.name),
                      table.data_location)
    return updated
