"""Slice placement: the paper's second stated future-work problem.

"The optimal placement of Slices will also be our next step research
problem."  (Section 8.)

The default build partitions GFUKeys across reducers by hash, so slices
that a range query touches together are scattered across many output
files (and therefore many splits).  Z-order placement instead routes keys
to reducers by the Morton code of their cell-index vector: cells that are
close in the grid land in the same reducer's file, contiguously, which
shrinks the number of splits a query must touch and lengthens sequential
runs inside them.

Enable it per index with ``IDXPROPERTIES ('placement'='zorder')``; the
default remains ``'placement'='hash'``.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence, Tuple

from repro.core.dgf.policy import SplittingPolicy
from repro.errors import DGFError

PLACEMENT_PROPERTY = "placement"
PLACEMENTS = ("hash", "zorder")

#: bits of each dimension's cell index interleaved into the Morton code
_BITS_PER_DIMENSION = 16


def morton_code(cells: Sequence[int]) -> int:
    """Interleave the bits of a cell-index vector (Z-order curve).

    Negative indexes (possible when data sits below a dimension's origin)
    are clamped to zero: such cells are rare edge cells and perfect
    placement for them does not matter.

    >>> morton_code([0b11, 0b00])
    10
    >>> morton_code([1]) == 1
    True
    """
    code = 0
    ndims = len(cells)
    for bit in range(_BITS_PER_DIMENSION):
        for d, cell in enumerate(cells):
            cell = max(0, int(cell))
            if cell & (1 << bit):
                code |= 1 << (bit * ndims + d)
    return code


def zorder_partitioner(policy: SplittingPolicy,
                       num_reducers: int) -> Callable[[str], int]:
    """A build-job partitioner mapping GFUKeys to reducers by contiguous
    Z-order blocks, so grid-adjacent cells co-locate in one output file."""
    if num_reducers < 1:
        raise DGFError("num_reducers must be >= 1")
    # Contiguous blocks of the Z-curve map to the same reducer: drop the
    # low bits so each reducer owns runs of nearby cells rather than an
    # interleaved sprinkle.
    block_bits = max(2, _BITS_PER_DIMENSION * len(policy) // 8)

    def partition(gfu_key: str) -> int:
        cells = cells_of_key(policy, gfu_key)
        return (morton_code(cells) >> block_bits) % num_reducers

    return partition


def cells_of_key(policy: SplittingPolicy, gfu_key: str) -> Tuple[int, ...]:
    """Parse a GFUKey back into its cell-index vector."""
    labels = gfu_key.split("_")
    if len(labels) != len(policy):
        raise DGFError(
            f"GFUKey {gfu_key!r} does not match the {len(policy)}-d policy")
    return tuple(dim.cell_of(dim.parse_label(label))
                 for dim, label in zip(policy.dimensions, labels))


def resolve_placement(properties: Dict[str, str]) -> str:
    """Validate and return the index's placement strategy."""
    placement = properties.get(PLACEMENT_PROPERTY, "hash").lower()
    if placement not in PLACEMENTS:
        raise DGFError(
            f"unknown placement {placement!r}; choose one of {PLACEMENTS}")
    return placement
