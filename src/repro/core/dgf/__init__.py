"""DGFIndex: a distributed grid-file multidimensional range index.

The index divides the key space into grid-file units (GFUs) using a
user-specified :class:`~repro.core.dgf.policy.SplittingPolicy`, physically
reorganizes the table so each GFU's records form one contiguous *Slice* on
HDFS, and stores per-GFU key-value pairs (pre-computed additive aggregate
headers + slice locations) in the key-value store.

Public surface:

* :class:`~repro.core.dgf.policy.SplittingPolicy` /
  :class:`~repro.core.dgf.policy.DimensionPolicy` — grid geometry;
* :class:`~repro.core.dgf.handler.DgfIndexHandler` — the Hive index handler
  (register once per session; done automatically by ``HiveSession``);
* :func:`~repro.core.dgf.builder.append_with_dgf` — the no-rebuild append
  path for newly collected (time-extended) data;
* :class:`~repro.core.dgf.advisor.PolicyAdvisor` — chooses interval sizes
  from a data sample and a query history (the paper's future work).
"""

from repro.core.dgf.policy import DimensionPolicy, SplittingPolicy
from repro.core.dgf.gfu import GFUValue, SliceLocation
from repro.core.dgf.grid import GridSearchResult, search_grid
from repro.core.dgf.handler import DgfIndexHandler
from repro.core.dgf.builder import add_precompute, append_with_dgf
from repro.core.dgf.advisor import PolicyAdvisor

__all__ = [
    "add_precompute",
    "DimensionPolicy",
    "SplittingPolicy",
    "GFUValue",
    "SliceLocation",
    "GridSearchResult",
    "search_grid",
    "DgfIndexHandler",
    "append_with_dgf",
    "PolicyAdvisor",
]
