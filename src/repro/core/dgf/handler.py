"""DgfIndexHandler: DGFIndex's integration with the Hive planner.

Paper mapping: Sec. 4.3 ("Query in DGFIndex"), Algorithm 3 — the MDRQ
decomposition step.  Build and drop delegate to Sec. 4.2's construction
job (:mod:`repro.core.dgf.builder`); split filtering and slice-skipping
reads are Sec. 4.3's Algorithm 4 (:mod:`repro.core.dgf.inputformat`).

``plan_access`` extracts the per-dimension intervals from the predicate
(completing missing dimensions with the stored min/max standardized
values — the Sec. 4.4 partial-specification rule), decomposes the query
region into inner and boundary GFUs, and either

* **aggregation path** — answer the inner region from pre-computed headers
  and hand Hive only the boundary slices to scan with the exact predicate,
  or
* **slice path** — hand Hive the slice locations of *all* query-related
  GFUs so ``getSplits`` can filter splits and the record reader can skip
  unrelated slices inside each split.

Observability: when the owning session traces a query, the handler opens
``dgf.search_grid`` / ``dgf.inner_headers`` / ``dgf.boundary_slices``
spans under the session's ``plan`` span, so ``EXPLAIN ANALYZE`` shows the
decomposition (inner vs. boundary GFU counts) and the KV-store ops each
step issued.  See ``docs/observability.md``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core.dgf import builder, fleet
from repro.core.dgf.gfu import GFUValue, SliceLocation
from repro.core.dgf.grid import GridSearchResult, search_grid
from repro.core.dgf.inputformat import DgfSliceInputFormat, slices_to_splits
from repro.core.dgf.store import DgfStore
from repro.errors import DGFError
from repro.hive.aggregates import (AggFunction, AvgAgg, CountAgg, MaxAgg,
                                   MinAgg, SumAgg)
from repro.hive.indexhandler import (BuildReport, IndexAccessPlan,
                                     IndexHandler, QueryIndexContext)
from repro.hive.metastore import IndexInfo, TableInfo
from repro.mapreduce.cost import KVStats


def merge_function_for(key: str) -> AggFunction:
    """The additive function behind a canonical header key."""
    name = key.split("(", 1)[0]
    functions = {"sum": SumAgg, "count": CountAgg, "min": MinAgg,
                 "max": MaxAgg}
    if name not in functions:
        raise DGFError(f"no additive merge function for header {key!r}")
    return functions[name]()


def _avg_components(key: str) -> Optional[Tuple[str, str]]:
    """``avg(x)`` is derivable from ``sum(x)`` and ``count(*)``."""
    if not key.startswith("avg("):
        return None
    arg = key[4:-1]
    return f"sum({arg})", "count(*)"


def demote_suppressed_cells(inner_keys, boundary_keys, overlay,
                            agg_path: bool
                            ) -> Tuple[List[str], List[str], List[str]]:
    """Demote tombstone-suppressed inner cells to the boundary scan.

    An inner cell with tombstones can no longer be answered from its
    pre-computed header (the header still counts suppressed rows), so it
    moves to the boundary scan, where the exact predicate plus the
    overlay's tombstone filter produce the surviving rows.  Pending-only
    cells keep their headers — their delta rows arrive via synthetic
    splits and merge additively.  When *every* inner cell is suppressed
    the result degenerates to the pure slice path: no headers are folded
    and the plan reports ``inner_gfus == 0``.

    Returns ``(inner, boundary, demoted)`` — the demoted keys also feed
    the aggregation pyramid, which must not cover them with any node.
    """
    inner = list(inner_keys)
    boundary = list(boundary_keys)
    if overlay is None or not agg_path or not overlay.has_suppression:
        return inner, boundary, []
    demoted = [key for key in inner if key in overlay.suppress]
    if not demoted:
        return inner, boundary, []
    inner = [key for key in inner if key not in overlay.suppress]
    return inner, boundary + demoted, demoted


class DgfIndexHandler(IndexHandler):
    handler_name = "dgf"

    # ------------------------------------------------------------------ build
    def build(self, session, index: IndexInfo) -> BuildReport:
        return builder.build_dgf_index(session, index)

    def drop(self, session, index: IndexInfo) -> None:
        fleet.drop_layouts(session,
                           session.metastore.get_table(index.table), index)
        DgfStore(session.kvstore, index.table, index.name).clear()
        from repro.pyramid import PYRAMID_STATE_KEY, drop_pyramid
        drop_pyramid(session, index.table, index.name)
        index.state.pop(PYRAMID_STATE_KEY, None)

    # ------------------------------------------------------------------ query
    def plan_access(self, session, table: TableInfo, index: IndexInfo,
                    ctx: QueryIndexContext) -> Optional[IndexAccessPlan]:
        store = session.dgf_store(table.name, index.name)
        policy = store.load_policy()
        bounds = store.load_bounds()

        intervals = {}
        constrained = False
        for dim in policy.dimensions:
            interval = ctx.ranges.interval_for(dim.name)
            intervals[dim.name.lower()] = interval
            if interval is not None:
                constrained = True
        if not constrained:
            return None  # nothing to filter on; a full scan is as good

        precomputed: Set[str] = set(store.get_meta("precompute"))
        agg_path = self._aggregation_path_applies(ctx, policy, precomputed)
        tracer = session.tracer

        binding = session.delta_binding(table.name)
        if binding is not None and not binding.serves(index.name):
            binding = None

        # Advisor query-log capture: note the query's region in *primary*
        # grid coordinates before any routing, so the logged profile
        # describes the query, not whichever layout served it.  Sessions
        # without an attached log skip this entirely.
        if getattr(session, "query_log", None) is not None:
            from repro.service.querylog import region_spans
            session.note_query_region(
                table.name, index.name,
                region_spans(policy, bounds, intervals), agg_path)

        # Replica-fleet routing: when the index has layout replicas, cost
        # every surviving layout for this query's region and read from the
        # cheapest (HAIL).  The ``dgf.route`` span, the plan's ``layout``
        # field and the description suffix only exist when a fleet does,
        # so fleetless plans stay byte-identical to the pre-fleet engine.
        layout_name: Optional[str] = None
        read_table = table
        layouts = fleet.registered_layouts(index)
        if not layouts and ctx.force_layout is not None:
            # No fleet: forcing the primary is a harmless no-op (the
            # differential harnesses pin it on fleetless baselines), but
            # any other name must fail at plan time, not fall through to
            # a silent primary scan.
            from repro.hdfs.layout import PRIMARY_LAYOUT
            if ctx.force_layout != PRIMARY_LAYOUT:
                raise DGFError(
                    f"cannot force layout {ctx.force_layout!r}: index "
                    f"{index.name!r} has no replica fleet "
                    f"(live: [{PRIMARY_LAYOUT!r}])")
        if layouts:
            layout_name, store, policy, bounds, read_table = \
                self._route_layout(session, table, index, ctx, layouts,
                                   intervals, agg_path, binding,
                                   (store, policy, bounds))

        with tracer.span("dgf.search_grid") as search_span:
            search = search_grid(policy, intervals, bounds,
                                 force_all_boundary=not agg_path)
            search_span.add("inner_keys", len(search.inner_keys))
            search_span.add("boundary_keys", len(search.boundary_keys))

        # Merge-on-read: resident streaming deltas overlapping the query
        # region become tombstone filters + synthetic delta splits.  The
        # span (and the plan's delta fields) only appears when a candidate
        # cell is resident, so delta-free queries trace byte-identically
        # to the pre-streaming engine.
        overlay = None
        if binding is not None and binding.overlapping_cells(intervals):
            with tracer.span("delta:merge") as merge_span:
                overlay = binding.build_overlay(intervals)
                merge_span.add("delta.cells", overlay.num_cells)
                merge_span.add("delta.rows", overlay.num_rows)
                merge_span.add("delta.suppressed", overlay.num_suppressed)

        inner_keys, boundary_keys, suppressed = demote_suppressed_cells(
            search.inner_keys, search.boundary_keys, overlay, agg_path)

        # Aggregation pyramid (src/repro/pyramid/): when the chosen layout
        # has a built pyramid, answer the inner region from O(polylog)
        # node reads instead of one header probe per cell.  Strictly a
        # *physical* accelerator: the decomposition below is pure
        # geometry, the node fetches live in a strippable ``dgf.pyramid``
        # span, and the logical accounting (``kv.gets``, ``gfus``,
        # ``probes`` and the simulated index time) is replayed exactly as
        # the flat path records it.
        pyramid_values = None
        pyramid_stats: Dict[str, int] = {}
        if agg_path and ctx.use_pyramid and inner_keys:
            from repro import pyramid as pyr
            plevels = pyr.pyramid_levels(index, layout_name)
            if plevels:
                fanout = pyr.pyramid_fanout(index)
                cover = pyr.decompose_region(policy, search.inner_keys,
                                             suppressed, fanout, plevels)
                if cover is not None:
                    pstore = pyr.pyramid_store(session, table.name,
                                               index.name, layout_name)
                    with tracer.span("dgf.pyramid") as pyr_span:
                        pyramid_values, pyramid_stats = pyr.resolve_cover(
                            pstore, store, policy, cover, fanout)
                        pyr_span.add("pyramid.levels",
                                     pyramid_stats["levels"])
                        pyr_span.add("pyramid.nodes",
                                     pyramid_stats["nodes"])
                        pyr_span.add("pyramid.leaves",
                                     pyramid_stats["leaves"])

        header_states: Optional[Dict[str, Any]] = None
        slices: List[SliceLocation] = []
        inner_hits = boundary_hits = 0
        if agg_path:
            with tracer.span("dgf.inner_headers") as inner_span:
                if pyramid_values is not None:
                    # Replay the flat path's logical accounting: one get
                    # per inner cell, hit count equal to the present
                    # cells the nodes summarize.  The physical reads
                    # already happened inside the ``dgf.pyramid`` span.
                    session.kvstore.note_cached_gets(len(inner_keys))
                    inner_hits = pyramid_stats["inner_hits"]
                    header_states = self._merge_headers(ctx.agg_keys,
                                                        pyramid_values)
                else:
                    inner_values = store.multi_get(inner_keys)
                    inner_hits = len(inner_values)
                    header_states = self._merge_headers(
                        ctx.agg_keys, inner_values.values())
                inner_span.add("gfus", inner_hits)
                inner_span.add("headers_merged", len(header_states))
            with tracer.span("dgf.boundary_slices") as boundary_span:
                boundary_values = store.multi_get(boundary_keys)
                boundary_hits = len(boundary_values)
                for value in boundary_values.values():
                    slices.extend(value.locations)
                boundary_span.add("gfus", boundary_hits)
                boundary_span.add("slices", len(slices))
        else:
            with tracer.span("dgf.boundary_slices") as boundary_span:
                values = store.multi_get(search.all_keys)
                boundary_hits = len(values)
                for value in values.values():
                    slices.extend(value.locations)
                boundary_span.add("gfus", boundary_hits)
                boundary_span.add("slices", len(slices))

        with tracer.span("dgf.filter_splits") as split_span:
            splits, total_splits = slices_to_splits(session.fs, read_table,
                                                    slices)
            split_span.add("splits_kept", len(splits))
            split_span.add("splits_total", total_splits)
        # Logical index-access cost: one get per GFU probed by Algorithm 3
        # (present or not).  A deterministic function of the grid search —
        # not a physical-op delta — so the simulated time is identical
        # whether the metadata came from the KV store or the GFU cache,
        # and concurrent queries cannot pollute each other's accounting.
        # The overlay adds its own deterministic probe count (delta cell +
        # base watermark per candidate cell).
        probes = len(inner_keys) + len(boundary_keys)
        input_format = DgfSliceInputFormat(read_table)
        description = (f"dgf({index.name}) "
                       f"mode={'agg-headers' if agg_path else 'slices'} "
                       f"inner={inner_hits} boundary={boundary_hits} "
                       f"splits={len(splits)}/{total_splits}")
        if layout_name is not None:
            description += f" layout={layout_name}"
        delta_cells = delta_rows = 0
        if overlay is not None:
            from repro.delta.overlay import DeltaOverlayInputFormat
            probes += overlay.probes
            input_format = DeltaOverlayInputFormat(input_format, overlay)
            splits = splits + overlay.synthetic_splits()
            delta_cells = overlay.num_cells
            delta_rows = overlay.num_rows
            description += f" delta={overlay.num_cells}"
        kv_logical = KVStats(gets=probes)
        index_time = session.cost_model.kv_seconds(kv_logical)

        mode = "agg-headers" if agg_path else "slices"
        return IndexAccessPlan(
            description=description,
            splits=splits,
            input_format=input_format,
            index_time=index_time,
            header_states=header_states,
            handler=self.handler_name,
            mode=mode,
            inner_gfus=inner_hits,
            boundary_gfus=boundary_hits,
            total_splits=total_splits,
            index_kv_gets=probes,
            delta_cells=delta_cells,
            delta_rows=delta_rows,
            layout=layout_name,
            pyramid_levels=pyramid_stats.get("levels", 0),
            pyramid_nodes=pyramid_stats.get("nodes", 0),
            pyramid_leaves=pyramid_stats.get("leaves", 0))

    # ---------------------------------------------------------------- routing
    def _route_layout(self, session, table: TableInfo, index: IndexInfo,
                      ctx: QueryIndexContext, layouts, intervals,
                      agg_path: bool, binding, primary):
        """Pick the layout this query reads: the cheapest surviving
        member of the replica fleet (HAIL routing).

        Each candidate is costed by running the grid search against its
        own policy/bounds (pure CPU) and feeding the resulting probe and
        boundary-cell counts, scaled by the layout's stored per-GFU
        record/byte statistics, to
        :meth:`~repro.mapreduce.cost.CostModel.layout_route_seconds`.
        Ties break primary-first, then by name — fully deterministic.
        Queries with resident streaming deltas pin to the primary (the
        overlay is built against the primary grid); ``ctx.force_layout``
        overrides the choice for differential harnesses.

        Returns ``(name, store, policy, bounds, read_table)``.
        """
        from repro.hdfs.layout import PRIMARY_LAYOUT
        store, policy, bounds = primary
        with session.tracer.span("dgf.route") as span:
            candidates = {PRIMARY_LAYOUT: (store, policy, bounds, table)}
            dead = []
            for name, descriptor in layouts.items():
                if not session.fs.layout_alive(name):
                    dead.append(name)
                    continue
                lstore = session.dgf_store(
                    table.name, fleet.layout_index_name(index.name, name))
                candidates[name] = (
                    lstore, lstore.load_policy(), lstore.load_bounds(),
                    fleet.layout_table_view(table, descriptor))
            span.set("candidates", ",".join(sorted(candidates)))
            if dead:
                span.set("dead", ",".join(sorted(dead)))

            resident = binding is not None and binding.resident_cells
            forced = ctx.force_layout
            if forced is not None:
                if forced not in candidates:
                    raise DGFError(
                        f"cannot force layout {forced!r}: not a live "
                        f"layout of {index.name!r} "
                        f"(live: {sorted(candidates)}, dead: {sorted(dead)})")
                if resident and forced != PRIMARY_LAYOUT:
                    raise DGFError(
                        f"cannot force layout {forced!r}: resident "
                        "streaming deltas pin queries to the primary")
                span.set("forced", forced)
                chosen = forced
            elif resident:
                # The delta overlay merges against the primary grid only.
                span.set("pinned", "delta")
                chosen = PRIMARY_LAYOUT
            else:
                scores = {}
                for name in sorted(candidates):
                    cstore, cpolicy, cbounds, _view = candidates[name]
                    search = search_grid(cpolicy, intervals, cbounds,
                                         force_all_boundary=not agg_path)
                    probes = (len(search.inner_keys)
                              + len(search.boundary_keys))
                    # Pyramid-aware routing: a layout with a built
                    # pyramid answers its inner region in O(polylog)
                    # probes, so fine grids are costed honestly.  Only
                    # active once a pyramid exists — fleet scores (and
                    # the ``score.*`` span attributes) are unchanged
                    # until then.
                    if agg_path and search.inner_keys:
                        from repro import pyramid as pyr
                        plevels = pyr.pyramid_levels(index, name)
                        if plevels:
                            cover = pyr.decompose_region(
                                cpolicy, search.inner_keys, (),
                                pyr.pyramid_fanout(index), plevels)
                            if cover is not None:
                                probes = (len(search.boundary_keys)
                                          + cover.probes)
                    stats = cstore.get_meta(fleet.STATS_META)
                    per_gfu = max(1, stats["gfus"])
                    scan_cells = len(search.boundary_keys)
                    scores[name] = session.cost_model.layout_route_seconds(
                        probes,
                        scan_cells * stats["records"] / per_gfu,
                        scan_cells * stats["bytes"] / per_gfu)
                    span.set(f"score.{name}", round(scores[name], 6))
                chosen = min(scores, key=lambda n: (scores[n],
                                                    n != PRIMARY_LAYOUT, n))
            span.set("chosen", chosen)
        cstore, cpolicy, cbounds, view = candidates[chosen]
        return chosen, cstore, cpolicy, cbounds, view

    # ----------------------------------------------------------------- pieces
    def _aggregation_path_applies(self, ctx: QueryIndexContext, policy,
                                  precomputed: Set[str]) -> bool:
        """Headers may replace inner-region scans only when (a) the query is
        a plain aggregation whose aggregates are all pre-computed (or
        derivable), and (b) the predicate is *exactly* a conjunction of
        ranges over index dimensions — otherwise inner cells could contain
        non-matching rows."""
        if not (ctx.is_plain_aggregation and ctx.use_precompute
                and ctx.agg_keys):
            return False
        if not ctx.ranges.exact:
            return False
        dims = {d.name.lower() for d in policy.dimensions}
        if not set(ctx.ranges.intervals) <= dims:
            return False
        for key in ctx.agg_keys:
            if key in precomputed:
                continue
            avg = _avg_components(key)
            if avg is not None and all(c in precomputed for c in avg):
                continue
            return False
        return True

    def _merge_headers(self, agg_keys: List[str],
                       values) -> Dict[str, Any]:
        """Fold the inner GFUs' header states per requested aggregate."""
        values = list(values)
        merged: Dict[str, Any] = {}
        for key in agg_keys:
            avg = _avg_components(key)
            if avg is None:
                function = merge_function_for(key)
                state = None
                for value in values:
                    part = value.header.get(key)
                    if part is None:
                        continue
                    state = part if state is None \
                        else function.merge(state, part)
                if state is not None:
                    merged[key] = state
            else:
                sum_key, count_key = avg
                total = None
                count = 0
                for value in values:
                    part_sum = value.header.get(sum_key)
                    if part_sum is not None:
                        total = part_sum if total is None \
                            else total + part_sum
                    count += value.header.get(count_key, 0)
                if count:
                    # AvgAgg state is the additive (sum, count) pair.
                    merged[key] = (total if total is not None else 0.0,
                                   count)
        return merged
