"""Splitting policies: the grid geometry of a DGFIndex.

A policy gives every index dimension an *origin* and an *interval size*;
dimension values are "standardized" (paper's term) to the lower coordinate
of their grid cell.  Cells are left-closed/right-open, matching the paper's
``[1, 4)`` example.

Coordinates are handled in an internal numeric space: numeric columns map
to themselves, DATE columns map to proleptic ordinal days, so "1 day"
intervals are exact integer arithmetic.  Discrete dimensions (INT, BIGINT,
DATE) know that a cell ``[lo, hi)`` contains only the integers
``lo .. hi-1``, which makes equality predicates (e.g. ``time =
'2012-12-30'`` with 1-day cells, the paper's partial-specified query) cover
whole cells and thus benefit from pre-computed headers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import DGFError
from repro.hiveql.predicates import Interval
from repro.storage.schema import (DataType, Schema, date_to_ordinal,
                                  ordinal_to_date)

#: guard against float rounding when computing cell indexes
_EPSILON = 1e-9

#: GFUKey segment separator (the paper's ``7_13`` style keys)
KEY_SEPARATOR = "_"


@dataclass(frozen=True)
class DimensionPolicy:
    """Origin + interval size of one index dimension."""

    name: str
    dtype: DataType
    origin: Any          # raw domain value (number, or ISO date string)
    interval: float      # cell width (days for DATE)

    def __post_init__(self):
        if self.interval <= 0:
            raise DGFError(f"dimension {self.name!r}: interval must be > 0")
        if self.dtype is DataType.DATE:
            try:
                date_to_ordinal(self.origin)
            except (ValueError, TypeError) as error:
                raise DGFError(
                    f"dimension {self.name!r}: origin must be an ISO date, "
                    f"got {self.origin!r}") from error
        elif not isinstance(self.origin, (int, float)):
            raise DGFError(
                f"dimension {self.name!r}: numeric origin required, "
                f"got {self.origin!r}")
        if self.dtype in (DataType.INT, DataType.BIGINT, DataType.DATE) \
                and self.interval != int(self.interval):
            raise DGFError(
                f"dimension {self.name!r}: discrete dimensions need an "
                f"integer interval, got {self.interval}")

    # ------------------------------------------------------- coordinate space
    @property
    def is_discrete(self) -> bool:
        return self.dtype in (DataType.INT, DataType.BIGINT, DataType.DATE)

    def to_coord(self, raw: Any) -> float:
        if self.dtype is DataType.DATE:
            return float(date_to_ordinal(raw))
        return float(raw)

    def from_coord(self, coord: float) -> Any:
        if self.dtype is DataType.DATE:
            return ordinal_to_date(int(round(coord)))
        if self.dtype in (DataType.INT, DataType.BIGINT):
            return int(round(coord))
        return coord

    @property
    def _origin_coord(self) -> float:
        return self.to_coord(self.origin)

    # ---------------------------------------------------------------- cells
    def cell_of(self, raw: Any) -> int:
        """Grid cell index containing ``raw``."""
        offset = (self.to_coord(raw) - self._origin_coord) / self.interval
        return int(math.floor(offset + _EPSILON))

    def cell_start(self, k: int) -> Any:
        return self.from_coord(self._origin_coord + k * self.interval)

    def cell_end(self, k: int) -> Any:
        return self.from_coord(self._origin_coord + (k + 1) * self.interval)

    def standardize(self, raw: Any) -> Any:
        """The paper's "standard" method: the cell's lower coordinate."""
        return self.cell_start(self.cell_of(raw))

    def label(self, k: int) -> str:
        """GFUKey segment for cell ``k``."""
        start = self.cell_start(k)
        if isinstance(start, float) and start == int(start):
            return str(int(start))
        return str(start)

    def parse_label(self, label: str) -> Any:
        """Inverse of :meth:`label`: the raw cell-start value."""
        if self.dtype is DataType.DATE:
            return label
        value = float(label)
        return int(value) if value == int(value) else value

    # ------------------------------------------------------------ intervals
    def cell_span(self, interval: Optional[Interval],
                  k_min: int, k_max: int) -> Optional[Tuple[int, int]]:
        """Inclusive cell-index range overlapping ``interval``, clamped to
        the observed data bounds ``[k_min, k_max]``; None if empty."""
        lo_k, hi_k = k_min, k_max
        if interval is not None:
            if interval.is_empty:
                return None
            if interval.low is not None:
                lo_k = max(lo_k, self.cell_of(interval.low))
            if interval.high is not None:
                hi_k = min(hi_k, self.cell_of(interval.high))
                # an exclusive high that sits exactly on a cell boundary
                # does not reach into that cell
                if (not interval.high_inclusive
                        and self._on_boundary(interval.high)):
                    hi_k = min(hi_k, self.cell_of(interval.high) - 1)
        if lo_k > hi_k:
            return None
        return lo_k, hi_k

    def _on_boundary(self, raw: Any) -> bool:
        offset = (self.to_coord(raw) - self._origin_coord) / self.interval
        return abs(offset - round(offset)) < _EPSILON

    def covers_cell(self, interval: Optional[Interval], k: int) -> bool:
        """Is cell ``k`` entirely inside ``interval``?"""
        if interval is None:
            return True  # unconstrained dimension covers everything
        start = self.cell_start(k)
        end = self.cell_end(k)
        if self.is_discrete:
            last = self.from_coord(self.to_coord(end) - 1)
            return interval.contains(start) and interval.contains(last)
        return interval.covers_range(start, end)

    def overlaps_cell(self, interval: Optional[Interval], k: int) -> bool:
        if interval is None:
            return True
        return interval.overlaps_range(self.cell_start(k), self.cell_end(k))

    # -------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "dtype": self.dtype.value,
                "origin": self.origin, "interval": self.interval}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DimensionPolicy":
        return cls(name=data["name"], dtype=DataType(data["dtype"]),
                   origin=data["origin"], interval=data["interval"])

    @classmethod
    def from_spec(cls, name: str, dtype: DataType,
                  spec: str) -> "DimensionPolicy":
        """Parse the ``IDXPROPERTIES`` value, e.g. ``'1_3'`` (origin 1,
        interval 3) or ``'2012-12-01_7d'`` (weekly cells from Dec 1)."""
        if KEY_SEPARATOR not in spec:
            raise DGFError(
                f"dimension {name!r}: spec {spec!r} must be "
                f"'<origin>{KEY_SEPARATOR}<interval>'")
        origin_text, interval_text = spec.rsplit(KEY_SEPARATOR, 1)
        if dtype is DataType.DATE:
            if not interval_text.endswith("d"):
                raise DGFError(
                    f"dimension {name!r}: date intervals use day units, "
                    f"e.g. '1d'; got {interval_text!r}")
            return cls(name=name, dtype=dtype, origin=origin_text,
                       interval=float(interval_text[:-1]))
        origin = float(origin_text)
        if origin == int(origin):
            origin = int(origin)
        return cls(name=name, dtype=dtype, origin=origin,
                   interval=float(interval_text))


class SplittingPolicy:
    """The full grid: one :class:`DimensionPolicy` per index dimension,
    in index-column order."""

    def __init__(self, dimensions: Sequence[DimensionPolicy]):
        if not dimensions:
            raise DGFError("a splitting policy needs at least one dimension")
        names = [d.name.lower() for d in dimensions]
        if len(set(names)) != len(names):
            raise DGFError(f"duplicate dimensions in policy: {names}")
        self.dimensions: Tuple[DimensionPolicy, ...] = tuple(dimensions)

    def __len__(self) -> int:
        return len(self.dimensions)

    def __iter__(self):
        return iter(self.dimensions)

    def dimension(self, name: str) -> DimensionPolicy:
        for dim in self.dimensions:
            if dim.name.lower() == name.lower():
                return dim
        raise DGFError(f"policy has no dimension {name!r}")

    @property
    def names(self) -> List[str]:
        return [d.name for d in self.dimensions]

    # ------------------------------------------------------------------ keys
    def key_of_cells(self, cells: Sequence[int]) -> str:
        """GFUKey for a cell-index vector (the lower-left coordinate)."""
        return KEY_SEPARATOR.join(
            dim.label(k) for dim, k in zip(self.dimensions, cells))

    def key_of_row(self, values: Sequence[Any]) -> str:
        """GFUKey of the row whose index-dimension values are ``values``."""
        return self.key_of_cells(
            [dim.cell_of(v) for dim, v in zip(self.dimensions, values)])

    def cells_of_row(self, values: Sequence[Any]) -> Tuple[int, ...]:
        return tuple(dim.cell_of(v)
                     for dim, v in zip(self.dimensions, values))

    # -------------------------------------------------------- serialization
    @classmethod
    def from_properties(cls, schema: Schema, columns: Sequence[str],
                        properties: Dict[str, str]) -> "SplittingPolicy":
        """Build the policy from ``CREATE INDEX`` properties (Listing 3)."""
        lowered = {k.lower(): v for k, v in properties.items()}
        dims = []
        for column in columns:
            spec = lowered.get(column.lower())
            if spec is None:
                raise DGFError(
                    f"IDXPROPERTIES is missing the splitting spec for "
                    f"dimension {column!r}")
            dims.append(DimensionPolicy.from_spec(
                column, schema.dtype_of(column), spec))
        return cls(dims)

    def to_dict(self) -> Dict[str, Any]:
        return {"dimensions": [d.to_dict() for d in self.dimensions]}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SplittingPolicy":
        return cls([DimensionPolicy.from_dict(d)
                    for d in data["dimensions"]])
