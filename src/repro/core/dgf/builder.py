"""DGFIndex construction (Sec. 4.2, Algorithms 1-2) and no-rebuild appends.

Paper mapping: Sec. 4.2 ("Construct DGFIndex") — Algorithm 1 is the map
side (standardize each record's index dimensions into a GFUKey, emit
``<GFUKey, record>``), Algorithm 2 the reduce side (write each key's
records contiguously as a *Slice* into the reorganized table files,
compute the pre-aggregation header, put the ``<GFUKey, GFUValue>`` pair
into the key-value store).  Afterwards the table's data location points
at the reorganized directory, so every later query — indexed or not —
reads the reorganized layout.

Appends (:func:`append_with_dgf`) run the same job over only the new rows,
writing *new* files; existing slices are never rewritten — the paper's
argument (Sec. 4.2, "update DGFIndex") for why DGFIndex does not hurt
write throughput.  The build runs under the session's tracer like any
other MapReduce job, so ``mr_job`` spans and HDFS/KV counters cover index
construction too; see ``docs/observability.md``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.dgf.gfu import GFUValue, SliceLocation
from repro.core.dgf.policy import SplittingPolicy
from repro.core.dgf.store import DgfStore
from repro.errors import DGFError
from repro.hive import formats
from repro.hive.aggregates import CompiledAggregate
from repro.hive.indexhandler import BuildReport
from repro.hive.metastore import IndexInfo, TableInfo
from repro.hiveql import ast, parse_expression
from repro.hiveql.evaluator import ColumnResolver
from repro.mapreduce.cost import JobStats, TimeBreakdown
from repro.mapreduce.job import Job
from repro.storage.rcfile import RCFileWriter

PRECOMPUTE_PROPERTY = "precompute"


def parse_precompute_spec(spec: str) -> List[ast.FuncCall]:
    """Parse ``'sum(powerConsumed),count(*)'`` into aggregate calls,
    splitting only on top-level commas."""
    calls: List[ast.FuncCall] = []
    depth = 0
    current = []
    for ch in spec + ",":
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            text = "".join(current).strip()
            if text:
                expr = parse_expression(text)
                if not ast.is_aggregate_call(expr):
                    raise DGFError(
                        f"precompute entry {text!r} is not an aggregate")
                calls.append(expr)
            current = []
        else:
            current.append(ch)
    return calls


def compile_precompute(table: TableInfo,
                       calls: Sequence[ast.FuncCall]
                       ) -> List[CompiledAggregate]:
    resolver = ColumnResolver.for_schema(table.schema, table.name)
    compiled = []
    for call in calls:
        agg = CompiledAggregate.compile(call, resolver)
        if not agg.function.additive:
            raise DGFError(
                f"precompute function {agg.key!r} is not additive; DGF "
                "headers require additive functions (paper Section 4.1)")
        compiled.append(agg)
    return compiled


class _SliceWriter:
    """Wraps a row writer, tracking slice boundaries.

    For RCFile the writer is flushed at each boundary so that slices align
    with row groups; for TextFile/SequenceFile positions are exact anyway.
    """

    def __init__(self, writer, path: str):
        self._writer = writer
        self.path = path

    def boundary(self) -> int:
        if isinstance(self._writer, RCFileWriter):
            self._writer.flush()
        return self._writer.pos

    def write_row(self, row) -> None:
        self._writer.write_row(row)

    def close(self) -> None:
        self._writer.close()


def reorganized_location(table: TableInfo) -> str:
    return f"{table.location}__dgf"


def run_build_job(session, table: TableInfo, index: IndexInfo,
                  policy: SplittingPolicy,
                  aggregates: List[CompiledAggregate],
                  input_paths: List[str], output_dir: str,
                  generation: int,
                  compacted_seq: int = 0,
                  write_table: Optional[TableInfo] = None
                  ) -> Tuple[JobStats, int]:
    """The reorganization MapReduce job.  Returns (job stats, #slices).

    ``compacted_seq`` is the streaming compactor's fold watermark: it is
    written on the reducer's GFUValue *in the same put* as the merged
    header and slice locations, so a concurrent reader can never observe
    folded rows without the watermark that suppresses their delta ops.

    ``write_table`` lets the reducers write a different storage format
    than the input (replica-fleet layouts, :mod:`repro.core.dgf.fleet`);
    it defaults to ``table`` — read and write the table's own format.
    """
    store = DgfStore(session.kvstore, table.name, index.name)
    out_table = write_table if write_table is not None else table
    dim_positions = [table.schema.index_of(name) for name in policy.names]
    merge_fns = {agg.key: agg.function for agg in aggregates}

    def mapper(offset, row, ctx):
        values = [row[p] for p in dim_positions]
        ctx.emit(policy.key_of_row(values), row)

    def reduce_setup(ctx):
        path = f"{output_dir}/g{generation:03d}-{ctx.task_id:05d}_0"
        ctx.state["writer"] = _SliceWriter(
            formats.open_row_writer(session.fs, path, out_table,
                                    overwrite=True), path)

    def reducer(gfu_key, rows, ctx):
        writer: _SliceWriter = ctx.state["writer"]
        start = writer.boundary()
        header: Dict[str, Any] = {}
        states = {agg.key: agg.function.initial() for agg in aggregates}
        for row in rows:
            writer.write_row(row)
            for agg in aggregates:
                states[agg.key] = agg.accumulate_row(states[agg.key], row)
        end = writer.boundary()
        header.update(states)
        value = GFUValue(header=header,
                         locations=[SliceLocation(writer.path, start, end)],
                         records=len(rows),
                         compacted_seq=compacted_seq)
        store.merge_value(gfu_key, value, merge_fns)
        # Task-local counter (merged at the reduce barrier): safe under the
        # parallel engine, unlike a shared closure cell.
        ctx.counter("dgf", "slices_written")

    def reduce_cleanup(ctx):
        ctx.state["writer"].close()

    from repro.core.dgf.placement import (resolve_placement,
                                          zorder_partitioner)
    num_reducers = min(session.cluster.total_reduce_slots, 8)
    partitioner = None
    if resolve_placement(index.properties) == "zorder":
        partitioner = zorder_partitioner(policy, num_reducers)
    job = Job(name=f"build-dgf-{index.name}-g{generation}",
              input_format=formats.input_format_for(table),
              input_paths=input_paths,
              mapper=mapper, reducer=reducer,
              num_reducers=num_reducers,
              partitioner=partitioner,
              reduce_setup=reduce_setup, reduce_cleanup=reduce_cleanup)
    result = session.engine.run(job)
    return result.stats, result.counters.get("dgf", "slices_written")


def compute_bounds(store: DgfStore,
                   policy: SplittingPolicy) -> Dict[str, Tuple[int, int]]:
    """Per-dimension (min, max) cell indexes over all stored GFUs — the
    paper's "minimum and maximum standardized values in every index
    dimension" used to complete partial-specified predicates."""
    bounds: Dict[str, Tuple[int, int]] = {}
    for cell_key, _value in store.iter_entries():
        labels = _split_key(cell_key, policy)
        for dim, label in zip(policy.dimensions, labels):
            k = dim.cell_of(dim.parse_label(label))
            name = dim.name.lower()
            if name not in bounds:
                bounds[name] = (k, k)
            else:
                lo, hi = bounds[name]
                bounds[name] = (min(lo, k), max(hi, k))
    return bounds


def _split_key(cell_key: str, policy: SplittingPolicy) -> List[str]:
    """Split a GFUKey into per-dimension labels.  Date labels contain no
    separator and numeric labels never do, so a plain split works; the
    count is validated against the policy."""
    labels = cell_key.split("_")
    if len(labels) != len(policy):
        raise DGFError(
            f"GFUKey {cell_key!r} has {len(labels)} segments, policy has "
            f"{len(policy)} dimensions")
    return labels


def build_dgf_index(session, index: IndexInfo) -> BuildReport:
    """Full build: reorganize the table, populate the store, record meta."""
    table = session.metastore.get_table(index.table)
    # A rebuild invalidates every replica layout (they were derived from
    # the previous reorganization); drop the fleet rather than serve
    # stale copies.  Re-add layouts after the rebuild.
    from repro.core.dgf import fleet
    fleet.drop_layouts(session, table, index)
    policy = SplittingPolicy.from_properties(table.schema, index.columns,
                                             index.properties)
    calls = parse_precompute_spec(
        index.properties.get(PRECOMPUTE_PROPERTY, ""))
    aggregates = compile_precompute(table, calls)

    store = DgfStore(session.kvstore, table.name, index.name)
    store.clear()
    output_dir = reorganized_location(table)
    if output_dir == table.data_location:
        # Rebuild over an already-reorganized table: write to the alternate
        # directory so the job never reads and writes the same files.
        output_dir = f"{table.location}__dgf_alt"
    if session.fs.exists(output_dir):
        session.fs.delete(output_dir, recursive=True)
    session.fs.mkdirs(output_dir)

    input_root = table.data_location
    input_paths = [input_root] if session.fs.exists(input_root) else []
    kv_before = session.kvstore.snapshot_stats()
    stats = JobStats()
    num_slices = 0
    if input_paths:
        stats, num_slices = run_build_job(
            session, table, index, policy, aggregates, input_paths,
            output_dir, generation=0)

    bounds = compute_bounds(store, policy)
    store.put_meta("policy", policy.to_dict())
    store.put_meta("bounds", bounds)
    store.put_meta("precompute", [agg.key for agg in aggregates])
    store.put_meta("generation", 0)

    # The reorganized directory replaces the original data (the paper moves
    # the data; future appends go through append_with_dgf).
    old_location = table.data_location
    table.properties["dgf_data_location"] = output_dir
    if old_location != output_dir and session.fs.exists(old_location):
        for path in session.fs.list_files(old_location):
            session.fs.delete(path)

    # A rebuilt base invalidates every pyramid node derived from the old
    # headers; regenerate from scratch (the fleet — and its per-layout
    # pyramids — was dropped above, so only the primary remains).
    from repro.pyramid import PYRAMID_STATE_KEY, rebuild_pyramid
    if PYRAMID_STATE_KEY in index.state:
        index.state[PYRAMID_STATE_KEY]["layouts"] = {}
        rebuild_pyramid(session, index)

    kv_delta = session.kvstore.stats_delta(kv_before)
    build_time = (session.cost_model.job_seconds(stats)
                  + session.cost_model.kv_seconds(kv_delta))
    index.built = True
    return BuildReport(
        index_name=index.name, handler="dgf",
        index_size_bytes=store.size_bytes(),
        build_time=build_time, job_stats=stats,
        details={"gfus": store.count_entries(), "slices": num_slices,
                 "reorganized_location": output_dir,
                 "precompute": [agg.key for agg in aggregates]})


def add_precompute(session, table_name: str, index_name: str,
                   spec: str) -> BuildReport:
    """Dynamically add pre-computed UDFs to a deployed DGFIndex.

    The paper (Section 4.1): "Once a DGFIndex is deployed, users can still
    add more UDFs dynamically to DGFIndex on demand."  One pass over the
    reorganized table computes the new additive states per slice and folds
    them into the existing GFU headers — no reorganization, no change to
    the already pre-computed functions.
    """
    table = session.metastore.get_table(table_name)
    index = session.metastore.get_index(table_name, index_name)
    if not index.built:
        raise DGFError(f"index {index_name!r} must be built before adding "
                       "pre-computed functions")
    store = DgfStore(session.kvstore, table.name, index.name)
    existing = list(store.get_meta("precompute"))
    calls = parse_precompute_spec(spec)
    aggregates = [agg for agg in compile_precompute(table, calls)
                  if agg.key not in existing]
    if not aggregates:
        return BuildReport(index_name=index.name, handler="dgf",
                           index_size_bytes=store.size_bytes(),
                           build_time=TimeBreakdown(),
                           details={"added": []})

    from repro.storage.textfile import TextFileReader
    from repro.storage.rcfile import RCFileReader
    from repro.storage.sequencefile import SequenceFileReader
    from repro.core.dgf.inputformat import DgfSliceInputFormat
    from repro.mapreduce.splits import FileSplit

    reader_format = DgfSliceInputFormat(table)
    kv_before = session.kvstore.snapshot_stats()
    io_before = session.fs.io.snapshot()
    stats = JobStats(map_tasks=1)
    for cell_key, value in list(store.iter_entries()):
        states = {agg.key: agg.function.initial() for agg in aggregates}
        for location in value.locations:
            split = FileSplit(path=location.file, start=0,
                              length=session.fs.file_length(location.file))
            split.meta["slices"] = [(location.start, location.end)]
            for _offset, row in reader_format.read_split(session.fs,
                                                         split):
                stats.map_input_records += 1
                for agg in aggregates:
                    states[agg.key] = agg.accumulate_row(states[agg.key],
                                                         row)
        value.header.update(states)
        store.put_value(cell_key, value)
    stats.map_input_bytes = session.fs.io.delta(io_before).bytes_read
    store.put_meta("precompute",
                   existing + [agg.key for agg in aggregates])
    # The new per-GFU states must appear in every summarized ancestor too;
    # only the primary headers changed, so layout pyramids stay as-is.
    from repro.pyramid import PYRAMID_STATE_KEY, rebuild_pyramid
    if PYRAMID_STATE_KEY in index.state:
        rebuild_pyramid(session, index)

    kv_delta = session.kvstore.stats_delta(kv_before)
    build_time = (session.cost_model.job_seconds(stats)
                  + session.cost_model.kv_seconds(kv_delta))
    index.properties[PRECOMPUTE_PROPERTY] = ",".join(
        existing + [agg.key for agg in aggregates])
    return BuildReport(index_name=index.name, handler="dgf",
                       index_size_bytes=store.size_bytes(),
                       build_time=build_time, job_stats=stats,
                       details={"added": [agg.key for agg in aggregates]})


def append_with_dgf(session, table_name: str, index_name: str,
                    rows: Iterable[Sequence[Any]]) -> BuildReport:
    """Load new (verified) data through the DGF reorganization path.

    New rows land in *new* files; existing slices and their GFU entries are
    untouched (entries gaining data get extra slice locations and merged
    headers).  This reproduces the paper's claim that appends never force
    an index rebuild.
    """
    table = session.metastore.get_table(table_name)
    index = session.metastore.get_index(table_name, index_name)
    if not index.built:
        raise DGFError(f"index {index_name!r} must be built before appends")
    store = DgfStore(session.kvstore, table.name, index.name)
    policy = store.load_policy()
    calls = parse_precompute_spec(
        index.properties.get(PRECOMPUTE_PROPERTY, ""))
    aggregates = compile_precompute(table, calls)
    generation = store.get_meta("generation") + 1

    # Stage the new data in temporary files (the paper's temporary files
    # for newly collected, not-yet-verified meter data).
    staging = f"/tmp/dgf-append/{table.name.lower()}/g{generation:03d}"
    if session.fs.exists(staging):
        session.fs.delete(staging, recursive=True)
    session.fs.mkdirs(staging)
    dim_positions = [table.schema.index_of(name) for name in policy.names]
    touched: set = set()
    with formats.open_row_writer(session.fs, f"{staging}/data_0",
                                 table) as writer:
        count = 0
        for row in rows:
            table.schema.validate_row(row)
            writer.write_row(row)
            touched.add(policy.key_of_row([row[p] for p in dim_positions]))
            count += 1

    if count == 0:
        # Nothing to reorganize: no job, no new files, no generation bump.
        session.fs.delete(staging, recursive=True)
        return BuildReport(
            index_name=index.name, handler="dgf",
            index_size_bytes=store.size_bytes(),
            build_time=session.cost_model.job_seconds(JobStats()),
            details={"appended_rows": 0, "new_slices": 0,
                     "generation": generation - 1})

    kv_before = session.kvstore.snapshot_stats()
    output_dir = table.properties["dgf_data_location"]
    stats, num_slices = run_build_job(
        session, table, index, policy, aggregates, [staging], output_dir,
        generation=generation)
    store.put_meta("bounds", compute_bounds(store, policy))
    store.put_meta("generation", generation)
    # Incremental pyramid maintenance: appends touch few cells (new data
    # arrives along the time dimension), so only the touched cells'
    # ancestor chains are recomputed — no full pyramid rebuild.
    from repro.pyramid import PYRAMID_STATE_KEY, refresh_cells
    if PYRAMID_STATE_KEY in index.state:
        refresh_cells(session, index, sorted(touched))
    # Replica layouts ingest the same staged rows before staging is
    # deleted — a fleet member is either current or dropped, never stale.
    from repro.core.dgf import fleet
    fleet.append_to_layouts(session, table, index, [staging])
    session.fs.delete(staging, recursive=True)

    kv_delta = session.kvstore.stats_delta(kv_before)
    build_time = (session.cost_model.job_seconds(stats)
                  + session.cost_model.kv_seconds(kv_delta))
    return BuildReport(
        index_name=index.name, handler="dgf",
        index_size_bytes=store.size_bytes(), build_time=build_time,
        job_stats=stats,
        details={"appended_rows": count, "new_slices": num_slices,
                 "generation": generation})
