"""Grid search: decompose a query region into inner and boundary GFUs.

This is the heart of Algorithm 3.  Overlap and coverage are separable per
dimension, so the query-related cells are the Cartesian product of each
dimension's overlapping cell range, and a cell is *inner* exactly when it
is covered in every dimension.

Dimensions missing from the predicate use the min/max standardized values
recorded at construction time (the paper's partial-specified query
handling), which arrive here as the ``bounds`` clamp.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.dgf.policy import SplittingPolicy
from repro.hiveql.predicates import Interval


@dataclass
class GridSearchResult:
    """Inner/boundary cell keys of one query region."""

    inner_keys: List[str] = field(default_factory=list)
    boundary_keys: List[str] = field(default_factory=list)
    #: True when the query region is empty (some dimension had no cells)
    empty: bool = False

    @property
    def all_keys(self) -> List[str]:
        return self.inner_keys + self.boundary_keys

    @property
    def num_cells(self) -> int:
        return len(self.inner_keys) + len(self.boundary_keys)


def search_grid(policy: SplittingPolicy,
                intervals: Dict[str, Optional[Interval]],
                bounds: Dict[str, Tuple[int, int]],
                force_all_boundary: bool = False) -> GridSearchResult:
    """Classify the query-related cells of ``policy``.

    ``intervals``: per dimension (lower-case name), the predicate interval
    or None when the dimension is unconstrained.
    ``bounds``: per dimension, the inclusive (min, max) cell indexes
    observed at build time.
    ``force_all_boundary``: treat every cell as boundary — used when the
    header path cannot be applied (non-aggregation queries, Figure 17's
    no-precompute ablation) and every query cell's slice must be read.
    """
    per_dim: List[List[Tuple[int, bool]]] = []
    for dim in policy.dimensions:
        name = dim.name.lower()
        interval = intervals.get(name)
        k_min, k_max = bounds[name]
        span = dim.cell_span(interval, k_min, k_max)
        if span is None:
            return GridSearchResult(empty=True)
        lo_k, hi_k = span
        cells: List[Tuple[int, bool]] = []
        for k in range(lo_k, hi_k + 1):
            if not dim.overlaps_cell(interval, k):
                continue
            covered = (not force_all_boundary
                       and dim.covers_cell(interval, k))
            cells.append((k, covered))
        if not cells:
            return GridSearchResult(empty=True)
        per_dim.append(cells)

    result = GridSearchResult()
    for combo in itertools.product(*per_dim):
        key = policy.key_of_cells([k for k, _covered in combo])
        if all(covered for _k, covered in combo):
            result.inner_keys.append(key)
        else:
            result.boundary_keys.append(key)
    return result


def estimate_cells(policy: SplittingPolicy,
                   intervals: Dict[str, Optional[Interval]],
                   bounds: Dict[str, Tuple[int, int]]) -> int:
    """Number of query-related cells without materializing the keys (used
    by the policy advisor's cost estimates)."""
    total = 1
    for dim in policy.dimensions:
        name = dim.name.lower()
        span = dim.cell_span(intervals.get(name), *bounds[name])
        if span is None:
            return 0
        total *= span[1] - span[0] + 1
    return total
