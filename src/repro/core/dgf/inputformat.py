"""DgfInputFormat: split filtering and the slice-skipping RecordReader.

Paper mapping: Sec. 4.3 ("Query in DGFIndex"), steps 2 and 3 of the query
pipeline, Algorithm 4.  After the handler's query decomposition
(Algorithm 3, :mod:`repro.core.dgf.handler`) resolves the query-related
slice locations, ``getSplits`` keeps a split only if it overlaps one of
those Slices, each chosen split carries its ordered
``<split, slicesInSplit>`` list, and the record reader reads only those
byte ranges, skipping the margins between adjacent slices.  A Slice
stretching across two splits is divided between their mappers.

The skipped/read byte split is observable per map task: the record
reader's reads land in the ``hdfs.bytes_read`` / ``hdfs.seeks`` counters
of the active ``map`` span (see ``docs/observability.md``).
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterator, List, Tuple

from repro.core.dgf.gfu import SliceLocation
from repro.hdfs.filesystem import HDFS
from repro.hive.metastore import TableInfo
from repro.mapreduce.splits import FileSplit, InputFormat
from repro.storage.rcfile import RCFileReader
from repro.storage.schema import Schema
from repro.storage.sequencefile import SequenceFileReader
from repro.storage.textfile import TextFileReader, parse_line

SLICES_META_KEY = "slices"


def merge_ranges(ranges: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Sort and coalesce adjacent/overlapping byte ranges."""
    merged: List[Tuple[int, int]] = []
    for start, end in sorted(r for r in ranges if r[0] < r[1]):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def slices_to_splits(fs: HDFS, table: TableInfo,
                     slices: List[SliceLocation]) -> Tuple[List[FileSplit], int]:
    """The getSplits filter: block-aligned splits of the reorganized files,
    keeping only the splits that overlap a query slice; each kept split's
    ``meta["slices"]`` holds the ordered, clipped byte ranges it must read.

    Returns ``(chosen_splits, total_splits)`` for reporting.
    """
    by_file: Dict[str, List[Tuple[int, int]]] = {}
    for location in slices:
        by_file.setdefault(location.file, []).append(
            (location.start, location.end))
    for path in by_file:
        by_file[path] = merge_ranges(by_file[path])

    base = InputFormat()
    root = table.data_location
    if not fs.exists(root):
        return [], 0
    all_splits = base.get_splits(fs, [root])
    chosen: List[FileSplit] = []
    for split in all_splits:
        ranges = by_file.get(split.path)
        if not ranges:
            continue
        clipped = [(max(start, split.start), min(end, split.end))
                   for start, end in ranges
                   if start < split.end and split.start < end]
        if not clipped:
            continue
        split.meta[SLICES_META_KEY] = clipped
        chosen.append(split)
    return chosen, len(all_splits)


class DgfSliceInputFormat(InputFormat):
    """Reads only the slice byte ranges attached to each split."""

    def __init__(self, table: TableInfo):
        self.table = table
        self.schema: Schema = table.schema
        self._format = table.stored_as.upper()

    def read_split(self, fs: HDFS, split: FileSplit
                   ) -> Iterator[Tuple[int, Tuple]]:
        ranges: List[Tuple[int, int]] = split.meta.get(SLICES_META_KEY, [])
        if not ranges:
            return
        if self._format == "TEXTFILE":
            yield from self._read_text(fs, split, ranges)
        elif self._format == "RCFILE":
            yield from self._read_rcfile(fs, split, ranges)
        elif self._format == "SEQUENCEFILE":
            yield from self._read_sequence(fs, split, ranges)
        else:  # pragma: no cover - formats are validated at table creation
            raise AssertionError(f"unexpected format {self._format}")

    def _read_text(self, fs, split, ranges):
        with fs.open(split.path) as stream:
            reader = TextFileReader(stream, self.schema)
            for start, end in ranges:
                yield from reader.iter_rows(start, end)

    def _read_sequence(self, fs, split, ranges):
        with fs.open(split.path) as stream:
            reader = SequenceFileReader(stream)
            for start, end in ranges:
                for offset, _key, value in reader.iter_records(start, end):
                    yield offset, parse_line(value.decode("utf-8"),
                                             self.schema)

    def _read_rcfile(self, fs, split, ranges):
        """Slices are row-group aligned (the builder flushes per slice), so
        reading the groups whose header starts inside a range is exact."""
        starts = [r[0] for r in ranges]
        with fs.open(split.path) as stream:
            reader = RCFileReader(stream, self.schema)
            for group_offset, _nrows in list(reader.iter_groups(0, None)):
                idx = bisect.bisect_right(starts, group_offset) - 1
                if idx < 0 or group_offset >= ranges[idx][1]:
                    continue
                for row in reader.read_group_rows(group_offset):
                    yield group_offset, row
