"""What-if layout pricing: cost a logged workload against a candidate
grid **without building it**.

The replica-fleet router (:meth:`DgfIndexHandler._route_layout`) chooses
between *built* layouts by measuring a real grid search against each
layout's stored per-GFU statistics and pricing the result with
:meth:`CostModel.layout_route_seconds`.  The advisor has to make the same
choice for layouts that do not exist yet, so this module estimates what
that grid search *would* return from pure geometry:

* ``overlapped_i`` — how many cells of a ``n_i``-cell dimension a query
  of width ``W_i`` overlaps: ``floor(W_i / cell_i) + 1``, clamped to
  ``[1, n_i]`` (a range of width ``W`` straddles at most one extra cell
  boundary beyond ``W / cell`` whole cells).
* index probes = ``prod(overlapped_i)`` — every query-related cell costs
  one KV get for its header or slice locations.
* on the aggregation path, inner cells answer from pre-computed headers,
  so only the boundary shell pays data reads:
  ``scan_cells = probes - prod(inner_i)`` where ``inner_i`` is
  ``max(0, overlapped_i - 2)`` for a partially-covered dimension and
  ``overlapped_i`` for a fully-covered one (a query spanning a whole
  dimension has no boundary shell along it — every overlapped cell is
  fully contained, exactly as ``search_grid`` classifies them).  Without
  the header path every cell's slice is read (``scan_cells = probes``),
  mirroring ``force_all_boundary``.
* read volume = ``scan_cells / prod(n_i)`` of the table's total records
  and bytes — the builder spreads rows over the grid, so cells
  approximate equal shares at advisory precision.

Those estimates feed :meth:`CostModel.whatif_seconds`, which is the exact
router formula — by construction, a grid this module scores as cheapest
is the grid the router will route to once built.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.core.dgf.advisor import DimensionStats, QueryProfile
from repro.core.dgf.policy import SplittingPolicy
from repro.mapreduce.cost import CostModel

__all__ = ["WhatIfEvaluator", "stats_from_policy"]


def stats_from_policy(policy: SplittingPolicy,
                      bounds: Dict[str, Tuple[int, int]]
                      ) -> Dict[str, DimensionStats]:
    """Dimension extents from a built index's policy + cell bounds.

    The builder records, per dimension, the inclusive ``(k_min, k_max)``
    cell-index range actually occupied by data.  The cell-aligned data
    extent ``[origin + k_min * interval, origin + (k_max + 1) * interval)``
    over-states the true min/max by at most one cell per edge — fine at
    advisory precision, and it means the advisor needs no data sample.
    """
    stats: Dict[str, DimensionStats] = {}
    for dim in policy.dimensions:
        key = dim.name.lower()
        k_min, k_max = bounds[key]
        origin = dim.to_coord(dim.origin)
        stats[key] = DimensionStats(
            name=dim.name, dtype=dim.dtype,
            low=origin + k_min * dim.interval,
            high=origin + (k_max + 1) * dim.interval)
    return stats


class WhatIfEvaluator:
    """Prices :class:`QueryProfile` workloads against hypothetical grids.

    ``total_records`` / ``total_bytes`` are the table-wide totals (e.g.
    from :func:`repro.core.dgf.fleet.refresh_stats`); per-query read
    volume is the estimated scanned-cell fraction of those totals.
    """

    def __init__(self, cost_model: CostModel,
                 stats: Dict[str, DimensionStats],
                 total_records: float, total_bytes: float,
                 pyramid_fanout: Optional[int] = None):
        self.cost_model = cost_model
        self.stats = stats
        self.total_records = max(float(total_records), 1.0)
        self.total_bytes = max(float(total_bytes), 0.0)
        #: when set, inner regions are priced with the aggregation
        #: pyramid's logarithmic probe count instead of one get per inner
        #: cell — fine grids stop being penalized for probe volume their
        #: pyramid would never pay.  None prices flat header probes.
        self.pyramid_fanout = pyramid_fanout

    def query_seconds(self, profile: QueryProfile,
                      cell_counts: Dict[str, int]) -> float:
        """Modelled seconds for one query on a ``cell_counts`` grid."""
        probes = 1.0
        inner = 1.0
        grid_cells = 1.0
        inner_extents = []
        for key, count in cell_counts.items():
            dim = self.stats[key]
            count = max(1, int(count))
            cell_width = dim.span / count
            width = profile.widths.get(key)
            if width is None:
                width = dim.span
            overlapped = min(float(count),
                             max(1.0, float(int(width / cell_width)) + 1.0))
            probes *= overlapped
            if width >= dim.span:
                # full coverage: no boundary shell along this dimension
                inner *= overlapped
                inner_extents.append(overlapped)
            else:
                inner *= max(0.0, overlapped - 2.0)
                inner_extents.append(max(0.0, overlapped - 2.0))
            grid_cells *= count
        if profile.agg_path:
            scan_cells = probes - inner
        else:
            scan_cells = probes
        if self.pyramid_fanout and profile.agg_path and inner >= 1.0:
            # The pyramid answers the inner box from summarized nodes:
            # replace its one-get-per-cell term with the decomposition's
            # node + fringe count (the exact planner geometry).
            from repro.pyramid.build import levels_for_extent
            levels = max(levels_for_extent(max(1, int(c)),
                                           self.pyramid_fanout)
                         for c in cell_counts.values())
            probes = (probes - inner) + self.cost_model.pyramid_probe_count(
                [max(1, int(e)) for e in inner_extents],
                self.pyramid_fanout, levels)
        fraction = min(1.0, scan_cells / grid_cells)
        return self.cost_model.whatif_seconds(
            probes,
            fraction * self.total_records,
            fraction * self.total_bytes)

    def workload_seconds(self, profiles: Sequence[QueryProfile],
                         cell_counts: Dict[str, int]) -> float:
        """Weighted total seconds for a whole logged workload."""
        return sum(p.weight * self.query_seconds(p, cell_counts)
                   for p in profiles)
