"""GFU key-value model: what DGFIndex stores per grid-file unit.

``GFUValue`` = header (pre-computed additive aggregate states, keyed by the
canonical aggregate text such as ``sum(powerconsumed)``) + the location(s)
of the GFU's Slice on HDFS.  The paper stores exactly one slice per GFU;
appended data (new files, no rebuild) can add further slices for a key, so
locations are a list whose first build always has length one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List


@dataclass(frozen=True)
class SliceLocation:
    """A contiguous byte range of one HDFS file holding one GFU's records.

    The range is half-open ``[start, end)`` (the paper stores the offset of
    the last record instead; half-open ranges compose with split boundaries
    without knowing record lengths — a documented divergence).
    """

    file: str
    start: int
    end: int

    @property
    def length(self) -> int:
        return self.end - self.start

    def overlaps(self, start: int, end: int) -> bool:
        return self.start < end and start < self.end

    def clip(self, start: int, end: int) -> "SliceLocation":
        """The portion of this slice inside ``[start, end)`` (a slice that
        stretches across two splits is divided between their mappers)."""
        return SliceLocation(self.file, max(self.start, start),
                             min(self.end, end))


@dataclass
class GFUValue:
    """Header + slice locations of one GFU."""

    header: Dict[str, Any] = field(default_factory=dict)
    locations: List[SliceLocation] = field(default_factory=list)
    records: int = 0
    #: streaming watermark: every delta op with ``seq <= compacted_seq``
    #: has been folded into the slices above.  Merge-on-read skips those
    #: ops; 0 (the default, and every pre-streaming value) gates nothing.
    compacted_seq: int = 0

    def merge(self, other: "GFUValue", merge_fns: Dict[str, Any]) -> None:
        """Fold another build generation's value into this one (appends).

        ``merge_fns`` maps canonical aggregate keys to their
        :class:`~repro.hive.aggregates.AggFunction` so header states merge
        additively.
        """
        for key, state in other.header.items():
            if key in self.header and key in merge_fns:
                self.header[key] = merge_fns[key].merge(self.header[key],
                                                        state)
            else:
                self.header[key] = state
        self.locations.extend(other.locations)
        self.records += other.records
        self.compacted_seq = max(self.compacted_seq, other.compacted_seq)
