"""Key-value persistence of a DGFIndex: GFU entries + index metadata.

Keys are namespaced per (table, index) so several DGF indexes (on different
tables) can share one store, exactly like HBase tables sharing a cluster:

* ``dgf:<table>:<index>:<gfukey>``      -> GFUValue
* ``dgfmeta:<table>:<index>:<name>``    -> metadata (policy, bounds, ...)

A store may carry a :class:`repro.service.cache.GfuMetadataCache`; when it
does, the read paths the query planner hits (``multi_get``, ``get_meta``
and everything built on it) are answered from the cache where possible and
back-filled with one batched physical ``multi_get`` per lookup.  Cache hits
replay their *logical* get count onto the active trace span
(:meth:`~repro.kvstore.hbase.KVStore.note_cached_gets`), so per-query
accounting is independent of cache state; only the store's physical
``stats`` change.  Write paths always go straight to the store — the cache
stays coherent through the store's write listeners.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple, TYPE_CHECKING

from repro.core.dgf.gfu import GFUValue, SliceLocation
from repro.core.dgf.policy import SplittingPolicy
from repro.errors import DGFError
from repro.kvstore.hbase import KVStore
from repro.mapreduce.engine import estimate_size

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.service.cache import GfuMetadataCache


def cached_fetch(kvstore: KVStore, cache: Optional["GfuMetadataCache"],
                 full_keys: List[str]) -> Dict[str, Any]:
    """Fetch ``full_keys``, serving from the cache when possible.

    Returns only present keys.  The logical get count (one per probed
    key, hit or miss, found or not) is replayed onto the active trace
    span; physical reads for the misses happen inside a detached
    ``cache.fill`` span so the query's span tree is cache-agnostic.
    Shared by :class:`DgfStore` and
    :class:`~repro.delta.store.DeltaStore` — all planner-visible KV
    metadata reads go through this one accounting path.
    """
    if cache is None:
        return kvstore.multi_get(full_keys)
    from repro.service.cache import MISSING
    hits, missing = cache.lookup(full_keys)
    kvstore.note_cached_gets(len(full_keys))
    fetched: Dict[str, Any] = {}
    if missing:
        with cache.fill_scope(kvstore.tracer, len(missing)):
            fetched = kvstore.multi_get(missing)
        cache.fill(missing, fetched)
    # Preserve probe order exactly as KVStore.multi_get does: header
    # aggregation folds floats in result-iteration order, so a
    # hits-then-misses dict would change sums on mixed lookups.
    return {key: value for key in full_keys
            if (value := hits.get(key, fetched.get(key))) is not None
            and value is not MISSING}


class DgfStore:
    """Typed access to one index's slice of the key-value store."""

    def __init__(self, kvstore: KVStore, table: str, index: str,
                 cache: Optional["GfuMetadataCache"] = None):
        self.kvstore = kvstore
        self.cache = cache
        self._prefix = f"dgf:{table.lower()}:{index.lower()}:"
        self._meta_prefix = f"dgfmeta:{table.lower()}:{index.lower()}:"

    # ------------------------------------------------------------ cache path
    def _cached_fetch(self, full_keys: List[str]) -> Dict[str, Any]:
        return cached_fetch(self.kvstore, self.cache, full_keys)

    # ------------------------------------------------------------ GFU values
    def gfu_key(self, cell_key: str) -> str:
        return self._prefix + cell_key

    def put_value(self, cell_key: str, value: GFUValue) -> None:
        self.kvstore.put(self.gfu_key(cell_key), value)

    def get_value(self, cell_key: str) -> Optional[GFUValue]:
        return self.kvstore.get(self.gfu_key(cell_key))

    def multi_get(self, cell_keys) -> Dict[str, GFUValue]:
        """Batch get; returns only the cells that exist, by bare cell key."""
        full_keys = [self.gfu_key(cell_key) for cell_key in cell_keys]
        found = self._cached_fetch(full_keys)
        return {key[len(self._prefix):]: value
                for key, value in found.items()}

    def merge_value(self, cell_key: str, value: GFUValue,
                    merge_fns: Dict[str, Any]) -> None:
        """Append path: fold a new generation's GFUValue into an existing
        entry (or create it)."""
        existing = self.get_value(cell_key)
        if existing is None:
            self.put_value(cell_key, value)
            return
        existing.merge(value, merge_fns)
        self.put_value(cell_key, existing)

    def iter_entries(self) -> Iterator[Tuple[str, GFUValue]]:
        stop = self._prefix + "\U0010ffff"
        for key, value in self.kvstore.scan(self._prefix, stop):
            yield key[len(self._prefix):], value

    def count_entries(self) -> int:
        return sum(1 for _ in self.iter_entries())

    def clear(self) -> None:
        for key in [self.gfu_key(cell) for cell, _ in self.iter_entries()]:
            self.kvstore.delete(key)
        for name in list(self._meta_names()):
            self.kvstore.delete(self._meta_prefix + name)

    # --------------------------------------------------------------- metadata
    def put_meta(self, name: str, value: Any) -> None:
        self.kvstore.put(self._meta_prefix + name, value)

    def get_meta(self, name: str) -> Any:
        found = self._cached_fetch([self._meta_prefix + name])
        if not found:
            raise DGFError(f"missing DGFIndex metadata {name!r}; "
                           "was the index built?")
        return found[self._meta_prefix + name]

    def _meta_names(self) -> Iterator[str]:
        stop = self._meta_prefix + "\U0010ffff"
        for key, _value in self.kvstore.scan(self._meta_prefix, stop):
            yield key[len(self._meta_prefix):]

    # ------------------------------------------------------------ inspection
    def load_policy(self) -> SplittingPolicy:
        return SplittingPolicy.from_dict(self.get_meta("policy"))

    def load_bounds(self) -> Dict[str, Tuple[int, int]]:
        return dict(self.get_meta("bounds"))

    def size_bytes(self) -> int:
        """Serialized size of all entries (the paper's "index size" for
        DGFIndex, Table 2/5)."""
        total = 0
        for cell_key, value in self.iter_entries():
            payload = (
                dict(value.header),
                [(loc.file, loc.start, loc.end) for loc in value.locations],
                value.records,
            )
            total += len(self._prefix) + len(cell_key)
            total += estimate_size(payload)
        return total
