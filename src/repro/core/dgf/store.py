"""Key-value persistence of a DGFIndex: GFU entries + index metadata.

Keys are namespaced per (table, index) so several DGF indexes (on different
tables) can share one store, exactly like HBase tables sharing a cluster:

* ``dgf:<table>:<index>:<gfukey>``      -> GFUValue
* ``dgfmeta:<table>:<index>:<name>``    -> metadata (policy, bounds, ...)
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.core.dgf.gfu import GFUValue, SliceLocation
from repro.core.dgf.policy import SplittingPolicy
from repro.errors import DGFError
from repro.kvstore.hbase import KVStore
from repro.mapreduce.engine import estimate_size


class DgfStore:
    """Typed access to one index's slice of the key-value store."""

    def __init__(self, kvstore: KVStore, table: str, index: str):
        self.kvstore = kvstore
        self._prefix = f"dgf:{table.lower()}:{index.lower()}:"
        self._meta_prefix = f"dgfmeta:{table.lower()}:{index.lower()}:"

    # ------------------------------------------------------------ GFU values
    def gfu_key(self, cell_key: str) -> str:
        return self._prefix + cell_key

    def put_value(self, cell_key: str, value: GFUValue) -> None:
        self.kvstore.put(self.gfu_key(cell_key), value)

    def get_value(self, cell_key: str) -> Optional[GFUValue]:
        return self.kvstore.get(self.gfu_key(cell_key))

    def multi_get(self, cell_keys) -> Dict[str, GFUValue]:
        """Batch get; returns only the cells that exist, by bare cell key."""
        out: Dict[str, GFUValue] = {}
        for cell_key in cell_keys:
            value = self.kvstore.get(self.gfu_key(cell_key))
            if value is not None:
                out[cell_key] = value
        return out

    def merge_value(self, cell_key: str, value: GFUValue,
                    merge_fns: Dict[str, Any]) -> None:
        """Append path: fold a new generation's GFUValue into an existing
        entry (or create it)."""
        existing = self.get_value(cell_key)
        if existing is None:
            self.put_value(cell_key, value)
            return
        existing.merge(value, merge_fns)
        self.put_value(cell_key, existing)

    def iter_entries(self) -> Iterator[Tuple[str, GFUValue]]:
        stop = self._prefix + "\U0010ffff"
        for key, value in self.kvstore.scan(self._prefix, stop):
            yield key[len(self._prefix):], value

    def count_entries(self) -> int:
        return sum(1 for _ in self.iter_entries())

    def clear(self) -> None:
        for key in [self.gfu_key(cell) for cell, _ in self.iter_entries()]:
            self.kvstore.delete(key)
        for name in list(self._meta_names()):
            self.kvstore.delete(self._meta_prefix + name)

    # --------------------------------------------------------------- metadata
    def put_meta(self, name: str, value: Any) -> None:
        self.kvstore.put(self._meta_prefix + name, value)

    def get_meta(self, name: str) -> Any:
        value = self.kvstore.get(self._meta_prefix + name)
        if value is None:
            raise DGFError(f"missing DGFIndex metadata {name!r}; "
                           "was the index built?")
        return value

    def _meta_names(self) -> Iterator[str]:
        stop = self._meta_prefix + "\U0010ffff"
        for key, _value in self.kvstore.scan(self._meta_prefix, stop):
            yield key[len(self._meta_prefix):]

    # ------------------------------------------------------------ inspection
    def load_policy(self) -> SplittingPolicy:
        return SplittingPolicy.from_dict(self.get_meta("policy"))

    def load_bounds(self) -> Dict[str, Tuple[int, int]]:
        return dict(self.get_meta("bounds"))

    def size_bytes(self) -> int:
        """Serialized size of all entries (the paper's "index size" for
        DGFIndex, Table 2/5)."""
        total = 0
        for cell_key, value in self.iter_entries():
            payload = (
                dict(value.header),
                [(loc.file, loc.start, loc.end) for loc in value.locations],
                value.records,
            )
            total += len(self._prefix) + len(cell_key)
            total += estimate_size(payload)
        return total
