"""Named metrics with label support: counters, gauges, histograms.

The :class:`MetricsRegistry` is the process-wide (per-session) complement
to the per-query trace tree: traces answer "where did *this* query spend
its time", metrics answer "what has this session done so far" (queries by
shape, index hit rates, simulated-seconds distribution).  The bench
harness snapshots a registry next to its trace artifacts.

Thread model: one registry lock serializes all updates.  Metric updates
happen at query/job granularity (not per record or per I/O op), so the
lock is never on a hot path; the per-op accounting stays in
:mod:`repro.hdfs.metrics` and the trace counters, which are lock-free.

Labels: every update may carry keyword labels (``inc(shape="agg")``); each
distinct label combination is tracked as its own series, keyed by the
sorted ``(key, value)`` tuple so call-site ordering does not matter.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

Number = Union[int, float]
LabelKey = Tuple[Tuple[str, str], ...]

#: histogram bucket upper bounds (seconds-flavoured, but unit-agnostic).
DEFAULT_BUCKETS = (0.01, 0.1, 1.0, 10.0, 100.0, 1000.0)


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Metric:
    """Common bookkeeping: name, help text, per-label-set series."""

    kind = "?"

    def __init__(self, name: str, help: str, lock: threading.Lock):
        self.name = name
        self.help = help
        self._lock = lock
        self._series: Dict[LabelKey, Any] = {}

    def labels(self) -> List[LabelKey]:
        with self._lock:
            return sorted(self._series)

    def _snapshot_value(self, value: Any) -> Any:
        return value

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            series = {", ".join(f"{k}={v}" for k, v in key) or "":
                      self._snapshot_value(value)
                      for key, value in sorted(self._series.items())}
        return {"kind": self.kind, "help": self.help, "series": series}


class Counter(Metric):
    """Monotonically increasing count (e.g. queries executed)."""

    kind = "counter"

    def inc(self, amount: Number = 1, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels: Any) -> Number:
        with self._lock:
            return self._series.get(_label_key(labels), 0)


class Gauge(Metric):
    """A value that goes up and down (e.g. splits kept by the last plan)."""

    kind = "gauge"

    def set(self, value: Number, **labels: Any) -> None:
        with self._lock:
            self._series[_label_key(labels)] = value

    def inc(self, amount: Number = 1, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels: Any) -> Optional[Number]:
        with self._lock:
            return self._series.get(_label_key(labels))


class _HistogramSeries:
    __slots__ = ("count", "total", "bucket_counts")

    def __init__(self, num_buckets: int):
        self.count = 0
        self.total = 0.0
        # one extra bucket for "> last bound" (the +Inf bucket)
        self.bucket_counts = [0] * (num_buckets + 1)


class Histogram(Metric):
    """Distribution of observed values over fixed bucket upper bounds."""

    kind = "histogram"

    def __init__(self, name: str, help: str, lock: threading.Lock,
                 buckets: Sequence[Number] = DEFAULT_BUCKETS):
        super().__init__(name, help, lock)
        self.buckets: Tuple[Number, ...] = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError(f"histogram {name!r} needs at least one bucket")

    def observe(self, value: Number, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = _HistogramSeries(len(self.buckets))
                self._series[key] = series
            series.count += 1
            series.total += value
            series.bucket_counts[bisect.bisect_left(self.buckets, value)] += 1

    def count(self, **labels: Any) -> int:
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series.count if series else 0

    def sum(self, **labels: Any) -> float:
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series.total if series else 0.0

    def bucket_counts(self, **labels: Any) -> List[int]:
        """Per-bucket counts; the last entry is the overflow (+Inf) bucket."""
        with self._lock:
            series = self._series.get(_label_key(labels))
            if series is None:
                return [0] * (len(self.buckets) + 1)
            return list(series.bucket_counts)

    def _snapshot_value(self, series: _HistogramSeries) -> Dict[str, Any]:
        return {"count": series.count, "sum": series.total,
                "buckets": dict(zip([str(b) for b in self.buckets]
                                    + ["+Inf"], series.bucket_counts))}


class MetricsRegistry:
    """Creates and holds metrics; repeated lookups return the same object."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, name: str, factory, kind) -> Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}")
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(
            name, lambda: Counter(name, help, threading.Lock()), Counter)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(
            name, lambda: Gauge(name, help, threading.Lock()), Gauge)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[Number] = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(
            name, lambda: Histogram(name, help, threading.Lock(), buckets),
            Histogram)

    def snapshot(self) -> Dict[str, Any]:
        """All metrics as plain JSON-able data, sorted by name."""
        with self._lock:
            metrics = dict(self._metrics)
        return {name: metric.snapshot()
                for name, metric in sorted(metrics.items())}

    def render(self) -> str:
        """Text exposition (one ``name{labels} value`` line per series)."""
        lines: List[str] = []
        for name, data in self.snapshot().items():
            lines.append(f"# {name} ({data['kind']})"
                         + (f": {data['help']}" if data["help"] else ""))
            for label, value in data["series"].items():
                rendered = f"{{{label}}}" if label else ""
                lines.append(f"{name}{rendered} {value}")
        return "\n".join(lines)
