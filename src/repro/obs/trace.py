"""Structured tracing of the query lifecycle (the span API).

A :class:`Span` is one named node in a tree covering part of a query's
execution: it carries string/number *attributes* (facts decided once, e.g.
the chosen index handler), integer *counters* (facts accumulated while the
span is open, e.g. bytes read), an optional *simulated* duration (the cost
model's paper-scale :class:`~repro.mapreduce.cost.TimeBreakdown`) and a
measured *wall* duration.  The session opens a root ``query`` span per
SELECT, the engine opens per-job/per-phase/per-task spans beneath it, and
the HDFS/KV-store layers feed op counters into whichever span is active on
the calling thread.

Thread model: mirrors :func:`repro.hdfs.metrics.task_io_scope`.  Each
thread has its own active-span stack (``threading.local``), so counter
updates never race: a task records only into the span it activated on its
own thread.  Concurrently produced task spans are *not* attached to the
tree by the workers; the engine attaches them at its phase barrier, in
deterministic task order, which is what makes traces byte-identical for
every ``max_workers`` setting once wall times are normalized away
(:meth:`Trace.normalized`).

The JSON form (:meth:`Trace.to_json`) is versioned and documented
field-by-field in ``docs/observability.md``; :func:`validate_trace` checks
an emitted document against that schema.
"""

from __future__ import annotations

import json
import time
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.mapreduce.cost import TimeBreakdown

#: schema identifier embedded in every emitted trace document.
TRACE_SCHEMA = "dgf-repro/trace"
#: bump on any incompatible change to the document layout.
TRACE_VERSION = 1

#: fault/recovery observability rides on the v1 schema instead of extending
#: it: injected faults appear as ordinary child spans whose names start with
#: this prefix (``fault:task_crash``, ``fault:replica_failover``, ...) and
#: as counters starting with :data:`FAULT_COUNTER_PREFIX`.  Stripping both
#: (:meth:`Trace.normalized` with ``strip_faults=True``) recovers the exact
#: fault-free trace, which is how the chaos harness compares runs.
FAULT_SPAN_PREFIX = "fault:"
FAULT_COUNTER_PREFIX = "fault."

#: vectorized-execution observability rides on the v1 schema the same way:
#: batch-engine progress appears as counters starting with this prefix
#: (``vector.batches``, ``vector.fallback_rows``) plus a ``vectorized``
#: attribute on scan/map spans.  :func:`strip_vector_data` removes both,
#: recovering the trace the row engine would have emitted — which is how
#: the vector differential harness compares the two modes.
VECTOR_COUNTER_PREFIX = "vector."
VECTOR_ATTR = "vectorized"

#: pyramid observability rides on the v1 schema the same way: the handler's
#: pyramid read path opens one ``dgf.pyramid`` span (physical node fetches
#: plus ``pyramid.*`` counters), and maintenance work traces under
#: ``pyramid:``-prefixed spans (``pyramid:build``, ``pyramid:refresh``,
#: ``pyramid:demote``).  :func:`strip_pyramid_data` removes all of it,
#: recovering the trace the flat header path would have emitted — which is
#: how the pyramid differential harness compares the two modes.
PYRAMID_SPAN = "dgf.pyramid"
PYRAMID_SPAN_PREFIX = "pyramid:"
PYRAMID_COUNTER_PREFIX = "pyramid."

Number = Union[int, float]


@dataclass
class Span:
    """One node of a trace tree."""

    name: str
    attrs: Dict[str, Any] = field(default_factory=dict)
    counters: Dict[str, Number] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)
    wall_seconds: float = 0.0
    #: simulated (paper-scale) duration; None when the span only measures.
    sim: Optional[TimeBreakdown] = None

    # ------------------------------------------------------------- recording
    def set(self, name: str, value: Any) -> None:
        """Set an attribute (a one-shot fact about this span)."""
        self.attrs[name] = value

    def add(self, name: str, amount: Number = 1) -> None:
        """Increment a counter (an accumulated fact)."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def attach(self, child: "Span") -> None:
        """Append a finished child span (the engine's barrier merge)."""
        self.children.append(child)

    def event(self, name: str, **attrs: Any) -> "Span":
        """Attach a zero-duration child span recording a point event.

        Fault injections and recoveries use this with a ``fault:``-prefixed
        name so the chaos harness can strip them back out.
        """
        child = Span(name=name, attrs=dict(attrs))
        self.attach(child)
        return child

    # ------------------------------------------------------------ inspection
    def child(self, name: str) -> Optional["Span"]:
        """First direct child with the given name, or None."""
        for span in self.children:
            if span.name == name:
                return span
        return None

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first, document order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["Span"]:
        """First span named ``name`` in document order (self included)."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def total_counter(self, name: str) -> Number:
        """Sum of one counter over this span and all descendants."""
        return sum(span.counters.get(name, 0) for span in self.walk())

    def children_sim_sum(self) -> TimeBreakdown:
        """Fold the direct children's simulated times, in document order.

        Uses the exact accumulation the session uses for
        ``QueryStats.time``, so a root span's own ``sim`` reconciles with
        this sum bit-for-bit (±0), not merely approximately.
        """
        acc = TimeBreakdown()
        for child in self.children:
            if child.sim is not None:
                acc = acc + child.sim
        return acc

    # ------------------------------------------------------------------ JSON
    def to_dict(self) -> Dict[str, Any]:
        sim = None
        if self.sim is not None:
            sim = {"read_index_and_other": self.sim.read_index_and_other,
                   "read_data_and_process": self.sim.read_data_and_process,
                   "total": self.sim.total}
        return {
            "name": self.name,
            "attrs": dict(self.attrs),
            "counters": dict(self.counters),
            "sim_seconds": sim,
            "wall_seconds": self.wall_seconds,
            "children": [c.to_dict() for c in self.children],
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "Span":
        sim = data.get("sim_seconds")
        breakdown = None
        if sim is not None:
            breakdown = TimeBreakdown(
                read_index_and_other=sim["read_index_and_other"],
                read_data_and_process=sim["read_data_and_process"])
        return Span(
            name=data["name"],
            attrs=dict(data.get("attrs", {})),
            counters=dict(data.get("counters", {})),
            children=[Span.from_dict(c) for c in data.get("children", [])],
            wall_seconds=data.get("wall_seconds", 0.0),
            sim=breakdown)


class _NullSpan(Span):
    """Shared sink for disabled tracers; absorbs writes, stores nothing."""

    def __init__(self):
        super().__init__(name="null")

    def set(self, name: str, value: Any) -> None:
        pass

    def add(self, name: str, amount: Number = 1) -> None:
        pass

    def attach(self, child: "Span") -> None:
        pass

    def event(self, name: str, **attrs: Any) -> "Span":
        return self


NULL_SPAN = _NullSpan()


class Tracer:
    """Creates spans and tracks the per-thread active span.

    ``span()`` opens a child of the current thread's active span (or a
    detached root when none is active); ``task_span()`` opens a span that
    is *never* auto-attached — the engine's phase barrier attaches task
    spans in task order so tree shape is independent of thread scheduling.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._tls = threading.local()

    # ----------------------------------------------------------- span stack
    def _stack(self) -> List[Span]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def current(self) -> Optional[Span]:
        """The calling thread's innermost open span, or None."""
        stack = getattr(self._tls, "stack", None)
        return stack[-1] if stack else None

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a span under the current thread's active span."""
        if not self.enabled:
            yield NULL_SPAN
            return
        span = Span(name=name, attrs=dict(attrs))
        stack = self._stack()
        if stack:
            stack[-1].attach(span)
        stack.append(span)
        started = time.perf_counter()
        try:
            yield span
        finally:
            span.wall_seconds = time.perf_counter() - started
            stack.pop()

    @contextmanager
    def task_span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a detached span (for tasks run on worker threads).

        The span becomes the calling thread's active span, but it is not
        attached to any parent; the caller attaches it deterministically
        after the phase barrier (see ``MapReduceEngine``).
        """
        if not self.enabled:
            yield NULL_SPAN
            return
        span = Span(name=name, attrs=dict(attrs))
        stack = self._stack()
        stack.append(span)
        started = time.perf_counter()
        try:
            yield span
        finally:
            span.wall_seconds = time.perf_counter() - started
            stack.pop()

    # ------------------------------------------------------------- counters
    def add(self, name: str, amount: Number = 1) -> None:
        """Increment a counter on the calling thread's active span.

        A no-op when tracing is disabled or no span is open (e.g. data
        loading outside any query) — instrumented layers can call this
        unconditionally.
        """
        stack = getattr(self._tls, "stack", None)
        if stack:
            counters = stack[-1].counters
            counters[name] = counters.get(name, 0) + amount


#: shared disabled tracer for components constructed without a session.
NULL_TRACER = Tracer(enabled=False)


@dataclass
class Trace:
    """A finished span tree plus its (de)serialization and rendering."""

    root: Span

    # ------------------------------------------------------------------ JSON
    def to_dict(self) -> Dict[str, Any]:
        return {"schema": TRACE_SCHEMA, "version": TRACE_VERSION,
                "root": self.root.to_dict()}

    def to_json(self, indent: Optional[int] = None) -> str:
        """Stable serialization: sorted keys, preserved child order."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @staticmethod
    def from_json(text: str) -> "Trace":
        data = json.loads(text)
        validate_trace(data)
        return Trace(root=Span.from_dict(data["root"]))

    def normalized(self, strip_faults: bool = False) -> Dict[str, Any]:
        """The trace document with every wall time zeroed.

        Wall durations depend on the host and thread scheduling; everything
        else (names, attributes, counters, simulated times, child order) is
        a pure function of the executed work, so the normalized document is
        byte-identical across ``max_workers`` settings.

        With ``strip_faults=True`` the fault observability layer is removed
        as well (``fault:*`` spans, ``fault.*`` counters), producing the
        trace the same run would have emitted with no faults injected —
        the "traces modulo fault spans" form the chaos harness compares.
        """
        def scrub(node: Dict[str, Any]) -> Dict[str, Any]:
            node = dict(node)
            node["wall_seconds"] = 0.0
            node["children"] = [scrub(c) for c in node["children"]]
            return node

        data = self.to_dict()
        if strip_faults:
            data["root"] = strip_fault_data(data["root"])
        data["root"] = scrub(data["root"])
        return data

    def normalized_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.normalized(), sort_keys=True, indent=indent)

    # ------------------------------------------------------------ rendering
    def render(self, include_wall: bool = False) -> str:
        """ASCII tree, one line per span (the EXPLAIN ANALYZE body)."""
        lines: List[str] = []
        self._render(self.root, "", "", lines, include_wall)
        return "\n".join(lines)

    def _render(self, span: Span, lead: str, child_lead: str,
                lines: List[str], include_wall: bool) -> None:
        parts = [span.name]
        parts.extend(f"{k}={v}" for k, v in span.attrs.items())
        if span.sim is not None:
            parts.append(f"[sim {span.sim.total:.3f}s"
                         f" idx={span.sim.read_index_and_other:.3f}"
                         f" data={span.sim.read_data_and_process:.3f}]")
        if include_wall:
            parts.append(f"[wall {span.wall_seconds * 1e3:.2f}ms]")
        parts.extend(f"{k}={v}" for k, v in sorted(span.counters.items()))
        lines.append(lead + " ".join(parts))
        for index, child in enumerate(span.children):
            last = index == len(span.children) - 1
            branch = "`- " if last else "|- "
            extend = "   " if last else "|  "
            self._render(child, child_lead + branch, child_lead + extend,
                         lines, include_wall)


# ----------------------------------------------------------- fault stripping
def strip_fault_data(node: Dict[str, Any]) -> Dict[str, Any]:
    """A copy of a span-document subtree without fault observability.

    Drops every child span whose name starts with
    :data:`FAULT_SPAN_PREFIX` and every counter whose name starts with
    :data:`FAULT_COUNTER_PREFIX`, recursively.  Applied to a chaos run's
    trace this recovers the byte-identical fault-free document, because
    all fault/recovery reporting is confined to those two namespaces.
    """
    node = dict(node)
    node["counters"] = {k: v for k, v in node["counters"].items()
                        if not k.startswith(FAULT_COUNTER_PREFIX)}
    node["children"] = [strip_fault_data(c) for c in node["children"]
                        if not c["name"].startswith(FAULT_SPAN_PREFIX)]
    return node


def strip_vector_data(node: Dict[str, Any]) -> Dict[str, Any]:
    """A copy of a span-document subtree without vector observability.

    Drops every counter whose name starts with
    :data:`VECTOR_COUNTER_PREFIX` and the :data:`VECTOR_ATTR` attribute,
    recursively.  Applied to a vectorized run's trace this recovers the
    byte-identical row-engine document, because the batch engine reports
    its progress only through those two namespaces.
    """
    node = dict(node)
    node["attrs"] = {k: v for k, v in node["attrs"].items()
                     if k != VECTOR_ATTR}
    node["counters"] = {k: v for k, v in node["counters"].items()
                        if not k.startswith(VECTOR_COUNTER_PREFIX)}
    node["children"] = [strip_vector_data(c) for c in node["children"]]
    return node


def strip_pyramid_data(node: Dict[str, Any]) -> Dict[str, Any]:
    """A copy of a span-document subtree without pyramid observability.

    Drops every child span named :data:`PYRAMID_SPAN` or starting with
    :data:`PYRAMID_SPAN_PREFIX`, and every counter starting with
    :data:`PYRAMID_COUNTER_PREFIX`, recursively.  Applied to a
    pyramid-accelerated run's trace this recovers the byte-identical
    flat-header document, because the pyramid reports its work only
    through those namespaces (the logical per-query accounting —
    ``kv.gets``, ``gfus``, simulated times — is replayed unchanged).
    """
    node = dict(node)
    node["counters"] = {k: v for k, v in node["counters"].items()
                        if not k.startswith(PYRAMID_COUNTER_PREFIX)}
    node["children"] = [strip_pyramid_data(c) for c in node["children"]
                        if c["name"] != PYRAMID_SPAN
                        and not c["name"].startswith(PYRAMID_SPAN_PREFIX)]
    return node


# ------------------------------------------------------------------- schema
def _fail(path: str, message: str) -> None:
    raise ValueError(f"invalid trace at {path}: {message}")


def _validate_span(node: Any, path: str) -> None:
    if not isinstance(node, dict):
        _fail(path, f"span must be an object, got {type(node).__name__}")
    expected = {"name", "attrs", "counters", "sim_seconds", "wall_seconds",
                "children"}
    missing = expected - set(node)
    extra = set(node) - expected
    if missing:
        _fail(path, f"missing fields {sorted(missing)}")
    if extra:
        _fail(path, f"unknown fields {sorted(extra)}")
    if not isinstance(node["name"], str) or not node["name"]:
        _fail(path, "name must be a non-empty string")
    if not isinstance(node["attrs"], dict):
        _fail(path, "attrs must be an object")
    if not isinstance(node["counters"], dict):
        _fail(path, "counters must be an object")
    for key, value in node["counters"].items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            _fail(path, f"counter {key!r} must be a number")
    sim = node["sim_seconds"]
    if sim is not None:
        if not isinstance(sim, dict) or set(sim) != {
                "read_index_and_other", "read_data_and_process", "total"}:
            _fail(path, "sim_seconds must have exactly read_index_and_other,"
                        " read_data_and_process, total")
        for key, value in sim.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                _fail(path, f"sim_seconds.{key} must be a number")
    wall = node["wall_seconds"]
    if not isinstance(wall, (int, float)) or isinstance(wall, bool):
        _fail(path, "wall_seconds must be a number")
    if not isinstance(node["children"], list):
        _fail(path, "children must be an array")
    for index, child in enumerate(node["children"]):
        _validate_span(child, f"{path}.children[{index}]")


def validate_trace(data: Any) -> None:
    """Raise ``ValueError`` unless ``data`` is a valid v1 trace document.

    The authoritative field-by-field description lives in
    ``docs/observability.md``; this validator enforces it.
    """
    if not isinstance(data, dict):
        _fail("$", "document must be an object")
    if set(data) != {"schema", "version", "root"}:
        _fail("$", "document must have exactly schema, version, root")
    if data["schema"] != TRACE_SCHEMA:
        _fail("$.schema", f"expected {TRACE_SCHEMA!r}, got {data['schema']!r}")
    if data["version"] != TRACE_VERSION:
        _fail("$.version", f"expected {TRACE_VERSION}, "
                           f"got {data['version']!r}")
    _validate_span(data["root"], "$.root")
