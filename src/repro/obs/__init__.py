"""Query-lifecycle observability: structured tracing and a metrics registry.

``repro.obs.trace`` provides the span API behind ``EXPLAIN ANALYZE`` and
``QueryResult.trace``; ``repro.obs.metrics`` provides named counters,
gauges and histograms with label support.  See ``docs/observability.md``
for the span taxonomy and the versioned JSON trace schema.
"""

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import (NULL_TRACER, Span, Trace, Tracer,
                             TRACE_SCHEMA, TRACE_VERSION, validate_trace)

__all__ = ["MetricsRegistry", "NULL_TRACER", "Span", "Trace", "Tracer",
           "TRACE_SCHEMA", "TRACE_VERSION", "validate_trace"]
