"""DBMS-X write-path model for the paper's Figure 3 (write throughput of
DBMS-X with/without index vs HDFS)."""

from repro.rdbms.btree import BPlusTree, BufferPool
from repro.rdbms.writer import (WriteThroughputResult, measure_dbms_write,
                                measure_hdfs_write)

__all__ = [
    "BPlusTree",
    "BufferPool",
    "WriteThroughputResult",
    "measure_dbms_write",
    "measure_hdfs_write",
]
