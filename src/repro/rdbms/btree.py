"""A B+-tree with buffer-pool accounting.

Figure 3's mechanism is that index maintenance turns a sequential load into
random page I/O.  To reproduce it honestly we maintain a real B+-tree
during the simulated load and *measure* leaf-page buffer misses through an
LRU pool — random keys touch leaves all over the tree and miss, while
monotone keys stay in the rightmost leaf and hit.
"""

from __future__ import annotations

import bisect
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple


@dataclass
class BufferPool:
    """LRU page cache with miss/eviction accounting."""

    capacity: int = 256
    _pages: "OrderedDict[int, bool]" = field(default_factory=OrderedDict)
    hits: int = 0
    misses: int = 0
    dirty_evictions: int = 0

    def touch(self, page_id: int, dirty: bool = False) -> None:
        if page_id in self._pages:
            self.hits += 1
            self._pages[page_id] = self._pages[page_id] or dirty
            self._pages.move_to_end(page_id)
            return
        self.misses += 1
        self._pages[page_id] = dirty
        self._pages.move_to_end(page_id)
        while len(self._pages) > self.capacity:
            _evicted, was_dirty = self._pages.popitem(last=False)
            if was_dirty:
                self.dirty_evictions += 1


class _Node:
    __slots__ = ("page_id", "leaf", "keys", "children", "values", "next")

    def __init__(self, page_id: int, leaf: bool):
        self.page_id = page_id
        self.leaf = leaf
        self.keys: List[Any] = []
        self.children: List["_Node"] = []
        self.values: List[Any] = []
        self.next: Optional["_Node"] = None


class BPlusTree:
    """Insert/search/range-scan B+-tree over comparable keys."""

    def __init__(self, order: int = 128,
                 pool: Optional[BufferPool] = None):
        if order < 4:
            raise ValueError("order must be >= 4")
        self.order = order
        self.pool = pool if pool is not None else BufferPool()
        self._next_page = 0
        self._root = self._new_node(leaf=True)
        self.num_keys = 0
        self.splits = 0

    def _new_node(self, leaf: bool) -> _Node:
        node = _Node(self._next_page, leaf)
        self._next_page += 1
        return node

    @property
    def num_pages(self) -> int:
        return self._next_page

    @property
    def height(self) -> int:
        height = 1
        node = self._root
        while not node.leaf:
            node = node.children[0]
            height += 1
        return height

    # ------------------------------------------------------------------ write
    def insert(self, key: Any, value: Any) -> None:
        """Insert (duplicates allowed: values accumulate per key)."""
        root = self._root
        if len(root.keys) >= self.order:
            new_root = self._new_node(leaf=False)
            new_root.children.append(root)
            self._split_child(new_root, 0)
            self._root = new_root
        self._insert_nonfull(self._root, key, value)
        self.num_keys += 1

    def _insert_nonfull(self, node: _Node, key: Any, value: Any) -> None:
        while not node.leaf:
            self.pool.touch(node.page_id)
            idx = bisect.bisect_right(node.keys, key)
            child = node.children[idx]
            if len(child.keys) >= self.order:
                self._split_child(node, idx)
                if key >= node.keys[idx]:
                    child = node.children[idx + 1]
            node = child
        self.pool.touch(node.page_id, dirty=True)
        idx = bisect.bisect_right(node.keys, key)
        node.keys.insert(idx, key)
        node.values.insert(idx, value)

    def _split_child(self, parent: _Node, index: int) -> None:
        child = parent.children[index]
        mid = len(child.keys) // 2
        sibling = self._new_node(leaf=child.leaf)
        self.splits += 1
        if child.leaf:
            sibling.keys = child.keys[mid:]
            sibling.values = child.values[mid:]
            del child.keys[mid:]
            del child.values[mid:]
            sibling.next = child.next
            child.next = sibling
            split_key = sibling.keys[0]
        else:
            split_key = child.keys[mid]
            sibling.keys = child.keys[mid + 1:]
            sibling.children = child.children[mid + 1:]
            del child.keys[mid:]
            del child.children[mid + 1:]
        parent.keys.insert(index, split_key)
        parent.children.insert(index + 1, sibling)
        self.pool.touch(child.page_id, dirty=True)
        self.pool.touch(sibling.page_id, dirty=True)
        self.pool.touch(parent.page_id, dirty=True)

    # ------------------------------------------------------------------- read
    def search(self, key: Any) -> List[Any]:
        node = self._root
        while not node.leaf:
            self.pool.touch(node.page_id)
            # Descend left on equality: duplicates of a separator key can
            # live in the left child (leaf splits promote sibling.keys[0]
            # while equal keys remain left of the split point); the leaf
            # chain walk below picks up the rest.
            node = node.children[bisect.bisect_left(node.keys, key)]
        self.pool.touch(node.page_id)
        out = []
        idx = bisect.bisect_left(node.keys, key)
        while node is not None:
            while idx < len(node.keys) and node.keys[idx] == key:
                out.append(node.values[idx])
                idx += 1
            if idx < len(node.keys):
                break
            node = node.next
            idx = 0
            if node is not None:
                self.pool.touch(node.page_id)
                if not node.keys or node.keys[0] != key:
                    break
        return out

    def range_scan(self, low: Any, high: Any) -> List[Tuple[Any, Any]]:
        """All (key, value) with low <= key < high."""
        node = self._root
        while not node.leaf:
            self.pool.touch(node.page_id)
            # Descend left on equality (see search): duplicates of ``low``
            # may sit in the left child of an equal separator.
            node = node.children[bisect.bisect_left(node.keys, low)]
        out: List[Tuple[Any, Any]] = []
        idx = bisect.bisect_left(node.keys, low)
        while node is not None:
            self.pool.touch(node.page_id)
            while idx < len(node.keys):
                if node.keys[idx] >= high:
                    return out
                out.append((node.keys[idx], node.values[idx]))
                idx += 1
            node = node.next
            idx = 0
        return out

    def items(self) -> List[Tuple[Any, Any]]:
        node = self._root
        while not node.leaf:
            node = node.children[0]
        out = []
        while node is not None:
            out.extend(zip(node.keys, node.values))
            node = node.next
        return out
