"""Write-throughput measurement: DBMS-X (with/without index) vs HDFS.

Reproduces Figure 3's mechanism with measured quantities:

* **DBMS-X** — every row pays SQL-engine CPU, a WAL append plus a heap
  append (two sequential passes).  With an index, a real B+-tree is
  maintained during the load and its *measured* buffer-pool misses and
  splits are charged an amortized random-I/O cost (write-back array cache;
  the per-miss figure is calibrated so DBMS-X lands in the paper's 2-8
  MB/s band).
* **HDFS** — clients stream sequential appends through the write pipeline;
  replication multiplies the written volume across datanodes but parallel
  clients keep the aggregate near raw disk speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.common.units import MiB
from repro.hdfs.filesystem import HDFS
from repro.rdbms.btree import BPlusTree, BufferPool


@dataclass(frozen=True)
class RdbmsWriteConfig:
    """DBMS-X write-path parameters (two high-end servers in the paper)."""

    sequential_bandwidth: float = 100e6   # WAL/heap append speed (B/s)
    cpu_seconds_per_row: float = 8e-6     # SQL insert-path CPU
    #: amortized cost of one buffer-pool miss on the storage array (the
    #: write-back cache absorbs most of a raw seek; calibrated so DBMS-X
    #: with index lands in the paper's 2-4 MB/s band)
    random_io_seconds: float = 60e-6
    buffer_pool_pages: int = 96
    btree_order: int = 128


@dataclass
class WriteThroughputResult:
    """Outcome of one write-throughput measurement."""

    label: str
    rows: int
    bytes_written: int
    seconds: float
    #: measured index-maintenance facts (zeros when no index)
    pool_misses: int = 0
    pool_hits: int = 0
    page_splits: int = 0

    @property
    def mb_per_second(self) -> float:
        if self.seconds <= 0:
            return float("inf")
        return self.bytes_written / self.seconds / MiB


def _row_size(row: Sequence) -> int:
    return sum(len(str(v)) + 1 for v in row)


def measure_dbms_write(rows: Iterable[Sequence], key_position: int,
                       with_index: bool,
                       config: RdbmsWriteConfig = RdbmsWriteConfig()
                       ) -> WriteThroughputResult:
    """Simulated load of ``rows`` into DBMS-X, optionally maintaining a
    B+-tree on ``rows[key_position]`` (the meter table's userId index)."""
    tree: Optional[BPlusTree] = None
    if with_index:
        tree = BPlusTree(order=config.btree_order,
                         pool=BufferPool(capacity=config.buffer_pool_pages))
    total_bytes = 0
    count = 0
    for row in rows:
        total_bytes += _row_size(row)
        if tree is not None:
            tree.insert(row[key_position], count)
        count += 1

    seconds = count * config.cpu_seconds_per_row
    # WAL append + heap append: two sequential passes over the data.
    seconds += 2 * total_bytes / config.sequential_bandwidth
    pool_misses = pool_hits = page_splits = 0
    if tree is not None:
        pool_misses = tree.pool.misses + tree.pool.dirty_evictions
        pool_hits = tree.pool.hits
        page_splits = tree.splits
        seconds += pool_misses * config.random_io_seconds
        # index pages are also persisted once
        seconds += tree.num_pages * 8192 / config.sequential_bandwidth
    label = "DBMS-X with index" if with_index else "DBMS-X without index"
    return WriteThroughputResult(label=label, rows=count,
                                 bytes_written=total_bytes, seconds=seconds,
                                 pool_misses=pool_misses,
                                 pool_hits=pool_hits,
                                 page_splits=page_splits)


def measure_hdfs_write(rows: Iterable[Sequence], fs: Optional[HDFS] = None,
                       parallel_clients: int = 1,
                       per_node_bandwidth: float = 100e6,
                       pipeline_efficiency: float = 0.8
                       ) -> WriteThroughputResult:
    """Actually write the rows into the simulated HDFS and model the
    pipeline: each client streams sequentially; replication consumes
    datanode bandwidth but clients spread over the cluster."""
    fs = fs if fs is not None else HDFS(num_datanodes=8)
    clients = max(1, parallel_clients)
    writers = [fs.create(f"/ingest/client-{i}", overwrite=True)
               for i in range(clients)]
    total_bytes = 0
    count = 0
    for row in rows:
        line = ("|".join(str(v) for v in row) + "\n").encode("utf-8")
        writers[count % clients].write(line)
        total_bytes += len(line)
        count += 1
    for writer in writers:
        writer.close()

    effective = (min(clients, len(fs.datanodes)) * per_node_bandwidth
                 * pipeline_efficiency / fs.replication)
    seconds = total_bytes / effective
    return WriteThroughputResult(label="HDFS", rows=count,
                                 bytes_written=total_bytes, seconds=seconds)
